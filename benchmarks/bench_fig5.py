"""Figure 5: migration under 50% / 10% CSE availability.

Paper series: every workload, stressed right after its ISP task makes
50% progress; full ActivePy vs the no-migration ablation, normalised to
the no-ISP baseline.  Headline numbers: 2.82x gain over the ablation at
10%, ~8% average slowdown vs baseline with migration, 67% average / 88%
maximum loss without it.
"""

from repro.analysis.experiments import run_fig5
from repro.analysis.metrics import slowdown_fraction
from repro.analysis.report import format_table

from .conftest import run_once


def test_fig5_migration(benchmark):
    result = run_once(benchmark, run_fig5)
    for availability in (0.5, 0.1):
        print(f"\n\nFIGURE 5 — {availability:.0%} CSE availability "
              f"(stress at 50% progress)")
        print(format_table(
            ["application", "ActivePy", "w/o migration", "gain", "migrations"],
            [
                [row.name,
                 f"{row.with_migration_speedup:.3f}x",
                 f"{row.without_migration_speedup:.3f}x",
                 f"{row.migration_gain:.2f}x",
                 row.migrations]
                for row in result.at(availability)
            ],
        ))
    gain = result.mean_gain(0.1)
    without = result.mean_without(0.1)
    with_mig = result.mean_with(0.1)
    worst = min(r.without_migration_speedup for r in result.at(0.1))
    print(f"\nat 10%: migration gain {gain:.2f}x (paper: 2.82x)")
    print(f"at 10%: mean loss w/o migration "
          f"{slowdown_fraction(1.0, 1.0 / without):.0%} "
          f"(paper: 67% avg), worst {slowdown_fraction(1.0, 1.0 / worst):.0%} "
          f"(paper: 88%)")
    print(f"at 10%: ActivePy vs baseline {with_mig:.3f}x "
          f"(paper: ~8% slowdown)")

    assert gain > 2.0
    assert without < 0.45
