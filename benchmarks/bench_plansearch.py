"""Branch-and-bound plan search vs greedy Algorithm 1 (``BENCH_plansearch.json``).

Three deterministic claims the perf gate pins:

* **Never worse.**  Over the whole workload rotation, the search's
  speculative makespan is at most greedy's on every workload — the
  incumbent is seeded with greedy's leaf, so this is structural, and
  ``never_worse.max_search_minus_greedy_s`` stays pinned at <= 0.
* **Strictly better where Eq. 1 extrapolates wrong.**  On the §V CSR
  workloads (``pagerank``, ``sparsemv``) the sampled volume curve
  over-predicts the conversion's output ~2.4x, greedy keeps it on the
  host, and the speculative search — which *measures* candidate
  prefixes on forked simulator states instead of trusting the fit —
  offloads it.  The gate pins both workloads' greedy and search
  makespans, so the win can neither erode nor silently vanish.
* **Determinism across workers.**  ``workers=2`` returns a plan and
  metrics bit-identical to ``workers=1`` (the pool only changes who
  runs the speculative step simulations, not what they compute).

Search wall time over the full rotation is also recorded and gated
with a generous band: the search must stay interactive-planning cheap
(milliseconds per workload), not grow into a second sampling phase.
"""

import time

from repro.config import DEFAULT_CONFIG
from repro.runtime.estimator import build_estimates
from repro.runtime.planner import assign_csd_code
from repro.runtime.plansearch import SearchOptions, search_plan
from repro.runtime.sampling import SamplingPhase
from repro.workloads import get_workload, workload_names

from .conftest import run_once, write_bench_json

#: The §V CSR case-study workloads where the search must beat greedy.
EXPECTED_WINS = ("pagerank", "sparsemv")


def _estimates_for(name):
    workload = get_workload(name)
    sampling = SamplingPhase(DEFAULT_CONFIG).run(
        workload.program, workload.dataset
    )
    estimates = build_estimates(
        sampling, workload.n_records, DEFAULT_CONFIG
    )
    return workload, estimates


def _search_rotation():
    per_workload = {}
    wall_total = 0.0
    for name in workload_names():
        workload, estimates = _estimates_for(name)
        greedy = assign_csd_code(estimates, DEFAULT_CONFIG)
        started = time.perf_counter()
        report = search_plan(
            workload.program, workload.dataset, estimates, DEFAULT_CONFIG,
            greedy=greedy,
        )
        wall_total += time.perf_counter() - started
        per_workload[name] = {
            "greedy_makespan_s": report.greedy_makespan_s,
            "search_makespan_s": report.makespan_s,
            "beat_greedy": report.beat_greedy,
            "improvement_fraction": report.improvement_fraction,
            "greedy_assignments": list(report.greedy_plan.assignments),
            "search_assignments": list(report.plan.assignments),
            "nodes_expanded": report.metrics.nodes_expanded,
            "nodes_pruned": report.metrics.nodes_pruned,
            "steps_simulated": report.metrics.steps_simulated,
            "search_wall_seconds": report.metrics.wall_seconds,
        }
    return per_workload, wall_total


def test_search_never_worse_and_wins_on_csr(benchmark):
    per_workload, wall_total = run_once(benchmark, _search_rotation)

    print("\n\nbranch-and-bound search vs greedy Algorithm 1 "
          "(speculative makespans)")
    for name, row in per_workload.items():
        marker = (
            f"  <- search wins ({100 * row['improvement_fraction']:.1f}%)"
            if row["beat_greedy"] else ""
        )
        print(f"{name:<14} greedy {row['greedy_makespan_s']:9.4f} s   "
              f"search {row['search_makespan_s']:9.4f} s{marker}")

    deltas = {
        name: row["search_makespan_s"] - row["greedy_makespan_s"]
        for name, row in per_workload.items()
    }
    strict_wins = sorted(
        name for name, row in per_workload.items() if row["beat_greedy"]
    )
    write_bench_json(
        "plansearch",
        {
            "per_workload": per_workload,
            "never_worse": {
                "max_search_minus_greedy_s": max(deltas.values()),
                "strict_wins": len(strict_wins),
                "strict_win_deficit": max(0, 2 - len(strict_wins)),
                "winning_workloads": strict_wins,
            },
            "wall": {"rotation_search_wall_seconds": wall_total},
        },
        meta={"workloads": list(per_workload), "scale": 1.0},
    )
    # Structural: greedy's plan is a leaf of the search tree and the
    # incumbent only ever improves strictly.
    assert max(deltas.values()) <= 0.0
    # The §V payoff: strictly better exactly where the fitted volume
    # curve misleads Algorithm 1.
    assert len(strict_wins) >= 2
    for name in EXPECTED_WINS:
        assert per_workload[name]["beat_greedy"], name
        assert deltas[name] < 0.0, name


def test_workers_bit_identical(benchmark):
    workload, estimates = _estimates_for("pagerank")
    greedy = assign_csd_code(estimates, DEFAULT_CONFIG)

    def run_both():
        reports = {}
        for workers in (1, 2):
            reports[workers] = search_plan(
                workload.program, workload.dataset, estimates,
                DEFAULT_CONFIG, options=SearchOptions(workers=workers),
                greedy=greedy,
            )
        return reports

    reports = run_once(benchmark, run_both)
    serial, parallel = reports[1], reports[2]
    serial_metrics = serial.metrics.to_jsonable()
    parallel_metrics = parallel.metrics.to_jsonable()
    # Wall time is the one field allowed to differ between pool sizes.
    serial_metrics.pop("wall_seconds")
    parallel_metrics.pop("wall_seconds")

    identical = (
        serial.plan.assignments == parallel.plan.assignments
        and serial.makespan_s == parallel.makespan_s
        and serial_metrics == parallel_metrics
    )
    print(f"\n\nworkers=2 vs workers=1 on pagerank: "
          f"{'bit-identical' if identical else 'DIVERGED'} "
          f"(plan {tuple(parallel.plan.assignments)}, "
          f"makespan {parallel.makespan_s:.6f} s)")

    write_bench_json(
        "plansearch",
        {
            "determinism": {
                "workers_compared": [1, 2],
                "plan_identical": serial.plan.assignments
                == parallel.plan.assignments,
                "makespan_identical": serial.makespan_s == parallel.makespan_s,
                "metrics_identical": serial_metrics == parallel_metrics,
            },
        },
    )
    assert identical
