"""§V "ActivePy's optimizations in its language runtime".

Paper ladder, host-only (no ISP anywhere): plain Python is 41% slower
than the C baseline; Cython compilation shrinks that to 20%; ActivePy's
copy elimination makes it almost indistinguishable from C, modulo the
~0.1 s compilation cost.
"""

from repro.analysis.experiments import run_overhead_ladder
from repro.analysis.report import format_table

from .conftest import run_once


def test_runtime_overhead_ladder(benchmark):
    result = run_once(benchmark, run_overhead_ladder)
    print("\n\n§V — language-runtime overhead over the C baseline (no ISP)")
    print(format_table(
        ["application", "python", "cython", "activepy"],
        [
            [name,
             f"+{(modes['python'] - 1) * 100:.1f}%",
             f"+{(modes['cython'] - 1) * 100:.1f}%",
             f"+{(modes['activepy'] - 1) * 100:.2f}%"]
            for name, modes in result.per_workload.items()
        ],
    ))
    print(
        f"\nmean: python +{result.mean_overhead('python') * 100:.1f}% "
        f"(paper: +41%), cython +{result.mean_overhead('cython') * 100:.1f}% "
        f"(paper: +20%), activepy +{result.mean_overhead('activepy') * 100:.2f}% "
        f"(paper: ~1% compile overhead)"
    )

    assert abs(result.mean_overhead("python") - 0.41) < 0.02
    assert abs(result.mean_overhead("cython") - 0.20) < 0.02
    assert result.mean_overhead("activepy") < 0.03
