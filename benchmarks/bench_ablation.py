"""Ablations of the design choices DESIGN.md calls out.

Not paper figures — these quantify why the reproduction (and the
paper's design) is shaped the way it is:

* **planner policy** — Algorithm 1's greedy vs the exhaustive oracle vs
  a naive offload-everything policy;
* **sampling factors** — fewer/smaller sample runs trade prediction
  accuracy against sampling cost;
* **interconnect bandwidth** — sweep the device-to-host link to expose
  the Equation-1 regimes (ISP profit grows as the link narrows);
* **attachment** — PCIe BARs vs NVMe-oF/RDMA;
* **monitor threshold** — how aggressively the IPC watchdog fires.
"""

import pytest

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.baselines import run_c_baseline
from repro.baselines.static_isp import exhaustive_best_plan, ground_truth_estimates
from repro.config import SystemConfig
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy, run_plan
from repro.runtime.codegen import ExecutionMode
from repro.runtime.planner import CSD, Plan, assign_csd_code, projected_time
from repro.units import GB
from repro.workloads import get_workload

from .conftest import run_once

ABLATION_WORKLOADS = ("blackscholes", "lightgbm", "mixedgemm", "tpch_q6")


def test_ablation_planner_policy(benchmark):
    """Greedy (Algorithm 1) vs exhaustive vs offload-everything."""

    def run():
        config = SystemConfig()
        rows = []
        for name in ABLATION_WORKLOADS:
            workload = get_workload(name)
            estimates = ground_truth_estimates(
                workload.program, workload.n_records, config
            )
            t_host = sum(e.ct_host for e in estimates)
            greedy = assign_csd_code(estimates, config).t_csd
            oracle = exhaustive_best_plan(estimates, config).t_csd
            all_csd = projected_time([CSD] * len(estimates), estimates, config)
            rows.append([name, t_host / greedy, t_host / oracle, t_host / all_csd])
        return rows

    rows = run_once(benchmark, run)
    print("\n\nABLATION — planner policy (speedup over host-only)")
    print(format_table(
        ["workload", "greedy (Alg. 1)", "exhaustive", "offload-all"],
        [[r[0], f"{r[1]:.3f}x", f"{r[2]:.3f}x", f"{r[3]:.3f}x"] for r in rows],
    ))
    for _, greedy, oracle, all_csd in rows:
        assert greedy == pytest.approx(oracle, rel=1e-6)  # greedy finds it
        assert all_csd <= oracle + 1e-9  # naive offload never beats it


def test_ablation_sampling_factors(benchmark):
    """Two coarse factors vs the paper's four exponential ones."""

    def run():
        results = {}
        for label, factors in (
            ("paper 4x", (2**-10, 2**-9, 2**-8, 2**-7)),
            ("two-point", (2**-10, 2**-7)),
            ("larger", (2**-8, 2**-7, 2**-6, 2**-5)),
        ):
            config = SystemConfig(sampling_factors=factors)
            workload = get_workload("tpch_q6")
            report = ActivePy(config).run(workload.program, workload.dataset)
            results[label] = (
                report.plan.assignments,
                report.sampling.sampling_seconds,
            )
        return results

    results = run_once(benchmark, run)
    print("\n\nABLATION — sampling factors")
    print(format_table(
        ["factors", "plan", "sampling cost (s)"],
        [[label, "".join("C" if a == CSD else "h" for a in plan),
          f"{cost:.4f}"] for label, (plan, cost) in results.items()],
    ))
    plans = {tuple(plan) for plan, _ in results.values()}
    assert len(plans) == 1  # the decision is robust to the factor set
    assert results["larger"][1] > results["paper 4x"][1]  # but not free


def test_ablation_link_bandwidth(benchmark):
    """Equation-1 regimes: the narrower the link, the bigger the win."""

    def run():
        speedups = []
        for bw in (1.0 * GB, 3.0 * GB, 16.0 * GB):
            config = SystemConfig(
                bw_d2h=bw,
                bw_host_storage=min(1.6 * GB, bw),
            )
            workload = get_workload("tpch_q6")
            baseline = run_c_baseline(workload.program, workload.dataset, config=config)
            report = ActivePy(config).run(workload.program, workload.dataset)
            speedups.append((bw, baseline.total_seconds / report.total_seconds))
        return speedups

    speedups = run_once(benchmark, run)
    print("\n\nABLATION — device-to-host bandwidth vs ISP profit")
    print(format_table(
        ["bw_d2h", "ActivePy speedup"],
        [[f"{bw / GB:.0f} GB/s", f"{s:.3f}x"] for bw, s in speedups],
    ))
    # Narrow link -> big win; a link as rich as the internal bus erases
    # the data-movement advantage and the profit shrinks toward 1.
    ordered = [s for _, s in speedups]
    assert ordered[0] >= ordered[-1]
    assert ordered[0] > 1.25


def test_ablation_attachment(benchmark):
    """PCIe BAR mapping vs NVMe-oF/RDMA fabric attachment."""

    def run():
        rows = []
        for attachment in ("pcie", "nvmeof"):
            config = SystemConfig(attachment=attachment)
            speedups = []
            for name in ABLATION_WORKLOADS:
                workload = get_workload(name)
                baseline = run_c_baseline(
                    workload.program, workload.dataset, config=config
                )
                report = ActivePy(config).run(workload.program, workload.dataset)
                speedups.append(baseline.total_seconds / report.total_seconds)
            rows.append((attachment, geometric_mean(speedups)))
        return rows

    rows = run_once(benchmark, run)
    print("\n\nABLATION — attachment")
    print(format_table(
        ["attachment", "geomean speedup"],
        [[name, f"{value:.3f}x"] for name, value in rows],
    ))
    pcie, nvmeof = rows[0][1], rows[1][1]
    assert nvmeof <= pcie          # the fabric hop costs something
    assert nvmeof > 0.95 * pcie    # but bulk bandwidth dominates


def test_ablation_execution_model(benchmark):
    """Sequential vs overlapped (double-buffered) chunk execution."""

    def run():
        rows = []
        for overlap in (False, True):
            config = SystemConfig(overlap_io_compute=overlap)
            speedups = []
            for name in ABLATION_WORKLOADS:
                workload = get_workload(name)
                baseline = run_c_baseline(
                    workload.program, workload.dataset, config=config
                )
                report = ActivePy(config).run(workload.program, workload.dataset)
                speedups.append(baseline.total_seconds / report.total_seconds)
            rows.append((
                "overlapped" if overlap else "sequential",
                geometric_mean(speedups),
            ))
        return rows

    rows = run_once(benchmark, run)
    print("\n\nABLATION — execution model (ISP speedup)")
    print(format_table(
        ["chunk model", "geomean speedup"],
        [[name, f"{value:.3f}x"] for name, value in rows],
    ))
    sequential, overlapped = rows[0][1], rows[1][1]
    # Overlap hides compute behind I/O on *both* sides; the host hides
    # more (its I/O is slower), so the ISP margin narrows but holds.
    assert overlapped > 1.0
    assert overlapped <= sequential + 0.05


def test_ablation_monitor_threshold(benchmark):
    """IPC watchdog sensitivity under the Fig. 5 stress scenario."""

    def run():
        rows = []
        workload_name = "tpch_q6"
        for threshold in (0.5, 0.7, 0.95):
            config = SystemConfig(ipc_degradation_threshold=threshold)
            workload = get_workload(workload_name)
            baseline = run_c_baseline(
                workload.program, workload.dataset, config=config
            )
            report = ActivePy(config).run(
                workload.program, workload.dataset,
                progress_triggers=[(0.5, 0.1)],
            )
            rows.append((
                threshold,
                baseline.total_seconds / report.total_seconds,
                len(report.result.migrations),
            ))
        return rows

    rows = run_once(benchmark, run)
    print("\n\nABLATION — monitor IPC threshold (10% stress at 50% progress)")
    print(format_table(
        ["threshold", "speedup vs baseline", "migrations"],
        [[f"{t:.2f}", f"{s:.3f}x", m] for t, s, m in rows],
    ))
    # A 90% availability drop trips every threshold; all recover.
    assert all(m >= 1 for _, _, m in rows)
    assert all(s > 0.8 for _, s, _ in rows)
