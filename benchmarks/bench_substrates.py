"""Substrate microbenchmarks: the simulator itself must stay cheap.

These are engineering benchmarks (pytest-benchmark statistics matter
here, unlike the deterministic figure benches): event-queue throughput,
FTL garbage-collection churn, allocator operations, and one full
sampling phase.
"""

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.memory.allocator import FreeListAllocator
from repro.runtime.sampling import SamplingPhase
from repro.sim.engine import Simulator
from repro.storage.ftl import PageMappingFTL
from repro.storage.nand import FlashArray, FlashGeometry
from repro.workloads import get_workload


def test_event_queue_throughput(benchmark):
    def schedule_and_drain():
        sim = Simulator()
        for i in range(2000):
            sim.schedule_at(float(i % 97), lambda: None)
        sim.run_all()
        return sim.events_fired

    fired = benchmark(schedule_and_drain)
    assert fired == 2000


def test_ftl_churn_with_gc(benchmark):
    def churn():
        array = FlashArray(FlashGeometry(
            channels=2, blocks_per_channel=8, pages_per_block=32,
        ))
        ftl = PageMappingFTL(array, overprovision_fraction=0.3)
        for i in range(2000):
            ftl.write(i % ftl.logical_pages)
        return ftl.gc_runs

    gc_runs = benchmark(churn)
    assert gc_runs > 0


def test_allocator_churn(benchmark):
    def churn():
        allocator = FreeListAllocator(base=0, capacity=1 << 20)
        live = []
        for i in range(1500):
            if i % 3 == 2 and live:
                allocator.free(live.pop(0))
            else:
                live.append(allocator.allocate(256 + (i % 7) * 64))
        return allocator.live_allocations

    live = benchmark(churn)
    assert live > 0


def test_sampling_phase_cost(benchmark):
    # One full sampling pass over a real workload: four sample builds,
    # real kernel execution, twelve curve fits.
    workload = get_workload("tpch_q6")

    def sample():
        return SamplingPhase(DEFAULT_CONFIG).run(
            workload.program, workload.dataset
        )

    report = benchmark.pedantic(sample, rounds=1, iterations=1)
    assert report.sampling_seconds > 0


def test_spmv_kernel_throughput(benchmark):
    from repro.graph.csr import csr_from_edges
    from repro.graph.pagerank_core import spmv

    rng = np.random.default_rng(17)
    n = 50_000
    src = rng.integers(0, n, size=8 * n)
    dst = rng.integers(0, n, size=8 * n)
    matrix = csr_from_edges(src, dst, n_rows=n)
    x = rng.random(n)
    y = benchmark(spmv, matrix, x)
    assert y.shape == (n,)
