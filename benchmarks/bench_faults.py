"""Fault-tolerance machinery: recovery works and costs ~nothing idle.

Two claims, both deterministic:

* **No-fault overhead.** With the retry/deadline layer active and a
  fault plan armed whose faults never fire, the simulated end-to-end
  time is *identical* to a plain run — the recovery machinery sits
  entirely off the hot path until something actually fails.
* **Recovery cost.** A mid-run CSE crash completes host-side (degraded)
  rather than raising; the extra time is the replayed chunk plus the
  host's slower finish, all visible in the fault-event log.
"""

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.runtime.activepy import ActivePy
from repro.workloads import get_workload

from .conftest import run_once, write_bench_json

_SCALE = 2 ** -4


def _run(fault_plan=None):
    workload = get_workload("tpch_q6", scale=_SCALE)
    report = ActivePy().run(
        workload.program, workload.dataset, fault_plan=fault_plan
    )
    return report


def test_no_fault_overhead(benchmark):
    plain = _run()
    # Armed but never firing: every fault lands far beyond the run.
    idle_plan = FaultPlan((
        FaultSpec(kind=FaultKind.CSE_CRASH, at_time=1e6, duration_s=1.0),
        FaultSpec(kind=FaultKind.NVME_COMPLETION_LOSS, at_time=1e6 + 1),
        FaultSpec(kind=FaultKind.NAND_READ_UNCORRECTABLE, at_time=1e6 + 2),
    ))
    armed = run_once(benchmark, lambda: _run(fault_plan=idle_plan))

    overhead = armed.total_seconds / plain.total_seconds - 1.0
    print("\n\nfault-tolerance layer, no fault firing")
    print(f"plain executor : {plain.total_seconds:.6f} s")
    print(f"armed injector : {armed.total_seconds:.6f} s "
          f"({overhead * 100:+.4f}%)")

    write_bench_json("faults", {
        "no_fault_overhead": {
            "plain_seconds": plain.total_seconds,
            "armed_seconds": armed.total_seconds,
            "overhead_fraction": overhead,
        },
    }, meta={"workload": "tpch_q6", "scale": _SCALE})

    # The simulator is deterministic: armed-but-idle must be exact.
    assert armed.total_seconds == plain.total_seconds
    assert not armed.result.degraded
    assert armed.result.fault_events == []


def test_crash_recovery_cost(benchmark):
    plain = _run()
    crash_time = plain.overhead_seconds + plain.execution_seconds * 0.5
    crash_plan = FaultPlan((
        FaultSpec(kind=FaultKind.CSE_CRASH, at_time=crash_time, duration_s=1e3),
    ))
    crashed = run_once(benchmark, lambda: _run(fault_plan=crash_plan))

    slowdown = crashed.total_seconds / plain.total_seconds
    print("\n\nmid-run CSE crash (no self-reset): host fallback")
    print(f"healthy run    : {plain.total_seconds:.6f} s")
    print(f"crashed run    : {crashed.total_seconds:.6f} s "
          f"({slowdown:.2f}x, degraded={crashed.result.degraded})")
    for event in crashed.result.fault_events:
        print(f"  {event.render()}")

    write_bench_json("faults", {
        "crash_recovery": {
            "healthy_seconds": plain.total_seconds,
            "crashed_seconds": crashed.total_seconds,
            "slowdown": slowdown,
            "degraded": crashed.result.degraded,
            "actions": [event.action for event in crashed.result.fault_events],
        },
    }, meta={"workload": "tpch_q6", "scale": _SCALE})

    assert crashed.result.degraded
    assert crashed.total_seconds > plain.total_seconds
    actions = [event.action for event in crashed.result.fault_events]
    assert "host-fallback" in actions
