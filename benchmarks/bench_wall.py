"""The performance layer's wall-clock wins (``BENCH_wall.json``).

Unlike the other bench modules, this one reports **host** wall time,
not simulated seconds: it proves the profile/plan cache and the
parallel campaign runner actually remove wall-clock work while leaving
simulated results bit-identical (the wallbench drivers raise if a warm
or parallel run changes a simulated number or an outcome).

Raw wall seconds are machine-dependent, so the perf gate checks only
the dimensionless fractions (warm/cold, layer/baseline) with generous
tolerances.  The assertions here enforce the headline claims directly:
a warm ``ActivePy.run`` and a campaign under the full layer are each
at least ~3x faster than the pre-layer baseline.
"""

from pathlib import Path

from repro.wallbench import (
    WARM_WORKLOADS,
    bench_engine_microbench,
    bench_parallel_campaign,
    bench_warm_run,
    write_wall_bench,
)

from .conftest import run_once

_REPO_ROOT = Path(__file__).resolve().parents[1]


def test_warm_run_speedup(benchmark):
    warm_runs = {}
    for name in WARM_WORKLOADS[1:]:
        warm_runs[name] = bench_warm_run(name)
    headline_name = WARM_WORKLOADS[0]
    warm_runs[headline_name] = run_once(
        benchmark, lambda: bench_warm_run(headline_name)
    )
    headline = warm_runs[headline_name]

    print("\n\nprofile cache: repeat ActivePy.run, best-of-3 wall time")
    for name, row in warm_runs.items():
        print(f"{name:<14} {row['cold_wall_seconds'] * 1e3:7.1f} ms cold -> "
              f"{row['warm_wall_seconds'] * 1e3:7.1f} ms warm "
              f"({row['speedup']:.2f}x)")

    write_wall_bench(
        {"warm_run": {**headline, "per_workload": warm_runs}},
        root=_REPO_ROOT, merge=True,
    )
    # The tentpole claim: a warm run skips sampling+fitting entirely.
    assert headline["speedup"] >= 3.0


def test_parallel_campaign_speedup(benchmark):
    campaign = run_once(benchmark, bench_parallel_campaign)

    print(f"\n\nchaos campaign: {campaign['runs']} run(s), "
          f"workers={campaign['workers']} + profile cache "
          f"vs. serial, cache off")
    print(f"serial baseline : {campaign['serial_wall_seconds']:.2f} s")
    print(f"perf layer      : {campaign['parallel_wall_seconds']:.2f} s "
          f"({campaign['speedup']:.2f}x)")

    write_wall_bench({"parallel_campaign": campaign},
                     root=_REPO_ROOT, merge=True)
    assert campaign["outcomes_identical"]
    assert campaign["campaign_ok"]
    # The layer (cache + workers) must beat the pre-layer serial loop.
    assert campaign["speedup"] >= 3.0


def test_engine_microbench_speedup(benchmark):
    micro = run_once(benchmark, bench_engine_microbench)

    print(f"\n\nevent engine: {micro['events']} event(s) scheduled + drained, "
          f"best-of-3 wall time")
    print(f"object engine : {micro['object_events_per_second'] / 1e6:.2f} M events/s")
    print(f"array engine  : {micro['array_events_per_second'] / 1e6:.2f} M events/s "
          f"({micro['speedup']:.2f}x)")

    write_wall_bench({"engine_microbench": micro},
                     root=_REPO_ROOT, merge=True)
    # The tentpole claim: struct-of-arrays storage + batched firing
    # make the event engine at least 5x faster than the heap of
    # Event objects it replaced.
    assert micro["speedup"] >= 5.0
