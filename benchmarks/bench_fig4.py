"""Figure 4: ActivePy vs programmer-directed static ISP.

Paper bars: per-application speedup over the no-ISP C baseline; the
averages are 1.34x (ActivePy) vs 1.33x (programmer-directed), with
ActivePy finding exactly the oracle's code regions.
"""

from repro.analysis.experiments import run_fig4
from repro.analysis.report import ascii_bar_chart, format_table

from .conftest import run_once


def test_fig4_activepy_vs_static(benchmark):
    result = run_once(benchmark, run_fig4)
    print("\n\nFIGURE 4 — speedup over C baseline (no ISP)")
    print(format_table(
        ["application", "baseline (s)", "static ISP", "ActivePy", "same regions"],
        [
            [row.name, f"{row.baseline_seconds:.2f}",
             f"{row.static_speedup:.3f}x", f"{row.activepy_speedup:.3f}x",
             "yes" if row.same_regions else "no (CSR)"]
            for row in result.rows
        ],
    ))
    print(
        f"\ngeomean: static {result.static_geomean:.3f}x, "
        f"ActivePy {result.activepy_geomean:.3f}x "
        f"(paper: 1.33x / 1.34x)"
    )
    print("\n" + ascii_bar_chart(
        [row.name for row in result.rows],
        [row.activepy_speedup for row in result.rows],
    ))

    assert abs(result.static_geomean - 1.33) < 0.08
    assert result.activepy_geomean > 1.20
