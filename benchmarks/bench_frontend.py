"""Frontend microbenchmarks: lowering cost and end-to-end parity.

The frontend must stay cheap (AST lowering happens at program-build
time) and its generated programs must behave like hand-built ones.
"""

import numpy as np

from repro.config import DEFAULT_CONFIG
from repro.frontend import program_from_function
from repro.lang.dataset import Dataset
from repro.runtime.activepy import ActivePy
from repro.baselines import run_c_baseline

from .conftest import run_once


def _ticks(n, full=None):
    rng = np.random.default_rng(47)
    return {
        "prices": rng.uniform(5.0, 500.0, size=n),
        "volumes": rng.uniform(0.0, 400.0, size=n),
    }


def _trading(prices, volumes):
    notional = (prices * volumes).astype(np.float32)
    active = notional[volumes > 150.0]
    return float(np.sum(active))


def test_lowering_speed(benchmark):
    program = benchmark(
        program_from_function, _trading, 16.0,
    )
    assert len(program) == 3


def test_frontend_program_end_to_end(benchmark):
    def run():
        program = program_from_function(
            _trading, record_bytes=16.0, probe_payload=_ticks(8192),
            instr_hints={"L0_notional": 12.0, "L1_active": 12.0,
                         "L2_return": 4.0},
        )
        dataset = Dataset("ticks", 400_000_000, 16.0, _ticks)
        baseline = run_c_baseline(program, dataset, config=DEFAULT_CONFIG)
        report = ActivePy(DEFAULT_CONFIG).run(program, dataset)
        return baseline.total_seconds / report.total_seconds

    speedup = run_once(benchmark, run)
    print(f"\n\nplain-Python pipeline ISP speedup: {speedup:.2f}x")
    assert speedup > 1.2
