"""Equation 1 / Algorithm 1 microbenchmarks.

Not a paper figure, but the machinery every figure rests on: how fast
the planner runs, and that the greedy matches the exhaustive oracle on
the actual evaluation programs (which is what makes the Fig. 4
"identified exactly the same set" result possible).
"""

from repro.baselines.static_isp import exhaustive_best_plan, ground_truth_estimates
from repro.config import DEFAULT_CONFIG
from repro.runtime.planner import assign_csd_code
from repro.workloads import get_workload


def test_algorithm1_speed(benchmark):
    workload = get_workload("mixedgemm")
    estimates = ground_truth_estimates(
        workload.program, workload.n_records, DEFAULT_CONFIG
    )
    plan = benchmark(assign_csd_code, estimates, DEFAULT_CONFIG)
    assert plan.t_csd <= plan.t_host


def test_exhaustive_search_speed(benchmark):
    workload = get_workload("mixedgemm")
    estimates = ground_truth_estimates(
        workload.program, workload.n_records, DEFAULT_CONFIG
    )
    plan = benchmark(exhaustive_best_plan, estimates, DEFAULT_CONFIG)
    assert plan.t_csd <= plan.t_host


def test_greedy_matches_oracle_on_all_non_csr_workloads(benchmark):
    names = [
        "blackscholes", "kmeans", "lightgbm", "matrixmul", "mixedgemm",
        "tpch_q1", "tpch_q6", "tpch_q14",
    ]

    def run():
        mismatches = []
        for name in names:
            workload = get_workload(name)
            estimates = ground_truth_estimates(
                workload.program, workload.n_records, DEFAULT_CONFIG
            )
            greedy = assign_csd_code(estimates, DEFAULT_CONFIG)
            oracle = exhaustive_best_plan(estimates, DEFAULT_CONFIG)
            if greedy.assignments != oracle.assignments:
                mismatches.append(name)
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n\ngreedy == exhaustive for: {sorted(set(names) - set(mismatches))}")
    assert not mismatches
