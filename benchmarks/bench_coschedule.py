"""Co-located tenants on one CSD (the Figure 5 situation, symmetric).

Not a paper figure per se — the paper stresses one program with a
synthetic co-tenant — but the situation it simulates: "the CSD must
load multiple tasks".  Two real queries share the engine at a fair 50%;
the table shows what co-location costs each of them and whether
ActivePy moved anyone out of the way.
"""

from repro.analysis.report import format_table
from repro.runtime.coschedule import coschedule_pair
from repro.workloads import get_workload

from .conftest import run_once


def test_coscheduled_tenants(benchmark):
    def run():
        q6 = get_workload("tpch_q6")
        q14 = get_workload("tpch_q14")
        return coschedule_pair(
            (q6.program, q6.dataset),
            (q14.program, q14.dataset),
        )

    result = run_once(benchmark, run)
    print("\n\nCO-SCHEDULING — two tenants, one CSD, fair 50% share")
    rows = []
    for index, name in enumerate(("tpch_q6", "tpch_q14")):
        rows.append([
            name,
            f"{result.solo[index].total_seconds:.2f}s",
            f"{result.shared[index].total_seconds:.2f}s",
            f"{result.slowdown(index):.3f}x",
            result.migrations[index],
        ])
    print(format_table(
        ["tenant", "solo", "co-located", "slowdown", "migrations"], rows,
    ))
    assert result.slowdown(0) < 2.0 and result.slowdown(1) < 2.0
