"""End-to-end integrity layer cost: free when off, priced when on.

Three deterministic claims:

* **Disabled means free — exactly.**  With ``integrity_enabled=False``
  (the default), a run under active silent corruption takes the *same*
  simulated time as the fault-free baseline, to the last bit.  The
  corruption still reaches the report (the digest changes), which is
  the point: silence costs nothing and protects nothing.
* **Protection has a bounded, attributable price.**  Enabling the layer
  on a fault-free run adds exactly ``verified_bytes /
  integrity_verify_bandwidth`` seconds, all charged to the
  ``integrity`` component — no hidden cost anywhere else.
* **Detection recovers to a clean report.**  Under seeded silent
  corruption with the layer on, every taint is detected and healed by
  chunk replay; the final digest is ``CLEAN_DIGEST`` and the recovery
  penalty is the replayed work.
"""

import dataclasses

from repro.config import DEFAULT_CONFIG
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.integrity import CLEAN_DIGEST
from repro.runtime.activepy import ActivePy
from repro.workloads import get_workload

from .conftest import run_once, write_bench_json

_SCALE = 2 ** -4

_ENABLED = dataclasses.replace(DEFAULT_CONFIG, integrity_enabled=True)


def _run(config=DEFAULT_CONFIG, fault_plan=None):
    workload = get_workload("tpch_q6", scale=_SCALE)
    return ActivePy(config).run(
        workload.program, workload.dataset, fault_plan=fault_plan
    )


def _sdc_plan(baseline, count=2):
    return FaultPlan((
        FaultSpec(kind=FaultKind.NAND_SILENT_CORRUPTION,
                  at_time=0.5 * baseline.total_seconds, count=count),
    ))


def test_disabled_overhead_is_exactly_zero(benchmark):
    clean = _run()
    corrupted = run_once(benchmark, lambda: _run(fault_plan=_sdc_plan(clean)))

    print("\n\nintegrity disabled, silent NAND corruption in flight")
    print(f"fault-free : {clean.total_seconds:.6f} s digest "
          f"{clean.result.output_digest}")
    print(f"corrupted  : {corrupted.total_seconds:.6f} s digest "
          f"{corrupted.result.output_digest}")

    write_bench_json("integrity", {
        "disabled_overhead": {
            "clean_seconds": clean.total_seconds,
            "corrupted_seconds": corrupted.total_seconds,
            "overhead_seconds": corrupted.total_seconds - clean.total_seconds,
            "digest_changed":
                corrupted.result.output_digest != clean.result.output_digest,
        },
    }, meta={"workload": "tpch_q6", "scale": _SCALE})

    # The layer is off and the fault is silent: the simulator must
    # charge nothing — equality, not a tolerance.
    assert corrupted.total_seconds == clean.total_seconds
    assert clean.result.output_digest == CLEAN_DIGEST
    assert corrupted.result.output_digest != CLEAN_DIGEST


def test_protection_cost_is_the_verify_bandwidth(benchmark):
    off = _run()
    on = run_once(benchmark, lambda: _run(_ENABLED))

    stats = on.result.integrity_stats
    overhead = on.total_seconds - off.total_seconds
    expected = stats["verified_bytes"] / _ENABLED.integrity_verify_bandwidth
    print("\n\nintegrity enabled, fault-free run")
    print(f"off : {off.total_seconds:.6f} s")
    print(f"on  : {on.total_seconds:.6f} s "
          f"(+{overhead:.6f} s for {stats['verified_bytes']:.0f} B)")

    write_bench_json("integrity", {
        "protection_cost": {
            "disabled_seconds": off.total_seconds,
            "enabled_seconds": on.total_seconds,
            "overhead_seconds": overhead,
            "verified_bytes": stats["verified_bytes"],
            "verify_seconds": stats["verify_seconds"],
        },
    }, meta={"workload": "tpch_q6", "scale": _SCALE})

    assert stats["verified_bytes"] > 0
    # Every verify second is accounted: the end-to-end stretch is the
    # digest-check time and nothing else.
    assert abs(overhead - stats["verify_seconds"]) < 1e-9
    assert abs(overhead - expected) < 1e-9


def test_detection_and_recovery(benchmark):
    clean = _run(_ENABLED)
    corrupted = run_once(
        benchmark, lambda: _run(_ENABLED, fault_plan=_sdc_plan(clean))
    )

    stats = corrupted.result.integrity_stats
    penalty = corrupted.total_seconds - clean.total_seconds
    print("\n\nintegrity enabled, silent NAND corruption in flight")
    print(f"fault-free : {clean.total_seconds:.6f} s")
    print(f"corrupted  : {corrupted.total_seconds:.6f} s "
          f"(+{penalty:.6f} s, {stats['detected']} detected, "
          f"{corrupted.result.chunk_replays} replays)")

    write_bench_json("integrity", {
        "detection_recovery": {
            "clean_seconds": clean.total_seconds,
            "corrupted_seconds": corrupted.total_seconds,
            "recovery_seconds": penalty,
            "detected": stats["detected"],
            "missed": stats["missed"],
            "chunk_replays": corrupted.result.chunk_replays,
        },
    }, meta={"workload": "tpch_q6", "scale": _SCALE})

    assert stats["detected"] >= 1
    assert stats["missed"] == 0
    assert corrupted.result.output_digest == CLEAN_DIGEST
    # Recovery costs replayed work: strictly slower than fault-free,
    # never faster.
    assert corrupted.total_seconds > clean.total_seconds
