"""Checkpoint protocol cost: free when idle, bounded when recovering.

Three deterministic claims:

* **Zero overhead at defaults.** Checkpoint records ride the status-
  update page (``checkpoint_write_cost_s = 0``), so a fault-free run
  with checkpointing enabled is *exactly* as fast as one with it
  disabled — the protocol buys crash consistency for nothing on the
  happy path.
* **Priced writes scale linearly.** Sweeping a nonzero per-record write
  cost stretches the run by (saves x cost), no more — checkpointing
  never changes what executes, only what each boundary charges.
* **Torn-write recovery is bounded.** Tearing every record before a
  permanent crash still completes degraded, and the penalty over a
  clean crash-recovery run is the replayed work, not a corrupt resume.
"""

import dataclasses

from repro.config import DEFAULT_CONFIG
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.runtime.activepy import ActivePy
from repro.workloads import get_workload

from .conftest import run_once, write_bench_json

_SCALE = 2 ** -4


def _run(config=DEFAULT_CONFIG, fault_plan=None):
    workload = get_workload("tpch_q6", scale=_SCALE)
    return ActivePy(config).run(
        workload.program, workload.dataset, fault_plan=fault_plan
    )


def test_checkpoint_overhead_disabled_vs_enabled(benchmark):
    disabled = _run(dataclasses.replace(DEFAULT_CONFIG, checkpoint_enabled=False))
    enabled = run_once(benchmark, _run)

    saves = enabled.result.checkpoint_stats["saves"]
    print("\n\nline-boundary checkpointing, fault-free run")
    print(f"disabled : {disabled.total_seconds:.6f} s (0 records)")
    print(f"enabled  : {enabled.total_seconds:.6f} s ({saves} records)")

    write_bench_json("checkpoint", {
        "fault_free_overhead": {
            "disabled_seconds": disabled.total_seconds,
            "enabled_seconds": enabled.total_seconds,
            "saves": saves,
            "overhead_seconds": enabled.total_seconds - disabled.total_seconds,
        },
    }, meta={"workload": "tpch_q6", "scale": _SCALE})

    # The record rides the existing status-update page: the default
    # write cost is zero and the simulator is deterministic, so the
    # overhead must be *exactly* zero.
    assert enabled.total_seconds == disabled.total_seconds
    assert saves > 0


def test_checkpoint_write_cost_sweep(benchmark):
    free = run_once(benchmark, _run)
    saves = free.result.checkpoint_stats["saves"]

    rows = []
    print("\n\npriced checkpoint writes (sweep)")
    print(f"{'cost/record':>12} {'total':>12} {'stretch':>10}")
    for cost in (1e-6, 1e-5, 1e-4):
        priced = _run(dataclasses.replace(
            DEFAULT_CONFIG, checkpoint_write_cost_s=cost
        ))
        stretch = priced.total_seconds - free.total_seconds
        rows.append({
            "write_cost_s": cost,
            "total_seconds": priced.total_seconds,
            "stretch_seconds": stretch,
            "saves": priced.result.checkpoint_stats["saves"],
        })
        print(f"{cost:>12.0e} {priced.total_seconds:>12.6f} {stretch:>10.6f}")
        # the stretch is exactly (saves x cost): nothing else changes
        assert abs(stretch - priced.result.checkpoint_stats["saves"] * cost) < 1e-9

    write_bench_json("checkpoint", {
        "write_cost_sweep": {"free_seconds": free.total_seconds,
                             "free_saves": saves, "rows": rows},
    }, meta={"workload": "tpch_q6", "scale": _SCALE})


def test_torn_write_recovery_cost(benchmark):
    plain = _run()
    crash_time = plain.overhead_seconds + plain.execution_seconds * 0.5
    crash_only = FaultPlan((
        FaultSpec(kind=FaultKind.CSE_CRASH, at_time=crash_time, duration_s=0.0),
    ))
    torn_and_crash = FaultPlan((
        FaultSpec(kind=FaultKind.CHECKPOINT_TORN_WRITE,
                  at_time=plain.overhead_seconds, count=100_000),
        FaultSpec(kind=FaultKind.CSE_CRASH, at_time=crash_time, duration_s=0.0),
    ))
    crashed = _run(fault_plan=crash_only)
    torn = run_once(benchmark, lambda: _run(fault_plan=torn_and_crash))

    print("\n\ntorn checkpoint writes + permanent crash")
    print(f"healthy            : {plain.total_seconds:.6f} s")
    print(f"crash, records ok  : {crashed.total_seconds:.6f} s")
    print(f"crash, all torn    : {torn.total_seconds:.6f} s "
          f"(stats {torn.result.checkpoint_stats})")

    write_bench_json("checkpoint", {
        "torn_write_recovery": {
            "healthy_seconds": plain.total_seconds,
            "crash_clean_records_seconds": crashed.total_seconds,
            "crash_torn_records_seconds": torn.total_seconds,
            "checkpoint_stats": torn.result.checkpoint_stats,
        },
    }, meta={"workload": "tpch_q6", "scale": _SCALE})

    assert torn.result.degraded
    assert torn.result.checkpoint_stats["torn_writes"] > 0
    # CRC + double buffer: torn records cost replayed work at worst —
    # the run completes no faster than the clean-record crash run
    # (skipping work would be the corruption the protocol prevents).
    assert torn.total_seconds >= crashed.total_seconds
    program = get_workload("tpch_q6", scale=_SCALE).program
    for index, statement in enumerate(program):
        assert torn.result.chunks_executed[index] >= statement.chunks
