"""Observability: free when disabled, cheap when enabled.

Four claims:

* **Disabled overhead is exactly zero.**  No metric or span ever
  advances the simulated clock, so a run on a default (obs-disabled)
  machine and a run with metrics + tracing enabled report bit-identical
  simulated ``total_seconds`` — not approximately, exactly.
* **Enabled overhead is small wall-clock.**  With counters, gauges,
  histograms and the span tracer all live, the wall-clock cost across
  the workload rotation stays under 5%.
* **Attribution is exact and free.**  With per-component time
  attribution live, simulated time stays bit-identical, and the
  attributed seconds sum to the run's total *exactly* (residual 0.0)
  on every workload in the rotation.
* **The flight recorder is free in simulated time.**  A 4-CSD fleet
  run with the time-series recorder attached reports a bit-identical
  makespan and per-job signatures versus a recorder-less run
  (simulated overhead exactly 0.0, gated), and costs <5% wall clock.
"""

import math
import time

from repro.config import DEFAULT_CONFIG
from repro.fleet import Fleet, FleetConfig, ProfileStore
from repro.obs import Observability, build_critical_path
from repro.runtime.activepy import ActivePy, RunOptions
from repro.workloads import get_workload

from .conftest import run_once, write_bench_json

_SCALE = 2 ** -5
_ROTATION = ("tpch_q6", "kmeans", "blackscholes", "pagerank")
_REPS = 3

_FLEET_SCALE = 2 ** -6
_FLEET_JOBS = 24


def _run(name, obs=None):
    workload = get_workload(name, scale=_SCALE)
    # Cache off: the <5% overhead claim is about full (sampled) runs;
    # a warm profile cache would shrink the denominator to almost
    # nothing and turn this into a measurement of the tracer alone.
    return ActivePy(profile_cache=False).run(
        workload.program, workload.dataset, options=RunOptions(obs=obs),
    )


def _best_wall(name, make_obs):
    best = float("inf")
    for _ in range(_REPS):
        started = time.perf_counter()
        _run(name, obs=make_obs())
        best = min(best, time.perf_counter() - started)
    return best


def test_obs_overhead(benchmark):
    per_workload = {}
    disabled_wall = enabled_wall = 0.0
    for name in _ROTATION:
        plain = _run(name)
        observed = _run(name, obs=Observability.with_tracing())
        # The zero-overhead contract: bit-identical simulated time.
        assert observed.total_seconds == plain.total_seconds
        off = _best_wall(name, lambda: None)
        on = _best_wall(name, Observability.with_tracing)
        disabled_wall += off
        enabled_wall += on
        per_workload[name] = {
            "sim_seconds": plain.total_seconds,
            "sim_overhead_seconds": observed.total_seconds - plain.total_seconds,
            "disabled_wall_seconds": off,
            "enabled_wall_seconds": on,
        }

    run_once(benchmark, lambda: _run(_ROTATION[0],
                                     obs=Observability.with_tracing()))

    wall_overhead = enabled_wall / disabled_wall - 1.0
    print("\n\nobservability overhead across the rotation")
    for name, row in per_workload.items():
        print(f"{name:<13} sim {row['sim_seconds']:.6f} s "
              f"(obs-on delta {row['sim_overhead_seconds']:+.1e} s)  "
              f"wall {row['disabled_wall_seconds']:.3f} s -> "
              f"{row['enabled_wall_seconds']:.3f} s")
    print(f"aggregate wall-clock overhead: {wall_overhead * 100:+.2f}%")

    write_bench_json("obs", {
        "scale": _SCALE,
        "per_workload": per_workload,
        # Exactly 0.0 by construction; asserted above per workload.
        "disabled_sim_overhead_seconds": sum(
            row["sim_overhead_seconds"] for row in per_workload.values()
        ),
        "enabled_wall_overhead_fraction": wall_overhead,
    }, meta={"workloads": list(_ROTATION), "reps": _REPS})

    assert all(
        row["sim_overhead_seconds"] == 0.0 for row in per_workload.values()
    )
    assert wall_overhead < 0.05


def test_attribution_identity(benchmark):
    """Attribution: bit-identical sim time, exact sum identity."""
    per_workload = {}
    residuals = []
    overheads = []
    for name in _ROTATION:
        plain = _run(name)
        obs = Observability.with_attribution()
        attributed = _run(name, obs=obs)
        # Attribution must never perturb simulated time.
        assert attributed.total_seconds == plain.total_seconds
        overheads.append(attributed.total_seconds - plain.total_seconds)
        path = build_critical_path(obs)
        report = path.attribution
        # The identity: every attributed nanosecond, once, exactly.
        assert report.residual == 0.0
        assert path.total_seconds == report.end - report.start
        residuals.append(report.residual)
        per_workload[name] = {
            "sim_seconds": attributed.total_seconds,
            "residual": report.residual,
            "seconds_by_component": report.seconds_by_component,
            "critical_path_steps": len(path.steps),
            "top_bottleneck": (
                report.rank_bottlenecks()[0][0]
                if report.rank_bottlenecks() else None
            ),
        }

    run_once(benchmark, lambda: _run(
        _ROTATION[0], obs=Observability.with_attribution()
    ))

    print("\n\nattribution identity across the rotation")
    for name, row in per_workload.items():
        shares = ", ".join(
            f"{component}={seconds:.6f}s"
            for component, seconds in row["seconds_by_component"].items()
        )
        print(f"{name:<13} residual {row['residual']:.1e}  {shares}")

    write_bench_json("obs", {
        "attribution": {
            "per_workload": per_workload,
            "identity_residual": math.fsum(residuals),
            "sim_overhead_seconds": math.fsum(overheads),
        },
    }, meta={"workloads": list(_ROTATION), "reps": _REPS})

    assert all(row["residual"] == 0.0 for row in per_workload.values())


def _run_fleet(obs=None):
    # A fresh ProfileStore per run: both arms pay identical inner
    # profiling work (the on-disk profile cache is prewarmed below, so
    # it is identically warm for both), keeping the wall comparison
    # about the recorder, not cache luck.
    store = ProfileStore(system_config=DEFAULT_CONFIG, scale=_FLEET_SCALE)
    config = FleetConfig(
        device_count=4, job_count=_FLEET_JOBS, seed=0, scale=_FLEET_SCALE,
    )
    return Fleet(config, profiles=store, obs=obs).run()


def test_timeseries_overhead(benchmark):
    """Flight recorder: zero simulated cost, <5% wall on a 4-CSD fleet."""
    _run_fleet()  # prewarm the on-disk profile cache for both arms

    plain = _run_fleet()
    recorded = _run_fleet(obs=Observability.with_timeseries())
    # The zero-overhead contract, at fleet scope: bit-identical
    # schedule and bit-identical per-job signatures.
    assert recorded.makespan_s == plain.makespan_s
    assert (
        [o.signature for o in recorded.outcomes]
        == [o.signature for o in plain.outcomes]
    )
    sim_overhead = recorded.makespan_s - plain.makespan_s

    disabled_wall = enabled_wall = float("inf")
    for _ in range(_REPS):
        started = time.perf_counter()
        _run_fleet()
        disabled_wall = min(disabled_wall, time.perf_counter() - started)
        started = time.perf_counter()
        _run_fleet(obs=Observability.with_timeseries())
        enabled_wall = min(enabled_wall, time.perf_counter() - started)
    wall_overhead = enabled_wall / disabled_wall - 1.0

    run_once(benchmark, lambda: _run_fleet(
        obs=Observability.with_timeseries()
    ))

    series_count = len(recorded.timeline["series"])
    print(f"\n\nflight-recorder overhead on a 4-CSD fleet "
          f"({_FLEET_JOBS} jobs, {series_count} series)")
    print(f"makespan {plain.makespan_s:.6f} s "
          f"(recorder-on delta {sim_overhead:+.1e} s)  "
          f"wall {disabled_wall:.3f} s -> {enabled_wall:.3f} s "
          f"({wall_overhead * 100:+.2f}%)")

    write_bench_json("obs", {
        "timeseries": {
            "device_count": 4,
            "job_count": _FLEET_JOBS,
            "scale": _FLEET_SCALE,
            "makespan_s": recorded.makespan_s,
            # Exactly 0.0 by construction; asserted above.
            "recorder_sim_overhead_seconds": sim_overhead,
            "enabled_wall_overhead_fraction": wall_overhead,
            "series_count": series_count,
            "alerts_fired": len(recorded.alerts),
        },
    }, meta={"workloads": list(_ROTATION), "reps": _REPS})

    assert sim_overhead == 0.0
    assert wall_overhead < 0.05
