"""Rack-scale fleet serving: scale-out throughput and failover cost.

Two deterministic claims about the fleet scheduler:

* **Near-linear scale-out.**  The same saturating open-loop traffic
  served by four CSDs finishes at >= 3x the jobs/s of one CSD — the
  multi-device speedup the in-storage processing story rests on.  The
  gated metric is the makespan *fraction* (four-device over
  one-device), so a scheduler regression that erodes the speedup fails
  the perf gate even though both absolute makespans are "max"-gated.
* **Failover is bounded, not free.**  Losing a busy device mid-job
  stretches the makespan (the interrupted job replays from its last
  checkpoint on a survivor, behind a backoff) but every admitted job
  still terminates and nothing is shed.  The stretched makespan is
  gated so recovery cost cannot silently grow.

Simulated seconds only: both claims replay exactly on any host.
"""

from repro.config import DEFAULT_CONFIG
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.fleet import Fleet, FleetConfig, ProfileStore, TenantSpec

from .conftest import run_once, write_bench_json

_SCALE = 2 ** -6
_JOBS = 24

#: One shared store: each distinct inner ActivePy run is paid for once
#: across every fleet in this module.
_STORE = ProfileStore(system_config=DEFAULT_CONFIG, scale=_SCALE)


def _tenant(rate=60.0):
    # A single saturating tenant: admission wide open so the devices,
    # not the front door, are the bottleneck.
    return TenantSpec(name="t", rate_jobs_per_s=rate, admission_rate=1000.0,
                      admission_burst=256, queue_limit=1024)


def _config(device_count, plan=FaultPlan(), seed=0):
    return FleetConfig(
        device_count=device_count,
        tenants=(_tenant(),),
        job_count=_JOBS,
        seed=seed,
        scale=_SCALE,
        overload_watermark=1000,
        plan=plan,
    )


def test_scale_out_throughput(benchmark):
    one = Fleet(_config(1), profiles=_STORE).run()
    four = run_once(
        benchmark, lambda: Fleet(_config(4), profiles=_STORE).run()
    )

    speedup = four.throughput_jobs_per_s / one.throughput_jobs_per_s
    fraction = four.makespan_s / one.makespan_s
    print("\n\nscale-out: identical saturating traffic, 1 vs 4 CSDs")
    print(f"1 device : {one.makespan_s:.6f} s "
          f"({one.throughput_jobs_per_s:.2f} jobs/s)")
    print(f"4 devices: {four.makespan_s:.6f} s "
          f"({four.throughput_jobs_per_s:.2f} jobs/s)  "
          f"speedup {speedup:.2f}x")

    write_bench_json("fleet", {
        "scale_out": {
            "job_count": _JOBS,
            "one_device_makespan_s": one.makespan_s,
            "four_device_makespan_s": four.makespan_s,
            "one_device_jobs_per_s": one.throughput_jobs_per_s,
            "four_device_jobs_per_s": four.throughput_jobs_per_s,
            "speedup": speedup,
            "fraction_of_one_device": fraction,
        },
    }, meta={"scale": _SCALE, "seed": 0})

    assert one.shed == 0 and four.shed == 0
    # The tentpole claim: near-linear multi-CSD scaling.
    assert speedup >= 3.0


def test_failover_penalty_is_bounded(benchmark):
    clean = Fleet(_config(4), profiles=_STORE).run()
    # Aim the loss at the midpoint of a dispatched job so the device is
    # guaranteed busy when it dies.
    victim = clean.outcomes[0]
    midpoint = (victim.first_dispatch_time + victim.finish_time) / 2.0
    plan = FaultPlan(specs=(FaultSpec(
        kind=FaultKind.DEVICE_LOST_MID_JOB,
        at_time=midpoint,
        target=victim.device,
    ),))
    lossy = run_once(
        benchmark, lambda: Fleet(_config(4, plan=plan), profiles=_STORE).run()
    )

    penalty = lossy.makespan_s - clean.makespan_s
    print("\n\ndevice loss mid-job on a 4-CSD fleet")
    print(f"fault-free : {clean.makespan_s:.6f} s")
    print(f"device lost: {lossy.makespan_s:.6f} s (+{penalty:.6f} s, "
          f"{lossy.degraded} degraded, {lossy.shed} shed)")

    write_bench_json("fleet", {
        "failover": {
            "clean_makespan_s": clean.makespan_s,
            "loss_makespan_s": lossy.makespan_s,
            "penalty_s": penalty,
            "degraded": lossy.degraded,
            "shed": lossy.shed,
        },
    }, meta={"scale": _SCALE, "seed": 0})

    # Every admitted job terminates; the loss degrades, never drops.
    assert lossy.completed + lossy.degraded == _JOBS
    assert lossy.shed == 0
    assert lossy.degraded >= 1
    # Recovery replays work behind a backoff: strictly slower than the
    # fault-free fleet, never faster.
    assert lossy.makespan_s > clean.makespan_s
