"""Table I: the applications and their input data sizes.

Paper row format: name + data size (5.3-9.4 GB across nine apps).
"""

from repro.analysis.experiments import run_table1
from repro.analysis.report import format_table
from repro.units import format_bytes

from .conftest import run_once


def test_table1(benchmark):
    rows = run_once(benchmark, run_table1)
    print("\n\nTABLE I — applications, input sizes, SESE code regions")
    print(format_table(
        ["application", "data size", "paper size", "code regions"],
        [
            [row.name, format_bytes(row.data_bytes),
             format_bytes(row.paper_bytes) if row.paper_bytes else "-",
             row.sese_regions]
            for row in rows
        ],
    ))
    assert len(rows) == 9
