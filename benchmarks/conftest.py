"""Shared machinery for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it runs the experiment driver under ``pytest-benchmark`` (one round —
the simulator is deterministic, so repetition only measures the
harness) and prints the same rows/series the paper reports.

Run everything with::

    pytest benchmarks/ --benchmark-only

Expensive experiment results are cached per session so a figure that
several benchmarks share is computed once.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Benchmark a deterministic experiment with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
