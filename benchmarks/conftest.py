"""Shared machinery for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it runs the experiment driver under ``pytest-benchmark`` (one round —
the simulator is deterministic, so repetition only measures the
harness) and prints the same rows/series the paper reports.

Run everything with::

    pytest benchmarks/ --benchmark-only

Expensive experiment results are cached per session so a figure that
several benchmarks share is computed once.
"""

from __future__ import annotations

import json
from pathlib import Path

#: Machine-readable benchmark results land next to the repo root as
#: ``BENCH_<name>.json`` so CI and scripts can diff them across runs.
_BENCH_DIR = Path(__file__).resolve().parents[1]


def run_once(benchmark, fn):
    """Benchmark a deterministic experiment with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def write_bench_json(name: str, payload: dict) -> Path:
    """Write one benchmark module's results as ``BENCH_<name>.json``.

    Modules accumulate into the same file across their tests (read,
    merge, rewrite), so a partial run still leaves valid JSON behind.
    """
    path = _BENCH_DIR / f"BENCH_{name}.json"
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    merged.update(payload)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path
