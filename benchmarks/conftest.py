"""Shared machinery for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper:
it runs the experiment driver under ``pytest-benchmark`` (one round —
the simulator is deterministic, so repetition only measures the
harness) and prints the same rows/series the paper reports.

Run everything with::

    pytest benchmarks/ --benchmark-only

Expensive experiment results are cached per session so a figure that
several benchmarks share is computed once.

Results are emitted twice: the canonical copy under ``bench_results/``
carries a ``schema_version`` 2 envelope with run metadata (config
hash, seed/workload details the module supplies), and a root-level
``BENCH_<name>.json`` keeps the pre-schema layout readable for older
scripts.  The perf gate (:mod:`repro.perfgate`) reads either.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Optional

from repro import __version__
from repro.config import DEFAULT_CONFIG

_REPO_ROOT = Path(__file__).resolve().parents[1]

#: Canonical results directory (schema v2, with metadata envelope).
_RESULTS_DIR = _REPO_ROOT / "bench_results"

#: Root-level ``BENCH_<name>.json`` files predate the schema and stay
#: byte-compatible for scripts that read them in place.
_BENCH_DIR = _REPO_ROOT

_SCHEMA_VERSION = 2

#: Envelope keys stripped before merging so a v1 file upgrades cleanly.
_ENVELOPE_KEYS = ("schema_version", "meta")


def config_hash() -> str:
    """A describable fingerprint of the default platform parameters.

    Two results files with the same hash were produced by the same
    simulated platform, so their simulated seconds are comparable
    exactly; a hash change flags that a baseline refresh reflects a
    deliberate model change rather than noise.
    """
    payload = json.dumps(
        dataclasses.asdict(DEFAULT_CONFIG), sort_keys=True, default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def run_once(benchmark, fn):
    """Benchmark a deterministic experiment with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def _merge_existing(path: Path, payload: dict) -> dict:
    merged: dict = {}
    if path.exists():
        try:
            merged = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            merged = {}
    for key in _ENVELOPE_KEYS:
        merged.pop(key, None)
    merged.update(payload)
    return merged


def write_bench_json(name: str, payload: dict, meta: Optional[dict] = None) -> Path:
    """Write one benchmark module's results.

    Modules accumulate into the same files across their tests (read,
    merge, rewrite), so a partial run still leaves valid JSON behind.
    ``meta`` carries run metadata (seed, workloads, scale...) into the
    schema-v2 envelope; identity metadata (config hash, version) is
    stamped automatically.  Returns the canonical (``bench_results/``)
    path.
    """
    root_path = _BENCH_DIR / f"BENCH_{name}.json"
    merged = _merge_existing(root_path, payload)
    root_path.write_text(
        json.dumps(merged, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    _RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    canonical = _RESULTS_DIR / f"BENCH_{name}.json"
    previous_meta: dict = {}
    if canonical.exists():
        try:
            previous_meta = json.loads(
                canonical.read_text(encoding="utf-8")
            ).get("meta", {})
        except (OSError, ValueError):
            previous_meta = {}
    envelope = {
        "schema_version": _SCHEMA_VERSION,
        "meta": {
            **previous_meta,
            "bench": name,
            "config_hash": config_hash(),
            "repro_version": __version__,
            **(meta or {}),
        },
        **merged,
    }
    canonical.write_text(
        json.dumps(envelope, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return canonical
