"""§V "ActivePy's capability in identifying and composing CSD code".

Paper claims: data-volume predictions are usually accurate (geometric
mean error 9% discounting outliers); the CSR conversions of
PageRank/SparseMV are the outliers, over-estimated by up to 2.41x —
always over, so the planner errs conservative and does no harm.
"""

from repro.analysis.experiments import run_csr_matrix_sweep, run_prediction_accuracy
from repro.analysis.report import format_table
from repro.units import format_bytes

from .conftest import run_once


def test_prediction_accuracy(benchmark):
    result = run_once(benchmark, run_prediction_accuracy)
    print("\n\n§V — per-line data-volume prediction vs ground truth")
    outliers = set(id(r) for r in result.outliers())
    print(format_table(
        ["workload", "line", "predicted", "actual", "ratio", "outlier"],
        [
            [row.workload, row.line,
             format_bytes(row.predicted_bytes), format_bytes(row.actual_bytes),
             f"{row.ratio:.2f}x", "yes" if id(row) in outliers else ""]
            for row in result.rows
            if row.actual_bytes > 1e6
        ],
    ))
    print(
        f"\ngeomean error excl. outliers: "
        f"{result.geomean_error_excluding_outliers() * 100:.1f}% (paper: 9%)"
    )
    print(
        f"max CSR over-estimate: {result.max_csr_overestimate():.2f}x "
        f"(paper: up to 2.41x); always over-estimated: "
        f"{result.csr_always_overestimated()} (paper: always)"
    )

    assert result.geomean_error_excluding_outliers() < 0.09
    assert 1.8 < result.max_csr_overestimate() < 3.0
    assert result.csr_always_overestimated()


def test_csr_matrix_sweep(benchmark):
    """§V: "experiments on different input matrices show that ActivePy
    always over-estimates the data volume after generating CSR"."""
    rows = run_once(benchmark, run_csr_matrix_sweep)
    print("\n\n§V — CSR prediction ratio across matrix families")
    print(format_table(
        ["avg degree", "alpha", "predicted", "actual", "ratio"],
        [[f"{r.avg_degree:.0f}", f"{r.alpha:.1f}",
          format_bytes(r.predicted_bytes), format_bytes(r.actual_bytes),
          f"{r.ratio:.2f}x"] for r in rows],
    ))
    print("\nalways over-estimated:", all(r.ratio > 1 for r in rows),
          "(paper: always; up to 2.41x)")
    assert all(r.ratio > 1.0 for r in rows)
    assert max(r.ratio for r in rows) < 3.5
