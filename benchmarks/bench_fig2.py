"""Figure 2: static C ISP speedup vs CSE availability.

Paper series: TPC-H 1/6/14 plans tuned at 100% availability, then run
as-is while the CSE is throttled — ~1.25x at 100%, performance loss
once availability drops through the mid-range, catastrophic at 10%.
"""

from repro.analysis.experiments import run_fig2
from repro.analysis.report import format_table

from .conftest import run_once


def test_fig2_availability_sweep(benchmark):
    result = run_once(benchmark, run_fig2)
    print("\n\nFIGURE 2 — static C ISP speedup vs CSE availability")
    headers = ["availability"] + list(result.series)
    rows = []
    for i, availability in enumerate(result.availabilities):
        rows.append(
            [f"{availability:.0%}"]
            + [f"{result.series[name][i]:.3f}x" for name in result.series]
        )
    print(format_table(headers, rows))
    print(f"\ngeomean at 100%: {result.mean_at(1.0):.3f}x (paper: ~1.25x)")
    for name in result.series:
        print(f"crossover({name}): below {result.crossover(name):.0%} availability")

    assert 1.15 < result.mean_at(1.0) < 1.45
    assert all(series[-1] < 0.35 for series in result.series.values())
