"""Assembled CSD: residency, data paths, GC-induced contention."""

import pytest

from repro.errors import StorageError
from repro.units import GB


class TestDatasetResidency:
    def test_store_and_query(self, machine):
        machine.csd.store_dataset("lineitem", 6.9 * GB)
        assert machine.csd.holds_dataset("lineitem")
        assert machine.csd.dataset_bytes("lineitem") == pytest.approx(6.9 * GB)

    def test_unknown_dataset(self, machine):
        assert not machine.csd.holds_dataset("nope")
        with pytest.raises(StorageError):
            machine.csd.dataset_bytes("nope")

    def test_capacity_enforced(self, machine):
        with pytest.raises(StorageError):
            machine.csd.store_dataset("huge", 3e12)  # > 2 TB

    def test_capacity_is_cumulative(self, machine):
        machine.csd.store_dataset("a", 1.5e12)
        with pytest.raises(StorageError):
            machine.csd.store_dataset("b", 0.6e12)

    def test_zero_size_rejected(self, machine):
        with pytest.raises(StorageError):
            machine.csd.store_dataset("empty", 0)


class TestDataPaths:
    def test_internal_read_uses_internal_bandwidth(self, config, machine):
        elapsed = machine.csd.internal_read(config.bw_internal)
        assert elapsed == pytest.approx(1.0)
        assert machine.now == pytest.approx(1.0)

    def test_internal_read_time_does_not_advance_clock(self, machine):
        t = machine.csd.internal_read_time(9 * GB)
        assert t > 0
        assert machine.now == 0.0

    def test_internal_path_faster_than_host_path(self, machine):
        nbytes = 1 * GB
        internal = machine.csd.internal_read_time(nbytes)
        host = machine.host_storage_link.transfer_time(nbytes)
        assert internal < host


class TestGcContention:
    def test_write_burst_can_trigger_gc_and_throttle_cse(self, machine):
        # Enough churn to force garbage collection on the small default
        # logical space slice we touch.
        pages = machine.csd.ftl.logical_pages
        burst = min(pages * 3, 60000)
        gc_time = machine.csd.inject_write_burst(burst)
        if gc_time > 0:
            assert machine.csd.cse.availability < 1.0
            # The throttle lifts after the GC busy period.
            machine.simulator.run_until(machine.now + gc_time + 1e-6)
            assert machine.csd.cse.availability == 1.0

    def test_small_burst_no_contention(self, machine):
        gc_time = machine.csd.inject_write_burst(4)
        assert gc_time == 0.0
        assert machine.csd.cse.availability == 1.0

    def test_invalid_burst(self, machine):
        with pytest.raises(StorageError):
            machine.csd.inject_write_burst(0)
