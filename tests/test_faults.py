"""Deterministic fault injection and the runtime's recovery from it."""

import pytest

from repro.errors import (
    DeviceLostError,
    FaultError,
    FlashError,
    UncorrectableMediaError,
)
from repro.faults import FaultInjector, FaultKind, FaultLog, FaultPlan, FaultSpec
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.storage.nand import FlashArray, FlashGeometry

from .conftest import make_toy_dataset, make_toy_program


def run_with_plan(config, plan, **kwargs):
    return ActivePy(config).run(
        make_toy_program(), make_toy_dataset(), fault_plan=plan, **kwargs
    )


class TestFaultSpecValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=-1.0)

    def test_link_degrade_needs_link_target(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at_time=0.0, target="csd",
                      duration_s=1.0, factor=0.5)

    def test_link_degrade_needs_degrading_factor(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at_time=0.0, target="d2h",
                      duration_s=1.0, factor=1.0)

    def test_stall_needs_duration(self):
        with pytest.raises(FaultError):
            FaultSpec(kind=FaultKind.NVME_QUEUE_STALL, at_time=0.0)

    def test_plan_rejects_non_specs(self):
        with pytest.raises(FaultError):
            FaultPlan(specs=("not a spec",))

    def test_random_plan_is_deterministic(self):
        a = FaultPlan.random(seed=7, horizon_s=2.0, count=6)
        b = FaultPlan.random(seed=7, horizon_s=2.0, count=6)
        assert a == b
        assert len(a) == 6
        c = FaultPlan.random(seed=8, horizon_s=2.0, count=6)
        assert a != c

    def test_sorted_specs_ordered_by_time(self):
        plan = FaultPlan.random(seed=3, horizon_s=1.0, count=8)
        times = [spec.at_time for spec in plan.sorted_specs()]
        assert times == sorted(times)


class TestInjectorArming:
    def test_arm_is_single_shot(self, machine):
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=1.0),
        )))
        injector.arm()
        with pytest.raises(FaultError):
            injector.arm()

    def test_disarm_cancels_pending(self, machine):
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=1.0),
        )))
        injector.arm()
        injector.disarm()
        machine.simulator.run_until(2.0)
        assert not machine.csd.cse.crashed
        assert injector.log.events == []

    def test_unknown_device_target_raises_at_fire_time(self, machine):
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=0.5, target="nope"),
        )))
        injector.arm()
        with pytest.raises(FaultError):
            machine.simulator.run_until(1.0)

    def test_link_degrade_window_opens_and_closes(self, machine):
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at_time=1.0, target="d2h",
                      duration_s=0.5, factor=0.25),
        )))
        injector.arm()
        machine.simulator.run_until(1.1)
        assert machine.d2h_link.degradation == 0.25
        assert machine.d2h_link.effective_bandwidth == pytest.approx(
            machine.d2h_link.bandwidth * 0.25
        )
        machine.simulator.run_until(2.0)
        assert machine.d2h_link.degradation == 1.0
        assert injector.log.actions() == ["injected", "recovered"]

    def test_stale_generation_fault_is_dropped_after_reset(self, machine):
        """A fault armed before a device reset describes a flaw of the
        old firmware generation; firing it into the rebirthed device
        would be a phantom failure, so the injector drops it."""
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.NVME_COMPLETION_LOSS, at_time=1.0),
        )))
        injector.arm()
        # a reset (e.g. recovering an earlier crash) bumps the
        # firmware generation before the armed fault fires
        machine.csd.crash_cse()
        machine.csd.reset_cse()
        machine.simulator.run_until(2.0)
        assert injector.injected == 0
        assert injector.stale_dropped == 1
        assert injector.log.actions() == ["stale-dropped"]
        assert machine.csd.queue_pair.cq._loss_armed == 0

    def test_same_generation_fault_still_fires(self, machine):
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.NVME_COMPLETION_LOSS, at_time=1.0),
        )))
        injector.arm()
        machine.simulator.run_until(2.0)
        assert injector.injected == 1
        assert injector.stale_dropped == 0

    def test_link_faults_ignore_device_generation(self, machine):
        """Links have no firmware generation; a reset between arm and
        fire must not suppress a link fault."""
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at_time=1.0, target="d2h",
                      duration_s=0.5, factor=0.25),
        )))
        injector.arm()
        machine.csd.crash_cse()
        machine.csd.reset_cse()
        machine.simulator.run_until(1.1)
        assert machine.d2h_link.degradation == 0.25
        assert injector.stale_dropped == 0

    def test_crash_and_scheduled_reset(self, machine):
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=1.0, duration_s=0.5),
        )))
        injector.arm()
        machine.simulator.run_until(1.2)
        assert machine.csd.cse.crashed
        assert not machine.csd.healthy
        machine.simulator.run_until(2.0)
        assert not machine.csd.cse.crashed
        assert machine.csd.cse.availability == 1.0


class TestNandReadFaults:
    def _array(self):
        array = FlashArray(FlashGeometry(
            channels=1, blocks_per_channel=2, pages_per_block=4,
        ))
        addr, _ = array.program_next_page(0)
        return array, addr

    def test_correctable_fault_adds_latency_then_clears(self):
        array, addr = self._array()
        clean = array.geometry.read_latency_s
        array.arm_read_fault(correctable=True, retries=4)
        assert array.read_page(addr) == pytest.approx(clean * 5)
        assert array.read_page(addr) == pytest.approx(clean)
        assert array.ecc_corrected_reads == 1

    def test_uncorrectable_fault_is_typed(self):
        array, addr = self._array()
        array.arm_read_fault(correctable=False)
        with pytest.raises(UncorrectableMediaError) as excinfo:
            array.read_page(addr)
        # Wired into both hierarchies: a fault and a flash error.
        assert isinstance(excinfo.value, FaultError)
        assert isinstance(excinfo.value, FlashError)
        # One-shot: the re-read succeeds.
        array.read_page(addr)
        assert array.uncorrectable_reads == 1

    def test_persistent_fault_survives_retries(self):
        array, addr = self._array()
        array.arm_read_fault(correctable=False, persistent=True)
        for _ in range(3):
            with pytest.raises(UncorrectableMediaError):
                array.read_page(addr)
        assert array.has_persistent_fault
        array.clear_read_faults()
        array.read_page(addr)


class TestEndToEndRecovery:
    def test_crash_without_reset_falls_back_to_host(self, config):
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=0.4, duration_s=0.0),
        ))
        report = run_with_plan(config, plan)
        result = report.result
        assert result.degraded
        actions = [event.action for event in result.fault_events]
        assert "injected" in actions
        assert "host-fallback" in actions
        # Every line still completed, host-side where necessary.
        assert len(result.line_timings) == 3
        assert result.total_seconds > 0

    def test_fast_reset_replays_chunk_on_device(self, config):
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=0.4,
                      duration_s=config.retry_backoff_base_s),
        ))
        result = run_with_plan(config, plan).result
        assert not result.degraded
        assert result.chunk_replays >= 1
        actions = [event.action for event in result.fault_events]
        assert "chunk-replay" in actions
        assert "host-fallback" not in actions

    def test_persistent_media_fault_falls_back_to_host(self, config):
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.NAND_READ_UNCORRECTABLE, at_time=0.4,
                      persistent=True),
        ))
        result = run_with_plan(config, plan).result
        assert result.degraded
        actions = [event.action for event in result.fault_events]
        assert "chunk-failed" in actions
        assert "host-fallback" in actions

    def test_correctable_media_fault_costs_latency_only(self, config):
        clean = run_with_plan(config, None).result
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.NAND_READ_CORRECTABLE, at_time=0.4,
                      retries=200),
        ))
        faulty = run_with_plan(config, plan).result
        assert not faulty.degraded
        actions = [event.action for event in faulty.fault_events]
        assert "ecc-corrected" in actions
        assert faulty.total_seconds > clean.total_seconds

    def test_link_degradation_slows_but_never_degrades(self, config):
        clean = run_with_plan(config, None).result
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at_time=0.2, target="internal",
                      duration_s=5.0, factor=0.1),
        ))
        faulty = run_with_plan(config, plan).result
        assert not faulty.degraded
        assert faulty.total_seconds > clean.total_seconds

    def test_no_plan_means_no_fault_events(self, config):
        result = run_with_plan(config, None).result
        assert result.fault_events == []
        assert not result.degraded


class TestDeterminism:
    def test_identical_plans_yield_byte_identical_logs(self, config):
        plan = FaultPlan.random(
            seed=config.fault_seed, horizon_s=1.0, count=5,
        )
        first = run_with_plan(config, plan).result
        second = run_with_plan(config, plan).result
        assert repr(first.fault_events) == repr(second.fault_events)
        assert first.total_seconds == second.total_seconds
        assert [t.seconds for t in first.line_timings] == [
            t.seconds for t in second.line_timings
        ]

    def test_crash_recovery_is_deterministic(self, config):
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=0.4, duration_s=0.0),
            FaultSpec(kind=FaultKind.LINK_DEGRADE, at_time=0.6, target="d2h",
                      duration_s=0.2, factor=0.3),
        ))
        runs = [run_with_plan(config, plan).result for _ in range(2)]
        assert repr(runs[0].fault_events) == repr(runs[1].fault_events)
        assert runs[0].total_seconds == runs[1].total_seconds


class TestMultiDeviceTargeting:
    def test_fault_lands_on_named_device_only(self, config):
        machine = build_machine(config, num_csds=2)
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=0.5, target="csd1"),
        )))
        injector.arm()
        machine.simulator.run_until(1.0)
        assert machine.device_named("csd1").cse.crashed
        assert not machine.device_named("csd").cse.crashed


class TestDeviceLostVerdict:
    def test_unacknowledged_command_declares_device_dead(self, config, machine):
        from repro.runtime.dispatch import CallQueueDispatcher

        log = FaultLog()
        dispatcher = CallQueueDispatcher(machine, fault_log=log)
        command_id = dispatcher.invoke("line", binary_address=0x1000)
        # The device crashes before posting its completion and never
        # comes back; every retry window must expire.
        machine.csd.crash_cse()
        with pytest.raises(DeviceLostError):
            dispatcher.reap_completion(command_id)
        assert log.actions().count("retry") == config.command_max_retries
        assert log.actions()[-1] == "device-dead"
