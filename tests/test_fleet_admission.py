"""Admission control: token buckets, bounded queues, typed shedding."""

import pytest

from repro.errors import FleetError
from repro.fleet import (
    AdmissionController,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    TenantSpec,
    TokenBucket,
)
from repro.fleet.admission import QueuedJob
from repro.fleet.traffic import JobArrival


def _arrival(job_id, tenant="t", priority=1, at=0.0):
    return JobArrival(job_id=job_id, tenant=tenant, workload="kmeans",
                      priority=priority, arrival_time=at)


def _controller(**overrides):
    fields = dict(name="t", rate_jobs_per_s=2.0, admission_rate=2.0,
                  admission_burst=2, queue_limit=3)
    fields.update(overrides)
    return AdmissionController((TenantSpec(**fields),), overload_watermark=100)


class TestTokenBucket:
    def test_burst_then_rate_limited(self):
        bucket = TokenBucket(rate=1.0, burst=2)
        assert bucket.try_take(0.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.0)  # burst spent
        assert bucket.try_take(1.0)      # one token refilled after 1s
        assert not bucket.try_take(1.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.try_take(0.0)
        for _ in range(2):
            assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_clock_backwards_is_an_error(self):
        bucket = TokenBucket(rate=1.0, burst=1)
        bucket.try_take(5.0)
        with pytest.raises(FleetError, match="backwards"):
            bucket.try_take(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(FleetError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(FleetError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmission:
    def test_rate_limit_sheds_with_reason(self):
        controller = _controller(admission_rate=1.0, admission_burst=1)
        assert controller.admit(_arrival(0), now=0.0) is None
        assert controller.admit(_arrival(1), now=0.0) == SHED_RATE_LIMITED

    def test_queue_bound_sheds_with_reason(self):
        controller = _controller(admission_rate=100.0, admission_burst=8,
                                 queue_limit=2)
        assert controller.admit(_arrival(0), now=0.0) is None
        assert controller.admit(_arrival(1), now=0.0) is None
        assert controller.admit(_arrival(2), now=0.0) == SHED_QUEUE_FULL

    def test_unknown_tenant_is_an_error(self):
        controller = _controller()
        with pytest.raises(FleetError, match="unknown tenant"):
            controller.admit(_arrival(0, tenant="nobody"), now=0.0)

    def test_unresolved_tenant_rate_is_an_error(self):
        with pytest.raises(FleetError, match="no resolved rate"):
            AdmissionController((TenantSpec(name="t"),), overload_watermark=1)


def _multi_controller(watermark=100):
    tenants = (
        TenantSpec(name="gold", rate_jobs_per_s=1.0, admission_rate=100.0,
                   admission_burst=64, priority=3, queue_limit=64),
        TenantSpec(name="silver", rate_jobs_per_s=1.0, admission_rate=100.0,
                   admission_burst=64, priority=2, queue_limit=64),
        TenantSpec(name="bronze", rate_jobs_per_s=1.0, admission_rate=100.0,
                   admission_burst=64, priority=1, queue_limit=64),
    )
    return AdmissionController(tenants, overload_watermark=watermark)


class TestDispatchOrder:
    def test_highest_priority_first_then_fifo(self):
        controller = _multi_controller()
        controller.admit(_arrival(0, tenant="bronze", priority=1), now=0.0)
        controller.admit(_arrival(1, tenant="gold", priority=3), now=0.0)
        controller.admit(_arrival(2, tenant="gold", priority=3), now=0.0)
        controller.admit(_arrival(3, tenant="silver", priority=2), now=0.0)
        order = [controller.next_job().arrival.job_id for _ in range(4)]
        assert order == [1, 2, 3, 0]
        assert controller.next_job() is None

    def test_requeue_keeps_original_position(self):
        controller = _multi_controller()
        controller.admit(_arrival(0, tenant="gold", priority=3), now=0.0)
        controller.admit(_arrival(1, tenant="gold", priority=3), now=0.0)
        first = controller.next_job()
        assert first.arrival.job_id == 0
        controller.requeue(first)  # a failover re-entry, not a re-admission
        assert controller.next_job().arrival.job_id == 0

    def test_queue_slot_frees_on_dispatch(self):
        controller = _controller(admission_rate=100.0, admission_burst=8,
                                 queue_limit=1)
        assert controller.admit(_arrival(0), now=0.0) is None
        assert controller.next_job() is not None
        assert controller.admit(_arrival(1), now=0.0) is None


class TestOverloadShedding:
    def test_sheds_lowest_priority_newest_first(self):
        controller = _multi_controller(watermark=2)
        controller.admit(_arrival(0, tenant="gold", priority=3), now=0.0)
        controller.admit(_arrival(1, tenant="bronze", priority=1), now=0.0)
        controller.admit(_arrival(2, tenant="bronze", priority=1), now=0.0)
        controller.admit(_arrival(3, tenant="silver", priority=2), now=0.0)
        victims = controller.shed_overload()
        # 4 queued, watermark 2: shed bronze newest (2) then bronze (1).
        assert [v.arrival.job_id for v in victims] == [2, 1]
        assert controller.total_queued == 2
        remaining = [controller.next_job().arrival.job_id for _ in range(2)]
        assert remaining == [0, 3]

    def test_no_shed_under_watermark(self):
        controller = _multi_controller(watermark=5)
        controller.admit(_arrival(0, tenant="gold", priority=3), now=0.0)
        assert controller.shed_overload() == []

    def test_watermark_validated(self):
        with pytest.raises(FleetError, match="overload_watermark"):
            _multi_controller(watermark=0)


class TestDrain:
    def test_drain_returns_everything_in_admission_order(self):
        controller = _multi_controller()
        controller.admit(_arrival(0, tenant="bronze", priority=1), now=0.0)
        controller.admit(_arrival(1, tenant="gold", priority=3), now=0.0)
        drained = controller.drain()
        assert [j.arrival.job_id for j in drained] == [0, 1]
        assert controller.total_queued == 0

    def test_queued_job_priority_property(self):
        job = QueuedJob(arrival=_arrival(9, priority=7), seq=0)
        assert job.priority == 7
