"""RunOptions and the deprecated-keyword shims on ActivePy.run."""

import dataclasses

import pytest

from repro.runtime.activepy import ActivePy, RunOptions
from repro.workloads import get_workload

_SCALE = 2 ** -7


def _workload():
    return get_workload("tpch_q6", scale=_SCALE)


class TestRunOptions:
    def test_frozen_and_keyword_friendly(self):
        options = RunOptions(trace=True)
        with pytest.raises(dataclasses.FrozenInstanceError):
            options.trace = False

    def test_options_path_emits_no_warning(self, recwarn):
        workload = _workload()
        report = ActivePy().run(
            workload.program, workload.dataset,
            options=RunOptions(trace=True),
        )
        assert report.timeline is not None
        assert not [w for w in recwarn if w.category is DeprecationWarning]


class TestDeprecatedKeywords:
    def test_trace_kwarg_warns_but_works(self):
        workload = _workload()
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            report = ActivePy().run(
                workload.program, workload.dataset, trace=True,
            )
        assert report.timeline is not None

    def test_progress_triggers_kwarg_warns_but_works(self):
        workload = _workload()
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            ActivePy().run(
                workload.program, workload.dataset,
                progress_triggers=[(0.5, 0.5)],
            )

    def test_deprecated_form_is_equivalent(self):
        workload = _workload()
        modern = ActivePy().run(
            workload.program, workload.dataset,
            options=RunOptions(trace=True,
                               progress_triggers=((0.5, 0.25),)),
        )
        with pytest.warns(DeprecationWarning):
            legacy = ActivePy().run(
                workload.program, workload.dataset,
                trace=True, progress_triggers=[(0.5, 0.25)],
            )
        assert legacy.total_seconds == modern.total_seconds
        assert len(legacy.timeline.spans) == len(modern.timeline.spans)

    def test_deprecated_kwargs_override_options(self):
        workload = _workload()
        with pytest.warns(DeprecationWarning):
            report = ActivePy().run(
                workload.program, workload.dataset,
                options=RunOptions(trace=False), trace=True,
            )
        assert report.timeline is not None
