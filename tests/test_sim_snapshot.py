"""Snapshot, restore, and fork semantics of the simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim import SimSnapshot, Simulator

ENGINES = ("object", "array")


@pytest.fixture(params=ENGINES)
def sim(request):
    return Simulator(engine=request.param)


class TestSnapshotRestore:
    def test_restore_rewinds_clock_and_events(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.run_all()
        snap = sim.snapshot()
        assert isinstance(snap, SimSnapshot)
        sim.schedule_at(5.0, lambda: fired.append("b"))
        sim.run_all()
        assert fired == ["a", "b"]
        assert sim.now == 5.0

        sim.restore(snap)
        assert sim.now == 1.0
        assert sim.pending_events == 0
        sim.run_all()
        assert fired == ["a", "b"]  # the restored timeline has no "b"

    def test_restore_preserves_pending_events(self, sim):
        fired = []
        sim.schedule_at(2.0, lambda: fired.append("later"))
        snap = sim.snapshot()
        assert snap.pending_events == 1
        sim.run_all()
        assert fired == ["later"]

        sim.restore(snap)
        assert sim.pending_events == 1
        sim.run_all()
        assert fired == ["later", "later"]

    def test_snapshot_is_restorable_repeatedly(self, sim):
        counter = []
        sim.schedule_at(1.0, lambda: counter.append(sim.now))
        snap = sim.snapshot()
        for _ in range(3):
            sim.restore(snap)
            sim.run_all()
        assert counter == [1.0, 1.0, 1.0]

    def test_mutation_after_snapshot_does_not_leak_into_it(self, sim):
        """Copy-on-write: post-snapshot schedules/cancels stay private."""
        fired = []
        keeper = sim.schedule_at(3.0, lambda: fired.append("keeper"))
        snap = sim.snapshot()
        keeper.cancel()
        sim.schedule_at(1.0, lambda: fired.append("intruder"))
        sim.run_all()
        assert fired == ["intruder"]

        sim.restore(snap)
        sim.run_all()
        assert fired == ["intruder", "keeper"]

    def test_events_fired_restored(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.run_all()
        snap = sim.snapshot()
        sim.schedule_at(2.0, lambda: None)
        sim.run_all()
        assert sim.events_fired == 2
        sim.restore(snap)
        assert sim.events_fired == 1

    def test_cross_engine_restore_rejected(self):
        array_sim = Simulator(engine="array")
        object_sim = Simulator(engine="object")
        with pytest.raises(SimulationError):
            object_sim.restore(array_sim.snapshot())
        with pytest.raises(SimulationError):
            array_sim.restore(object_sim.snapshot())


class TestFork:
    def test_fork_starts_at_parent_state(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.run_all()
        sim.schedule_at(4.0, lambda: None)
        branch = sim.fork()
        assert branch.now == sim.now == 1.0
        assert branch.pending_events == 1
        assert branch.engine_name == sim.engine_name

    def test_fork_diverges_independently(self, sim):
        parent_fired = []
        sim.schedule_at(2.0, lambda: parent_fired.append("shared"))
        branch = sim.fork()

        branch_fired = []
        branch.schedule_at(1.0, lambda: branch_fired.append("branch-only"))
        branch.run_all()
        # The pending "shared" event was copied into the branch, so its
        # callback (closing over parent_fired) runs once per timeline.
        assert branch_fired == ["branch-only"]
        assert branch.now == 2.0

        sim.run_all()
        assert parent_fired == ["shared", "shared"]
        assert sim.now == 2.0

    def test_parent_unaffected_by_forked_run(self, sim):
        sim.schedule_at(1.0, lambda: None)
        branch = sim.fork()
        branch.run_all()
        assert branch.events_fired == 1
        assert sim.events_fired == 0
        assert sim.pending_events == 1
        assert sim.now == 0.0

    def test_fork_of_fork(self, sim):
        sim.schedule_at(1.0, lambda: None)
        grandchild = sim.fork().fork()
        assert grandchild.pending_events == 1
        grandchild.run_all()
        assert grandchild.events_fired == 1
        assert sim.pending_events == 1

    def test_forks_do_not_share_a_clock(self, sim):
        branch = sim.fork()
        branch.clock.advance(5.0)
        assert sim.now == 0.0
