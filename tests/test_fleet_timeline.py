"""The fleet flight recorder: timelines, alerts, and the fleet Chrome trace."""

import json

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import FleetError
from repro.faults.spec import FaultKind, FaultPlan, FaultSpec
from repro.fleet import (
    DEFAULT_SLO_MULTIPLE,
    Fleet,
    FleetConfig,
    ProfileStore,
    TenantSpec,
    check_fleet_invariants,
    default_tenants,
    to_fleet_chrome_trace,
    write_fleet_chrome_trace,
)
from repro.obs import Observability, validate_chrome_trace

_SCALE = 2 ** -6

#: The scripted device-loss scenario the CI smoke also runs: two
#: devices, one lost early and never rejoining, so the survivor's queue
#: grows and the sliding-window p99 breaches the SLO for good.
_LOSS_PLAN = FaultPlan((FaultSpec(
    kind=FaultKind.DEVICE_LOST_MID_JOB, target="csd1", at_time=0.3,
),))


@pytest.fixture(scope="module")
def store():
    """One profile store for the whole module: inner runs paid once."""
    return ProfileStore(system_config=DEFAULT_CONFIG, scale=_SCALE)


def _config(**overrides):
    fields = dict(
        device_count=2,
        tenants=default_tenants(3),
        job_count=32,
        seed=0,
        scale=_SCALE,
    )
    fields.update(overrides)
    return FleetConfig(**fields)


def _recorded(store, **overrides):
    obs = Observability.with_timeseries()
    return Fleet(_config(**overrides), profiles=store, obs=obs).run(), obs


class TestRecorderIsFree:
    def test_disabled_run_is_bit_identical(self, store):
        plain = Fleet(_config(), profiles=store).run()
        recorded, _ = _recorded(store)
        assert recorded.makespan_s == plain.makespan_s
        assert recorded.throughput_jobs_per_s == plain.throughput_jobs_per_s
        assert (
            [o.signature for o in recorded.outcomes]
            == [o.signature for o in plain.outcomes]
        )
        assert (
            [(o.job_id, o.status, o.finish_time) for o in recorded.outcomes]
            == [(o.job_id, o.status, o.finish_time) for o in plain.outcomes]
        )

    def test_disabled_run_collects_nothing(self, store):
        plain = Fleet(_config(), profiles=store).run()
        assert plain.timeline == {}
        assert plain.alerts == ()
        assert plain.trace_spans == ()
        assert plain.trace_instants == ()
        payload = plain.to_jsonable()
        assert "timeline" not in payload and "alerts" not in payload

    def test_loss_run_is_bit_identical_too(self, store):
        plain = Fleet(_config(plan=_LOSS_PLAN), profiles=store).run()
        recorded, _ = _recorded(store, plan=_LOSS_PLAN)
        assert recorded.makespan_s == plain.makespan_s
        assert (
            [o.signature for o in recorded.outcomes]
            == [o.signature for o in plain.outcomes]
        )


class TestTimelineSeries:
    def test_expected_series_exist(self, store):
        report, obs = _recorded(store)
        names = obs.timeseries.names()
        assert "fleet.queue_depth" in names
        assert "fleet.util.csd" in names and "fleet.util.csd1" in names
        assert "fleet.rate.arrived" in names
        assert "fleet.rate.admitted" in names
        assert "fleet.rate.finished" in names
        for tenant in report.tenant_names:
            assert f"fleet.e2e.{tenant}" in names
            assert f"fleet.slo_window.{tenant}.e2e_p50_s" in names
            assert f"fleet.slo_window.{tenant}.e2e_p99_s" in names
            assert f"fleet.burn.{tenant}" in names
        assert report.timeline["series"].keys() == set(names)

    def test_utilization_is_zero_or_one(self, store):
        _, obs = _recorded(store)
        for name in obs.timeseries.names():
            if name.startswith("fleet.util."):
                assert set(obs.timeseries.series(name).values()) <= {0.0, 1.0}

    def test_sliding_window_agrees_with_whole_run_on_uniform_workload(
        self, store
    ):
        """With a horizon covering the whole run and a single-workload
        tenant, the last sliding-window p50/p99 points equal the
        whole-run SloSnapshot percentiles exactly."""
        tenant = TenantSpec(
            name="t", rate_jobs_per_s=6.0, admission_rate=1000.0,
            admission_burst=64, queue_limit=256, workloads=("tpch_q6",),
        )
        obs = Observability.with_timeseries(sample_horizon_s=1e9)
        report = Fleet(
            _config(tenants=(tenant,), job_count=12),
            profiles=store, obs=obs,
        ).run()
        snapshot = report.slo_for("t")
        assert snapshot.end_to_end_samples  # the comparison is non-vacuous
        recorder = obs.timeseries
        for q, expected in (
            (50.0, snapshot.end_to_end_p50_s),
            (99.0, snapshot.end_to_end_p99_s),
        ):
            series = recorder.series(f"fleet.slo_window.t.e2e_p{int(q)}_s")
            assert series.last()[1] == expected

    def test_loss_run_shows_survivor_saturated(self, store):
        _, obs = _recorded(store, plan=_LOSS_PLAN)
        lost = obs.timeseries.series("fleet.util.csd1")
        assert lost.last()[1] == 0.0
        depth = obs.timeseries.series("fleet.queue_depth")
        assert max(depth.values()) >= 4  # the backlog the alert sees


class TestSloTargetsAndAlerts:
    def test_default_targets_derive_from_baselines(self, store):
        fleet = Fleet(_config(), profiles=store)
        tenants = fleet.resolve_tenants()
        targets = fleet.slo_targets(tenants)
        for tenant in tenants:
            slowest = max(
                store.baseline(w).service_seconds for w in tenant.workloads
            )
            assert targets[tenant.name] == DEFAULT_SLO_MULTIPLE * slowest

    def test_explicit_slo_wins(self, store):
        tenant = TenantSpec(name="t", rate_jobs_per_s=4.0, slo_e2e_s=0.75)
        fleet = Fleet(_config(tenants=(tenant,)), profiles=store)
        assert fleet.slo_targets((tenant,)) == {"t": 0.75}

    def test_slo_must_be_positive(self):
        with pytest.raises(FleetError):
            TenantSpec(name="t", slo_e2e_s=0.0)

    def test_clean_run_raises_no_alerts(self, store):
        report, _ = _recorded(store)
        assert report.alerts == ()

    def test_device_loss_fires_slo_burn_alert(self, store):
        report, _ = _recorded(store, plan=_LOSS_PLAN)
        assert report.alerts, "losing half the fleet must breach the SLO"
        rules = {alert.rule for alert in report.alerts}
        assert any(rule.startswith("slo-burn:") for rule in rules)
        for alert in report.alerts:
            assert alert.value > alert.threshold
            assert alert.series in report.timeline["series"]
        # The alert counters land in the metrics snapshot too.
        counters = report.metrics["counters"]
        assert counters["obs.alerts.fired"] == len(report.alerts)

    def test_alerts_survive_json_round_trip(self, store):
        report, _ = _recorded(store, plan=_LOSS_PLAN)
        payload = json.loads(json.dumps(report.to_jsonable()))
        assert payload["alerts"]
        assert payload["slo_targets"]
        assert payload["timeline"]["series"]
        rendered = report.render()
        assert "ALERT slo-burn:" in rendered

    def test_invariants_hold_on_recorded_loss_run(self, store):
        report, _ = _recorded(store, plan=_LOSS_PLAN)
        assert check_fleet_invariants(report, _LOSS_PLAN, store) == []


class TestFleetChromeTrace:
    def test_trace_validates_and_has_instants(self, store, tmp_path):
        report, _ = _recorded(store, plan=_LOSS_PLAN)
        path = tmp_path / "fleet_trace.json"
        trace = write_fleet_chrome_trace(report, str(path))
        assert validate_chrome_trace(trace) == []
        on_disk = json.loads(path.read_text())
        assert on_disk == json.loads(json.dumps(trace))
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert any(e["name"] == "device lost" for e in instants)

    def test_tracks_are_per_device_plus_fleet(self, store):
        report, _ = _recorded(store, plan=_LOSS_PLAN)
        trace = to_fleet_chrome_trace(report)
        names = [
            event["args"]["name"] for event in trace["traceEvents"]
            if event["ph"] == "M"
        ]
        assert names == ["csd", "csd1", "fleet"]

    def test_every_finished_job_has_a_span(self, store):
        report, _ = _recorded(store)
        trace = to_fleet_chrome_trace(report)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        finished = [o for o in report.outcomes if o.status != "shed"]
        assert len([s for s in spans if s["cat"] == "job"]) == len(finished)
        assert all(s["dur"] >= 0 for s in spans)

    def test_recorderless_report_refuses_to_export(self, store):
        plain = Fleet(_config(), profiles=store).run()
        with pytest.raises(FleetError):
            to_fleet_chrome_trace(plain)

    def test_tracer_only_handle_also_collects(self, store):
        obs = Observability.with_tracing()
        report = Fleet(_config(), profiles=store, obs=obs).run()
        assert report.trace_spans
        assert validate_chrome_trace(to_fleet_chrome_trace(report)) == []
        # ... but no recorder means no timeline and no alerts.
        assert report.timeline == {}
        assert report.alerts == ()


class TestTimelineCli:
    def test_fleet_run_timeline_prints_dashboard(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "run", "--devices", "2", "--jobs", "8", "--timeline",
        ]) == 0
        out = capsys.readouterr().out
        assert "timeline (window" in out
        assert "fleet.queue_depth" in out

    def test_fleet_run_trace_out_validates(self, capsys, tmp_path):
        from repro.cli import main

        path = tmp_path / "trace.json"
        assert main([
            "fleet", "run", "--devices", "2", "--jobs", "8",
            "--trace-out", str(path),
        ]) == 0
        assert "validates clean" in capsys.readouterr().out
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []

    def test_scripted_loss_run_alerts_on_stdout(self, capsys):
        from repro.cli import main

        assert main([
            "fleet", "run", "--devices", "2", "--jobs", "32",
            "--lose-device", "csd1", "--lose-at", "0.3", "--timeline",
        ]) == 0
        assert "ALERT slo-burn:" in capsys.readouterr().out

    def test_obs_dashboard_is_timeline_always_on(self, capsys):
        from repro.cli import main

        assert main(["obs", "dashboard", "--devices", "2", "--jobs", "8"]) == 0
        assert "timeline (window" in capsys.readouterr().out
