"""CSE contention scheduling and BAR-window binary distribution."""

import pytest

from repro.errors import HardwareError, StorageError
from repro.memory.address_space import SharedAddressSpace
from repro.sim.engine import Simulator
from repro.storage.bar import BarWindow
from repro.storage.cse import ComputationalStorageEngine


def make_cse(sim=None) -> ComputationalStorageEngine:
    return ComputationalStorageEngine(ips=4e9, simulator=sim or Simulator())


class TestCseAvailability:
    def test_scheduled_throttle_takes_effect_at_time(self):
        sim = Simulator()
        cse = ComputationalStorageEngine(ips=4e9, simulator=sim)
        cse.schedule_availability(at_time=1.0, fraction=0.5)
        assert cse.availability == 1.0
        sim.run_until(1.0)
        assert cse.availability == 0.5

    def test_invalid_fraction_rejected(self):
        with pytest.raises(HardwareError):
            make_cse().schedule_availability(1.0, 0.0)

    def test_cancel_scheduled(self):
        sim = Simulator()
        cse = ComputationalStorageEngine(ips=4e9, simulator=sim)
        cse.schedule_availability(1.0, 0.1)
        cse.cancel_scheduled()
        sim.run_until(2.0)
        assert cse.availability == 1.0

    def test_zero_cores_rejected(self):
        with pytest.raises(HardwareError):
            ComputationalStorageEngine(ips=4e9, simulator=Simulator(), cores=0)


class TestHighPriority:
    def test_flag_raised_and_acknowledged(self):
        sim = Simulator()
        cse = ComputationalStorageEngine(ips=4e9, simulator=sim)
        cse.schedule_high_priority_request(at_time=0.5)
        sim.run_until(0.5)
        assert cse.high_priority_pending
        cse.acknowledge_high_priority()
        assert not cse.high_priority_pending


class TestPerformanceCounterInterface:
    def test_counters_expose_only_architectural_state(self):
        # The runtime's whole view of the device: no availability leak.
        counters = make_cse().read_performance_counters()
        assert set(counters) == {
            "ipc_nominal", "clock_hz", "cores",
            "retired_instructions", "cycles",
        }

    def test_nominal_ipc_consistent_with_ips(self):
        cse = make_cse()
        counters = cse.read_performance_counters()
        assert counters["ipc_nominal"] * counters["clock_hz"] == pytest.approx(4e9)


class TestBarWindow:
    def make_bar(self, size: int = 1 << 20):
        space = SharedAddressSpace()
        space.map_region("host.dram", 1 << 20, "host")
        return BarWindow("csd", size=size, space=space), space

    def test_region_mapped_at_device_location(self):
        bar, space = self.make_bar()
        assert space.region_named("csd.bar").location == "csd"

    def test_install_binary_returns_device_address(self):
        bar, space = self.make_bar()
        address = bar.install_binary("scan", 4096)
        assert bar.base <= address < bar.base + bar.size
        assert bar.binary_address("scan") == address

    def test_reinstall_replaces(self):
        bar, _ = self.make_bar()
        bar.install_binary("scan", 4096)
        second = bar.install_binary("scan", 4096)
        assert bar.binary_address("scan") == second
        assert bar.installed_binaries == ("scan",)

    def test_missing_binary_is_none(self):
        bar, _ = self.make_bar()
        assert bar.binary_address("nope") is None

    def test_invalid_sizes_rejected(self):
        with pytest.raises(StorageError):
            self.make_bar(size=0)
        bar, _ = self.make_bar()
        with pytest.raises(StorageError):
            bar.install_binary("scan", 0)
