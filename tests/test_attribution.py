"""TimeAttributor mechanics and the exact attribution report."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import Observability
from repro.obs.attribution import (
    COMPONENTS,
    DEFAULT_COMPONENT,
    TimeAttributor,
    build_attribution_report,
)
from repro.sim.clock import SimClock


class TestRecording:
    def test_unlabelled_movement_is_host_time(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 1.0, None)
        assert attributor.records() == (("host", 0.0, 1.0),)
        assert DEFAULT_COMPONENT == "host"

    def test_unknown_component_rejected_at_record(self):
        with pytest.raises(ObservabilityError, match="unknown attribution"):
            TimeAttributor().record(0.0, 1.0, "gpu")

    def test_scope_labels_inner_movement(self):
        attributor = TimeAttributor()
        attributor.push_scope("nvme")
        attributor.record(0.0, 1.0, None)
        attributor.pop_scope()
        attributor.record(1.0, 2.0, None)
        assert [r[0] for r in attributor.records()] == ["nvme", "host"]

    def test_explicit_label_beats_scope(self):
        attributor = TimeAttributor()
        attributor.push_scope("nvme")
        attributor.record(0.0, 1.0, "pcie")
        attributor.pop_scope()
        assert attributor.records()[0][0] == "pcie"

    def test_scopes_nest(self):
        attributor = TimeAttributor()
        attributor.push_scope("nvme")
        attributor.push_scope("cse")
        assert attributor.current_component == "cse"
        attributor.pop_scope()
        assert attributor.current_component == "nvme"

    def test_unknown_scope_rejected(self):
        with pytest.raises(ObservabilityError):
            TimeAttributor().push_scope("gpu")

    def test_pop_of_empty_stack_rejected(self):
        with pytest.raises(ObservabilityError):
            TimeAttributor().pop_scope()

    def test_consecutive_same_component_movements_coalesce(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 1.0, "cse")
        attributor.record(1.0, 2.0, "cse")
        attributor.record(2.0, 3.0, "pcie")
        segments = attributor.segments()
        assert [(s.start, s.end, s.component) for s in segments] == [
            (0.0, 2.0, "cse"),
            (2.0, 3.0, "pcie"),
        ]

    def test_zero_duration_movement_keeps_record_skips_segment(self):
        attributor = TimeAttributor()
        attributor.record(1.0, 1.0, "cse")
        assert attributor.record_count == 1
        assert attributor.segments() == []

    def test_reset_clears_everything(self):
        attributor = TimeAttributor()
        attributor.push_scope("cse")
        attributor.record(0.0, 1.0, None)
        attributor.reset()
        assert attributor.record_count == 0
        assert attributor.segments() == []
        assert attributor.current_component == DEFAULT_COMPONENT


class TestClockIntegration:
    def test_clock_records_after_moving(self):
        clock = SimClock()
        attributor = TimeAttributor()
        clock.set_attributor(attributor)
        clock.advance(0.5, component="cse")
        clock.advance_to(2.0)
        assert attributor.records() == (("cse", 0.0, 0.5), ("host", 0.5, 2.0))

    def test_clock_reset_resets_attributor(self):
        # The identity needs contiguous records; a rewound clock with
        # stale records would make the telescoping sum lie.
        clock = SimClock()
        attributor = TimeAttributor()
        clock.set_attributor(attributor)
        clock.advance(1.0)
        clock.reset()
        assert attributor.record_count == 0

    def test_attribution_never_perturbs_the_clock(self):
        plain, attributed = SimClock(), SimClock()
        attributed.set_attributor(TimeAttributor())
        for c in (plain, attributed):
            c.advance(0.1, component="cse")
            c.advance(0.2, component="pcie")
        assert attributed.now == plain.now


class TestReport:
    def _noisy_attributor(self):
        # Awkward increments whose naive float sum would drift.
        attributor = TimeAttributor()
        now = 0.25
        for i in range(2000):
            component = COMPONENTS[i % len(COMPONENTS)]
            new = now + (0.1 if i % 2 else 1e-9)
            attributor.record(now, new, component)
            now = new
        return attributor, now

    def test_sum_identity_is_exact_on_noisy_increments(self):
        attributor, end = self._noisy_attributor()
        report = build_attribution_report(attributor)
        assert report.start == 0.25
        assert report.end == end
        assert report.residual == 0.0
        assert report.total_attributed == report.end - report.start

    def test_component_parts_fsum_to_the_total(self):
        attributor, _ = self._noisy_attributor()
        report = build_attribution_report(attributor)
        total = math.fsum(report.seconds_by_component.values())
        assert total == pytest.approx(report.total_attributed, abs=1e-12)

    def test_empty_report_is_all_zero(self):
        report = build_attribution_report(TimeAttributor())
        assert report.total_attributed == 0.0
        assert report.residual == 0.0
        assert report.seconds_by_component == {}

    def test_windowed_report_since_mark(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 1.0, "host")
        mark = attributor.mark()
        attributor.record(1.0, 3.0, "cse")
        report = build_attribution_report(attributor, since=mark)
        assert report.start == 1.0
        assert report.seconds_by_component == {"cse": 2.0}
        assert report.residual == 0.0

    def test_utilization_fractions(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 1.0, "cse")
        attributor.record(1.0, 4.0, "host")
        util = build_attribution_report(attributor).utilization()
        assert util == {"cse": 0.25, "host": 0.75}

    def test_what_if_removes_exactly_that_component(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 1.0, "cse")
        attributor.record(1.0, 4.0, "host")
        report = build_attribution_report(attributor)
        assert report.what_if("host") == pytest.approx(1.0)
        assert report.what_if("nand") == pytest.approx(4.0)  # absent = free
        with pytest.raises(ObservabilityError):
            report.what_if("gpu")

    def test_bottleneck_ranking_descending_and_positive_only(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 3.0, "host")
        attributor.record(3.0, 4.0, "cse")
        ranked = build_attribution_report(attributor).rank_bottlenecks()
        assert ranked == [("host", 3.0), ("cse", 1.0)]

    def test_queueing_delay_histograms_per_component(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 0.001, "nvme")
        attributor.record(0.001, 0.002, "cse")
        attributor.record(0.002, 0.004, "nvme")
        hists = build_attribution_report(attributor).queueing_delay_histograms()
        assert hists["nvme"].count == 2
        assert hists["cse"].count == 1

    def test_render_and_jsonable(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 2.0, "cse")
        report = build_attribution_report(attributor)
        assert "residual" in report.render()
        payload = report.to_jsonable()
        assert payload["residual"] == 0.0
        assert payload["bottlenecks"][0]["component"] == "cse"


class TestObservabilityHandle:
    def test_with_attribution_constructor(self):
        obs = Observability.with_attribution()
        assert obs.attributing
        assert obs.tracer is not None
        assert not Observability.with_tracing().attributing

    def test_bind_clock_installs_attributor(self):
        obs = Observability.with_attribution()
        clock = SimClock()
        obs.bind_clock(clock)
        clock.advance(0.5)
        assert obs.attribution.record_count == 1

    def test_attr_scope_noop_without_attribution(self):
        obs = Observability.with_tracing()
        with obs.attr_scope("nvme"):
            pass  # must not raise, must not record anything

    def test_attr_scope_labels_when_attributing(self):
        obs = Observability.with_attribution()
        clock = SimClock()
        obs.bind_clock(clock)
        with obs.attr_scope("nvme"):
            clock.advance(0.5)
        assert obs.attribution.records()[0][0] == "nvme"

    def test_attribution_report_requires_attributor(self):
        with pytest.raises(ObservabilityError):
            Observability.with_tracing().attribution_report()

    def test_adopt_moves_the_attributor_onto_the_machine_clock(self):
        machine_obs = Observability.disabled()
        clock = SimClock()
        machine_obs.bind_clock(clock)
        caller = Observability.with_attribution()
        machine_obs.adopt(caller)
        clock.advance(0.25, component="cse")
        assert caller.attribution.records() == (("cse", 0.0, 0.25),)
