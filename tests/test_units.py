"""Unit constants and formatting helpers."""

import pytest

from repro.units import (
    GB,
    GIB,
    GIPS,
    KB,
    MB,
    TB,
    format_bytes,
    format_rate,
    format_seconds,
)


class TestConstants:
    def test_decimal_ladder(self):
        assert KB == 1_000
        assert MB == 1_000_000
        assert GB == 1_000_000_000
        assert TB == 1_000_000_000_000

    def test_binary_differs_from_decimal(self):
        assert GIB == 2**30
        assert GIB > GB

    def test_gips(self):
        assert GIPS == 10**9


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kilobytes(self):
        assert format_bytes(2_500) == "2.50 KB"

    def test_gigabytes_matches_paper_style(self):
        assert format_bytes(9.1 * GB) == "9.10 GB"

    def test_terabytes(self):
        assert format_bytes(2 * TB) == "2.00 TB"

    def test_zero(self):
        assert format_bytes(0) == "0 B"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)


class TestFormatSeconds:
    def test_seconds(self):
        assert format_seconds(73.2) == "73.20 s"

    def test_milliseconds(self):
        assert format_seconds(0.025) == "25.00 ms"

    def test_microseconds(self):
        assert format_seconds(3.1e-6) == "3.10 us"

    def test_boundary_one_second(self):
        assert format_seconds(1.0) == "1.00 s"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_seconds(-0.1)


class TestFormatRate:
    def test_internal_bandwidth(self):
        assert format_rate(9 * GB) == "9.00 GB/s"
