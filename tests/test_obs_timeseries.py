"""The flight recorder: series semantics, alerts, and the Observability wiring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.fleet import percentile
from repro.obs import (
    AlertRule,
    FlightRecorder,
    Observability,
    TimeSeries,
    evaluate_alerts,
    sparkline,
)


class TestTimeSeries:
    def test_points_keep_time_order(self):
        series = TimeSeries("s", "samples", capacity=8)
        series.append(0.0, 1.0)
        series.append(1.0, 2.0)
        with pytest.raises(ObservabilityError):
            series.append(0.5, 3.0)

    def test_gauge_same_instant_overwrites(self):
        series = TimeSeries("s", "gauge", capacity=8)
        series.append(1.0, 10.0)
        series.append(1.0, 20.0)
        assert list(series) == [(1.0, 20.0)]

    def test_sample_same_instant_appends(self):
        series = TimeSeries("s", "samples", capacity=8)
        series.append(1.0, 10.0)
        series.append(1.0, 20.0)
        assert series.values() == [10.0, 20.0]

    def test_ring_drops_oldest(self):
        series = TimeSeries("s", "gauge", capacity=3)
        for t in range(5):
            series.append(float(t), float(t * 10))
        assert series.times() == [2.0, 3.0, 4.0]
        assert series.last() == (4.0, 40.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError):
            TimeSeries("s", "ewma", capacity=8)


class TestFlightRecorder:
    def test_kind_exclusivity(self):
        recorder = FlightRecorder()
        recorder.gauge("x", 0.0, 1.0)
        with pytest.raises(ObservabilityError):
            recorder.count("x", 1.0)
        with pytest.raises(ObservabilityError):
            recorder.observe("x", 1.0, 1.0)

    def test_unknown_series_is_loud(self):
        with pytest.raises(ObservabilityError):
            FlightRecorder().series("nope")

    def test_rate_windows_emit_events_per_second(self):
        recorder = FlightRecorder(window_s=0.5)
        recorder.count("r", 0.1)
        recorder.count("r", 0.2)
        recorder.count("r", 0.3, amount=2.0)
        # Nothing emitted until time leaves the window...
        assert len(recorder.series("r")) == 0
        recorder.count("r", 0.7)
        # ...then the closed window lands at its end timestamp, in /s.
        assert list(recorder.series("r")) == [(0.5, 8.0)]
        recorder.finalize(0.7)
        assert list(recorder.series("r")) == [(0.5, 8.0), (1.0, 2.0)]

    def test_rate_zero_fills_quiet_windows(self):
        recorder = FlightRecorder(window_s=1.0)
        recorder.count("r", 0.5)
        recorder.count("r", 3.5)
        assert list(recorder.series("r")) == [(1.0, 1.0), (2.0, 0.0), (3.0, 0.0)]

    def test_rate_zero_fill_is_capacity_bounded(self):
        recorder = FlightRecorder(window_s=1.0, capacity=4)
        recorder.count("r", 0.5)
        recorder.count("r", 1000.5)
        assert len(recorder.series("r")) == 4

    def test_rate_rejects_negative_and_backwards(self):
        recorder = FlightRecorder(window_s=1.0)
        with pytest.raises(ObservabilityError):
            recorder.count("r", 0.5, amount=-1.0)
        recorder.count("r", 5.0)
        with pytest.raises(ObservabilityError):
            recorder.count("r", 2.0)

    def test_window_percentile_matches_slo_percentile(self):
        recorder = FlightRecorder(window_s=1.0, sample_horizon_s=4.0)
        samples = [(0.0, 9.0), (7.0, 1.0), (8.0, 2.0), (9.0, 3.0), (10.0, 4.0)]
        for t, value in samples:
            recorder.observe("lat", t, value)
        in_window = [1.0, 2.0, 3.0, 4.0]  # the t=0 sample fell out
        assert recorder.window_values("lat", 10.0) == in_window
        for q in (0.0, 50.0, 99.0, 100.0):
            assert recorder.window_percentile("lat", q, 10.0) == percentile(
                in_window, q
            )

    def test_window_percentile_empty_horizon_is_zero(self):
        recorder = FlightRecorder(window_s=1.0, sample_horizon_s=1.0)
        recorder.observe("lat", 0.0, 5.0)
        assert recorder.window_percentile("lat", 99.0, 100.0) == 0.0

    def test_to_jsonable_sorted_and_complete(self):
        recorder = FlightRecorder(window_s=0.5)
        recorder.gauge("z", 0.0, 1.0)
        recorder.observe("a", 0.0, 2.0)
        recorder.count("m", 0.0)
        payload = recorder.to_jsonable()
        assert list(payload["series"]) == ["a", "m", "z"]
        assert payload["window_s"] == 0.5
        assert payload["series"]["a"] == {"kind": "samples", "points": [[0.0, 2.0]]}

    def test_render_mentions_every_series(self):
        recorder = FlightRecorder()
        assert "no series" in recorder.render()
        recorder.gauge("depth", 0.0, 3.0)
        dashboard = recorder.render()
        assert "depth" in dashboard and "gauge" in dashboard

    def test_validation(self):
        with pytest.raises(ObservabilityError):
            FlightRecorder(window_s=0.0)
        with pytest.raises(ObservabilityError):
            FlightRecorder(capacity=0)
        with pytest.raises(ObservabilityError):
            FlightRecorder(sample_horizon_s=-1.0)


class TestSparkline:
    def test_empty_and_constant(self):
        assert sparkline([]) == "(empty)"
        flat = sparkline([2.0, 2.0, 2.0])
        assert len(flat) == 3 and len(set(flat)) == 1

    def test_monotone_values_render_monotone_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert list(line) == sorted(line)
        assert line[0] != line[-1]

    def test_width_keeps_most_recent(self):
        assert len(sparkline(list(range(100)), width=10)) == 10

    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.floats(min_value=-1e6, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=200,
    ))
    def test_output_is_always_blocks(self, values):
        line = sparkline(values)
        assert 0 < len(line) <= 60
        assert set(line) <= set("▁▂▃▄▅▆▇█")


class TestAlerts:
    def _recorder_with(self, points, name="p99"):
        recorder = FlightRecorder()
        for t, value in points:
            recorder.gauge(name, t, value)
        return recorder

    def test_fires_on_nth_consecutive_breach(self):
        rule = AlertRule(name="hot", series="p99", threshold=1.0, consecutive=3)
        recorder = self._recorder_with(
            [(0.0, 2.0), (1.0, 2.0), (2.0, 0.5), (3.0, 2.0), (4.0, 2.0),
             (5.0, 2.0), (6.0, 2.0)]
        )
        events = evaluate_alerts(recorder, [rule])
        # The first streak dies at two; the second fires once at t=5
        # and stays quiet at t=6 (no re-fire without recovery).
        assert [event.at_time for event in events] == [5.0]
        assert events[0].rule == "hot"
        assert events[0].value == 2.0

    def test_rearms_after_recovery(self):
        rule = AlertRule(name="hot", series="p99", threshold=1.0, consecutive=2)
        recorder = self._recorder_with(
            [(0.0, 2.0), (1.0, 2.0), (2.0, 0.5), (3.0, 2.0), (4.0, 2.0)]
        )
        events = evaluate_alerts(recorder, [rule])
        assert [event.at_time for event in events] == [1.0, 4.0]

    def test_missing_series_is_quiet(self):
        rule = AlertRule(name="hot", series="never-recorded", threshold=1.0)
        assert evaluate_alerts(FlightRecorder(), [rule]) == ()

    def test_comparison_ops(self):
        recorder = self._recorder_with([(0.0, 0.5)], name="low")
        rule = AlertRule(
            name="cold", series="low", threshold=1.0, op="<", consecutive=1
        )
        events = evaluate_alerts(recorder, [rule])
        assert len(events) == 1
        assert "ALERT cold" in events[0].render()
        assert events[0].to_jsonable()["threshold"] == 1.0

    def test_rule_validation(self):
        with pytest.raises(ObservabilityError):
            AlertRule(name="", series="s", threshold=1.0)
        with pytest.raises(ObservabilityError):
            AlertRule(name="r", series="s", threshold=1.0, op="!=")
        with pytest.raises(ObservabilityError):
            AlertRule(name="r", series="s", threshold=1.0, consecutive=0)

    @settings(max_examples=80, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=2.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=60,
        ),
        consecutive=st.integers(min_value=1, max_value=5),
    )
    def test_alert_count_matches_breach_episodes(self, values, consecutive):
        """One alert per episode of >= `consecutive` breaching points."""
        recorder = self._recorder_with(
            [(float(i), value) for i, value in enumerate(values)]
        )
        rule = AlertRule(name="r", series="p99", threshold=1.0,
                         consecutive=consecutive)
        events = evaluate_alerts(recorder, [rule])
        episodes = 0
        streak = 0
        for value in values:
            streak = streak + 1 if value > 1.0 else 0
            if streak == consecutive:
                episodes += 1
        assert len(events) == episodes


class TestObservabilityWiring:
    def test_with_timeseries_attaches_recorder(self):
        obs = Observability.with_timeseries(window_s=0.5)
        assert obs.recording
        assert obs.timeseries.window_s == 0.5
        assert not Observability().recording
        assert not Observability.disabled().recording

    def test_ts_helpers_record_when_enabled(self):
        obs = Observability.with_timeseries()
        obs.ts_gauge("g", 0.0, 1.0)
        obs.ts_count("c", 0.0)
        obs.ts_observe("o", 0.0, 2.0)
        assert obs.timeseries.names() == ["c", "g", "o"]

    def test_ts_helpers_no_op_without_recorder(self):
        for obs in (Observability(), Observability.disabled()):
            obs.ts_gauge("g", 0.0, 1.0)
            obs.ts_count("c", 0.0)
            obs.ts_observe("o", 0.0, 2.0)
            assert obs.timeseries is None or not obs.timeseries.names()

    def test_disabled_handle_with_recorder_stays_silent(self):
        obs = Observability(
            enabled=False, timeseries=FlightRecorder()
        )
        obs.ts_gauge("g", 0.0, 1.0)
        assert obs.timeseries.names() == []

    def test_adopt_redirects_recorder(self):
        mine = Observability.with_timeseries()
        machine_side = Observability()
        machine_side.adopt(mine)
        machine_side.ts_gauge("g", 0.0, 1.0)
        assert mine.timeseries.names() == ["g"]

    def test_ensure_timeseries_is_idempotent(self):
        obs = Observability()
        recorder = obs.ensure_timeseries(window_s=0.125)
        assert obs.ensure_timeseries() is recorder
        assert recorder.window_s == 0.125
