"""Wear-aware GC policy and the config-sweep utility."""

import pytest

from repro.analysis.sweep import (
    SweepResult,
    activepy_speedup_metric,
    sweep_config,
)
from repro.config import SystemConfig
from repro.errors import ReproError, StorageError
from repro.storage.ftl import PageMappingFTL
from repro.storage.nand import FlashArray, FlashGeometry
from repro.units import GB


def churn(victim_policy: str, writes: int = 4000) -> PageMappingFTL:
    array = FlashArray(FlashGeometry(
        channels=2, blocks_per_channel=8, pages_per_block=16,
    ))
    ftl = PageMappingFTL(
        array, overprovision_fraction=0.4, victim_policy=victim_policy,
        wear_weight=2.0,
    )
    # Heavily skewed update pattern: a tiny hot set plus a cold rest,
    # the classic wear-leveling stressor.
    hot = max(2, ftl.logical_pages // 20)
    for lpn in range(ftl.logical_pages):
        ftl.write(lpn)  # cold data written once
    for i in range(writes):
        ftl.write(i % hot)
    return ftl


class TestWearAwareGc:
    def test_wear_aware_tightens_erase_spread(self):
        greedy = churn("greedy")
        aware = churn("wear_aware")
        assert aware.erase_count_spread() <= greedy.erase_count_spread()

    def test_both_policies_preserve_mappings(self):
        for policy in ("greedy", "wear_aware"):
            ftl = churn(policy, writes=1500)
            for lpn in range(ftl.logical_pages):
                if ftl.is_mapped(lpn):
                    ftl.read(lpn)

    def test_wear_aware_costs_some_amplification(self):
        greedy = churn("greedy")
        aware = churn("wear_aware")
        # The tradeoff direction: wear awareness never reduces WA.
        assert aware.write_amplification() >= greedy.write_amplification() - 0.05

    def test_policy_validation(self):
        array = FlashArray(FlashGeometry(channels=1, blocks_per_channel=2))
        with pytest.raises(StorageError):
            PageMappingFTL(array, victim_policy="random")
        with pytest.raises(StorageError):
            PageMappingFTL(array, wear_weight=-1)


class TestSweepUtility:
    def test_sweep_validates(self):
        with pytest.raises(ReproError):
            sweep_config("bw_d2h", [], metric=lambda c: 1.0)
        with pytest.raises(ReproError):
            sweep_config("not_a_field", [1], metric=lambda c: 1.0)

    def test_sweep_evaluates_each_point(self):
        result = sweep_config(
            "cse_ips", [1e9, 2e9, 4e9],
            metric=lambda config: config.device_speed_ratio,
        )
        assert result.metrics == [8.0, 4.0, 2.0]
        assert result.is_monotone(increasing=False)

    def test_monotonicity_helper(self):
        rising = SweepResult("f", [])
        rising.points = [  # type: ignore[assignment]
            type("P", (), {"value": v, "metric": m})()
            for v, m in ((1, 1.0), (2, 2.0))
        ]
        assert rising.is_monotone(increasing=True)

    def test_isp_profit_falls_with_faster_host_storage(self):
        # The whole premise of ISP: it lives off the host's narrow
        # storage path.  Widen that path and the profit must shrink.
        result = sweep_config(
            "bw_host_storage", [1.0 * GB, 2.0 * GB, 6.0 * GB],
            metric=activepy_speedup_metric("tpch_q6"),
        )
        assert result.is_monotone(increasing=False)
        assert result.metrics[0] > 1.3
        assert result.metrics[-1] < result.metrics[0]
