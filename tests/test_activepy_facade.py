"""The ActivePy facade: the full pipeline on the toy program."""

import pytest

from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.runtime.planner import CSD
from repro.baselines import StaticIspBaseline, run_c_baseline

from .conftest import make_toy_dataset, make_toy_program


class TestEndToEnd:
    def test_report_exposes_every_stage(self, config, toy_program, toy_dataset):
        report = ActivePy(config).run(toy_program, toy_dataset)
        assert report.program_name == "toy"
        assert len(report.sampling.fits) == 3
        assert len(report.estimates) == 3
        assert len(report.plan.assignments) == 3
        assert report.result.total_seconds > 0
        assert report.total_seconds > report.result.total_seconds

    def test_overhead_is_sampling_plus_compile(self, config, toy_program, toy_dataset):
        report = ActivePy(config).run(toy_program, toy_dataset)
        expected = report.sampling.sampling_seconds + report.compiled.compile_seconds
        assert report.overhead_seconds == pytest.approx(expected, rel=1e-6)

    def test_finds_the_oracle_plan_on_clean_costs(self, config, toy_program, toy_dataset):
        # The toy program's cost laws are exact, so ActivePy must pick
        # exactly the programmer-directed regions (the paper's Fig. 4
        # "identified exactly the same set" claim).
        report = ActivePy(config).run(toy_program, toy_dataset)
        oracle = StaticIspBaseline(config).tune(toy_program, toy_dataset.n_records)
        assert report.plan.assignments == oracle.assignments

    def test_beats_c_baseline(self, config, toy_program, toy_dataset):
        report = ActivePy(config).run(toy_program, toy_dataset)
        baseline = run_c_baseline(toy_program, toy_dataset, config=config)
        assert report.total_seconds < baseline.total_seconds

    def test_dataset_registered_on_device(self, config, toy_program, toy_dataset):
        machine = build_machine(config)
        ActivePy(config).run(toy_program, toy_dataset, machine=machine)
        assert machine.csd.holds_dataset(toy_dataset.name)

    def test_binaries_distributed_through_bar(self, config, toy_program, toy_dataset):
        machine = build_machine(config)
        report = ActivePy(config).run(toy_program, toy_dataset, machine=machine)
        for index in report.plan.csd_lines:
            name = toy_program[index].name
            assert machine.csd.bar.binary_address(f"toy.{name}") is not None

    def test_migration_disabled_variant_runs(self, config, toy_program, toy_dataset):
        report = ActivePy(config, migration_enabled=False).run(
            toy_program, toy_dataset, progress_triggers=[(0.5, 0.1)]
        )
        assert not report.result.migrated

    def test_migration_enabled_reacts_to_stress(self, config, toy_program, toy_dataset):
        report = ActivePy(config, migration_enabled=True).run(
            toy_program, toy_dataset, progress_triggers=[(0.5, 0.05)]
        )
        if CSD in report.plan.assignments:
            assert report.result.migrated


class TestProjectionQuality:
    def test_projected_time_close_to_executed(self, config, toy_program, toy_dataset):
        # The plan's T_csd projection and the simulator's execution
        # must agree within the mode/latency slack — otherwise the
        # planner and executor model different machines.
        report = ActivePy(config).run(toy_program, toy_dataset)
        assert report.result.total_seconds == pytest.approx(
            report.plan.t_csd, rel=0.05
        )
