"""The observability CLI: repro metrics run / repro trace run."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import validate_chrome_trace

_SCALE = "0.0078125"  # 2**-7


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        for argv in (
            ["metrics", "run", "tpch_q6"],
            ["trace", "run", "tpch_q6"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_bare_metrics_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["metrics"])


class TestMetricsRun:
    def test_prints_metric_report(self, capsys):
        assert main(["metrics", "run", "tpch_q6", "--scale", _SCALE]) == 0
        out = capsys.readouterr().out
        assert "executor.lines" in out
        assert "dispatch.invocations" in out

    def test_json_snapshot(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["metrics", "run", "tpch_q6", "--scale", _SCALE,
                     "--json", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["executor.lines"] > 0


class TestTraceRun:
    def test_writes_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "run", "tpch_q6", "--scale", _SCALE,
                     "--out", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        assert "perfetto" in capsys.readouterr().out
