"""Loop folding in the plain-Python frontend, plus liveness properties."""

import ast

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import (
    FrontendError,
    live_after_each,
    names_read,
    program_from_function,
)


def smooth(signal):
    x = signal * 1.0
    for _ in range(8):
        x = (x + np.roll(x, 1)) * 0.5
    return float(np.sum(x))


def _signal_payload(n, full=None):
    rng = np.random.default_rng(61)
    return {"signal": rng.normal(size=n)}


class TestLoopFolding:
    def test_loop_becomes_one_line(self):
        program = program_from_function(smooth, record_bytes=8.0)
        assert len(program) == 3
        assert program[1].name == "L1_x_loop"

    def test_trip_count_multiplies_instructions(self):
        looped = program_from_function(smooth, record_bytes=8.0)

        def one_pass(signal):
            x = signal * 1.0
            x = (x + np.roll(x, 1)) * 0.5
            return float(np.sum(x))

        single = program_from_function(one_pass, record_bytes=8.0)
        assert looped[1].instructions(1000) == pytest.approx(
            8 * single[1].instructions(1000)
        )

    def test_trips_become_dynamic_instances(self):
        program = program_from_function(smooth, record_bytes=8.0)
        assert program[1].chunks == 8

    def test_folded_loop_computes_correctly(self):
        program = program_from_function(smooth, record_bytes=8.0)
        payload = _signal_payload(300)
        result = program.run_kernels(dict(payload))
        assert result["__result__"] == pytest.approx(
            smooth(payload["signal"])
        )

    def test_dynamic_trip_count_rejected(self):
        def dynamic(data, k):
            x = data
            for _ in range(int(k)):
                x = x * 2
            return float(x.sum())

        with pytest.raises(FrontendError, match="constant"):
            program_from_function(dynamic, record_bytes=8.0)

    def test_nested_loops_rejected(self):
        def nested(data):
            x = data
            for _ in range(3):
                for _ in range(3):
                    x = x * 2
            return float(x.sum())

        with pytest.raises(FrontendError, match="straight-line"):
            program_from_function(nested, record_bytes=8.0)

    def test_branch_inside_loop_rejected(self):
        def branching(data):
            x = data
            for _ in range(3):
                if x.sum() > 0:
                    x = x * 2
            return float(x.sum())

        with pytest.raises(FrontendError):
            program_from_function(branching, record_bytes=8.0)


# --- property-based liveness checks --------------------------------------

_VARS = "abcdef"


@st.composite
def straight_line_bodies(draw):
    """Random chains of 'x = y + z' statements ending in a return."""
    k = draw(st.integers(min_value=1, max_value=8))
    lines = []
    defined = {"a"}
    for i in range(k):
        target = draw(st.sampled_from(_VARS))
        lhs = draw(st.sampled_from(sorted(defined)))
        rhs = draw(st.sampled_from(sorted(defined)))
        lines.append(f"{target} = {lhs} + {rhs}")
        defined.add(target)
    lines.append(f"__out__ = {draw(st.sampled_from(sorted(defined)))}")
    return lines


@given(straight_line_bodies())
@settings(max_examples=80, deadline=None)
def test_liveness_matches_brute_force(lines):
    body = ast.parse("\n".join(lines)).body
    live = live_after_each(body)
    for index in range(len(body)):
        # Brute force: a name is live after line i if some later line
        # reads it before (re)writing it.
        expected = set()
        killed = set()
        for later in body[index + 1:]:
            expected |= names_read(later) - killed
            from repro.frontend import names_written

            killed |= names_written(later)
        assert live[index] == expected


@given(straight_line_bodies())
@settings(max_examples=40, deadline=None)
def test_liveness_never_exceeds_defined_names(lines):
    body = ast.parse("\n".join(lines)).body
    for live in live_after_each(body):
        assert live <= set(_VARS) | {"a", "__out__"}
