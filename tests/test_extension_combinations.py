"""Extensions composed together: the features must not fight.

Each extension (multi-CSD, tenant loads, NVMe-oF, overlap, readmission,
noise) is tested alone elsewhere; these scenarios stack them.
"""

import pytest

from repro.config import SystemConfig
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.storage.tenant import BackgroundLoad
from repro.baselines import run_c_baseline
from repro.workloads import get_workload

from .conftest import make_toy_dataset, make_toy_program


class TestStackedExtensions:
    def test_nvmeof_with_overlap_and_noise(self):
        config = SystemConfig(
            attachment="nvmeof",
            overlap_io_compute=True,
            profiler_noise=0.02,
        )
        workload = get_workload("tpch_q6")
        baseline = run_c_baseline(workload.program, workload.dataset, config=config)
        report = ActivePy(config).run(workload.program, workload.dataset)
        assert baseline.total_seconds / report.total_seconds > 1.1

    def test_multi_csd_with_tenant_on_the_other_device(self, config):
        machine = build_machine(config, num_csds=2)
        dataset = make_toy_dataset()
        machine.csds[1].store_dataset(dataset.name, dataset.raw_bytes)
        # A heavy tenant thrashes the *primary* device forever.
        BackgroundLoad(
            machine.csds[0].cse, period_s=0.5, busy_fraction=0.9,
            available_during=0.05,
        ).start()
        report = ActivePy(config).run(
            make_toy_program(), dataset, machine=machine
        )
        # Our run on csd1 neither migrates nor slows down.
        assert not report.result.migrated
        clean = ActivePy(config).run(make_toy_program(), make_toy_dataset())
        assert report.total_seconds == pytest.approx(
            clean.total_seconds, rel=1e-9
        )

    def test_readmission_with_tenant_bursts(self):
        # A burst hits mid-scan, then the tenant leaves; with
        # readmission the later planned-CSD work may return, and the
        # run must always complete sanely either way.
        config = SystemConfig(readmission_enabled=True)
        machine = build_machine(config)
        load = BackgroundLoad(
            machine.csd.cse, period_s=10.0, busy_fraction=0.04,
            available_during=0.05, start_at=0.2,
        ).start()
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        assert report.result.total_seconds > 0
        assert load.bursts_started >= 1

    def test_overlap_with_migration(self):
        config = SystemConfig(overlap_io_compute=True)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(),
            progress_triggers=[(0.3, 0.05)],
        )
        assert report.result.migrated
        baseline = run_c_baseline(
            make_toy_program(), make_toy_dataset(), config=config
        )
        # Migration still rescues the run to near-baseline.
        assert report.total_seconds < 2.0 * baseline.total_seconds

    def test_trace_with_everything_on(self):
        config = SystemConfig(
            overlap_io_compute=True, readmission_enabled=True,
            profiler_noise=0.01,
        )
        machine = build_machine(config, num_csds=2)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine,
            progress_triggers=[(0.5, 0.3)], trace=True,
        )
        assert report.timeline is not None
        assert report.timeline.makespan > 0

    def test_selfcheck_unaffected_by_extension_defaults(self):
        # All extensions default off; the pinned numbers must hold.
        from repro.analysis.selfcheck import run_selfcheck

        assert run_selfcheck().ok
