"""Critical-path reconstruction and the whole-run sum identity.

The acceptance bar for the attribution layer: on every workload in the
benchmark rotation, every simulated nanosecond lands in exactly one
component bucket and the buckets sum back to the run's total *exactly*
(residual ``0.0``, not approximately), while the run itself stays
bit-identical to an unobserved one.
"""

import pytest

from repro.errors import ObservabilityError
from repro.obs import Observability, build_critical_path
from repro.obs.attribution import AttributedSegment, TimeAttributor
from repro.obs.critical_path import _longest_path
from repro.runtime.activepy import ActivePy, RunOptions
from repro.workloads import get_workload

_SCALE = 2 ** -6
_ROTATION = ("tpch_q6", "kmeans", "blackscholes", "pagerank")


def _run(name, obs=None):
    workload = get_workload(name, scale=_SCALE)
    return ActivePy().run(
        workload.program, workload.dataset, options=RunOptions(obs=obs),
    )


class TestSumIdentityOnRealRuns:
    @pytest.mark.parametrize("name", _ROTATION)
    def test_every_nanosecond_attributed_exactly_once(self, name):
        plain = _run(name)
        obs = Observability.with_attribution()
        attributed = _run(name, obs=obs)
        # Observability must never perturb simulated time.
        assert attributed.total_seconds == plain.total_seconds
        report = obs.attribution_report()
        # The identity is exact, not a tolerance check.
        assert report.residual == 0.0
        assert report.total_attributed == report.end - report.start

    @pytest.mark.parametrize("name", _ROTATION)
    def test_critical_path_spans_the_whole_window(self, name):
        obs = Observability.with_attribution()
        _run(name, obs=obs)
        path = build_critical_path(obs)
        # One serialised clock => one chain covering the full window,
        # and the compensated step sum telescopes exactly.
        assert path.total_seconds == path.end - path.start
        assert path.steps[0].start == path.start
        assert path.steps[-1].end == path.end
        for a, b in zip(path.steps, path.steps[1:]):
            assert a.end == b.start

    def test_steps_are_labelled_with_runtime_spans(self):
        obs = Observability.with_attribution()
        _run("tpch_q6", obs=obs)
        labels = {step.label for step in build_critical_path(obs).steps}
        assert "sampling-phase" in labels
        assert "codegen" in labels
        # Per-line labels from the executor's spans.
        assert any("scan_filter_q6" in label for label in labels)

    def test_path_components_agree_with_attribution(self):
        obs = Observability.with_attribution()
        _run("tpch_q6", obs=obs)
        path = build_critical_path(obs)
        # Single serialised chain: path time per component equals the
        # attributed time per component (within fp association noise).
        by_path = path.seconds_by_component()
        for name, seconds in path.attribution.seconds_by_component.items():
            assert by_path.get(name, 0.0) == pytest.approx(seconds, abs=1e-9)

    def test_bottleneck_ranking_is_descending(self):
        obs = Observability.with_attribution()
        _run("kmeans", obs=obs)
        ranked = build_critical_path(obs).rank_bottlenecks()
        assert ranked
        assert all(a[1] >= b[1] for a, b in zip(ranked, ranked[1:]))

    def test_windowed_path_since_mark(self):
        obs = Observability.with_attribution()
        _run("tpch_q6", obs=obs)
        mark = obs.attribution.mark()
        _run("tpch_q6", obs=obs)
        path = build_critical_path(obs, since=mark)
        assert path.total_seconds == path.end - path.start
        assert path.attribution.residual == 0.0


class TestDagWalk:
    def test_longest_path_prefers_the_heavier_chain(self):
        # Two parallel chains over [0, 3]; the cse chain is longer in
        # covered time and must win.
        segments = [
            AttributedSegment(0.0, 1.0, "host"),
            AttributedSegment(0.0, 2.0, "cse"),
            AttributedSegment(2.0, 3.0, "cse"),
            AttributedSegment(1.0, 1.5, "host"),
        ]
        path = _longest_path(segments)
        assert [s.component for s in path] == ["cse", "cse"]

    def test_longest_path_handles_gaps(self):
        # A window clipped mid-run: two disjoint chains compete.
        segments = [
            AttributedSegment(0.0, 1.0, "host"),
            AttributedSegment(5.0, 9.0, "cse"),
        ]
        path = _longest_path(segments)
        assert [s.component for s in path] == ["cse"]

    def test_empty_input(self):
        assert _longest_path([]) == []


class TestErrors:
    def test_requires_an_attributor(self):
        with pytest.raises(ObservabilityError, match="with_attribution"):
            build_critical_path(Observability.with_tracing())

    def test_render_truncates(self):
        obs = Observability.with_attribution()
        _run("tpch_q6", obs=obs)
        text = build_critical_path(obs).render(max_steps=3)
        assert "more steps" in text
        assert "bottleneck ranking" in text

    def test_works_without_a_tracer(self):
        obs = Observability.with_attribution(tracing=False)
        _run("tpch_q6", obs=obs)
        path = build_critical_path(obs)
        # No spans: labels fall back to the component names.
        assert path.total_seconds == path.end - path.start
        assert all(step.label == step.component for step in path.steps)

    def test_attributor_alone_report_on_handle(self):
        attributor = TimeAttributor()
        attributor.record(0.0, 1.0, "cse")
        obs = Observability(attribution=attributor)
        path = build_critical_path(obs)
        assert path.total_seconds == 1.0
