"""Equation 1 and per-line estimate construction."""

import pytest

from repro.config import SystemConfig
from repro.errors import PlanningError
from repro.hw.compute import ComputeUnit
from repro.runtime.estimator import (
    build_estimates,
    calibrate_by_probe,
    calibration_constant,
    net_profit,
)
from repro.runtime.sampling import SamplingPhase
from repro.baselines import ground_truth_estimates
from repro.sim.clock import SimClock

from .conftest import make_toy_dataset, make_toy_program


class TestNetProfit:
    def test_positive_when_reduction_dominates(self):
        # 1 GB in, 1 MB out, device twice as slow on 0.1 s of compute:
        # saving ~0.33 s of transfer against 0.1 s of extra compute.
        s = net_profit(
            raw_bytes=1e9, processed_bytes=1e6,
            ct_host=0.1, ct_device=0.2, bw_d2h=3e9,
        )
        assert s > 0

    def test_negative_for_compute_bound_region(self):
        s = net_profit(
            raw_bytes=1e9, processed_bytes=1e6,
            ct_host=2.0, ct_device=4.0, bw_d2h=3e9,
        )
        assert s < 0

    def test_zero_reduction_zero_speed_gap(self):
        s = net_profit(1e9, 1e9, ct_host=1.0, ct_device=1.0, bw_d2h=3e9)
        assert s == pytest.approx(0.0)

    def test_invalid_bandwidth(self):
        with pytest.raises(PlanningError):
            net_profit(1, 1, 1, 1, bw_d2h=0)


class TestCalibrationConstant:
    def test_from_counters(self, config, machine):
        counters = machine.csd.cse.read_performance_counters()
        c = calibration_constant(config, counters)
        assert c == pytest.approx(config.device_speed_ratio)

    def test_without_counters_falls_back_to_config(self, config):
        assert calibration_constant(config, None) == pytest.approx(2.0)

    def test_probe_measures_ratio(self):
        clock = SimClock()
        host = ComputeUnit("host", ips=8e9, clock=clock)
        device = ComputeUnit("csd", ips=2e9, clock=clock)
        assert calibrate_by_probe(host, device) == pytest.approx(4.0)

    def test_bad_counters(self, config):
        with pytest.raises(PlanningError):
            calibration_constant(config, {"ipc_nominal": 0, "clock_hz": 1e9})


class TestBuildEstimates:
    def test_matches_ground_truth_for_clean_laws(self, config):
        # The toy program's costs are exact power laws, so the fitted
        # extrapolation must agree with the analytic ground truth.
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = SamplingPhase(config).run(program, dataset)
        estimates = build_estimates(report, dataset.n_records, config)
        truths = ground_truth_estimates(program, dataset.n_records, config)
        for estimate, truth in zip(estimates, truths):
            assert estimate.ct_host == pytest.approx(truth.ct_host, rel=1e-3)
            assert estimate.ct_device == pytest.approx(truth.ct_device, rel=1e-3)
            assert estimate.d_out == pytest.approx(truth.d_out, rel=1e-3)

    def test_device_access_uses_internal_bandwidth(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = SamplingPhase(config).run(program, dataset)
        estimates = build_estimates(report, dataset.n_records, config)
        scan = estimates[0]
        host_access = scan.d_storage / config.bw_host_storage
        device_access = scan.d_storage / config.bw_internal
        assert scan.ct_host - scan.compute_host == pytest.approx(host_access, rel=1e-6)
        expected_device = scan.compute_host * config.device_speed_ratio + device_access
        assert scan.ct_device == pytest.approx(expected_device, rel=1e-6)

    def test_d_in_chains(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = SamplingPhase(config).run(program, dataset)
        estimates = build_estimates(report, dataset.n_records, config)
        assert estimates[0].d_in == 0.0
        assert estimates[1].d_in == estimates[0].d_out

    def test_invalid_records(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = SamplingPhase(config).run(program, dataset)
        with pytest.raises(PlanningError):
            build_estimates(report, 0, config)
