"""TPC-H substrate: datagen selectivities, engine operators, queries."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.tpch.datagen import (
    generate_lineitem,
    generate_part,
    part_rows_for,
)
from repro.workloads.tpch.engine import filter_rows, group_aggregate, hash_join
from repro.workloads.tpch.queries import (
    q1_reference,
    q6_reference,
    q6_selectivity,
    q14_reference,
)
from repro.workloads.tpch.schema import EPOCH, MAX_DATE_INDEX, date_index


class TestSchema:
    def test_epoch_is_day_zero(self):
        assert date_index(1992, 1, 1) == 0

    def test_range_end(self):
        assert date_index(1998, 12, 1) == MAX_DATE_INDEX

    def test_pre_epoch_rejected(self):
        with pytest.raises(WorkloadError):
            date_index(1991, 12, 31)


class TestDatagen:
    def test_deterministic(self):
        a = generate_lineitem(1000)
        b = generate_lineitem(1000)
        assert np.array_equal(a["shipdate"], b["shipdate"])

    def test_columns_aligned(self):
        table = generate_lineitem(500)
        assert all(column.shape == (500,) for column in table.values())

    def test_value_domains(self):
        table = generate_lineitem(5000)
        assert table["quantity"].min() >= 1 and table["quantity"].max() <= 50
        assert table["discount"].min() >= 0.0 and table["discount"].max() <= 0.10
        assert table["shipdate"].min() >= 0
        assert table["shipdate"].max() <= MAX_DATE_INDEX

    def test_q6_selectivity_matches_spec(self):
        # year x discount band x quantity cut ~ 1.8%.
        table = generate_lineitem(300_000)
        assert q6_selectivity(table) == pytest.approx(0.0181, rel=0.15)

    def test_part_keys_unique(self):
        part = generate_part(1000)
        assert np.unique(part["p_partkey"]).size == 1000

    def test_promo_fraction(self):
        part = generate_part(50_000)
        assert np.mean(part["p_is_promo"]) == pytest.approx(0.2, abs=0.02)

    def test_partkeys_join_cleanly(self):
        lineitem = generate_lineitem(3000)
        n_parts = part_rows_for(3000)
        assert lineitem["partkey"].max() < n_parts

    def test_validation(self):
        with pytest.raises(WorkloadError):
            generate_lineitem(0)
        with pytest.raises(WorkloadError):
            generate_part(0)


class TestEngine:
    def test_filter_rows(self):
        table = {"a": np.arange(5), "b": np.arange(5) * 10}
        kept = filter_rows(table, table["a"] % 2 == 0)
        assert kept["a"].tolist() == [0, 2, 4]
        assert kept["b"].tolist() == [0, 20, 40]

    def test_filter_checks_mask_shape(self):
        with pytest.raises(WorkloadError):
            filter_rows({"a": np.arange(5)}, np.ones(3, dtype=bool))

    def test_ragged_table_rejected(self):
        with pytest.raises(WorkloadError):
            filter_rows({"a": np.arange(5), "b": np.arange(3)}, np.ones(5, bool))

    def test_group_aggregate_matches_manual(self):
        table = {
            "key": np.array([1, 0, 1, 0, 1]),
            "val": np.array([10.0, 1.0, 20.0, 2.0, 30.0]),
        }
        grouped = group_aggregate(
            table, keys=("key",),
            aggregates={"total": ("val", np.sum), "mean": ("val", np.mean)},
        )
        assert grouped["key"].tolist() == [0, 1]
        assert grouped["total"].tolist() == [3.0, 60.0]
        assert grouped["mean"].tolist() == [1.5, 20.0]

    def test_group_aggregate_two_keys(self):
        table = {
            "k1": np.array([0, 0, 1, 1]),
            "k2": np.array([0, 1, 0, 1]),
            "val": np.ones(4),
        }
        grouped = group_aggregate(
            table, keys=("k1", "k2"),
            aggregates={"count": ("val", lambda v: np.float64(v.size))},
        )
        assert len(grouped["k1"]) == 4  # all four combinations present

    def test_group_aggregate_empty_table(self):
        table = {"key": np.array([], dtype=np.int64), "val": np.array([])}
        grouped = group_aggregate(
            table, keys=("key",), aggregates={"total": ("val", np.sum)},
        )
        assert grouped["key"].size == 0

    def test_group_requires_keys(self):
        with pytest.raises(WorkloadError):
            group_aggregate({"a": np.arange(3)}, keys=(), aggregates={})

    def test_hash_join_matches_manual(self):
        left = {"fk": np.array([2, 0, 9, 1])}
        right = {"pk": np.array([0, 1, 2]), "flag": np.array([True, False, True])}
        joined = hash_join(left, right, "fk", "pk", right_columns=("flag",))
        # fk 9 has no match and is dropped.
        assert joined["fk"].tolist() == [2, 0, 1]
        assert joined["flag"].tolist() == [True, True, False]

    def test_hash_join_requires_unique_right_keys(self):
        left = {"fk": np.array([0])}
        right = {"pk": np.array([0, 0]), "x": np.array([1, 2])}
        with pytest.raises(WorkloadError):
            hash_join(left, right, "fk", "pk", right_columns=("x",))


class TestQueries:
    def test_q1_group_structure(self):
        lineitem = generate_lineitem(60_000)
        result = q1_reference(lineitem)
        # 3 return flags x 2 statuses = 6 groups.
        assert len(result["returnflag"]) == 6
        total_rows = int(np.sum(result["count_order"]))
        cutoff = date_index(1998, 12, 1) - 90
        assert total_rows == int(np.sum(lineitem["shipdate"] <= cutoff))

    def test_q1_aggregates_consistent(self):
        lineitem = generate_lineitem(30_000)
        result = q1_reference(lineitem)
        for i in range(len(result["returnflag"])):
            assert result["sum_disc_price"][i] <= result["sum_base_price"][i]
            assert result["sum_charge"][i] >= result["sum_disc_price"][i]

    def test_q6_matches_brute_force(self):
        lineitem = generate_lineitem(50_000)
        start, end = date_index(1994, 1, 1), date_index(1995, 1, 1)
        mask = (
            (lineitem["shipdate"] >= start) & (lineitem["shipdate"] < end)
            & (lineitem["discount"] >= 0.05 - 1e-9)
            & (lineitem["discount"] <= 0.07 + 1e-9)
            & (lineitem["quantity"] < 24)
        )
        expected = float(np.sum(
            lineitem["extendedprice"][mask] * lineitem["discount"][mask]
        ))
        assert q6_reference(lineitem) == pytest.approx(expected)

    def test_q14_ratio_in_sensible_band(self):
        lineitem = generate_lineitem(200_000)
        part = generate_part(part_rows_for(200_000))
        ratio = q14_reference(lineitem, part)
        # ~20% of parts are PROMO, revenue roughly proportional.
        assert 10.0 < ratio < 30.0

    def test_q14_zero_revenue_guarded(self):
        lineitem = generate_lineitem(10)
        # Push every shipdate outside the query month.
        lineitem["shipdate"][:] = 0
        part = generate_part(part_rows_for(10))
        assert q14_reference(lineitem, part) == 0.0
