"""Shape assertions for every reproduced table and figure.

We do not assert the paper's absolute numbers — our substrate is a
simulator, not the authors' testbed — but the qualitative structure
must hold: who wins, by roughly what factor, and where the crossovers
fall.  Each experiment runs once per test session (module-scoped
fixtures) and multiple claims are asserted against it.
"""

import pytest

from repro.analysis.experiments import (
    FIG2_WORKLOADS,
    TABLE1_WORKLOADS,
    run_fig2,
    run_fig4,
    run_fig5,
    run_overhead_ladder,
    run_prediction_accuracy,
    run_table1,
)
from repro.units import GB


@pytest.fixture(scope="module")
def fig2():
    return run_fig2(availabilities=(1.0, 0.8, 0.6, 0.4, 0.2, 0.1))


@pytest.fixture(scope="module")
def fig4():
    return run_fig4()


@pytest.fixture(scope="module")
def fig5():
    return run_fig5()


@pytest.fixture(scope="module")
def ladder():
    return run_overhead_ladder()


@pytest.fixture(scope="module")
def prediction():
    return run_prediction_accuracy()


class TestTable1:
    def test_nine_applications(self):
        rows = run_table1()
        assert len(rows) == 9

    def test_sizes_span_papers_range(self):
        rows = run_table1()
        sizes = [row.data_bytes for row in rows]
        assert min(sizes) == pytest.approx(5.3 * GB, rel=0.01)
        assert max(sizes) == pytest.approx(9.4 * GB, rel=0.01)
        for row in rows:
            assert row.data_bytes == pytest.approx(row.paper_bytes, rel=0.01)

    def test_region_counts_are_line_level(self):
        for row in run_table1():
            assert 2 <= row.sese_regions <= 6


class TestFig2:
    """Static C ISP collapses as CSE availability drops (paper Fig. 2)."""

    def test_wins_at_full_availability(self, fig2):
        # The paper reports ~1.25x for the trio at 100%.
        assert 1.15 < fig2.mean_at(1.0) < 1.45

    def test_loses_under_heavy_contention(self, fig2):
        for name in FIG2_WORKLOADS:
            series = fig2.series[name]
            assert series[-1] < 0.35  # at 10% availability

    def test_monotone_decline(self, fig2):
        for name in FIG2_WORKLOADS:
            series = fig2.series[name]
            assert all(a >= b for a, b in zip(series, series[1:]))

    def test_crossover_in_mid_availability_band(self, fig2):
        # Each workload flips from win to loss somewhere in the middle
        # of the sweep (the paper puts it below ~60%).
        for name in FIG2_WORKLOADS:
            crossover = fig2.crossover(name)
            assert crossover is not None
            assert 0.2 <= crossover <= 0.8


class TestFig4:
    """ActivePy matches programmer-directed static ISP (paper Fig. 4)."""

    def test_static_geomean_near_paper(self, fig4):
        assert fig4.static_geomean == pytest.approx(1.33, abs=0.08)

    def test_activepy_geomean_near_paper(self, fig4):
        # Paper: 1.34x; ours carries honest sampling cost, so allow a
        # slightly wider band below.
        assert 1.20 <= fig4.activepy_geomean <= 1.45

    def test_activepy_close_to_oracle(self, fig4):
        assert fig4.activepy_geomean >= 0.92 * fig4.static_geomean

    def test_every_workload_benefits_from_isp(self, fig4):
        for row in fig4.rows:
            assert row.static_speedup > 1.05
            assert row.activepy_speedup > 1.0

    def test_identifies_exactly_the_oracle_regions_except_csr(self, fig4):
        # Paper: "ActivePy successfully identified exactly the same set
        # of code regions ... as the optimal programmer-directed
        # configuration".  The CSR workloads are the documented
        # exception (§V): over-estimated CSR volume makes ActivePy
        # conservative there.
        for row in fig4.rows:
            if row.name == "pagerank":
                continue
            assert row.same_regions, row.name

    def test_csr_conservatism_does_no_harm(self, fig4):
        # Under-estimating the CSD never makes ActivePy slower than the
        # no-ISP baseline (paper: "at least makes no harm").
        row = fig4.row("pagerank")
        assert not row.same_regions
        assert row.activepy_speedup > 1.0
        assert row.activepy_speedup <= row.static_speedup

    def test_baseline_times_in_paper_band(self, fig4):
        # Paper: 11 s (TPC-H-6) to 73 s (KMeans).  Same order of
        # magnitude and the same extremes.
        times = {row.name: row.baseline_seconds for row in fig4.rows}
        assert max(times, key=times.get) == "kmeans"
        assert 3.0 < min(times.values()) < 15.0
        assert 30.0 < times["kmeans"] < 90.0


class TestFig5:
    """Dynamic migration under mid-run CSE contention (paper Fig. 5)."""

    def test_migration_always_at_least_as_good(self, fig5):
        # Paper: full ActivePy outperforms the no-migration ablation in
        # all cases except Blackscholes at 50%.
        violations = [
            row.name for row in fig5.rows
            if row.with_migration_speedup < row.without_migration_speedup * 0.98
        ]
        assert len(violations) <= 1

    def test_big_gain_at_ten_percent(self, fig5):
        # Paper: 2.82x over the no-migration ablation at 10%.
        assert fig5.mean_gain(0.1) > 2.0

    def test_deep_loss_without_migration_at_ten_percent(self, fig5):
        # Paper: 67% average, up to 88%, performance loss.
        mean_without = fig5.mean_without(0.1)
        assert mean_without < 0.45  # >55% loss on average
        worst = min(r.without_migration_speedup for r in fig5.at(0.1))
        assert worst < 0.35

    def test_migration_lands_near_baseline(self, fig5):
        # Paper: ~8% slowdown vs the no-CSD baseline after migrating.
        assert 0.80 < fig5.mean_with(0.1) < 1.25

    def test_migrations_actually_happened(self, fig5):
        migrated = [row for row in fig5.at(0.1) if row.migrations > 0]
        assert len(migrated) >= 7  # nearly every workload moves

    def test_fifty_percent_case_is_mild(self, fig5):
        # At 50% the ablation loses moderately, not catastrophically.
        assert fig5.mean_without(0.5) > 0.8


class TestOverheadLadder:
    """The §V language-runtime result: +41% -> +20% -> ~C."""

    def test_python_overhead(self, ladder):
        assert ladder.mean_overhead("python") == pytest.approx(0.41, abs=0.02)

    def test_cython_overhead(self, ladder):
        assert ladder.mean_overhead("cython") == pytest.approx(0.20, abs=0.02)

    def test_activepy_near_c(self, ladder):
        assert ladder.mean_overhead("activepy") < 0.03

    def test_ladder_strictly_ordered_per_workload(self, ladder):
        for name, modes in ladder.per_workload.items():
            assert modes["c"] == 1.0
            assert modes["activepy"] < modes["cython"] < modes["python"], name


class TestPredictionAccuracy:
    """The §V accuracy discussion."""

    def test_geomean_error_single_digit(self, prediction):
        # Paper: 9% discounting outliers.  Our noiseless profiler lands
        # lower; single-digit percent is the claim that must hold.
        assert prediction.geomean_error_excluding_outliers() < 0.09

    def test_csr_overestimated_up_to_2_4x(self, prediction):
        # Paper: "over-estimate the data volume ... by up to 2.41x".
        assert 1.8 < prediction.max_csr_overestimate() < 3.0

    def test_csr_always_overestimated(self, prediction):
        assert prediction.csr_always_overestimated()

    def test_outliers_are_the_sparse_structures(self, prediction):
        outlier_workloads = {row.workload for row in prediction.outliers()}
        assert outlier_workloads <= {"pagerank", "sparsemv"}
        assert outlier_workloads


class TestExportRoundTrips:
    """Every experiment result must serialise to JSON cleanly."""

    def test_fig2_exports(self, fig2):
        import json

        from repro.analysis import export

        data = json.loads(export.dumps(fig2))
        assert data["experiment"] == "fig2"
        assert set(data["series"]) == set(FIG2_WORKLOADS)
        assert len(data["availabilities"]) == 6

    def test_fig4_exports(self, fig4):
        import json

        from repro.analysis import export

        data = json.loads(export.dumps(fig4))
        assert len(data["rows"]) == 9
        assert data["static_geomean"] == pytest.approx(fig4.static_geomean)

    def test_fig5_exports(self, fig5):
        import json

        from repro.analysis import export

        data = json.loads(export.dumps(fig5))
        assert data["mean_gain_at_10pct"] > 2.0

    def test_ladder_exports(self, ladder):
        import json

        from repro.analysis import export

        data = json.loads(export.dumps(ladder))
        assert data["mean_overheads"]["python"] == pytest.approx(0.41, abs=0.02)

    def test_prediction_exports(self, prediction):
        import json

        from repro.analysis import export

        data = json.loads(export.dumps(prediction))
        outlier_flags = [row["outlier"] for row in data["rows"]]
        assert any(outlier_flags) and not all(outlier_flags)


class TestSamplingOverhead:
    """The §V overhead claim: sampling + codegen is negligible."""

    def test_overhead_small_fraction_of_run(self):
        from repro.runtime.activepy import ActivePy
        from repro.workloads import get_workload

        workload = get_workload("tpch_q6")
        report = ActivePy().run(workload.program, workload.dataset)
        assert report.overhead_seconds < 0.08 * report.total_seconds
