"""Execution timeline recording and rendering."""

import pytest

from repro.analysis.timeline import ExecutionTimeline, merge
from repro.errors import ReproError
from repro.runtime.activepy import ActivePy

from .conftest import make_toy_dataset, make_toy_program


class TestRecording:
    def test_spans_sorted_by_time(self):
        timeline = ExecutionTimeline()
        timeline.record(2.0, 3.0, "host", "compute", "b")
        timeline.record(0.0, 1.0, "host", "compute", "a")
        assert [s.label for s in timeline.spans] == ["a", "b"]

    def test_busy_seconds_per_resource(self):
        timeline = ExecutionTimeline()
        timeline.record(0.0, 1.5, "host", "compute", "a")
        timeline.record(1.5, 2.0, "csd", "compute", "b")
        assert timeline.busy_seconds("host") == pytest.approx(1.5)
        assert timeline.busy_seconds("csd") == pytest.approx(0.5)

    def test_makespan(self):
        timeline = ExecutionTimeline()
        timeline.record(1.0, 2.0, "host", "compute", "a")
        timeline.record(3.0, 5.0, "csd", "compute", "b")
        assert timeline.makespan == pytest.approx(4.0)

    def test_backwards_span_rejected(self):
        with pytest.raises(ReproError):
            ExecutionTimeline().record(2.0, 1.0, "host", "compute", "x")

    def test_span_of(self):
        timeline = ExecutionTimeline()
        timeline.record(0.0, 1.0, "host", "compute", "scan")
        assert timeline.span_of("scan").end == 1.0
        with pytest.raises(ReproError):
            timeline.span_of("nope")

    def test_merge(self):
        a = ExecutionTimeline()
        a.record(0.0, 1.0, "host", "compute", "a")
        b = ExecutionTimeline()
        b.record(1.0, 2.0, "csd", "compute", "b")
        merged = merge([a, b])
        assert len(merged.spans) == 2


class TestRendering:
    def test_empty(self):
        assert ExecutionTimeline().render() == "(empty timeline)"

    def test_lanes_per_resource(self):
        timeline = ExecutionTimeline()
        timeline.record(0.0, 1.0, "host", "compute", "a")
        timeline.record(1.0, 2.0, "csd", "transfer", "b")
        text = timeline.render(width=20)
        assert "host" in text and "csd" in text
        assert "#" in text and ">" in text


class TestIntegrationWithRuntime:
    def test_traced_run_covers_every_line(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = ActivePy(config).run(program, dataset, trace=True)
        timeline = report.timeline
        assert timeline is not None
        labels = {span.label for span in timeline.spans}
        assert {"sampling-phase", "codegen", "scan", "crunch", "reduce"} <= labels

    def test_trace_time_conservation(self, config):
        # Spans on the critical path must tile the run: sampling +
        # compile + per-line spans account for the whole duration.
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = ActivePy(config).run(program, dataset, trace=True)
        covered = sum(
            span.duration for span in report.timeline.spans
            if span.kind in ("sampling", "compile", "compute")
        )
        assert covered == pytest.approx(report.total_seconds, rel=0.02)

    def test_untraced_run_has_no_timeline(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = ActivePy(config).run(program, dataset)
        assert report.timeline is None

    def test_migration_span_recorded(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        report = ActivePy(config).run(
            program, dataset, trace=True, progress_triggers=[(0.3, 0.05)]
        )
        if report.result.migrated:
            kinds = {span.kind for span in report.timeline.spans}
            assert "migration" in kinds
