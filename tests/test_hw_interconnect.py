"""Interconnect link: transfer timing and traffic accounting."""

import pytest

from repro.errors import HardwareError
from repro.hw.interconnect import Link
from repro.sim.clock import SimClock


def make_link(bandwidth: float = 3e9, latency: float = 0.0) -> Link:
    return Link("test", bandwidth=bandwidth, clock=SimClock(), latency_s=latency)


class TestTransferTime:
    def test_pure_bandwidth(self):
        link = make_link(bandwidth=3e9)
        assert link.transfer_time(6e9) == pytest.approx(2.0)

    def test_latency_added_once(self):
        link = make_link(bandwidth=1e9, latency=1e-3)
        assert link.transfer_time(1e9) == pytest.approx(1.001)

    def test_zero_bytes_free(self):
        link = make_link(latency=1e-3)
        assert link.transfer_time(0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(HardwareError):
            make_link().transfer_time(-1)


class TestTransfer:
    def test_advances_clock(self):
        link = make_link(bandwidth=2e9)
        link.transfer(4e9)
        assert link.clock.now == pytest.approx(2.0)

    def test_accumulates_stats(self):
        link = make_link()
        link.transfer(1e9)
        link.transfer(2e9)
        assert link.bytes_transferred == pytest.approx(3e9)
        assert link.transfers == 2

    def test_zero_transfer_not_counted(self):
        link = make_link()
        link.transfer(0)
        assert link.transfers == 0
        assert link.clock.now == 0.0

    def test_message_costs_latency_only(self):
        link = make_link(latency=5e-6)
        link.message()
        assert link.clock.now == pytest.approx(5e-6)
        assert link.bytes_transferred == 0

    def test_reset_stats(self):
        link = make_link()
        link.transfer(1e9)
        link.reset_stats()
        assert link.bytes_transferred == 0
        assert link.transfers == 0


class TestValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(HardwareError):
            make_link(bandwidth=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(HardwareError):
            make_link(latency=-1)
