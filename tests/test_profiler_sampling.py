"""Line profiler and sampling phase."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import SamplingError
from repro.lang.program import Program, Statement, constant, per_record
from repro.runtime.profiler import LineProfiler, payload_nbytes
from repro.runtime.sampling import SamplingPhase

from .conftest import make_toy_dataset, make_toy_program


class TestPayloadNbytes:
    def test_arrays(self):
        assert payload_nbytes({"x": np.zeros(10)}) == 80.0

    def test_scalars(self):
        assert payload_nbytes({"a": 1, "b": 2.0}) == 16.0

    def test_lists(self):
        assert payload_nbytes({"v": [1, 2, 3]}) == 24.0

    def test_nested_dicts(self):
        assert payload_nbytes({"inner": {"x": np.zeros(2)}}) == 16.0

    def test_mixed_dtypes(self):
        payload = {"f32": np.zeros(4, dtype=np.float32), "i8": np.zeros(4, dtype=np.int8)}
        assert payload_nbytes(payload) == 20.0


class TestLineProfiler:
    def test_records_every_line(self, config, toy_program, toy_dataset):
        sample = toy_dataset.sample(2**-10)
        records = LineProfiler(config).profile(toy_program, sample)
        assert [r.name for r in records] == ["scan", "crunch", "reduce"]
        assert all(r.n_records == sample.n_records for r in records)

    def test_separates_data_access_from_compute(self, config, toy_program, toy_dataset):
        # Paper III-A: "ActivePy will separate the data access time
        # from the code execution time".
        sample = toy_dataset.sample(2**-10)
        records = LineProfiler(config).profile(toy_program, sample)
        scan = records[0]
        n = sample.n_records
        assert scan.data_access_seconds == pytest.approx(
            64.0 * n / config.bw_host_storage
        )
        assert scan.compute_seconds == pytest.approx(40.0 * n / config.host_ips)
        assert records[1].data_access_seconds == 0.0

    def test_output_bytes_measured_from_real_kernels(self, config, toy_program, toy_dataset):
        sample = toy_dataset.sample(2**-10)
        records = LineProfiler(config).profile(toy_program, sample)
        # scan emits f32: 4 bytes per record, measured not assumed.
        assert records[0].output_bytes == pytest.approx(4.0 * sample.n_records)
        assert records[1].input_bytes == records[0].output_bytes

    def test_kernel_failure_raises_sampling_error(self, config, toy_dataset):
        def boom(p):
            raise ValueError("bad input")

        program = Program("bad", [
            Statement("boom", boom, per_record(1), constant(1)),
        ])
        with pytest.raises(SamplingError, match="boom"):
            LineProfiler(config).profile(program, toy_dataset.sample(2**-10))

    def test_run_seconds_sums_components(self, config, toy_program, toy_dataset):
        profiler = LineProfiler(config)
        records = profiler.profile(toy_program, toy_dataset.sample(2**-10))
        total = profiler.run_seconds(records)
        assert total == pytest.approx(sum(
            r.compute_seconds + r.data_access_seconds for r in records
        ))


class TestSamplingPhase:
    def test_runs_all_four_factors(self, config, toy_program, toy_dataset):
        report = SamplingPhase(config).run(toy_program, toy_dataset)
        assert report.factors == config.sampling_factors
        for series in report.series:
            assert len(series.n_values) == 4
            assert series.n_values == sorted(series.n_values)

    def test_fits_produced_per_line(self, config, toy_program, toy_dataset):
        report = SamplingPhase(config).run(toy_program, toy_dataset)
        assert [fit.name for fit in report.fits] == ["scan", "crunch", "reduce"]
        scan_fit = report.fit_for("scan")
        n = toy_dataset.n_records
        assert scan_fit.compute.predict(n) == pytest.approx(
            40.0 * n / config.host_ips, rel=1e-6
        )

    def test_sampling_cost_positive_and_small(self, config, toy_program, toy_dataset):
        report = SamplingPhase(config).run(toy_program, toy_dataset)
        assert report.sampling_seconds > 0
        # The four factors sum to ~1.5% of the input; sampling must
        # stay a small fraction of a full run.
        full_run_estimate = sum(
            fit.compute.predict(toy_dataset.n_records)
            + fit.data_access.predict(toy_dataset.n_records)
            for fit in report.fits
        )
        assert report.sampling_seconds < 0.05 * full_run_estimate

    def test_rejects_sample_dataset(self, config, toy_program, toy_dataset):
        with pytest.raises(SamplingError):
            SamplingPhase(config).run(toy_program, toy_dataset.sample(2**-7))

    def test_rejects_too_small_population(self, config, toy_program):
        tiny = make_toy_dataset(n_records=100)
        with pytest.raises(SamplingError, match="distinct sample sizes"):
            SamplingPhase(config).run(toy_program, tiny)

    def test_fit_for_unknown_line(self, config, toy_program, toy_dataset):
        report = SamplingPhase(config).run(toy_program, toy_dataset)
        with pytest.raises(SamplingError):
            report.fit_for("nope")
