"""From-scratch GBDT: quantisation, training, inference."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ml.gbdt import GBDTRegressor, quantise_features


def make_data(n=2000, seed=9):
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, 6))
    targets = (
        3.0 * features[:, 0]
        + 2.0 * (features[:, 1] > 0)
        - features[:, 2] ** 2 / 4
    )
    return features, targets


class TestQuantisation:
    def test_codes_within_bins(self):
        features, _ = make_data()
        codes, edges = quantise_features(features, n_bins=32)
        assert codes.dtype == np.uint8
        assert codes.max() < 32
        assert edges.shape == (31, features.shape[1])

    def test_skewed_features_spread_over_bins(self):
        rng = np.random.default_rng(4)
        skewed = np.exp(rng.normal(size=(4000, 1)))
        codes, _ = quantise_features(skewed, n_bins=64)
        assert len(np.unique(codes)) > 48  # quantile edges, not linear

    def test_validation(self):
        with pytest.raises(WorkloadError):
            quantise_features(np.zeros(10), n_bins=8)
        with pytest.raises(WorkloadError):
            quantise_features(np.zeros((10, 2)), n_bins=1)


class TestTraining:
    def test_fit_reduces_error_over_base_score(self):
        features, targets = make_data()
        model = GBDTRegressor(n_trees=30, max_depth=4).fit(features, targets)
        predictions = model.predict(features)
        base_mse = float(np.mean((targets - targets.mean()) ** 2))
        model_mse = float(np.mean((targets - predictions) ** 2))
        assert model_mse < 0.3 * base_mse

    def test_more_trees_fit_better(self):
        features, targets = make_data()
        small = GBDTRegressor(n_trees=3).fit(features, targets)
        large = GBDTRegressor(n_trees=30).fit(features, targets)
        small_mse = float(np.mean((targets - small.predict(features)) ** 2))
        large_mse = float(np.mean((targets - large.predict(features)) ** 2))
        assert large_mse < small_mse

    def test_depth_limit_respected(self):
        features, targets = make_data()
        model = GBDTRegressor(n_trees=5, max_depth=3).fit(features, targets)
        assert all(tree.depth() <= 3 for tree in model.trees)

    def test_deterministic(self):
        features, targets = make_data()
        a = GBDTRegressor(n_trees=5).fit(features, targets)
        b = GBDTRegressor(n_trees=5).fit(features, targets)
        assert np.array_equal(a.predict(features), b.predict(features))

    def test_validation(self):
        features, targets = make_data(n=100)
        with pytest.raises(WorkloadError):
            GBDTRegressor(n_trees=0)
        with pytest.raises(WorkloadError):
            GBDTRegressor(max_depth=0)
        with pytest.raises(WorkloadError):
            GBDTRegressor(learning_rate=0.0)
        with pytest.raises(WorkloadError):
            GBDTRegressor().fit(features, targets[:50])


class TestInference:
    def test_predict_equals_quantise_then_predict_codes(self):
        features, targets = make_data()
        model = GBDTRegressor(n_trees=10).fit(features, targets)
        codes = model.quantise(features)
        assert np.array_equal(model.predict(features), model.predict_codes(codes))

    def test_generalises_to_fresh_rows(self):
        features, targets = make_data()
        model = GBDTRegressor(n_trees=30, max_depth=4).fit(features, targets)
        fresh_features, fresh_targets = make_data(seed=77)
        predictions = model.predict(fresh_features)
        base_mse = float(np.mean((fresh_targets - targets.mean()) ** 2))
        model_mse = float(np.mean((fresh_targets - predictions) ** 2))
        assert model_mse < 0.5 * base_mse

    def test_tree_accounting(self):
        features, targets = make_data()
        model = GBDTRegressor(n_trees=7).fit(features, targets)
        assert model.n_trees == 7
        assert all(tree.node_count() >= 1 for tree in model.trees)
