"""Re-admission: offloaded lines return to a recovered device.

An extension beyond the paper's prototype (which only migrates
host-ward): after a migration, a later line planned for the CSD may go
back once (a) the device's status page reports a healthy rate again and
(b) the line's Equation-1 economics still favour the device from its
new starting point (its input now lives on the host).
"""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.hw.topology import build_machine
from repro.lang.program import Program, Statement, constant, per_record
from repro.runtime.codegen import CodeGenerator, ExecutionMode
from repro.runtime.executor import PlanExecutor
from repro.runtime.planner import CSD, HOST, Plan
from repro.baselines import ground_truth_estimates

N = 20_000_000


def two_scan_program() -> Program:
    """Two storage-heavy scans separated by a host-friendly stage.

    The second scan is exactly the line a recovered device should get
    back: it streams 64 B/record from flash and emits 4 B/record.
    """
    return Program("twoscan", [
        Statement(
            "scan_a", lambda p: {"a": p["x"]},
            instructions=per_record(40.0), output_bytes=per_record(4.0),
            storage_bytes=per_record(64.0), chunks=16,
        ),
        Statement(
            "merge", lambda p: {"m": p["a"]},
            instructions=per_record(2.0), output_bytes=per_record(4.0),
            chunks=8,
        ),
        Statement(
            "scan_b", lambda p: {"b": p["m"]},
            instructions=per_record(40.0), output_bytes=per_record(4.0),
            storage_bytes=per_record(64.0), chunks=16,
        ),
        Statement(
            "reduce", lambda p: {"r": float(np.sum(p["b"]))},
            instructions=per_record(1.0), output_bytes=constant(8.0),
        ),
    ])


def compiled_for(machine, config, assignments):
    program = two_scan_program()
    estimates = ground_truth_estimates(program, N, config)
    plan = Plan(
        assignments=assignments,
        t_host=sum(e.ct_host for e in estimates),
        t_csd=0.0,
        estimates=tuple(estimates),
    )
    return CodeGenerator(config).generate(
        machine, program, plan, ExecutionMode.C
    )


def run_scenario(config, recovery_at=None):
    """Congestion during scan_a; optional recovery before scan_b.

    With the default plan the migrated scan_a finishes host-side at
    ~0.70 s, so a recovery at 0.65 s lands just before scan_b begins.
    """
    machine = build_machine(config)
    machine.csd.cse.schedule_availability(at_time=0.2, fraction=0.05)
    if recovery_at is not None:
        machine.csd.cse.schedule_availability(at_time=recovery_at, fraction=1.0)
    compiled = compiled_for(machine, config, [CSD, CSD, CSD, CSD])
    executor = PlanExecutor(machine, migration_enabled=True)
    return executor.execute(compiled, N)


def location_of(result, name):
    for timing in result.line_timings:
        if timing.name == name:
            return timing.actual_location
    raise KeyError(name)


class TestReadmission:
    def test_disabled_by_default_stays_on_host(self):
        result = run_scenario(SystemConfig(), recovery_at=0.65)
        assert result.migrated
        assert location_of(result, "scan_b") == HOST

    def test_enabled_returns_recovered_scan_to_the_device(self):
        result = run_scenario(
            SystemConfig(readmission_enabled=True), recovery_at=0.65
        )
        assert result.migrated
        assert location_of(result, "scan_b") == CSD

    def test_no_readmission_without_recovery(self):
        result = run_scenario(SystemConfig(readmission_enabled=True))
        assert result.migrated
        assert location_of(result, "scan_b") == HOST

    def test_readmission_is_profitable(self):
        stranded = run_scenario(SystemConfig(), recovery_at=0.65)
        readmitted = run_scenario(
            SystemConfig(readmission_enabled=True), recovery_at=0.65
        )
        assert readmitted.total_seconds < stranded.total_seconds

    def test_uneconomic_lines_stay_host_even_when_healthy(self):
        # The reduce line's device economics are negative from a
        # host-resident start; recovery alone must not pull it back.
        result = run_scenario(
            SystemConfig(readmission_enabled=True), recovery_at=0.65
        )
        # scan_b was readmitted, so reduce is planned-csd with its
        # input already on the device: it follows scan_b normally.
        # The line that must NOT bounce is "merge" when it runs after
        # the migration but before recovery.
        assert location_of(result, "merge") == HOST

    def test_threshold_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(readmission_threshold=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(readmission_threshold=1.5)
        with pytest.raises(ConfigError):
            SystemConfig(readmission_cooldown_s=-1.0)

    def test_cooldown_suppresses_immediate_return(self):
        # With a cooldown longer than the whole run, recovery cannot
        # pull any line back even though the device is healthy again.
        config = SystemConfig(
            readmission_enabled=True, readmission_cooldown_s=60.0,
        )
        result = run_scenario(config, recovery_at=0.65)
        assert result.migrated
        assert location_of(result, "scan_b") == HOST

    def test_oscillating_tenant_does_not_thrash(self):
        # The device flaps every 120 ms; the cooldown bounds the number
        # of migrations to at most one per quiet period.
        from repro.storage.tenant import BackgroundLoad

        config = SystemConfig(readmission_enabled=True)
        machine = build_machine(config)
        BackgroundLoad(
            machine.csd.cse, period_s=0.24, busy_fraction=0.5,
            available_during=0.05, start_at=0.1,
        ).start()
        compiled = compiled_for(machine, config, [CSD, CSD, CSD, CSD])
        result = PlanExecutor(machine, migration_enabled=True).execute(compiled, N)
        quiet_periods = result.total_seconds / config.readmission_cooldown_s
        assert len(result.migrations) <= quiet_periods + 1
