"""The plain-Python frontend: AST lowering, liveness, cost derivation."""

import ast

import numpy as np
import pytest

from repro.frontend import (
    FrontendError,
    live_after_each,
    names_read,
    names_written,
    program_from_function,
)
from repro.lang.dataset import Dataset
from repro.runtime.activepy import ActivePy
from repro.runtime.profiler import payload_nbytes


def pipeline(prices, volumes):
    scaled = prices * 1.02
    kept = scaled[volumes > 100.0]
    return float(np.sum(kept))


def _payload(n, full=None):
    rng = np.random.default_rng(31)
    return {
        "prices": rng.uniform(1.0, 50.0, size=n),
        "volumes": rng.uniform(0.0, 200.0, size=n),
    }


class TestLiveness:
    def parse(self, source):
        return ast.parse(source).body

    def test_names_read_and_written(self):
        stmt = self.parse("c = a + b[0]")[0]
        assert names_read(stmt) == {"a", "b"}
        assert names_written(stmt) == {"c"}

    def test_live_after_each(self):
        body = self.parse("x = a + 1\ny = x * 2\nz = y + a")
        live = live_after_each(body)
        assert live[0] == {"x", "a"}
        assert live[1] == {"y", "a"}
        assert live[2] == set()

    def test_dead_values_drop_out(self):
        body = self.parse("tmp = a * 2\nresult = a + 1")
        live = live_after_each(body)
        assert "tmp" not in live[0]  # never read again

    def test_rewrite_kills_liveness(self):
        body = self.parse("x = a\nx = b\ny = x")
        live = live_after_each(body)
        assert "x" not in live[0] or live[0] == {"b", "x"} - {"x"} | {"b"}
        # The first x is dead: line 1 rewrites it before line 2 reads.
        assert live[0] == {"b"}


class TestLowering:
    def test_three_statements(self):
        program = program_from_function(pipeline, record_bytes=16.0)
        assert len(program) == 3
        assert [s.name for s in program] == ["L0_scaled", "L1_kept", "L2_return"]

    def test_kernels_compute_the_same_result(self):
        program = program_from_function(pipeline, record_bytes=16.0)
        payload = _payload(5000)
        result = program.run_kernels(dict(payload))
        assert result["__result__"] == pytest.approx(
            pipeline(payload["prices"], payload["volumes"])
        )

    def test_liveness_prunes_intermediate_payloads(self):
        program = program_from_function(pipeline, record_bytes=16.0)
        payload = program[0].kernel(_payload(1000))
        # After line 0, 'prices' is dead; 'scaled' is the only live
        # in-memory value.  'volumes' has not been read yet, so it
        # threads through as still-stored (zero in-memory size).
        assert set(payload) == {"scaled", "__stored__"}
        assert set(payload["__stored__"]) == {"volumes"}

    def test_stored_passthrough_has_no_memory_footprint(self):
        program = program_from_function(pipeline, record_bytes=16.0)
        payload = program[0].kernel(_payload(1000))
        assert payload_nbytes(payload) == pytest.approx(8_000)

    def test_storage_attributed_to_first_readers(self):
        program = program_from_function(pipeline, record_bytes=16.0)
        # prices read at line 0, volumes at line 1: 8 bytes each.
        assert program[0].storage_bytes(1000) == pytest.approx(8_000)
        assert program[1].storage_bytes(1000) == pytest.approx(8_000)
        assert program[2].storage_bytes(1000) == 0.0

    def test_column_bytes_override(self):
        program = program_from_function(
            pipeline, record_bytes=16.0,
            column_bytes={"prices": 12.0, "volumes": 4.0},
        )
        assert program[0].storage_bytes(1000) == pytest.approx(12_000)
        assert program[1].storage_bytes(1000) == pytest.approx(4_000)

    def test_instruction_density_scales_with_op_count(self):
        program = program_from_function(pipeline, record_bytes=16.0)
        # line 2 (call + call + cast) is denser than line 0 (one binop).
        assert program[2].instructions(1000) > program[0].instructions(1000)

    def test_instr_hints_override(self):
        program = program_from_function(
            pipeline, record_bytes=16.0, instr_hints={"L0_scaled": 99.0},
        )
        assert program[0].instructions(10) == pytest.approx(990.0)

    def test_probe_calibrates_output_volumes(self):
        probe = _payload(4096)
        program = program_from_function(
            pipeline, record_bytes=16.0, probe_payload=probe,
        )
        # Line 0's measured output: just 'scaled' (8 B per record) —
        # 'volumes' is still on flash and must not count.
        assert program[0].output_bytes(1000) == pytest.approx(8_000, rel=0.01)
        # Line 1 keeps ~half the rows (volumes > 100 on U[0, 200]).
        assert program[1].output_bytes(1000) == pytest.approx(4_000, rel=0.15)


class TestValidation:
    def test_loops_rejected_with_guidance(self):
        def looping(data):
            total = 0.0
            for value in data:
                total += value
            return total

        with pytest.raises(FrontendError, match="vectorise"):
            program_from_function(looping, record_bytes=8.0)

    def test_missing_return_rejected(self):
        def no_return(data):
            _ = data * 2

        with pytest.raises(FrontendError, match="return"):
            program_from_function(no_return, record_bytes=8.0)

    def test_early_return_rejected(self):
        def early(data):
            return float(data.sum())
            return 0.0  # noqa: unreachable on purpose

        # Unreachable second return is dropped by Python's compiler but
        # kept by ast.parse; the frontend must reject the *first* one
        # only if it is not last — here it is last-but-one.
        with pytest.raises(FrontendError):
            program_from_function(early, record_bytes=8.0)

    def test_no_parameters_rejected(self):
        def nullary():
            return 1.0

        with pytest.raises(FrontendError, match="parameter"):
            program_from_function(nullary, record_bytes=8.0)

    def test_bad_record_bytes(self):
        with pytest.raises(FrontendError):
            program_from_function(pipeline, record_bytes=0.0)

    def test_bad_column_bytes(self):
        with pytest.raises(FrontendError, match="unknown"):
            program_from_function(
                pipeline, record_bytes=16.0, column_bytes={"nope": 16.0},
            )
        with pytest.raises(FrontendError, match="sum"):
            program_from_function(
                pipeline, record_bytes=16.0, column_bytes={"prices": 1.0},
            )


class TestEndToEnd:
    def test_frontend_program_offloads_through_activepy(self, config):
        # A variant whose first line narrows to f32 — the volume
        # reduction Equation 1 rewards.  (The original `pipeline` is
        # flat-volume at line 0 and legitimately stays on the host.)
        def reducing_pipeline(prices, volumes):
            scaled = (prices * 1.02).astype(np.float32)
            kept = scaled[volumes > 100.0]
            return float(np.sum(kept))

        program = program_from_function(
            reducing_pipeline, record_bytes=16.0, probe_payload=_payload(4096),
            # Calibrated densities (instructions/record), as one would
            # measure for vectorised numpy kernels on small records.
            instr_hints={"L0_scaled": 12.0, "L1_kept": 12.0, "L2_return": 4.0},
        )
        dataset = Dataset(
            "frontend.ticks", n_records=100_000_000, record_bytes=16.0,
            builder=_payload,
        )
        report = ActivePy(config).run(program, dataset)
        assert report.plan.uses_csd
        assert report.result.total_seconds > 0

    def test_flat_volume_pipeline_stays_host(self, config):
        # Negative control: the original pipeline's first line does not
        # shrink its data, so ActivePy keeps everything host-side.
        program = program_from_function(
            pipeline, record_bytes=16.0, probe_payload=_payload(4096),
        )
        dataset = Dataset(
            "frontend.flat", n_records=100_000_000, record_bytes=16.0,
            builder=_payload,
        )
        report = ActivePy(config).run(program, dataset)
        assert not report.plan.uses_csd

    def test_final_result_is_small(self):
        program = program_from_function(pipeline, record_bytes=16.0)
        out = program.run_kernels(_payload(2000))
        assert payload_nbytes(out) < 64
