"""Shared address space, allocator, and mutable buffer objects."""

import pytest

from repro.errors import AddressError, AllocationError
from repro.memory.address_space import SharedAddressSpace
from repro.memory.allocator import Allocation, FreeListAllocator
from repro.memory.objects import MutableBuffer, place_near_consumer


class TestFreeListAllocator:
    def test_first_fit_packs_low(self):
        alloc = FreeListAllocator(base=0, capacity=1024)
        a = alloc.allocate(100)
        b = alloc.allocate(100)
        assert a.address == 0
        assert b.address >= a.end

    def test_alignment(self):
        alloc = FreeListAllocator(base=0, capacity=4096)
        alloc.allocate(10)
        aligned = alloc.allocate(16, alignment=64)
        assert aligned.address % 64 == 0

    def test_free_and_reuse(self):
        alloc = FreeListAllocator(base=0, capacity=256)
        a = alloc.allocate(256)
        with pytest.raises(AllocationError):
            alloc.allocate(1)
        alloc.free(a)
        assert alloc.allocate(256).address == 0

    def test_coalescing_restores_full_block(self):
        alloc = FreeListAllocator(base=0, capacity=288)
        parts = [alloc.allocate(96) for _ in range(3)]
        # Free out of order: middle last would leave fragments without
        # coalescing.
        alloc.free(parts[0])
        alloc.free(parts[2])
        alloc.free(parts[1])
        assert alloc.largest_free_block() == 288

    def test_double_free_rejected(self):
        alloc = FreeListAllocator(base=0, capacity=128)
        a = alloc.allocate(64)
        alloc.free(a)
        with pytest.raises(AllocationError):
            alloc.free(a)

    def test_foreign_allocation_rejected(self):
        alloc = FreeListAllocator(base=0, capacity=128)
        with pytest.raises(AllocationError):
            alloc.free(Allocation(address=0, size=64))

    def test_accounting(self):
        alloc = FreeListAllocator(base=0, capacity=1000)
        alloc.allocate(300)
        assert alloc.bytes_allocated == 300
        assert alloc.bytes_free == 700
        assert alloc.live_allocations == 1

    def test_oom_message_mentions_largest_block(self):
        alloc = FreeListAllocator(base=0, capacity=100)
        with pytest.raises(AllocationError, match="largest free block"):
            alloc.allocate(200)

    def test_invalid_parameters(self):
        with pytest.raises(AllocationError):
            FreeListAllocator(base=0, capacity=0)
        alloc = FreeListAllocator(base=0, capacity=64)
        with pytest.raises(AllocationError):
            alloc.allocate(0)
        with pytest.raises(AllocationError):
            alloc.allocate(8, alignment=3)


class TestSharedAddressSpace:
    def make_space(self):
        space = SharedAddressSpace()
        space.map_region("host.dram", 1 << 20, "host")
        space.map_region("csd.bar", 1 << 20, "csd")
        return space

    def test_regions_never_overlap(self):
        space = self.make_space()
        host, bar = space.regions
        assert host.end == bar.base

    def test_translation(self):
        space = self.make_space()
        assert space.region_of(10).name == "host.dram"
        assert space.region_of((1 << 20) + 10).name == "csd.bar"

    def test_unmapped_address(self):
        with pytest.raises(AddressError):
            self.make_space().region_of(1 << 22)

    def test_duplicate_name_rejected(self):
        space = self.make_space()
        with pytest.raises(AddressError):
            space.map_region("host.dram", 64, "host")

    def test_allocate_at_location(self):
        space = self.make_space()
        allocation = space.allocate_at("csd", 128)
        assert space.region_of(allocation.address).location == "csd"

    def test_allocate_at_unknown_location(self):
        with pytest.raises(AddressError):
            self.make_space().allocate_at("gpu", 64)

    def test_region_named_missing(self):
        with pytest.raises(AddressError):
            self.make_space().region_named("nope")


class TestMutableBuffer:
    def make_space(self):
        space = SharedAddressSpace()
        space.map_region("host.dram", 1 << 20, "host")
        space.map_region("csd.bar", 1 << 20, "csd")
        return space

    def test_placement(self):
        space = self.make_space()
        buffer = MutableBuffer("prices", 4096, space, location="csd")
        assert buffer.location == "csd"

    def test_move_accounts_bytes(self):
        space = self.make_space()
        buffer = MutableBuffer("prices", 4096, space, location="csd")
        moved = buffer.move_to("host")
        assert moved == 4096
        assert buffer.location == "host"
        assert buffer.bytes_moved == 4096
        assert buffer.moves == 1

    def test_move_to_same_location_is_free(self):
        space = self.make_space()
        buffer = MutableBuffer("prices", 4096, space, location="host")
        assert buffer.move_to("host") == 0
        assert buffer.moves == 0

    def test_share_counts_avoided_copies(self):
        space = self.make_space()
        buffer = MutableBuffer("prices", 64, space)
        assert buffer.share() is buffer
        buffer.share()
        assert buffer.copies_avoided == 2

    def test_release_frees_space(self):
        space = self.make_space()
        region = space.region_named("host.dram")
        buffer = MutableBuffer("prices", 4096, space)
        before = region.allocator.bytes_allocated
        buffer.release()
        assert region.allocator.bytes_allocated == before - 4096

    def test_zero_size_rejected(self):
        with pytest.raises(AddressError):
            MutableBuffer("empty", 0, self.make_space())


class TestPlaceNearConsumer:
    def test_prefers_consumer_location(self):
        space = SharedAddressSpace()
        space.map_region("host.dram", 1 << 20, "host")
        space.map_region("csd.bar", 1 << 20, "csd")
        buffer = place_near_consumer("x", 64, space, consumer_location="csd")
        assert buffer.location == "csd"

    def test_falls_back_to_host_when_device_full(self):
        space = SharedAddressSpace()
        space.map_region("host.dram", 1 << 20, "host")
        space.map_region("csd.bar", 128, "csd")
        buffer = place_near_consumer("big", 4096, space, consumer_location="csd")
        assert buffer.location == "host"
