"""Workload definitions: registry, sizes, kernels, cost-model honesty."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.runtime.profiler import payload_nbytes
from repro.units import GB
from repro.workloads import all_workloads, get_workload, workload_names
from repro.workloads.base import scaled_records

#: Small scales that keep functional runs fast; matrixmul and mixedgemm
#: have few, fat records so they scale less aggressively.
TEST_SCALES = {
    "blackscholes": 2**-12,
    "kmeans": 2**-11,
    "lightgbm": 2**-12,
    "matrixmul": 2**-7,
    "mixedgemm": 2**-9,
    "pagerank": 2**-12,
    "sparsemv": 2**-12,
    "tpch_q1": 2**-12,
    "tpch_q6": 2**-12,
    "tpch_q14": 2**-12,
}

#: The paper's Table I sizes in GB (sparsemv is not listed there).
TABLE1_GB = {
    "blackscholes": 9.1, "kmeans": 5.3, "lightgbm": 7.1, "matrixmul": 6.0,
    "mixedgemm": 9.4, "pagerank": 7.7, "tpch_q1": 6.9, "tpch_q6": 6.9,
    "tpch_q14": 7.1,
}


class TestRegistry:
    def test_all_ten_workloads_registered(self):
        names = workload_names()
        assert set(TEST_SCALES) == set(names)

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_invalid_scale_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("tpch_q6", scale=0.0)
        with pytest.raises(WorkloadError):
            get_workload("tpch_q6", scale=2.0)

    def test_all_workloads_builds_everything(self):
        suite = all_workloads(scale=2**-7)
        assert len(suite) == 10


class TestTable1Sizes:
    @pytest.mark.parametrize("name,expected_gb", sorted(TABLE1_GB.items()))
    def test_full_scale_matches_paper(self, name, expected_gb):
        workload = get_workload(name)
        assert workload.raw_bytes == pytest.approx(expected_gb * GB, rel=0.01)
        assert workload.table1_bytes == pytest.approx(expected_gb * GB)

    def test_sparsemv_not_in_table1(self):
        assert get_workload("sparsemv").table1_bytes == 0.0

    def test_scaled_records_floor(self):
        with pytest.raises(WorkloadError):
            scaled_records(100, 0.01)


@pytest.mark.parametrize("name", sorted(TEST_SCALES))
class TestFunctionalKernels:
    def test_program_runs_end_to_end(self, name):
        workload = get_workload(name, scale=TEST_SCALES[name])
        result = workload.program.run_kernels(workload.dataset.payload)
        assert isinstance(result, dict) and result

    def test_final_output_is_small(self, name):
        # Every program ends in a reduction: the value returned to the
        # caller is orders of magnitude below the input.
        workload = get_workload(name, scale=TEST_SCALES[name])
        result = workload.program.run_kernels(workload.dataset.payload)
        assert payload_nbytes(result) < 0.01 * workload.raw_bytes


class TestCostModelHonesty:
    """Measured kernel outputs must track the declared cost laws."""

    @pytest.mark.parametrize("name", [
        "blackscholes", "lightgbm", "tpch_q6", "tpch_q1", "tpch_q14",
        "kmeans", "matrixmul", "mixedgemm",
    ])
    def test_measured_output_matches_declared_law(self, name):
        workload = get_workload(name, scale=TEST_SCALES[name])
        payload = workload.dataset.payload
        n = workload.n_records
        for index, statement in enumerate(workload.program):
            payload = statement.kernel(payload)
            declared = statement.output_bytes(n)
            measured = payload_nbytes(payload)
            assert measured == pytest.approx(declared, rel=0.25, abs=1024), (
                f"{name}.{statement.name}: declared {declared}, measured {measured}"
            )

    def test_sparse_sample_diverges_from_population_law(self):
        # The intended exception: PageRank's CSR line measures *bigger*
        # on a prefix sample than its population law (paper §V).
        workload = get_workload("pagerank")  # full population
        sample = workload.dataset.sample(2**-10)
        payload = sample.payload
        program = workload.program
        payload = program[0].kernel(payload)
        payload = program[1].kernel(payload)
        measured = payload_nbytes(payload)
        declared = program[1].output_bytes(sample.n_records)
        assert measured > 1.8 * declared


class TestWorkloadResults:
    def test_blackscholes_prices_positive(self):
        workload = get_workload("blackscholes", scale=TEST_SCALES["blackscholes"])
        result = workload.program.run_kernels(workload.dataset.payload)
        assert result["mean_price"] > 0
        assert result["max_price"] >= result["mean_price"]

    def test_kmeans_clusters_all_points(self):
        workload = get_workload("kmeans", scale=TEST_SCALES["kmeans"])
        result = workload.program.run_kernels(workload.dataset.payload)
        assert int(np.sum(result["cluster_sizes"])) == workload.n_records
        assert result["inertia"] > 0

    def test_pagerank_ranks_normalised(self):
        workload = get_workload("pagerank", scale=TEST_SCALES["pagerank"])
        result = workload.program.run_kernels(workload.dataset.payload)
        assert result["rank_sum"] == pytest.approx(1.0)

    def test_tpch_q6_matches_reference(self):
        from repro.workloads.tpch.queries import q6_reference

        workload = get_workload("tpch_q6", scale=TEST_SCALES["tpch_q6"])
        result = workload.program.run_kernels(workload.dataset.payload)
        expected = q6_reference(workload.dataset.payload)
        assert result["revenue"] == pytest.approx(expected)

    def test_tpch_q1_matches_reference(self):
        from repro.workloads.tpch.queries import q1_reference

        workload = get_workload("tpch_q1", scale=TEST_SCALES["tpch_q1"])
        result = workload.program.run_kernels(workload.dataset.payload)
        expected = q1_reference(workload.dataset.payload)
        assert np.allclose(result["sum_disc_price"], expected["sum_disc_price"])

    def test_tpch_q14_in_promo_band(self):
        workload = get_workload("tpch_q14", scale=TEST_SCALES["tpch_q14"])
        result = workload.program.run_kernels(workload.dataset.payload)
        assert 5.0 < result["promo_revenue_pct"] < 40.0

    def test_lightgbm_model_learns_signal(self):
        from repro.workloads.lightgbm import _target_fn, trained_model

        model = trained_model()
        rng = np.random.default_rng(99)
        fresh = rng.normal(size=(2000, 28)).astype(np.float64)
        predictions = model.predict(fresh)
        targets = _target_fn(fresh)
        residual = float(np.mean((targets - predictions) ** 2))
        baseline = float(np.var(targets))
        assert residual < 0.5 * baseline
