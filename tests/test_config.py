"""SystemConfig validation and derived quantities."""

import pytest

from repro.config import DEFAULT_CONFIG, SystemConfig
from repro.errors import ConfigError


class TestDefaults:
    def test_default_is_valid(self):
        config = SystemConfig()
        assert config.host_ips > 0

    def test_cse_slower_than_host(self):
        assert DEFAULT_CONFIG.cse_ips < DEFAULT_CONFIG.host_ips

    def test_internal_bandwidth_richer_than_host_path(self):
        # The architectural premise of ISP (paper Fig. 1): the device
        # sees its own data faster than the host can pull it.
        assert DEFAULT_CONFIG.bw_internal > DEFAULT_CONFIG.bw_host_storage

    def test_device_speed_ratio(self):
        config = SystemConfig(host_ips=8e9, cse_ips=4e9)
        assert config.device_speed_ratio == pytest.approx(2.0)

    def test_sampling_factors_match_paper(self):
        assert DEFAULT_CONFIG.sampling_factors == (2**-10, 2**-9, 2**-8, 2**-7)

    def test_overhead_ladder_components(self):
        # dispatch + copies must reproduce the paper's +41%.
        total = (
            DEFAULT_CONFIG.interp_dispatch_overhead
            + DEFAULT_CONFIG.copy_overhead
        )
        assert total == pytest.approx(0.41)


class TestValidation:
    def test_negative_ips_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(host_ips=-1)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(bw_d2h=0)

    def test_cse_faster_than_host_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(host_ips=1e9, cse_ips=2e9)

    def test_empty_sampling_factors_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(sampling_factors=())

    def test_sampling_factor_above_one_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(sampling_factors=(0.5, 1.5))

    def test_unsorted_sampling_factors_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(sampling_factors=(2**-7, 2**-10))

    def test_ipc_threshold_bounds(self):
        with pytest.raises(ConfigError):
            SystemConfig(ipc_degradation_threshold=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(ipc_degradation_threshold=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(link_latency_s=-1e-6)

    def test_internal_bandwidth_must_be_physically_deliverable(self):
        # A 2-channel array cannot stream 9 GB/s; the config refuses
        # the inconsistent platform instead of silently simulating it.
        with pytest.raises(ConfigError, match="NAND geometry"):
            SystemConfig(nand_channels=2)

    def test_default_geometry_sustains_internal_bandwidth(self):
        config = SystemConfig()
        peak = (
            config.nand_channels * config.nand_page_bytes
            / config.nand_read_latency_s
        )
        assert peak >= config.bw_internal


class TestReplace:
    def test_replace_returns_new_instance(self):
        base = SystemConfig()
        derived = base.replace(cse_ips=2e9)
        assert derived.cse_ips == 2e9
        assert base.cse_ips != 2e9

    def test_replace_validates(self):
        with pytest.raises(ConfigError):
            SystemConfig().replace(bw_internal=-1)

    def test_frozen(self):
        with pytest.raises(Exception):
            SystemConfig().host_ips = 1.0
