"""Migration resume correctness against the checkpoint protocol.

The paper resumes a migrated line "at a Python-line boundary from
shared memory".  These tests pin what that means under PR 2's protocol:
the break chunk comes from the BAR checkpoint record when one is valid,
from the surviving generation when the newest write was torn, and from
a whole-line restart when nothing trustworthy covers the line — never
from a value that skips work.
"""

from __future__ import annotations

import dataclasses

from repro.config import SystemConfig
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy

from .conftest import make_toy_dataset, make_toy_program

#: Throttle the CSE to 5% once the offloaded work is half done — the
#: congestion scenario that reliably drives a mid-line migration.
CONGESTION = [(0.5, 0.05)]


def _run(config: SystemConfig, fault_plan=None, triggers=CONGESTION):
    machine = build_machine(config)
    report = ActivePy(config).run(
        make_toy_program(), make_toy_dataset(), machine=machine,
        progress_triggers=triggers, fault_plan=fault_plan,
    )
    return report


def _assert_work_conserved(result):
    for index, statement in enumerate(make_toy_program()):
        assert result.chunks_executed[index] >= statement.chunks, (
            f"line {index} executed {result.chunks_executed[index]} of "
            f"{statement.chunks} chunks"
        )


class TestResumeWithValidCheckpoint:
    def test_congestion_migration_resumes_from_the_record(self, config):
        report = _run(config)
        result = report.result
        assert result.migrated
        event = result.migrations[0]
        # the record and the host counter agree in the clean case, and
        # the event carries the checkpoint-read cursor
        assert event.resume_chunk == event.chunk
        assert result.checkpoint_stats["restores"] >= 1
        assert result.checkpoint_stats["restarts"] == 0
        _assert_work_conserved(result)

    def test_migration_outcome_matches_checkpointing_disabled(self, config):
        """With no faults the record equals the host counter, so the
        migrated run's timing must be identical either way."""
        with_ckpt = _run(config)
        without = _run(dataclasses.replace(config, checkpoint_enabled=False))
        assert with_ckpt.result.migrated and without.result.migrated
        assert without.result.migrations[0].resume_chunk == -1
        assert without.total_seconds == with_ckpt.total_seconds


class TestResumeWithoutValidCheckpoint:
    def _migration_time(self, config):
        baseline = _run(config)
        assert baseline.result.migrated
        return baseline, baseline.result.migrations[0].sim_time

    def test_torn_record_falls_back_to_previous_generation(self, config):
        """A torn newest record costs one replayed chunk, nothing more."""
        baseline, _ = self._migration_time(config)
        event = baseline.result.migrations[0]
        # The break-boundary save happens one status-message latency
        # before the migration decision, which itself precedes the
        # event's (post-cost) timestamp; arm the tear just before it.
        save_at = (
            event.sim_time - event.cost_seconds
            - config.effective_link_latency_s
        )
        plan = FaultPlan(specs=(
            FaultSpec(kind=FaultKind.CHECKPOINT_TORN_WRITE,
                      at_time=save_at - 1e-9, count=1),
        ))
        report = _run(config, fault_plan=plan)
        result = report.result
        assert result.migrated
        stats = result.checkpoint_stats
        assert stats["torn_writes"] == 1
        assert stats["fallbacks"] >= 1
        # the surviving generation is one chunk behind the host counter
        faulted = result.migrations[0]
        assert faulted.resume_chunk == faulted.chunk - 1
        _assert_work_conserved(result)
        # resuming from the older generation replays work, so the total
        # chunk count can only grow vs the clean migrated run
        assert sum(result.chunks_executed.values()) >= sum(
            baseline.result.chunks_executed.values()
        )

    def test_both_slots_torn_restarts_the_line(self, config):
        """With every write torn, resume degrades to chunk 0 — the
        line replays wholesale rather than trusting garbage."""
        _, migrate_at = self._migration_time(config)
        plan = FaultPlan(specs=(
            FaultSpec(kind=FaultKind.CHECKPOINT_TORN_WRITE,
                      at_time=0.0, count=10_000),
        ))
        report = _run(config, fault_plan=plan)
        result = report.result
        stats = result.checkpoint_stats
        assert stats["torn_writes"] > 0
        if result.migrated:
            assert result.migrations[0].resume_chunk == 0
            assert stats["restarts"] >= 1
        _assert_work_conserved(result)

    def test_restart_resume_is_never_later_than_the_counter(self, config):
        """The checkpoint path may replay chunks the host thinks are
        done, never skip ahead of them."""
        plan = FaultPlan(specs=(
            FaultSpec(kind=FaultKind.CHECKPOINT_TORN_WRITE,
                      at_time=0.0, count=10_000),
        ))
        report = _run(config, fault_plan=plan)
        for event in report.result.migrations:
            assert 0 <= event.resume_chunk <= event.chunk
