"""Failure injection: the stack must fail loudly and stay consistent."""

import numpy as np
import pytest

from repro.config import SystemConfig
from repro.errors import (
    AllocationError,
    FlashError,
    SamplingError,
)
from repro.hw.topology import build_machine
from repro.lang.dataset import Dataset
from repro.lang.program import Program, Statement, constant, per_record
from repro.runtime.activepy import ActivePy
from repro.storage.ftl import PageMappingFTL
from repro.storage.nand import FlashArray, FlashGeometry
from repro.units import MIB

from .conftest import make_toy_dataset, make_toy_program


class TestSamplingFailures:
    def test_kernel_crash_on_one_factor_aborts_cleanly(self, config):
        calls = {"count": 0}

        def flaky(p):
            calls["count"] += 1
            if calls["count"] == 3:  # dies on the third sample run
                raise RuntimeError("segfault in native kernel")
            return {"x": p["x"]}

        program = Program("flaky", [
            Statement("flaky", flaky, per_record(1), per_record(8),
                      storage_bytes=per_record(8)),
        ])
        with pytest.raises(SamplingError, match="flaky"):
            ActivePy(config).run(program, make_toy_dataset())

    def test_kernel_returning_garbage_rejected(self, config):
        program = Program("bad", [
            Statement("bad", lambda p: None, per_record(1), constant(8)),
        ])
        with pytest.raises(SamplingError):
            ActivePy(config).run(program, make_toy_dataset())


class TestDeviceMemoryExhaustion:
    def test_bar_window_exhaustion_surfaces_as_allocation_error(self, config):
        # A device with almost no DRAM cannot receive the binaries.
        tiny = config.replace(device_dram_bytes=0.05 * MIB)
        machine = build_machine(tiny)
        with pytest.raises(AllocationError):
            ActivePy(tiny).run(
                make_toy_program(), make_toy_dataset(), machine=machine
            )

    def test_machine_survives_failed_run(self, config):
        tiny = config.replace(device_dram_bytes=0.05 * MIB)
        machine = build_machine(tiny)
        with pytest.raises(AllocationError):
            ActivePy(tiny).run(
                make_toy_program(), make_toy_dataset(), machine=machine
            )
        # The same machine still executes a host-only baseline.
        from repro.baselines import run_c_baseline

        result = run_c_baseline(
            make_toy_program(), make_toy_dataset(), config=tiny, machine=machine
        )
        assert result.total_seconds > 0


class TestFlashExhaustion:
    def test_ftl_without_overprovision_eventually_fails_loudly(self):
        array = FlashArray(FlashGeometry(
            channels=1, blocks_per_channel=2, pages_per_block=4,
        ))
        # Zero overprovision and a full logical space: churn must end in
        # a FlashError, never silent corruption.
        ftl = PageMappingFTL(array, gc_threshold_blocks=1,
                             overprovision_fraction=0.0)
        with pytest.raises(FlashError):
            for i in range(100):
                ftl.write(i % ftl.logical_pages)

    def test_mappings_stay_consistent_up_to_the_failure(self):
        array = FlashArray(FlashGeometry(
            channels=1, blocks_per_channel=2, pages_per_block=4,
        ))
        ftl = PageMappingFTL(array, gc_threshold_blocks=1,
                             overprovision_fraction=0.0)
        written = []
        try:
            for i in range(100):
                ftl.write(i % ftl.logical_pages)
                written.append(i % ftl.logical_pages)
        except FlashError:
            pass
        for lpn in set(written[:-1]):
            if ftl.is_mapped(lpn):
                ftl.read(lpn)  # must not raise


class TestDegenerateInputs:
    def test_single_line_program_runs(self, config):
        program = Program("one", [
            Statement(
                "only",
                lambda p: {"s": float(np.sum(p["x"]))},
                per_record(10), constant(8), storage_bytes=per_record(64),
            ),
        ])
        report = ActivePy(config).run(program, make_toy_dataset())
        assert report.result.total_seconds > 0

    def test_pure_compute_program_stays_on_host(self, config):
        # No storage access anywhere: ISP has nothing to offer, and the
        # plan must say so.
        program = Program("compute", [
            Statement("a", lambda p: p, per_record(100), per_record(64)),
            Statement("b", lambda p: p, per_record(100), per_record(64)),
        ])
        report = ActivePy(config).run(program, make_toy_dataset())
        assert report.plan.assignments == ["host", "host"]

    def test_extremely_skewed_chunk_counts(self, config):
        program = Program("chunky", [
            Statement(
                "scan",
                lambda p: {"y": p["x"][:1]},
                per_record(40), constant(8),
                storage_bytes=per_record(64), chunks=500,
            ),
        ])
        report = ActivePy(config).run(program, make_toy_dataset())
        assert report.result.status_updates in (0, 500)

    def test_stress_while_everything_on_host_is_harmless(self, config):
        program = Program("compute", [
            Statement("a", lambda p: p, per_record(100), per_record(64)),
        ])
        report = ActivePy(config).run(
            program, make_toy_dataset(), progress_triggers=[(0.5, 0.01)]
        )
        assert not report.result.migrated
