"""JSON export and the command-line interface."""

import json

import pytest

from repro.analysis import export
from repro.analysis.timeline import ExecutionTimeline
from repro.cli import build_parser, main
from repro.errors import ReproError


class TestExport:
    def test_timeline_round_trips(self):
        timeline = ExecutionTimeline()
        timeline.record(0.0, 1.0, "host", "compute", "scan")
        data = json.loads(export.dumps(timeline))
        assert data["experiment"] == "timeline"
        assert data["spans"][0]["label"] == "scan"
        assert data["makespan"] == 1.0

    def test_dataclass_fallback(self):
        from repro.analysis.experiments import Table1Row

        row = Table1Row(name="x", data_bytes=1.0, paper_bytes=1.0, sese_regions=2)
        assert export.to_jsonable(row)["name"] == "x"

    def test_list_of_results(self):
        from repro.analysis.experiments import Table1Row

        rows = [Table1Row("a", 1.0, 1.0, 2), Table1Row("b", 2.0, 2.0, 3)]
        data = export.to_jsonable(rows)
        assert [r["name"] for r in data] == ["a", "b"]

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError):
            export.to_jsonable(object())

    def test_dump_to_path(self, tmp_path):
        timeline = ExecutionTimeline()
        timeline.record(0.0, 1.0, "host", "compute", "scan")
        path = tmp_path / "timeline.json"
        export.dump(timeline, str(path))
        assert json.loads(path.read_text())["experiment"] == "timeline"


class TestCliParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        for argv in (
            ["list"], ["run", "tpch_q6"], ["table1"], ["fig2"], ["fig4"],
            ["fig5"], ["ladder"], ["prediction"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_unknown_workload_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "nope"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCliExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out and "tpch_q14" in out

    def test_run_small_scale(self, capsys, tmp_path):
        path = tmp_path / "plan.json"
        code = main([
            "run", "tpch_q6", "--scale", "0.0078125", "--json", str(path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ActivePy" in out and "plan" in out
        assert path.exists()

    def test_run_with_trace(self, capsys):
        assert main(["run", "tpch_q6", "--scale", "0.0078125", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "s=sampling" in out  # the timeline legend
        assert "wall (simulated)" in out  # the utilization report

    def test_run_with_stress_reports_migration(self, capsys):
        assert main(["run", "tpch_q6", "--stress", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "migration" in out

    def test_validate_command(self, capsys):
        assert main(["validate", "tpch_q6"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_table1(self, capsys, tmp_path):
        path = tmp_path / "table1.json"
        assert main(["table1", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert len(data) == 9
