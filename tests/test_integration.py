"""Cross-module integration: the full stack on real workloads.

These tests run the complete pipeline — sampling with real NumPy
kernels, fitting, planning, queue-pair dispatch, simulated execution,
contention, and migration — on actual workload definitions rather than
the toy program.
"""

import pytest

from repro import (
    ActivePy,
    StaticIspBaseline,
    build_machine,
    get_workload,
    run_c_baseline,
)
from repro.runtime.planner import CSD


class TestFullPipelineOnRealWorkloads:
    def test_tpch_q6_end_to_end(self, config):
        workload = get_workload("tpch_q6")
        machine = build_machine(config)
        report = ActivePy(config).run(workload.program, workload.dataset, machine=machine)
        baseline = run_c_baseline(workload.program, workload.dataset, config=config)

        # The scan offloads; the device actually executed instructions
        # and the queue pair carried the call.
        assert report.plan.assignments[0] == CSD
        assert machine.csd.cse.counters.retired_instructions > 0
        assert report.result.status_updates > 0
        assert baseline.total_seconds / report.total_seconds > 1.1

    def test_kmeans_iterative_streaming(self, config):
        workload = get_workload("kmeans")
        report = ActivePy(config).run(workload.program, workload.dataset)
        # The folded Lloyd loop dominates and lands on the CSD.
        index = workload.program.index_of("assign_and_update")
        assert report.plan.assignments[index] == CSD

    def test_lightgbm_splits_quantise_from_predict(self, config):
        workload = get_workload("lightgbm")
        report = ActivePy(config).run(workload.program, workload.dataset)
        assignments = dict(zip(
            [s.name for s in workload.program], report.plan.assignments
        ))
        assert assignments["quantise_features"] == CSD
        assert assignments["predict_ensemble"] == "host"

    def test_pagerank_csr_stays_host_but_oracle_offloads(self, config):
        workload = get_workload("pagerank")
        report = ActivePy(config).run(workload.program, workload.dataset)
        oracle = StaticIspBaseline(config).tune(workload.program, workload.n_records)
        index = workload.program.index_of("build_csr")
        assert report.plan.assignments[index] == "host"
        assert oracle.assignments[index] == CSD


class TestContentionScenarios:
    def test_scheduled_contention_triggers_migration(self, config):
        # Availability collapses at an absolute sim time (not via the
        # progress hook): the monitor must still catch it through IPC.
        workload = get_workload("tpch_q6")
        machine = build_machine(config)
        machine.csd.cse.schedule_availability(at_time=1.5, fraction=0.05)
        report = ActivePy(config).run(workload.program, workload.dataset, machine=machine)
        assert report.result.migrated

    def test_high_priority_preemption_forces_migration(self, config):
        workload = get_workload("tpch_q6")
        machine = build_machine(config)
        machine.csd.cse.schedule_high_priority_request(at_time=1.5)
        report = ActivePy(config).run(workload.program, workload.dataset, machine=machine)
        assert report.result.migrated
        assert "high-priority" in report.result.migrations[0].reason

    def test_migrated_run_still_beats_stranded_static_plan(self, config):
        workload = get_workload("tpch_q6")

        active_machine = build_machine(config)
        active_machine.csd.cse.schedule_availability(at_time=1.5, fraction=0.05)
        active = ActivePy(config).run(
            workload.program, workload.dataset, machine=active_machine
        )

        static = StaticIspBaseline(config)
        plan = static.tune(workload.program, workload.n_records)
        static_machine = build_machine(config)
        static_machine.csd.cse.schedule_availability(at_time=1.5, fraction=0.05)
        stranded = static.run(
            workload.program, workload.dataset, machine=static_machine, plan=plan
        )
        assert active.total_seconds < stranded.total_seconds

    def test_gc_write_burst_throttles_then_recovers(self, config):
        machine = build_machine(config)
        pages = machine.csd.ftl.logical_pages
        machine.csd.inject_write_burst(min(pages * 2, 50_000))
        # Whatever happened, the device must end consistent and usable.
        workload = get_workload("tpch_q6")
        report = ActivePy(config).run(
            workload.program, workload.dataset, machine=machine
        )
        assert report.result.total_seconds > 0


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self, config):
        workload = get_workload("tpch_q6")
        first = ActivePy(config).run(workload.program, workload.dataset)
        second = ActivePy(config).run(
            get_workload("tpch_q6").program, get_workload("tpch_q6").dataset
        )
        assert first.total_seconds == pytest.approx(second.total_seconds, rel=1e-12)
        assert first.plan.assignments == second.plan.assignments
