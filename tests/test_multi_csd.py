"""Multiple CSDs on one machine: placement-aware offload."""

import pytest

from repro.config import SystemConfig
from repro.errors import HardwareError, StorageError
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.runtime.planner import CSD

from .conftest import make_toy_dataset, make_toy_program


class TestTopology:
    def test_devices_named_distinctly(self):
        machine = build_machine(num_csds=3)
        assert [d.name for d in machine.csds] == ["csd", "csd1", "csd2"]
        assert machine.csd is machine.csds[0]

    def test_each_device_has_own_bar_window(self):
        machine = build_machine(num_csds=2)
        assert machine.space.region_named("csd.bar").location == "csd"
        assert machine.space.region_named("csd1.bar").location == "csd1"

    def test_unit_named_resolves_all_devices(self):
        machine = build_machine(num_csds=2)
        assert machine.unit_named("csd1") is machine.csds[1].cse
        assert machine.device_named("csd1") is machine.csds[1]
        with pytest.raises(KeyError):
            machine.device_named("csd9")

    def test_device_holding(self):
        machine = build_machine(num_csds=2)
        machine.csds[1].store_dataset("edges", 1e9)
        assert machine.device_holding("edges") is machine.csds[1]
        with pytest.raises(StorageError):
            machine.device_holding("nope")

    def test_zero_devices_rejected(self):
        with pytest.raises(HardwareError):
            build_machine(num_csds=0)

    def test_reset_counters_covers_all_devices(self):
        machine = build_machine(num_csds=2)
        machine.csds[1].cse.execute(1e9)
        machine.reset_counters()
        assert machine.csds[1].cse.counters.retired_instructions == 0


class TestPlacementAwareOffload:
    def test_offload_targets_the_device_holding_the_data(self, config):
        machine = build_machine(config, num_csds=2)
        dataset = make_toy_dataset()
        machine.csds[1].store_dataset(dataset.name, dataset.raw_bytes)
        report = ActivePy(config).run(make_toy_program(), dataset, machine=machine)
        assert CSD in report.plan.assignments
        # Work landed on csd1's engine, not the primary's.
        assert machine.csds[1].cse.counters.retired_instructions > 0
        assert machine.csds[0].cse.counters.retired_instructions == 0
        # And the binaries live in csd1's BAR.
        assert "toy.scan" in machine.csds[1].bar.installed_binaries
        assert "toy.scan" not in machine.csds[0].bar.installed_binaries

    def test_unplaced_dataset_defaults_to_primary(self, config):
        machine = build_machine(config, num_csds=2)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        assert machine.csds[0].cse.counters.retired_instructions > 0
        del report

    def test_congestion_on_one_device_leaves_the_other_alone(self, config):
        # Two programs, two devices: throttling csd leaves csd1's run
        # unaffected — the isolation multi-device deployments buy.
        machine_a = build_machine(config, num_csds=2)
        machine_a.csds[1].store_dataset("toy.data", make_toy_dataset().raw_bytes)
        healthy = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine_a
        )

        machine_b = build_machine(config, num_csds=2)
        machine_b.csds[1].store_dataset("toy.data", make_toy_dataset().raw_bytes)
        machine_b.csds[0].cse.set_availability(0.05)  # other tenant's device
        unaffected = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine_b
        )
        assert unaffected.total_seconds == pytest.approx(
            healthy.total_seconds, rel=1e-9
        )

    def test_migration_still_works_on_secondary_device(self, config):
        machine = build_machine(config, num_csds=2)
        dataset = make_toy_dataset()
        machine.csds[1].store_dataset(dataset.name, dataset.raw_bytes)
        report = ActivePy(config).run(
            make_toy_program(), dataset, machine=machine,
            progress_triggers=[(0.3, 0.05)],
        )
        if CSD in report.plan.assignments:
            assert report.result.migrated
