"""The span tracer, the Chrome exporter, and timeline back-compat."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Observability,
    Tracer,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.runtime.activepy import ActivePy, RunOptions
from repro.workloads import get_workload

_SCALE = 2 ** -7


class TestTracer:
    def test_record_and_read_back(self):
        tracer = Tracer()
        tracer.record("scan", "compute", "csd", 0.0, 1.5, {"chunk": 3})
        assert tracer.count == 1
        span = tracer.spans[0]
        assert span.name == "scan"
        assert span.duration == 1.5
        assert dict(span.args) == {"chunk": 3}

    def test_backwards_span_rejected(self):
        with pytest.raises(ObservabilityError):
            Tracer().record("x", "compute", "host", 2.0, 1.0)

    def test_spans_since_mark(self):
        tracer = Tracer()
        tracer.record("a", "compute", "host", 0.0, 1.0)
        mark = tracer.count
        tracer.record("b", "compute", "host", 1.0, 2.0)
        assert [s.name for s in tracer.spans_since(mark)] == ["b"]

    def test_trace_span_uses_bound_clock(self):
        from repro.sim.clock import SimClock

        clock = SimClock()
        obs = Observability.with_tracing()
        obs.bind_clock(clock)
        with obs.trace_span("phase", "compute", "host"):
            clock.advance(0.25)
        span = obs.tracer.spans[0]
        assert (span.start, span.end) == (0.0, 0.25)


class TestTimelineBackCompat:
    def test_traced_run_still_produces_timeline(self):
        workload = get_workload("tpch_q6", scale=_SCALE)
        report = ActivePy().run(
            workload.program, workload.dataset,
            options=RunOptions(trace=True),
        )
        assert report.timeline is not None
        labels = [span.label for span in report.timeline.spans]
        assert "sampling-phase" in labels
        assert "codegen" in labels
        # The timeline is materialised from the obs tracer.
        assert report.obs is not None
        assert report.obs.tracer is not None
        assert len(report.timeline.spans) == report.obs.tracer.count

    def test_untraced_run_has_no_timeline(self):
        workload = get_workload("tpch_q6", scale=_SCALE)
        report = ActivePy().run(workload.program, workload.dataset)
        assert report.timeline is None


class TestChromeExport:
    def _traced_spans(self):
        workload = get_workload("tpch_q6", scale=_SCALE)
        obs = Observability.with_tracing()
        ActivePy().run(
            workload.program, workload.dataset, options=RunOptions(obs=obs),
        )
        return obs.tracer.spans

    def test_tpch_q6_trace_is_schema_valid(self):
        spans = self._traced_spans()
        assert spans
        trace = to_chrome_trace(spans)
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        # One metadata event per resource, one "X" event per span.
        assert sum(1 for e in events if e["ph"] == "X") == len(spans)
        for event in events:
            if event["ph"] != "X":
                continue
            assert event["ts"] >= 0 and event["dur"] >= 0
            # Microseconds: the first span starts at simulated t=0.
            assert event["pid"] == 1

    def test_write_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(self._traced_spans(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert validate_chrome_trace(loaded) == []

    def test_validator_flags_malformed_traces(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{"ph": "Q"}]}) != []
        missing_dur = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0, "ts": 0.0, "cat": "c"},
        ]}
        assert validate_chrome_trace(missing_dur) != []
