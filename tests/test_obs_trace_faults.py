"""Chrome-trace export stays valid when runs get ugly.

The exporter is easiest to break exactly when traces are most needed:
crash-recovery reissues, host fallback and mid-run migration all open
spans on unusual paths.  Each scenario here must still produce a trace
that ``validate_chrome_trace`` accepts, and the attribution identity
must keep holding while the machine misbehaves.
"""

import pytest

from repro.config import DEFAULT_CONFIG
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.hw.topology import build_machine
from repro.obs import (
    Observability,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.runtime.activepy import ActivePy, RunOptions
from repro.workloads import get_workload

from .conftest import make_toy_dataset, make_toy_program

_SCALE = 2 ** -6


def _run(obs, fault_plan=None, machine=None, workload="tpch_q6"):
    w = get_workload(workload, scale=_SCALE)
    return ActivePy().run(
        w.program, w.dataset, machine=machine,
        options=RunOptions(obs=obs, fault_plan=fault_plan),
    )


def _crash_time():
    plain = _run(Observability.disabled())
    return plain.overhead_seconds + plain.execution_seconds * 0.5


def _assert_valid_trace(obs):
    assert obs.tracer is not None and obs.tracer.count > 0
    trace = to_chrome_trace(obs.tracer.spans)
    problems = validate_chrome_trace(trace)
    assert problems == [], problems


class TestTraceUnderFaults:
    def test_transient_cse_crash(self):
        obs = Observability.with_attribution()
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=_crash_time(),
                      duration_s=0.02),
        ))
        report = _run(obs, fault_plan=plan)
        assert report.result.fault_events
        assert not report.result.degraded  # recovered, not fallen back
        _assert_valid_trace(obs)
        assert obs.attribution_report().residual == 0.0

    def test_permanent_crash_forces_host_fallback(self):
        obs = Observability.with_attribution()
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=_crash_time(),
                      duration_s=0.0),
        ))
        report = _run(obs, fault_plan=plan)
        assert report.result.degraded
        _assert_valid_trace(obs)
        assert obs.attribution_report().residual == 0.0

    def test_mid_run_migration(self):
        obs = Observability.with_attribution()
        machine = build_machine(DEFAULT_CONFIG)
        machine.csd.cse.schedule_availability(at_time=0.15, fraction=0.05)
        report = ActivePy().run(
            make_toy_program(), make_toy_dataset(), machine=machine,
            options=RunOptions(obs=obs),
        )
        assert report.result.migrated
        _assert_valid_trace(obs)
        report_attr = obs.attribution_report()
        assert report_attr.residual == 0.0
        # Migration compile/transfer time landed in its own bucket.
        assert report_attr.seconds_by_component.get("migration", 0.0) > 0.0

    def test_lost_completion_and_media_retry(self):
        obs = Observability.with_attribution()
        at = _crash_time()
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.NVME_COMPLETION_LOSS, at_time=at),
            FaultSpec(kind=FaultKind.NAND_READ_CORRECTABLE,
                      at_time=at * 1.05, count=3),
        ))
        report = _run(obs, fault_plan=plan)
        assert report.result.fault_events
        _assert_valid_trace(obs)
        assert obs.attribution_report().residual == 0.0


class TestFaultsDoNotPerturbIdentity:
    @pytest.mark.parametrize("duration", (0.0, 0.02))
    def test_sim_time_identical_with_and_without_obs(self, duration):
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=_crash_time(),
                      duration_s=duration),
        ))
        plain = _run(Observability.disabled(), fault_plan=plan)
        observed = _run(Observability.with_attribution(), fault_plan=plan)
        assert observed.total_seconds == plain.total_seconds

    def test_recovery_wait_attributed_to_the_device(self):
        obs = Observability.with_attribution()
        plan = FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=_crash_time(),
                      duration_s=0.02),
        ))
        _run(obs, fault_plan=plan)
        seconds = obs.attribution_report().seconds_by_component
        # The backoff while the host waits for device reset is cse time.
        assert seconds.get("cse", 0.0) > 0.0
