"""Dual-engine equivalence: array vs. object vs. a heapq oracle.

The array engine's whole value proposition is that it is a *pure*
optimisation: for any schedule — same-time ties, interleaved cancels,
cancel-after-fire, callbacks that schedule or cancel mid-drain — it
fires exactly the events the reference object engine fires, in exactly
the same ``(time, seq)`` order.  This module checks that three ways:

* a hypothesis property test driving both engines (and a ~20-line
  heapq oracle written independently of either) through random
  scripts of schedules, cancels and drains;
* hand-written scripts for the adversarial cases (in-callback
  scheduling before the rest of the batch, cancels aimed at events
  already in the due window);
* whole-workload equivalence — rotation workloads and replayed chaos
  seeds must produce bit-identical run signatures under either engine.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import CampaignConfig, run_campaign
from repro.chaos.invariants import run_signature
from repro.config import SystemConfig
from repro.runtime.activepy import ActivePy
from repro.sim import Simulator
from repro.workloads import get_workload

ENGINES = ("object", "array")


class HeapOracle:
    """Independent reference: a bare (time, seq) heap, nothing shared
    with either production engine."""

    def __init__(self):
        self.heap = []
        self.seq = 0
        self.cancelled = set()
        self.fired = []

    def schedule(self, time):
        seq = self.seq
        self.seq += 1
        heapq.heappush(self.heap, (time, seq))
        return seq

    def cancel(self, seq):
        self.cancelled.add(seq)

    def drain(self, deadline):
        while self.heap and self.heap[0][0] <= deadline:
            time, seq = heapq.heappop(self.heap)
            if seq in self.cancelled:
                continue
            self.fired.append((time, seq))


def run_script(engine, script):
    """Drive a Simulator through (op, ...) tuples; return the firing log.

    Ops: ``("schedule", t)``, ``("cancel", i)`` (i-th handle, modulo),
    ``("drain", deadline_delta)``.  The log records ``(time, seq)`` for
    every fired event, so two engines agree iff their logs are equal.
    """
    sim = Simulator(engine=engine)
    handles = []
    log = []

    def make_action(handle_slot):
        def action():
            log.append((sim.now, handles[handle_slot].seq))
        return action

    for op in script:
        if op[0] == "schedule":
            slot = len(handles)
            handles.append(None)
            handles[slot] = sim.schedule_at(op[1], make_action(slot))
        elif op[0] == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif op[0] == "drain":
            deadline = sim.now + op[1]
            sim.run_until(deadline)
    sim.run_all()
    return log


def run_oracle(script):
    oracle = HeapOracle()
    seqs = []
    now = 0.0
    for op in script:
        if op[0] == "schedule":
            seqs.append(oracle.schedule(op[1]))
        elif op[0] == "cancel":
            if seqs:
                oracle.cancel(seqs[op[1] % len(seqs)])
        elif op[0] == "drain":
            now = now + op[1]
            oracle.drain(now)
    oracle.drain(float("inf"))
    return oracle.fired


# Timestamps from a small grid so same-time collisions are common.
_TIMES = st.sampled_from([0.0, 1.0, 1.0, 2.0, 2.5, 3.0, 5.0, 10.0])

_OP = st.one_of(
    st.tuples(st.just("schedule"), _TIMES),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
    st.tuples(st.just("drain"), st.sampled_from([0.0, 0.5, 1.0, 2.0, 4.0])),
)


def _monotonic_schedules(script):
    """Keep only scripts whose schedules are never in the past."""
    now = 0.0
    for op in script:
        if op[0] == "drain":
            now += op[1]
        elif op[0] == "schedule" and op[1] < now:
            return False
    return True


class TestPropertyEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_OP, min_size=1, max_size=40).filter(_monotonic_schedules))
    def test_engines_match_each_other_and_the_oracle(self, script):
        array_log = run_script("array", script)
        object_log = run_script("object", script)
        oracle_log = run_oracle(script)
        assert array_log == object_log
        assert array_log == oracle_log

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(_TIMES, min_size=1, max_size=30),
        st.sets(st.integers(min_value=0, max_value=29)),
    )
    def test_cancel_subset_of_batch(self, times, cancel_slots):
        """Cancel an arbitrary subset before draining: orders match."""
        logs = {}
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            log = []
            handles = [
                sim.schedule_at(t, lambda t=t, i=i: log.append((t, i)))
                for i, t in enumerate(times)
            ]
            for slot in cancel_slots:
                if slot < len(handles):
                    handles[slot].cancel()
            sim.run_all()
            logs[engine] = log
        assert logs["array"] == logs["object"]


class TestAdversarialScripts:
    """Hand-picked cases where batching could diverge from the heap."""

    @staticmethod
    def logs_for(build):
        logs = {}
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            log = []
            build(sim, log)
            sim.run_all()
            logs[engine] = log
        assert logs["array"] == logs["object"]
        return logs["array"]

    def test_callback_schedules_earlier_than_rest_of_batch(self):
        # t=1 fires and schedules t=1.5; the batch already holds t=2
        # and t=3 — the new event must jump the queue.
        def build(sim, log):
            def first():
                log.append(("first", sim.now))
                sim.schedule_at(1.5, lambda: log.append(("mid", sim.now)))
            sim.schedule_at(1.0, first)
            sim.schedule_at(2.0, lambda: log.append(("second", sim.now)))
            sim.schedule_at(3.0, lambda: log.append(("third", sim.now)))

        log = self.logs_for(build)
        assert log == [
            ("first", 1.0), ("mid", 1.5), ("second", 2.0), ("third", 3.0),
        ]

    def test_callback_cancels_later_batch_member(self):
        def build(sim, log):
            doomed = {}
            def first():
                log.append(("first", sim.now))
                doomed["h"].cancel()
            sim.schedule_at(1.0, first)
            doomed["h"] = sim.schedule_at(2.0, lambda: log.append(("doomed", sim.now)))
            sim.schedule_at(3.0, lambda: log.append(("last", sim.now)))

        log = self.logs_for(build)
        assert log == [("first", 1.0), ("last", 3.0)]

    def test_callback_cancels_same_time_sibling(self):
        def build(sim, log):
            doomed = {}
            def first():
                log.append("first")
                doomed["h"].cancel()
            sim.schedule_at(1.0, first)
            doomed["h"] = sim.schedule_at(1.0, lambda: log.append("doomed"))
            sim.schedule_at(1.0, lambda: log.append("third"))

        assert self.logs_for(build) == ["first", "third"]

    def test_callback_schedules_same_time_event(self):
        # A same-time event scheduled mid-drain fires after the rest of
        # the batch (higher seq), in the same drain.
        def build(sim, log):
            def first():
                log.append("first")
                sim.schedule_at(sim.now, lambda: log.append("tail"))
            sim.schedule_at(1.0, first)
            sim.schedule_at(1.0, lambda: log.append("second"))

        assert self.logs_for(build) == ["first", "second", "tail"]

    def test_cancel_twice_then_drain(self):
        def build(sim, log):
            handle = sim.schedule_at(1.0, lambda: log.append("x"))
            handle.cancel()
            handle.cancel()
            sim.schedule_at(2.0, lambda: log.append("y"))

        assert self.logs_for(build) == ["y"]

    def test_fire_due_events_between_schedules(self):
        logs = {}
        for engine in ENGINES:
            sim = Simulator(engine=engine)
            log = []
            sim.schedule_at(1.0, lambda: log.append(("a", sim.now)))
            sim.schedule_at(3.0, lambda: log.append(("b", sim.now)))
            sim.clock.advance(2.0)
            fired = sim.fire_due_events()
            assert fired == 1
            assert sim.now == 2.0  # fire_due_events never advances
            sim.run_all()
            logs[engine] = log
        assert logs["array"] == logs["object"]


class TestWorkloadEquivalence:
    """Whole-stack equivalence: runs and campaigns, not micro-scripts."""

    @pytest.mark.parametrize("workload_name", ["tpch_q6", "kmeans"])
    def test_run_signature_matches_across_engines(self, workload_name, monkeypatch):
        workload = get_workload(workload_name, scale=2 ** -7)
        signatures = {}
        for engine in ENGINES:
            monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
            report = ActivePy(SystemConfig()).run(workload.program, workload.dataset)
            signatures[engine] = (run_signature(report), report.total_seconds)
        assert signatures["array"] == signatures["object"]

    def test_chaos_campaign_matches_across_engines(self, monkeypatch):
        outcomes = {}
        for engine in ENGINES:
            monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
            result = run_campaign(
                CampaignConfig(runs=6, scale=2 ** -7, base_seed=20230423,
                               collect_metrics=False)
            )
            outcomes[engine] = [outcome.summary() for outcome in result.outcomes]
        assert outcomes["array"] == outcomes["object"]
