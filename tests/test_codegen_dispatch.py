"""Code generation (mode ladder, distribution) and queue dispatch."""

import pytest

from repro.errors import CodegenError, DispatchError
from repro.runtime.codegen import CodeGenerator, ExecutionMode, overhead_ladder
from repro.runtime.dispatch import CallQueueDispatcher, StatusUpdate
from repro.runtime.planner import CSD, HOST, Plan
from repro.baselines import ground_truth_estimates

from .conftest import make_toy_program


def make_plan(program, assignments, config):
    estimates = ground_truth_estimates(program, 1_000_000, config)
    return Plan(
        assignments=assignments,
        t_host=sum(e.ct_host for e in estimates),
        t_csd=1.0,
        estimates=tuple(estimates),
    )


class TestExecutionModes:
    def test_ladder_multipliers(self, config):
        ladder = dict(overhead_ladder(config))
        assert ladder[ExecutionMode.C] == 1.0
        assert ladder[ExecutionMode.PYTHON] == pytest.approx(1.41)
        assert ladder[ExecutionMode.CYTHON] == pytest.approx(1.20)
        assert ladder[ExecutionMode.ACTIVEPY] == pytest.approx(1.005)

    def test_compile_costs(self, config):
        assert ExecutionMode.C.compile_seconds(config) == 0.0
        assert ExecutionMode.PYTHON.compile_seconds(config) == 0.0
        assert ExecutionMode.CYTHON.compile_seconds(config) == pytest.approx(0.1)
        assert ExecutionMode.ACTIVEPY.compile_seconds(config) == pytest.approx(0.1)


class TestCodeGenerator:
    def test_compile_charges_clock(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [HOST, HOST, HOST], config)
        CodeGenerator(config).generate(machine, program, plan, ExecutionMode.ACTIVEPY)
        assert machine.now == pytest.approx(config.compile_overhead_s)

    def test_c_mode_compiles_for_free(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [HOST, HOST, HOST], config)
        CodeGenerator(config).generate(machine, program, plan, ExecutionMode.C)
        assert machine.now == 0.0

    def test_binaries_installed_for_csd_lines_only(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [CSD, CSD, HOST], config)
        compiled = CodeGenerator(config).generate(machine, program, plan)
        assert set(compiled.device_binaries) == {"scan", "crunch"}
        assert machine.csd.bar.binary_address("toy.scan") is not None

    def test_copy_elimination_counted_in_activepy_mode(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [HOST, HOST, HOST], config)
        compiled = CodeGenerator(config).generate(
            machine, program, plan, ExecutionMode.ACTIVEPY
        )
        assert compiled.copies_eliminated == len(program) - 1

    def test_cython_keeps_copies(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [HOST, HOST, HOST], config)
        compiled = CodeGenerator(config).generate(
            machine, program, plan, ExecutionMode.CYTHON
        )
        assert compiled.copies_eliminated == 0

    def test_interpreted_code_cannot_ship_to_csd(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [CSD, HOST, HOST], config)
        with pytest.raises(CodegenError):
            CodeGenerator(config).generate(
                machine, program, plan, ExecutionMode.PYTHON
            )

    def test_plan_program_length_mismatch(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [HOST, HOST, HOST], config)
        short = Plan(assignments=[HOST], t_host=1.0, t_csd=1.0,
                     estimates=plan.estimates[:1])
        with pytest.raises(CodegenError):
            CodeGenerator(config).generate(machine, program, short)

    def test_regenerate_for_host_charges_compile(self, config, machine):
        program = make_toy_program()
        plan = make_plan(program, [HOST, HOST, HOST], config)
        compiled = CodeGenerator(config).generate(machine, program, plan)
        before = machine.now
        cost = CodeGenerator(config).regenerate_for_host(machine, compiled)
        assert cost == pytest.approx(config.compile_overhead_s)
        assert machine.now == pytest.approx(before + cost)


class TestDispatch:
    def test_invoke_rings_doorbell_and_fetches(self, machine):
        dispatcher = CallQueueDispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        assert dispatcher.invocations == 1
        dispatcher.complete(command_id)
        completion = dispatcher.reap_completion(command_id)
        assert completion.status == "ok"

    def test_invoke_without_binary_rejected(self, machine):
        dispatcher = CallQueueDispatcher(machine)
        with pytest.raises(DispatchError):
            dispatcher.invoke("scan", binary_address=None)

    def test_status_updates_cost_a_message(self, machine, config):
        dispatcher = CallQueueDispatcher(machine)
        before = machine.now
        dispatcher.post_status(StatusUpdate(
            line_name="scan", chunk=1, ipc=1.0, progress=0.5,
            high_priority_pending=False,
        ))
        assert machine.now == pytest.approx(before + config.link_latency_s)
        assert dispatcher.status_updates == 1

    def test_drain_returns_updates_and_preserves_completions(self, machine):
        dispatcher = CallQueueDispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        dispatcher.post_status(StatusUpdate("scan", 1, 1.0, 0.5, False))
        dispatcher.complete(command_id)
        dispatcher.post_status(StatusUpdate("scan", 2, 1.0, 1.0, False))
        updates = dispatcher.drain_status()
        assert [u.chunk for u in updates] == [1, 2]
        # The interleaved completion survived the drain.
        assert dispatcher.reap_completion(command_id).command_id == command_id
