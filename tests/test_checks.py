"""Program validation pre-flight checks."""

import numpy as np
import pytest

from repro.lang.checks import validate_program
from repro.lang.program import Program, Statement, constant, per_record
from repro.workloads import get_workload

from .conftest import make_toy_dataset, make_toy_program


class TestStaticChecks:
    def test_clean_program_passes(self):
        report = validate_program(make_toy_program())
        assert report.ok
        assert report.issues == []

    def test_negative_cost_law_is_an_error(self):
        bad = Program("bad", [
            Statement("neg", lambda p: p,
                      instructions=lambda n: -n,
                      output_bytes=constant(8.0)),
        ])
        report = validate_program(bad)
        assert not report.ok
        assert "negative" in str(report.errors[0])

    def test_decreasing_cost_law_is_an_error(self):
        bad = Program("bad", [
            Statement("shrinking", lambda p: p,
                      instructions=lambda n: 1e9 / n,
                      output_bytes=constant(8.0)),
        ])
        report = validate_program(bad)
        assert not report.ok
        assert "decreases" in str(report.errors[0])

    def test_raising_cost_law_is_an_error(self):
        def explosive(n):
            raise ValueError("boom")

        bad = Program("bad", [
            Statement("boom", lambda p: p,
                      instructions=explosive, output_bytes=constant(8.0)),
        ])
        report = validate_program(bad)
        assert not report.ok
        assert "raised" in str(report.errors[0])


class TestDynamicChecks:
    def test_toy_program_validates_against_its_dataset(self):
        report = validate_program(make_toy_program(), make_toy_dataset())
        assert report.ok, report.render()
        assert not report.warnings

    def test_kernel_crash_is_an_error(self):
        def boom(p):
            raise RuntimeError("native crash")

        bad = Program("bad", [
            Statement("boom", boom, per_record(1), constant(8.0)),
        ])
        report = validate_program(bad, make_toy_dataset())
        assert not report.ok
        assert "kernel failed" in str(report.errors[0])

    def test_volume_mismatch_is_a_warning(self):
        lying = Program("lying", [
            Statement(
                "scan",
                lambda p: {"y": p["x"]},  # really 8 B/record
                per_record(10),
                output_bytes=per_record(100.0),  # claims 100 B/record
                storage_bytes=per_record(64.0),
            ),
        ])
        report = validate_program(lying, make_toy_dataset())
        assert report.ok  # warnings do not fail validation
        assert report.warnings
        assert "deviates" in str(report.warnings[0])

    def test_sparse_workload_flags_its_known_bias(self):
        # PageRank's CSR line legitimately measures bigger than its
        # population law on prefix samples — the validator surfaces it.
        workload = get_workload("pagerank")
        report = validate_program(workload.program, workload.dataset)
        assert report.ok
        assert any("build_csr" == issue.line for issue in report.warnings)

    def test_all_builtin_workloads_have_no_errors(self):
        for name in ("blackscholes", "tpch_q6", "lightgbm", "matrixmul"):
            workload = get_workload(name)
            report = validate_program(workload.program, workload.dataset)
            assert report.ok, f"{name}: {report.render()}"

    def test_render_summarises(self):
        report = validate_program(make_toy_program(), make_toy_dataset())
        assert "ok" in report.render()
