"""KMeans substrate: assignment, update, convergence."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ml.kmeans_core import (
    inertia,
    init_centroids,
    kmeans_assign,
    kmeans_fit,
    kmeans_update,
)


def blob_data(n_per_blob=200, seed=1):
    rng = np.random.default_rng(seed)
    centers = np.array([[-10.0, -10.0], [10.0, 10.0], [10.0, -10.0]])
    points = np.concatenate([
        center + rng.normal(0, 0.5, size=(n_per_blob, 2)) for center in centers
    ])
    return points, centers


class TestAssign:
    def test_assigns_to_nearest(self):
        points = np.array([[0.0, 0.0], [9.9, 9.9]])
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        labels = kmeans_assign(points, centroids)
        assert labels.tolist() == [0, 1]

    def test_matches_brute_force(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(100, 5))
        centroids = rng.normal(size=(7, 5))
        fast = kmeans_assign(points, centroids)
        brute = np.argmin(
            ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2), axis=1
        )
        assert np.array_equal(fast, brute)

    def test_dimension_mismatch(self):
        with pytest.raises(WorkloadError):
            kmeans_assign(np.zeros((4, 3)), np.zeros((2, 5)))


class TestUpdate:
    def test_centroids_are_cluster_means(self):
        points = np.array([[0.0, 0.0], [2.0, 2.0], [10.0, 10.0]])
        labels = np.array([0, 0, 1])
        centroids, counts = kmeans_update(points, labels, k=2)
        assert centroids[0] == pytest.approx([1.0, 1.0])
        assert centroids[1] == pytest.approx([10.0, 10.0])
        assert counts.tolist() == [2, 1]

    def test_empty_cluster_reports_zero(self):
        points = np.array([[1.0, 1.0]])
        centroids, counts = kmeans_update(points, np.array([0]), k=3)
        assert counts.tolist() == [1, 0, 0]


class TestFit:
    def test_recovers_separated_blobs(self):
        points, centers = blob_data()
        state = kmeans_fit(points, k=3, iterations=20)
        # Each true center must have a learned centroid within the blob
        # radius.
        for center in centers:
            distances = np.linalg.norm(state.centroids - center, axis=1)
            assert distances.min() < 1.0

    def test_inertia_decreases_with_iterations(self):
        points, _ = blob_data()
        one = kmeans_fit(points, k=3, iterations=1)
        many = kmeans_fit(points, k=3, iterations=20)
        assert inertia(points, many.centroids) <= inertia(points, one.centroids) + 1e-9

    def test_converges_and_stops_early(self):
        points, _ = blob_data()
        state = kmeans_fit(points, k=3, iterations=200)
        assert state.iteration < 200
        assert state.shift < 1e-9

    def test_validation(self):
        points, _ = blob_data()
        with pytest.raises(WorkloadError):
            kmeans_fit(points, k=3, iterations=0)
        with pytest.raises(WorkloadError):
            init_centroids(points, k=0)
        with pytest.raises(WorkloadError):
            init_centroids(np.zeros(5), k=1)
