"""The common report protocol: summary()/to_jsonable() everywhere."""

import json

import pytest

from repro.analysis.export import ReportLike, dumps, to_jsonable
from repro.analysis.timeline import ExecutionTimeline
from repro.chaos import ChaosRunOutcome
from repro.chaos.campaign import CampaignConfig, CampaignResult
from repro.faults import FaultPlan
from repro.fleet import (
    Fleet,
    FleetCampaignConfig,
    FleetCampaignResult,
    FleetChaosOutcome,
    FleetConfig,
    SloSnapshot,
    TenantSpec,
)
from repro.runtime.activepy import ActivePy
from repro.workloads import get_workload

_SCALE = 2 ** -7


def _report():
    workload = get_workload("tpch_q6", scale=_SCALE)
    return ActivePy().run(workload.program, workload.dataset)


def _outcome(**overrides):
    fields = dict(
        workload="tpch_q6",
        seed=7,
        plan=FaultPlan(()),
        violations=(),
        degraded=False,
        fault_event_count=3,
    )
    fields.update(overrides)
    return ChaosRunOutcome(**fields)


class TestProtocolSpeakers:
    def test_report_types_satisfy_protocol(self):
        report = _report()
        assert isinstance(report, ReportLike)
        assert isinstance(report.result, ReportLike)
        assert isinstance(_outcome(), ReportLike)
        assert isinstance(CampaignResult(config=CampaignConfig()), ReportLike)

    def test_timeline_keeps_its_dedicated_branch(self):
        # ExecutionTimeline has summary() but no to_jsonable(); it must
        # keep hitting its own export branch, not the protocol.
        assert not isinstance(ExecutionTimeline(), ReportLike)
        timeline = ExecutionTimeline()
        timeline.record(0.0, 1.0, "host", "compute", "scan")
        assert to_jsonable(timeline)["experiment"] == "timeline"

    def test_dispatch_uses_protocol_and_serialises(self):
        report = _report()
        data = to_jsonable(report)
        assert data["experiment"] == "activepy-run"
        assert data["result"]["experiment"] == "execution-result"
        # summary() keys are a subset of the full view.
        assert set(report.summary()) <= set(data)
        json.loads(dumps(report))  # round-trips through real JSON

    def test_outcome_and_campaign_serialise(self):
        outcome = _outcome(metrics={"counters": {"x": 1.0}})
        data = to_jsonable(outcome)
        assert data["experiment"] == "chaos-run"
        assert data["fault_event_count"] == 3
        assert data["metrics"]["counters"]["x"] == 1.0
        campaign = CampaignResult(config=CampaignConfig(), outcomes=[outcome])
        payload = json.loads(dumps(campaign))
        assert payload["experiment"] == "chaos-campaign"
        assert payload["outcomes"][0]["seed"] == 7


class TestFleetReportsSpeakTheProtocol:
    @pytest.fixture(scope="class")
    def fleet_report(self):
        config = FleetConfig(
            device_count=2,
            tenants=(TenantSpec(name="t", rate_jobs_per_s=8.0,
                                admission_rate=1000.0, admission_burst=64,
                                queue_limit=256),),
            job_count=6,
            scale=2 ** -6,
        )
        return Fleet(config).run()

    def test_fleet_report_satisfies_protocol(self, fleet_report):
        assert isinstance(fleet_report, ReportLike)
        data = to_jsonable(fleet_report)
        assert data["experiment"] == "fleet-run"
        assert set(fleet_report.summary()) <= set(data)
        payload = json.loads(dumps(fleet_report))
        assert payload["device_count"] == 2
        assert len(payload["outcomes"]) == 6

    def test_slo_snapshots_round_trip(self, fleet_report):
        assert fleet_report.slos
        for snapshot in fleet_report.slos:
            assert isinstance(snapshot, ReportLike)
            payload = json.loads(dumps(snapshot))
            assert payload["experiment"] == "fleet-tenant-slo"
            assert payload["tenant"] == snapshot.tenant
            assert payload["queue_wait_p99_s"] == pytest.approx(
                snapshot.queue_wait_p99_s
            )

    def test_chaos_outcome_and_campaign_satisfy_protocol(self):
        outcome = FleetChaosOutcome(
            seed=3, plan=FaultPlan(()), violations=(),
            completed=5, degraded=1, shed=0, makespan_s=1.5,
        )
        assert isinstance(outcome, ReportLike)
        assert to_jsonable(outcome)["experiment"] == "fleet-chaos-run"
        result = FleetCampaignResult(
            config=FleetCampaignConfig(runs=1), outcomes=[outcome],
        )
        assert isinstance(result, ReportLike)
        payload = json.loads(dumps(result))
        assert payload["experiment"] == "fleet-chaos-campaign"
        assert payload["outcomes"][0]["seed"] == 3


class TestRenamedAttributeShim:
    def test_faults_injected_warns_and_aliases(self):
        outcome = _outcome()
        with pytest.warns(DeprecationWarning, match="fault_event_count"):
            value = outcome.faults_injected
        assert value == outcome.fault_event_count == 3

    def test_new_name_does_not_warn(self, recwarn):
        assert _outcome().fault_event_count == 3
        assert not [w for w in recwarn if w.category is DeprecationWarning]
