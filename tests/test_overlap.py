"""Overlapped I/O-and-compute execution model."""

import pytest

from repro.config import SystemConfig
from repro.hw.compute import ComputeUnit
from repro.hw.interconnect import Link
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.sim.clock import SimClock
from repro.baselines import run_c_baseline

from .conftest import make_toy_dataset, make_toy_program


class TestPrimitives:
    def test_link_account_keeps_time_still(self):
        link = Link("l", bandwidth=1e9, clock=SimClock())
        link.account(5e8)
        assert link.clock.now == 0.0
        assert link.bytes_transferred == 5e8
        assert link.transfers == 1

    def test_unit_charge_books_counters_without_clock(self):
        unit = ComputeUnit("host", ips=8e9, clock=SimClock(), clock_hz=4e9)
        unit.charge(8e9, elapsed=2.0)
        assert unit.clock.now == 0.0
        assert unit.counters.retired_instructions == 8e9
        assert unit.counters.busy_seconds == 2.0

    def test_charge_validates(self):
        unit = ComputeUnit("host", ips=8e9, clock=SimClock())
        with pytest.raises(Exception):
            unit.charge(-1, 1.0)


class TestOverlappedExecution:
    def test_overlap_never_slower(self):
        sequential = run_c_baseline(
            make_toy_program(), make_toy_dataset(),
            config=SystemConfig(overlap_io_compute=False),
        )
        overlapped = run_c_baseline(
            make_toy_program(), make_toy_dataset(),
            config=SystemConfig(overlap_io_compute=True),
        )
        assert overlapped.total_seconds <= sequential.total_seconds

    def test_overlap_bounded_by_dominant_term(self, config):
        # For the io-dominated scan line, overlapping hides the whole
        # compute term: the line costs ~the storage streaming time.
        overlap = SystemConfig(overlap_io_compute=True)
        result = run_c_baseline(
            make_toy_program(), make_toy_dataset(), config=overlap,
        )
        n = make_toy_dataset().n_records
        io_seconds = 64.0 * n / overlap.bw_host_storage
        assert result.seconds_for("scan") == pytest.approx(io_seconds, rel=0.02)

    def test_traffic_accounting_identical_either_way(self, config):
        seq_machine = build_machine(SystemConfig(overlap_io_compute=False))
        run_c_baseline(make_toy_program(), make_toy_dataset(),
                       config=seq_machine.config, machine=seq_machine)
        ovl_machine = build_machine(SystemConfig(overlap_io_compute=True))
        run_c_baseline(make_toy_program(), make_toy_dataset(),
                       config=ovl_machine.config, machine=ovl_machine)
        assert (
            ovl_machine.host_storage_link.bytes_transferred
            == seq_machine.host_storage_link.bytes_transferred
        )

    def test_activepy_still_profits_with_overlap(self):
        # Overlap helps both sides; the bandwidth asymmetry that powers
        # ISP remains, so the win shrinks but survives.
        overlap = SystemConfig(overlap_io_compute=True)
        baseline = run_c_baseline(
            make_toy_program(), make_toy_dataset(), config=overlap,
        )
        report = ActivePy(overlap).run(make_toy_program(), make_toy_dataset())
        assert baseline.total_seconds / report.total_seconds > 1.0

    def test_migration_still_works_with_overlap(self):
        overlap = SystemConfig(overlap_io_compute=True)
        report = ActivePy(overlap).run(
            make_toy_program(), make_toy_dataset(),
            progress_triggers=[(0.3, 0.05)],
        )
        assert report.result.total_seconds > 0  # completes either way
