"""Crash-consistent line-boundary checkpointing.

Covers the record codec, the torn-write/CRC/double-buffer protocol in
isolation, and the executor-level guarantee: a torn checkpoint write
never corrupts a resume, and checkpointing off the happy path costs
exactly nothing.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import SystemConfig
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.runtime.checkpoint import (
    CheckpointManager,
    CheckpointRecord,
    decode_record,
    encode_record,
    tear_offset,
)
from repro.storage.bar import CHECKPOINT_SLOT_BYTES

from .conftest import make_toy_dataset, make_toy_program


def _record(generation=0, line_index=1, next_chunk=5,
            live_vars=("x", "acc"), sim_time=1.25):
    return CheckpointRecord(
        generation=generation, line_index=line_index, next_chunk=next_chunk,
        live_vars=live_vars, sim_time=sim_time,
    )


class TestRecordCodec:
    def test_roundtrip(self):
        record = _record()
        assert decode_record(encode_record(record)) == record

    def test_roundtrip_no_live_vars(self):
        record = _record(live_vars=())
        assert decode_record(encode_record(record)) == record

    def test_fits_slot(self):
        blob = encode_record(_record(live_vars=tuple(f"var_{i}" for i in range(64))))
        assert len(blob) <= CHECKPOINT_SLOT_BYTES

    def test_crc_rejects_any_corrupted_byte(self):
        blob = bytearray(encode_record(_record()))
        for offset in range(len(blob)):
            corrupt = bytes(blob[:offset]) + bytes([blob[offset] ^ 0x01]) + bytes(blob[offset + 1:])
            assert decode_record(corrupt) is None, f"flip at byte {offset} accepted"

    def test_validation_off_trusts_scrambled_tail(self):
        record = _record(next_chunk=5)
        blob = encode_record(record)
        tear = tear_offset(record)
        torn = blob[:tear] + bytes(b ^ 0xA5 for b in blob[tear:])
        assert decode_record(torn) is None  # CRC catches it...
        trusted = decode_record(torn, validate=False)  # ...unless told not to
        assert trusted is not None
        assert trusted.line_index == record.line_index  # head survived
        assert trusted.next_chunk != record.next_chunk  # cursor did not

    def test_decode_rejects_garbage(self):
        assert decode_record(None) is None
        assert decode_record(b"") is None
        assert decode_record(b"\x00" * 40) is None


class TestCheckpointArea:
    def test_torn_write_scrambles_only_the_tail(self, machine):
        area = machine.csd.checkpoints
        payload = bytes(range(64))
        area.arm_torn_write(1)
        assert area.write(0, payload, tear_offset=16) is False
        stored = area.read(0)
        assert stored[:16] == payload[:16]
        assert stored[16:] == bytes(b ^ 0xA5 for b in payload[16:])
        # the fault is consumed: the next write is clean
        assert area.write(1, payload, tear_offset=16) is True
        assert area.read(1) == payload

    def test_area_survives_cse_reset(self, machine):
        area = machine.csd.checkpoints
        area.write(0, b"record", tear_offset=0)
        machine.csd.crash_cse()
        machine.csd.reset_cse()
        assert area.read(0) == b"record"


class TestCheckpointManager:
    def _manager(self, machine, **overrides):
        config = dataclasses.replace(machine.config, **overrides)
        return CheckpointManager(device=machine.csd, config=config)

    def test_restore_picks_newest_generation(self, machine):
        manager = self._manager(machine)
        manager.save(2, 3, ("x",), machine.now)
        manager.save(2, 4, ("x",), machine.now)
        record = manager.restore()
        assert (record.line_index, record.next_chunk) == (2, 4)

    def test_torn_newest_falls_back_to_previous_generation(self, machine):
        manager = self._manager(machine)
        manager.save(2, 3, ("x",), machine.now)
        machine.csd.checkpoints.arm_torn_write(1)
        manager.save(2, 4, ("x",), machine.now)
        assert manager.resume_chunk(2, chunks=16, fallback=99) == 3
        assert manager.fallbacks == 1

    def test_both_slots_torn_restarts_the_line(self, machine):
        manager = self._manager(machine)
        machine.csd.checkpoints.arm_torn_write(2)
        manager.save(2, 3, ("x",), machine.now)
        manager.save(2, 4, ("x",), machine.now)
        assert manager.resume_chunk(2, chunks=16, fallback=99) == 0
        assert manager.restarts == 1

    def test_record_for_other_line_restarts(self, machine):
        manager = self._manager(machine)
        manager.save(1, 7, ("x",), machine.now)
        assert manager.resume_chunk(2, chunks=16, fallback=99) == 0

    def test_cursor_clamped_to_chunk_count(self, machine):
        manager = self._manager(machine)
        manager.save(2, 500, ("x",), machine.now)
        assert manager.resume_chunk(2, chunks=16, fallback=0) == 16

    def test_disabled_trusts_fallback_and_writes_nothing(self, machine):
        manager = self._manager(machine, checkpoint_enabled=False)
        manager.save(2, 3, ("x",), machine.now)
        assert machine.csd.checkpoints.writes == 0
        assert manager.resume_chunk(2, chunks=16, fallback=7) == 7

    def test_single_buffer_mode_overwrites_in_place(self, machine):
        manager = self._manager(machine, checkpoint_double_buffer=False)
        manager.save(2, 3, ("x",), machine.now)
        manager.save(2, 4, ("x",), machine.now)
        assert machine.csd.checkpoints.read(1) is None

    def test_write_cost_charges_sim_time(self, machine):
        manager = self._manager(machine, checkpoint_write_cost_s=0.5)
        before = machine.now
        manager.save(0, 1, (), machine.now)
        assert machine.now == pytest.approx(before + 0.5)

    def test_default_write_cost_is_free(self, machine):
        manager = self._manager(machine)
        before = machine.now
        manager.save(0, 1, (), machine.now)
        assert machine.now == before


def _run_toy(config: SystemConfig, fault_plan=None):
    machine = build_machine(config)
    return ActivePy(config).run(
        make_toy_program(), make_toy_dataset(), machine=machine,
        fault_plan=fault_plan,
    )


class TestExecutorIntegration:
    def test_fault_free_run_checkpoints_every_chunk(self, config):
        report = _run_toy(config)
        stats = report.result.checkpoint_stats
        # one entry record per CSD line plus one per completed chunk
        assert stats["saves"] > 0
        assert stats["restores"] == 0
        assert stats["torn_writes"] == 0

    def test_disabled_checkpointing_is_timing_identical(self, config):
        enabled = _run_toy(config)
        disabled = _run_toy(
            dataclasses.replace(config, checkpoint_enabled=False)
        )
        assert disabled.total_seconds == enabled.total_seconds
        assert disabled.result.checkpoint_stats["saves"] == 0

    def test_frontend_live_vars_reach_the_record(self, machine):
        """Tracer-built programs carry liveness into the record."""
        from repro.frontend import program_from_function

        def pipeline(x):
            doubled = x * 2.0
            total = doubled + 1.0
            return total

        program = program_from_function(pipeline, record_bytes=8.0)
        assert any(statement.live_vars for statement in program)
        manager = CheckpointManager(device=machine.csd, config=machine.config)
        manager.save(0, 1, program[0].live_vars, machine.now)
        record = manager.restore()
        assert record.live_vars == program[0].live_vars

    @staticmethod
    def _torn_then_crash_plan(baseline):
        """Tear checkpoints a few chunks before a permanent crash, both
        inside the first CSD line's execution window."""
        line0 = baseline.result.line_timings[0]
        start = baseline.result.started_at
        return FaultPlan(specs=(
            FaultSpec(kind=FaultKind.CHECKPOINT_TORN_WRITE,
                      at_time=start + 0.3 * line0.seconds, count=500),
            FaultSpec(kind=FaultKind.CSE_CRASH,
                      at_time=start + 0.5 * line0.seconds, duration_s=0.0),
        ))

    def test_torn_write_with_crash_never_corrupts_resume(self, config):
        """The tentpole guarantee, end to end.

        Tear every checkpoint write from mid-line on, then kill the CSE
        for good: the executor must fall back to the host at a resume
        point that replays work (never skips it), because CRC
        validation rejects the torn record and the double buffer serves
        the previous generation.
        """
        baseline = _run_toy(config)
        report = _run_toy(config, fault_plan=self._torn_then_crash_plan(baseline))
        result = report.result
        assert result.degraded
        assert result.checkpoint_stats["torn_writes"] > 0
        for index, statement in enumerate(make_toy_program()):
            assert result.chunks_executed[index] >= statement.chunks

    def test_validation_off_lets_the_torn_cursor_skip_work(self, config):
        """The deliberately planted bug is a real bug.

        Same scenario as above with CRC validation off: the executor
        trusts the torn record's scrambled cursor and skips chunks —
        the violation the chaos campaign exists to catch.
        """
        bugged = dataclasses.replace(config, checkpoint_validate=False)
        baseline = _run_toy(bugged)
        report = _run_toy(bugged, fault_plan=self._torn_then_crash_plan(baseline))
        result = report.result
        skipped = [
            index for index, statement in enumerate(make_toy_program())
            if result.chunks_executed[index] < statement.chunks
        ]
        assert skipped, "expected the unvalidated torn cursor to skip work"
