"""Fluent program/dataset builders."""

import numpy as np
import pytest

from repro.errors import ProgramError
from repro.lang.builder import ProgramBuilder, array_dataset, dataset_of
from repro.runtime.activepy import ActivePy


def _k_parse(p):
    return {"v": p["raw"] * 0.5}


def _k_square(p):
    return {"v2": p["v"] ** 2}


def _k_total(p):
    return {"total": float(np.sum(p["v2"]))}


def build_program():
    return (
        ProgramBuilder("fluent")
        .scan("parse", _k_parse, instr_per_record=40,
              record_bytes=64, out_bytes_per_record=8)
        .line("square", _k_square, instr_per_record=5,
              out_bytes_per_record=8)
        .reduce("total", _k_total, instr_per_record=1)
        .build()
    )


class TestProgramBuilder:
    def test_builds_three_lines(self):
        program = build_program()
        assert len(program) == 3
        assert program[0].reads_storage()
        assert not program[1].reads_storage()

    def test_cost_laws_installed(self):
        program = build_program()
        assert program[0].instructions(1000) == 40_000
        assert program[0].storage_bytes(1000) == 64_000
        assert program[2].output_bytes(1e9) == 24.0

    def test_scan_passes_multiply_storage(self):
        program = (
            ProgramBuilder("iterative")
            .scan("sweep", _k_parse, instr_per_record=10,
                  record_bytes=64, out_bytes_per_record=8, passes=5)
            .build()
        )
        assert program[0].storage_bytes(100) == 64 * 5 * 100

    def test_empty_build_rejected(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("empty").build()

    def test_invalid_scan_params(self):
        with pytest.raises(ProgramError):
            ProgramBuilder("x").scan("s", _k_parse, 1, record_bytes=0,
                                     out_bytes_per_record=8)
        with pytest.raises(ProgramError):
            ProgramBuilder("x").scan("s", _k_parse, 1, record_bytes=8,
                                     out_bytes_per_record=8, passes=0)

    def test_built_program_runs_through_activepy(self, config):
        dataset = dataset_of(
            "fluent.data", n_records=20_000_000, record_bytes=64.0,
            builder=lambda n, full: {"raw": np.ones(n)},
        )
        report = ActivePy(config).run(build_program(), dataset)
        assert report.plan.uses_csd
        assert report.result.total_seconds > 0


class TestArrayDataset:
    def test_wraps_arrays(self):
        dataset = array_dataset(
            "mem", {"x": np.arange(10_000.0)}, record_bytes=8.0,
        )
        assert dataset.n_records == 10_000
        assert dataset.payload["x"].shape == (10_000,)

    def test_sampling_takes_prefixes(self):
        dataset = array_dataset(
            "mem", {"x": np.arange(100_000.0)}, record_bytes=8.0,
        )
        sample = dataset.sample(2**-10)
        assert np.array_equal(
            sample.payload["x"], np.arange(float(sample.n_records))
        )

    def test_ragged_arrays_rejected(self):
        with pytest.raises(ProgramError):
            array_dataset(
                "bad", {"x": np.zeros(5), "y": np.zeros(3)}, record_bytes=8.0,
            )
