"""Branch-and-bound plan search over forked simulator states."""

import dataclasses
import itertools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DEFAULT_CONFIG
from repro.errors import PlanningError
from repro.hw.topology import build_machine
from repro.obs import Observability
from repro.runtime.activepy import ActivePy, RunOptions
from repro.runtime.codegen import CodeGenerator, ExecutionMode
from repro.runtime.estimator import build_estimates
from repro.runtime.executor import PlanExecutor
from repro.runtime.planner import CSD, HOST, Plan, assign_csd_code
from repro.runtime.plansearch import (
    _FINAL,
    SearchOptions,
    SearchReport,
    _fold_bound,
    _SpeculativeMachine,
    _step_space,
    search_plan,
)
from repro.runtime.profcache import ProfileCache
from repro.runtime.sampling import SamplingPhase
from repro.workloads import get_workload

#: Small enough for fast tests; the §V CSR effect is scale-invariant
#: (sample prefixes stay "sample-shaped" at any population size), so
#: pagerank/sparsemv keep their strict wins here too.
SCALE = 0.02


def _estimates_for(name, scale=SCALE, config=DEFAULT_CONFIG):
    workload = get_workload(name, scale=scale)
    sampling = SamplingPhase(config).run(workload.program, workload.dataset)
    return workload, build_estimates(sampling, workload.n_records, config)


@pytest.fixture(scope="module")
def pagerank():
    return _estimates_for("pagerank")


@pytest.fixture(scope="module")
def tpch_q6():
    return _estimates_for("tpch_q6")


def _search(workload, estimates, config=DEFAULT_CONFIG, **kwargs):
    return search_plan(
        workload.program, workload.dataset, estimates, config, **kwargs
    )


class TestFidelity:
    """The step table reproduces the executor, step for step."""

    def test_leaf_scores_match_real_execution(self, tpch_q6):
        workload, estimates = tpch_q6
        k = len(workload.program)
        spec = _SpeculativeMachine(
            workload.program, workload.dataset, DEFAULT_CONFIG
        )
        steps = {
            key: spec.step_seconds(key)
            for key in _step_space(k, (HOST, CSD))
        }
        for assignments in itertools.product((HOST, CSD), repeat=k):
            elapsed, value_location = 0.0, HOST
            for index, location in enumerate(assignments):
                elapsed += steps[(index, location, value_location)]
                value_location = location
            if value_location == CSD:
                elapsed += steps[(_FINAL, HOST, CSD)]

            machine = build_machine(
                DEFAULT_CONFIG, obs=Observability.disabled()
            )
            machine.csd.store_dataset(
                workload.dataset.name, workload.dataset.raw_bytes
            )
            plan = Plan(
                assignments=list(assignments), t_host=0.0, t_csd=0.0,
                estimates=tuple(estimates), origin="external",
            )
            compiled = CodeGenerator(DEFAULT_CONFIG).generate(
                machine, workload.program, plan, mode=ExecutionMode.ACTIVEPY
            )
            started = machine.now
            PlanExecutor(machine, migration_enabled=False).execute(
                compiled, workload.n_records
            )
            real = machine.now - started
            assert elapsed == pytest.approx(real, rel=1e-12, abs=1e-12), (
                assignments
            )


class TestSearchVsGreedy:
    def test_strictly_beats_greedy_on_csr_workloads(self):
        # The §V case study: the sampled volume curve over-predicts the
        # CSR conversion's output, greedy keeps it on the host, and the
        # speculative search (which measures, not extrapolates) offloads
        # it for a strictly better makespan.
        for name in ("pagerank", "sparsemv"):
            workload, estimates = _estimates_for(name)
            report = _search(workload, estimates)
            assert report.beat_greedy, name
            assert report.makespan_s < report.greedy_makespan_s, name
            assert report.plan.assignments[1] == CSD
            assert report.greedy_plan.assignments[1] == HOST
            assert report.changed_lines() == [
                (1, estimates[1].name, HOST, CSD)
            ]

    @pytest.mark.parametrize("name", ["tpch_q6", "mixedgemm", "kmeans"])
    def test_ties_return_greedy_plan_exactly(self, name):
        # Improvements must be strict: where greedy is optimal the
        # search returns greedy's assignment bit for bit.
        workload, estimates = _estimates_for(name)
        report = _search(workload, estimates)
        assert report.plan.assignments == report.greedy_plan.assignments
        assert report.makespan_s == report.greedy_makespan_s
        assert not report.beat_greedy

    def test_never_worse_even_with_beam_width_one(self, pagerank):
        # Any beam still holds the never-worse guarantee — the greedy
        # incumbent is seeded before the first expansion.
        workload, estimates = pagerank
        unbounded = _search(workload, estimates)
        for width in (1, 2):
            narrow = _search(
                workload, estimates, options=SearchOptions(beam_width=width)
            )
            assert narrow.makespan_s <= narrow.greedy_makespan_s
            assert narrow.makespan_s >= unbounded.makespan_s

    def test_plan_origin_and_measured_projections(self, pagerank):
        workload, estimates = pagerank
        report = _search(workload, estimates)
        plan = report.plan
        assert plan.origin == "search"
        assert plan.t_csd == report.makespan_s
        # t_host is the *measured* all-host speculative makespan.
        assert plan.t_host > plan.t_csd
        assert report.improvement_fraction > 0.0

    def test_matches_exhaustive_oracle(self, pagerank):
        # The pruning (bound, transposition, dominance) must be exact:
        # same winner as brute force over all 2^k leaves.
        workload, estimates = pagerank
        k = len(workload.program)
        spec = _SpeculativeMachine(
            workload.program, workload.dataset, DEFAULT_CONFIG
        )
        steps = {
            key: spec.step_seconds(key)
            for key in _step_space(k, (HOST, CSD))
        }

        def walk(assignments):
            elapsed, value_location = 0.0, HOST
            for index, location in enumerate(assignments):
                elapsed += steps[(index, location, value_location)]
                value_location = location
            if value_location == CSD:
                elapsed += steps[(_FINAL, HOST, CSD)]
            return elapsed

        brute = min(
            walk(a) for a in itertools.product((HOST, CSD), repeat=k)
        )
        report = _search(workload, estimates)
        assert report.makespan_s == brute

    def test_metrics_populated(self, pagerank):
        workload, estimates = pagerank
        report = _search(workload, estimates)
        metrics = report.metrics
        assert metrics.nodes_expanded > 0
        assert metrics.steps_simulated == 4 * len(workload.program) + 1
        assert metrics.wall_seconds > 0.0
        # Trajectory starts at greedy's seed and ends at the winner.
        assert metrics.incumbent_trajectory[0][1] == report.greedy_makespan_s
        assert metrics.incumbent_trajectory[-1][1] == report.makespan_s


class TestDeterminism:
    def test_workers_bit_identical(self, pagerank):
        workload, estimates = pagerank
        greedy = assign_csd_code(estimates, DEFAULT_CONFIG)
        reports = {
            workers: _search(
                workload, estimates,
                options=SearchOptions(workers=workers), greedy=greedy,
            )
            for workers in (1, 4)
        }
        serial, parallel = reports[1], reports[4]
        assert serial.plan.assignments == parallel.plan.assignments
        assert serial.makespan_s == parallel.makespan_s
        assert serial.greedy_makespan_s == parallel.greedy_makespan_s
        serial_metrics = serial.metrics.to_jsonable()
        parallel_metrics = parallel.metrics.to_jsonable()
        serial_metrics.pop("wall_seconds")
        parallel_metrics.pop("wall_seconds")
        assert serial_metrics == parallel_metrics

    def test_repeated_searches_identical(self, tpch_q6):
        workload, estimates = tpch_q6
        first = _search(workload, estimates)
        second = _search(workload, estimates)
        assert first.plan.assignments == second.plan.assignments
        assert first.makespan_s == second.makespan_s


class TestValidation:
    def test_rejects_bad_workers(self, tpch_q6):
        workload, estimates = tpch_q6
        with pytest.raises(PlanningError):
            _search(workload, estimates, options=SearchOptions(workers=0))

    def test_rejects_bad_beam(self, tpch_q6):
        workload, estimates = tpch_q6
        with pytest.raises(PlanningError):
            _search(workload, estimates, options=SearchOptions(beam_width=0))

    def test_rejects_estimate_mismatch(self, tpch_q6):
        workload, estimates = tpch_q6
        with pytest.raises(PlanningError):
            _search(workload, estimates[:-1])

    def test_csd_disabled_returns_all_host(self, tpch_q6):
        workload, estimates = tpch_q6
        config = dataclasses.replace(DEFAULT_CONFIG, csd_enabled=False)
        report = _search(workload, estimates, config=config)
        assert report.plan.assignments == [HOST] * len(workload.program)
        assert report.greedy_plan.assignments == (
            [HOST] * len(workload.program)
        )
        assert report.makespan_s <= report.greedy_makespan_s

    def test_report_round_trips_through_json(self, pagerank):
        workload, estimates = pagerank
        report = _search(workload, estimates)
        payload = json.loads(json.dumps(report.to_jsonable()))
        rebuilt = SearchReport.from_jsonable(payload)
        assert rebuilt.plan.assignments == report.plan.assignments
        assert rebuilt.plan.t_csd == report.plan.t_csd
        assert rebuilt.makespan_s == report.makespan_s
        assert rebuilt.greedy_makespan_s == report.greedy_makespan_s
        assert (
            rebuilt.metrics.incumbent_trajectory
            == report.metrics.incumbent_trajectory
        )
        with pytest.raises(PlanningError):
            SearchReport.from_jsonable({"plan": {}})


class TestActivePyIntegration:
    def test_search_mode_end_to_end(self):
        workload = get_workload("pagerank", scale=SCALE)
        obs = Observability()
        runtime = ActivePy(plan_mode="search", profile_cache=False)
        search_report = runtime.run(
            workload.program, workload.dataset, obs=obs
        )
        greedy_report = ActivePy(profile_cache=False).run(
            workload.program, workload.dataset
        )
        assert search_report.plan.origin == "search"
        assert greedy_report.plan.origin == "greedy"
        assert greedy_report.search is None
        assert search_report.search is not None
        assert search_report.search.beat_greedy
        # The win survives real execution, not just speculation.
        assert (
            search_report.result.total_seconds
            < greedy_report.result.total_seconds
        )
        # Provenance reaches the explanation and the metrics registry.
        explanation = search_report.explanation
        assert explanation.plan_origin == "search"
        assert explanation.search_diff is not None
        assert explanation.search_diff["changed_lines"]
        assert "search beat greedy" in explanation.render()
        counters = obs.snapshot()["counters"]
        assert counters["plansearch.nodes_expanded"] > 0
        assert "plansearch.cache_hit" not in counters

    def test_run_options_override_plan_mode(self):
        workload = get_workload("tpch_q6", scale=SCALE)
        runtime = ActivePy(profile_cache=False)
        report = runtime.run(
            workload.program, workload.dataset,
            options=RunOptions(plan_mode="search"),
        )
        assert report.plan.origin == "search"

    def test_invalid_plan_mode_rejected(self):
        with pytest.raises(PlanningError):
            ActivePy(plan_mode="oracle")
        with pytest.raises(PlanningError):
            RunOptions(plan_mode="oracle")

    def test_warm_cache_skips_search(self, tmp_path):
        cache = ProfileCache(tmp_path)
        workload = get_workload("pagerank", scale=SCALE)
        runtime = ActivePy(plan_mode="search", profile_cache=cache)
        cold = runtime.run(workload.program, workload.dataset)
        assert not cold.search.cache_hit
        assert cache.plan_misses == 1 and cache.plan_hits == 0

        obs = Observability()
        warm = runtime.run(workload.program, workload.dataset, obs=obs)
        assert warm.search.cache_hit
        assert cache.plan_hits == 1
        counters = obs.snapshot()["counters"]
        assert counters["plansearch.cache_hit"] == 1
        # Identical plan and simulated outcome, warm or cold.
        assert warm.plan.assignments == cold.plan.assignments
        assert warm.plan.t_csd == cold.plan.t_csd
        assert warm.result.total_seconds == cold.result.total_seconds

    def test_search_options_change_plan_cache_key(self, tmp_path):
        cache = ProfileCache(tmp_path)
        workload = get_workload("tpch_q6", scale=SCALE)
        runtime = ActivePy(plan_mode="search", profile_cache=cache)
        runtime.run(workload.program, workload.dataset)
        runtime.run(
            workload.program, workload.dataset,
            options=RunOptions(search_options=SearchOptions(beam_width=1)),
        )
        # Different beam -> different plan-cache entry, not a hit.
        assert cache.plan_misses == 2 and cache.plan_hits == 0


class TestAdmissibleBound:
    """The fold bound never exceeds any extension's true completion.

    The production invariant with no epsilon: ``cheapest[i]`` is
    term-wise at most the step actually taken, both sides accumulate
    with the identical left fold in line order, and IEEE addition is
    monotone — so the bound is exact, not just within tolerance.
    """

    @given(
        per_line=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e12),  # host, no cross
                st.floats(min_value=0.0, max_value=1e12),  # csd, no cross
                st.floats(min_value=0.0, max_value=1e9),   # crossing surcharge
            ),
            min_size=1,
            max_size=6,
        ),
        data=st.data(),
    )
    @settings(max_examples=200, deadline=None)
    def test_bound_admissible_for_every_extension(self, per_line, data):
        k = len(per_line)
        steps = {}
        for index, (host_cost, csd_cost, surcharge) in enumerate(per_line):
            for location, base in ((HOST, host_cost), (CSD, csd_cost)):
                for value_location in (HOST, CSD):
                    cost = base
                    if value_location != location:
                        cost = base + surcharge
                    steps[(index, location, value_location)] = cost
        cheapest = [
            min(
                steps[(index, location, value_location)]
                for location in (HOST, CSD)
                for value_location in (HOST, CSD)
            )
            for index in range(k)
        ]

        prefix = data.draw(
            st.lists(
                st.sampled_from([HOST, CSD]), min_size=0, max_size=k
            ),
            label="prefix",
        )
        suffix = data.draw(
            st.lists(
                st.sampled_from([HOST, CSD]),
                min_size=k - len(prefix),
                max_size=k - len(prefix),
            ),
            label="suffix",
        )
        full = list(prefix) + list(suffix)

        elapsed, value_location = 0.0, HOST
        for index, location in enumerate(prefix):
            elapsed += steps[(index, location, value_location)]
            value_location = location
        bound = _fold_bound(elapsed, cheapest, len(prefix))

        true_elapsed, value_location = 0.0, HOST
        for index, location in enumerate(full):
            true_elapsed += steps[(index, location, value_location)]
            value_location = location
        # Exact <=: no epsilon, by float-addition monotonicity.
        assert bound <= true_elapsed

    def test_bound_admissible_on_real_step_table(self, pagerank):
        # The same invariant over the measured table of a real workload.
        workload, _ = pagerank
        k = len(workload.program)
        spec = _SpeculativeMachine(
            workload.program, workload.dataset, DEFAULT_CONFIG
        )
        steps = {
            key: spec.step_seconds(key)
            for key in _step_space(k, (HOST, CSD))
        }
        cheapest = [
            min(
                steps[(index, location, value_location)]
                for location in (HOST, CSD)
                for value_location in (HOST, CSD)
            )
            for index in range(k)
        ]
        for assignments in itertools.product((HOST, CSD), repeat=k):
            elapsed, value_location = 0.0, HOST
            for depth in range(k + 1):
                bound = _fold_bound(elapsed, cheapest, depth)
                # The leaf tail (final readback) only adds time.
                if depth < k:
                    location = assignments[depth]
                    elapsed += steps[(depth, location, value_location)]
                    value_location = location
            assert _fold_bound(0.0, cheapest, 0) <= elapsed
            assert bound <= elapsed
