"""Property-based tests (hypothesis) on core structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.graph.csr import csr_from_edges
from repro.graph.pagerank_core import spmv
from repro.memory.allocator import FreeListAllocator
from repro.runtime.estimator import LineEstimate
from repro.runtime.fitting import ComplexityCurve, fit_curve
from repro.runtime.planner import assign_csd_code, projected_time
from repro.storage.nvme import Completion, CompletionQueue, SubmissionQueue

CONFIG = SystemConfig()


# --- allocator -------------------------------------------------------------

@st.composite
def alloc_scripts(draw):
    """A sequence of allocate/free actions against one allocator."""
    return draw(st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]),
                  st.integers(min_value=1, max_value=512)),
        min_size=1, max_size=40,
    ))


@given(alloc_scripts())
@settings(max_examples=60, deadline=None)
def test_allocator_never_leaks_or_overlaps(script):
    allocator = FreeListAllocator(base=0, capacity=8192)
    live = []
    for action, size in script:
        if action == "alloc":
            try:
                live.append(allocator.allocate(size))
            except Exception:
                continue  # OOM is legal; state must stay consistent
        elif live:
            allocator.free(live.pop(size % len(live)))
    # Invariant 1: accounting balances.
    assert allocator.bytes_allocated + allocator.bytes_free == 8192
    assert allocator.bytes_allocated >= sum(a.size for a in live)
    # Invariant 2: live allocations never overlap.
    spans = sorted((a.address, a.end) for a in live)
    for (_, prev_end), (next_start, _) in zip(spans, spans[1:]):
        assert prev_end <= next_start
    # Invariant 3: freeing everything restores one maximal block.
    for allocation in live:
        allocator.free(allocation)
    assert allocator.largest_free_block() == 8192


# --- curve fitting ------------------------------------------------------------

@given(
    slope=st.floats(min_value=1e-6, max_value=1e3),
    intercept=st.floats(min_value=0.0, max_value=1e3),
)
@settings(max_examples=60, deadline=None)
def test_fitting_recovers_any_linear_law(slope, intercept):
    ns = [1024.0, 2048.0, 4096.0, 8192.0]
    fit = fit_curve(ns, [slope * n + intercept for n in ns])
    full = 2**22
    expected = slope * full + intercept
    assert abs(fit.predict(full) - expected) <= 0.05 * expected + 1e-9


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=4, max_size=4))
@settings(max_examples=60, deadline=None)
def test_fitting_never_predicts_negative(ys):
    fit = fit_curve([1024.0, 2048.0, 4096.0, 8192.0], ys)
    for n in (1.0, 1e3, 1e6, 1e9):
        assert fit.predict(n) >= 0.0


@given(st.floats(min_value=1.0, max_value=1e6))
@settings(max_examples=40, deadline=None)
def test_growth_terms_are_ordered(n):
    # For n >= 2 the five laws are strictly ordered, which is what lets
    # the fitter discriminate them.
    if n >= 2.0:
        values = [curve.growth(n) for curve in (
            ComplexityCurve.O1, ComplexityCurve.N, ComplexityCurve.NLOGN,
            ComplexityCurve.N2, ComplexityCurve.N3,
        )]
        assert values == sorted(values)


# --- planner ------------------------------------------------------------------

@st.composite
def estimate_chains(draw):
    k = draw(st.integers(min_value=1, max_value=6))
    lines = []
    previous_out = 0.0
    for i in range(k):
        compute = draw(st.floats(min_value=0.01, max_value=5.0))
        storage = draw(st.floats(min_value=0.0, max_value=8e9))
        d_out = draw(st.floats(min_value=8.0, max_value=8e9))
        lines.append(LineEstimate(
            index=i, name=f"l{i}",
            ct_host=compute + storage / CONFIG.bw_host_storage,
            ct_device=compute * CONFIG.device_speed_ratio
            + storage / CONFIG.bw_internal,
            d_in=previous_out, d_out=d_out, d_storage=storage,
            compute_host=compute,
        ))
        previous_out = d_out
    return lines


@given(estimate_chains())
@settings(max_examples=80, deadline=None)
def test_algorithm1_never_worse_than_host_only(lines):
    plan = assign_csd_code(lines, CONFIG)
    assert plan.t_csd <= plan.t_host + 1e-9


@given(estimate_chains())
@settings(max_examples=80, deadline=None)
def test_algorithm1_projection_is_self_consistent(lines):
    plan = assign_csd_code(lines, CONFIG)
    assert plan.t_csd == projected_time(plan.assignments, lines, CONFIG) * 1.0 or \
        abs(plan.t_csd - projected_time(plan.assignments, lines, CONFIG)) < 1e-6


# --- NVMe rings ------------------------------------------------------------------

@given(st.lists(st.sampled_from(["submit", "fetch"]), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_submission_queue_is_fifo_under_any_interleaving(ops):
    sq = SubmissionQueue(depth=16)
    submitted, fetched = [], []
    for op in ops:
        if op == "submit" and not sq.is_full:
            submitted.append(sq.submit("exec"))
        elif op == "fetch" and not sq.is_empty:
            fetched.append(sq.fetch().command_id)
    assert fetched == submitted[: len(fetched)]
    assert len(sq) == len(submitted) - len(fetched)


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_completion_queue_drain_preserves_order(ids):
    cq = CompletionQueue(depth=32)
    for command_id in ids:
        cq.post(Completion(command_id=command_id))
    assert [c.command_id for c in cq.drain()] == ids


# --- CSR / SpMV -----------------------------------------------------------------

@given(
    n=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=60, deadline=None)
def test_spmv_matches_dense_for_random_matrices(n, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n)) * (rng.random((n, n)) < 0.4)
    rows, cols = np.nonzero(dense)
    if rows.size == 0:
        return
    matrix = csr_from_edges(rows, cols, n_rows=n, values=dense[rows, cols])
    x = rng.random(n)
    assert np.allclose(spmv(matrix, x), dense @ x)
