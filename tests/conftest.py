"""Shared fixtures for the test suite.

The toy program/dataset pair is small enough that every stage of the
ActivePy pipeline (sampling, fitting, planning, execution, migration)
runs in milliseconds, while still having a clear offload structure: a
volume-reducing scan followed by a compute-heavy stage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._deprecations import reset_deprecation_registry
from repro.config import SystemConfig
from repro.hw.topology import Machine, build_machine
from repro.lang.dataset import Dataset
from repro.lang.program import Program, Statement, constant, per_record


@pytest.fixture(autouse=True)
def _fresh_deprecation_registry():
    """Deprecation shims warn once per process; tests need once per test."""
    reset_deprecation_registry()
    yield
    reset_deprecation_registry()


@pytest.fixture
def config() -> SystemConfig:
    return SystemConfig()


@pytest.fixture
def machine(config) -> Machine:
    return build_machine(config)


def _toy_payload(n: int, full: int) -> dict:
    rng = np.random.default_rng(5)
    return {"x": rng.uniform(0.0, 1.0, size=n)}


def _k_scan(p: dict) -> dict:
    return {"y": (p["x"] * 2.0).astype(np.float32)}


def _k_crunch(p: dict) -> dict:
    return {"z": np.sqrt(p["y"].astype(np.float64))}


def _k_reduce(p: dict) -> dict:
    return {"total": float(np.sum(p["z"]))}


def make_toy_program(
    scan_instr: float = 40.0,
    crunch_instr: float = 200.0,
    record_bytes: float = 64.0,
) -> Program:
    """A scan (reducing 64 B -> 4 B) + crunch + reduce pipeline."""
    return Program(
        "toy",
        [
            Statement(
                "scan", _k_scan,
                instructions=per_record(scan_instr),
                output_bytes=per_record(4.0),
                storage_bytes=per_record(record_bytes),
                chunks=16,
            ),
            Statement(
                "crunch", _k_crunch,
                instructions=per_record(crunch_instr),
                output_bytes=per_record(8.0),
                chunks=16,
            ),
            Statement(
                "reduce", _k_reduce,
                instructions=per_record(1.0),
                output_bytes=constant(8.0),
            ),
        ],
    )


def make_toy_dataset(n_records: int = 20_000_000, record_bytes: float = 64.0) -> Dataset:
    return Dataset(
        name="toy.data",
        n_records=n_records,
        record_bytes=record_bytes,
        builder=_toy_payload,
    )


@pytest.fixture
def toy_program() -> Program:
    return make_toy_program()


@pytest.fixture
def toy_dataset() -> Dataset:
    return make_toy_dataset()
