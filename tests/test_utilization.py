"""Utilization reporting and frontend column inference."""

import numpy as np
import pytest

from repro.analysis.utilization import utilization_report
from repro.errors import ReproError
from repro.frontend import infer_column_bytes, program_from_function, FrontendError
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy

from .conftest import make_toy_dataset, make_toy_program


class TestUtilizationReport:
    def test_covers_all_units_and_links(self, config, machine):
        machine.host.execute(8e9)
        report = utilization_report(machine)
        names = {row.name for row in report.rows}
        assert {"host", "csd", "host-storage", "d2h",
                "remote-access", "csd.internal"} <= names

    def test_busy_fractions_bounded(self, config):
        machine = build_machine(config)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        usage = utilization_report(machine, total_seconds=report.total_seconds)
        for row in usage.rows:
            assert 0.0 <= row.utilization <= 1.0

    def test_offloaded_run_shows_device_busy(self, config):
        machine = build_machine(config)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        usage = utilization_report(machine, total_seconds=report.total_seconds)
        assert usage.usage_of("csd").busy_seconds > 0
        assert usage.usage_of("csd.internal").busy_seconds > 0

    def test_render_mentions_every_resource(self, machine):
        machine.host.execute(1e9)
        text = utilization_report(machine, total_seconds=1.0).render()
        assert "host" in text and "d2h" in text and "%" in text

    def test_unknown_resource_rejected(self, machine):
        machine.host.execute(1e9)
        report = utilization_report(machine, total_seconds=1.0)
        with pytest.raises(ReproError):
            report.usage_of("gpu")

    def test_zero_window_rejected(self, machine):
        with pytest.raises(ReproError):
            utilization_report(machine, total_seconds=0.0)

    def test_timeline_spans_merged(self, config):
        machine = build_machine(config)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine, trace=True
        )
        usage = utilization_report(
            machine, total_seconds=report.total_seconds,
            timeline=report.timeline,
        )
        assert usage.total_seconds == report.total_seconds


class TestInferColumnBytes:
    def test_widths_from_dtypes(self):
        probe = {
            "prices": np.zeros(100, dtype=np.float64),
            "flags": np.zeros(100, dtype=np.int8),
            "scalar": 3.0,
        }
        widths = infer_column_bytes(probe)
        assert widths == {"prices": 8.0, "flags": 1.0}

    def test_matrix_columns_count_full_rows(self):
        probe = {"features": np.zeros((50, 4), dtype=np.float32)}
        assert infer_column_bytes(probe) == {"features": 16.0}

    def test_no_arrays_rejected(self):
        with pytest.raises(FrontendError):
            infer_column_bytes({"x": 1.0})

    def test_composes_with_frontend(self):
        def fn(prices, flags):
            kept = prices[flags > 0]
            return float(np.sum(kept))

        probe = {
            "prices": np.linspace(0, 1, 4096),
            "flags": np.tile([0, 1], 2048).astype(np.int8),
        }
        widths = infer_column_bytes(probe)
        program = program_from_function(
            fn, record_bytes=sum(widths.values()),
            column_bytes=widths, probe_payload=probe,
        )
        assert program[0].storage_bytes(1000) == pytest.approx(9_000)
