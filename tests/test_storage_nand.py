"""NAND flash model: geometry and page-state rules."""

import pytest

from repro.errors import FlashError
from repro.storage.nand import FlashArray, FlashGeometry, PageState


def small_array() -> FlashArray:
    return FlashArray(FlashGeometry(
        channels=2, blocks_per_channel=4, pages_per_block=8, page_bytes=4096,
    ))


class TestGeometry:
    def test_totals(self):
        geometry = FlashGeometry(channels=2, blocks_per_channel=4, pages_per_block=8)
        assert geometry.total_blocks == 8
        assert geometry.total_pages == 64
        assert geometry.capacity_bytes == 64 * geometry.page_bytes

    def test_peak_bandwidth_scales_with_channels(self):
        one = FlashGeometry(channels=1)
        eight = FlashGeometry(channels=8)
        assert eight.peak_read_bandwidth == pytest.approx(8 * one.peak_read_bandwidth)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(FlashError):
            FlashGeometry(channels=0)
        with pytest.raises(FlashError):
            FlashGeometry(read_latency_s=0)


class TestPageRules:
    def test_fresh_pages_are_free(self):
        array = small_array()
        assert array.page_state(0) is PageState.FREE

    def test_cannot_read_unwritten_page(self):
        with pytest.raises(FlashError):
            small_array().read_page(0)

    def test_program_then_read(self):
        array = small_array()
        addr, latency = array.program_next_page(0)
        assert array.page_state(addr) is PageState.VALID
        assert latency == array.geometry.program_latency_s
        assert array.read_page(addr) == array.geometry.read_latency_s

    def test_programs_are_sequential_within_block(self):
        array = small_array()
        first, _ = array.program_next_page(0)
        second, _ = array.program_next_page(0)
        assert second == first + 1

    def test_block_fills_up(self):
        array = small_array()
        for _ in range(array.geometry.pages_per_block):
            array.program_next_page(0)
        with pytest.raises(FlashError):
            array.program_next_page(0)

    def test_invalidate_requires_valid(self):
        array = small_array()
        with pytest.raises(FlashError):
            array.invalidate_page(0)
        addr, _ = array.program_next_page(0)
        array.invalidate_page(addr)
        assert array.page_state(addr) is PageState.INVALID

    def test_cannot_read_invalidated_page(self):
        array = small_array()
        addr, _ = array.program_next_page(0)
        array.invalidate_page(addr)
        with pytest.raises(FlashError):
            array.read_page(addr)


class TestErase:
    def test_erase_resets_block(self):
        array = small_array()
        addr, _ = array.program_next_page(0)
        array.invalidate_page(addr)
        array.erase_block(0)
        assert array.page_state(addr) is PageState.FREE
        assert array.blocks[0].write_pointer == 0
        assert array.blocks[0].erase_count == 1

    def test_erase_refuses_live_data(self):
        array = small_array()
        array.program_next_page(0)
        with pytest.raises(FlashError):
            array.erase_block(0)

    def test_out_of_range_block(self):
        with pytest.raises(FlashError):
            small_array().erase_block(99)


class TestAddressing:
    def test_split_address(self):
        array = small_array()
        assert array.split_address(0) == (0, 0)
        assert array.split_address(9) == (1, 1)

    def test_out_of_range_address(self):
        with pytest.raises(FlashError):
            small_array().split_address(64)

    def test_channel_striping(self):
        array = small_array()
        channels = {array.channel_of(b * 8) for b in range(8)}
        assert channels == {0, 1}


class TestAggregates:
    def test_utilisation(self):
        array = small_array()
        assert array.utilisation() == 0.0
        array.program_next_page(0)
        assert array.utilisation() == pytest.approx(1 / 64)

    def test_operation_counters(self):
        array = small_array()
        addr, _ = array.program_next_page(0)
        array.read_page(addr)
        array.invalidate_page(addr)
        array.erase_block(0)
        assert (array.programs, array.reads, array.erases) == (1, 1, 1)
