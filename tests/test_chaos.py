"""The chaos campaign subsystem: invariants, shrinking, campaigns.

The expensive end-to-end facts (200-run campaign clean, planted bug
caught at a specific seed) are exercised at small scale here; CI's
chaos smoke job runs the CLI on fixed seeds.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.chaos import (
    CampaignConfig,
    ChaosHarness,
    check_invariants,
    run_campaign,
    shrink_plan,
)
from repro.chaos.campaign import replay_command
from repro.config import DEFAULT_CONFIG
from repro.faults import FaultKind, FaultPlan, FaultSpec

#: Small scale so each seeded run is milliseconds.
SCALE = 2 ** -7

#: The planted-bug reproduction discovered by the acceptance campaign:
#: seed 157 on kmeans (at the default campaign scale 2**-6) tears three
#: checkpoint writes and permanently crashes the CSE two chunks later.
PLANTED_WORKLOAD = "kmeans"
PLANTED_SEED = 157
PLANTED_SCALE = 2 ** -6

BUGGED_CONFIG = dataclasses.replace(DEFAULT_CONFIG, checkpoint_validate=False)


@pytest.fixture(scope="module")
def harness():
    return ChaosHarness(scale=SCALE, fault_count=3)


class TestInvariants:
    def test_fault_free_run_has_no_violations(self, harness):
        baseline = harness.baseline("tpch_q6")
        from repro.workloads import get_workload

        program = get_workload("tpch_q6", scale=SCALE).program
        assert check_invariants(baseline, baseline, program) == []

    def test_seeded_run_judged_against_baseline(self, harness):
        outcome = harness.run_seed("tpch_q6", 3)
        assert outcome.ok
        assert len(outcome.plan) == 3

    def test_work_conservation_catches_a_doctored_ledger(self, harness):
        import copy

        from repro.workloads import get_workload

        baseline = harness.baseline("tpch_q6")
        program = get_workload("tpch_q6", scale=SCALE).program
        doctored = copy.deepcopy(baseline)
        doctored.result.chunks_executed[0] = 1
        violations = check_invariants(doctored, baseline, program)
        assert any(v.name == "work-conservation" for v in violations)

    def test_legal_degradation_catches_unflagged_fallback(self, harness):
        import copy

        from repro.workloads import get_workload

        baseline = harness.baseline("tpch_q6")
        program = get_workload("tpch_q6", scale=SCALE).program
        doctored = copy.deepcopy(baseline)
        doctored.result.degraded = False
        doctored.result.fault_events = list(doctored.result.fault_events)
        from repro.faults.log import FaultEvent

        doctored.result.fault_events.append(FaultEvent(
            time=0.0, kind="recovery", target="csd",
            action="host-fallback", detail="doctored",
        ))
        violations = check_invariants(doctored, baseline, program)
        assert any(v.name == "legal-degradation" for v in violations)


class TestDeterminism:
    def test_same_seed_same_outcome(self, harness):
        first = harness.run_seed("blackscholes", 11)
        second = harness.run_seed("blackscholes", 11)
        assert first.plan == second.plan
        assert first.violations == second.violations
        assert first.degraded == second.degraded
        assert first.faults_injected == second.faults_injected


class TestShrink:
    def _predicate(self, marker_kinds):
        """Reproduces iff the plan still contains every marker kind."""
        def reproduces(plan):
            kinds = [spec.kind for spec in plan.specs]
            return all(kind in kinds for kind in marker_kinds)
        return reproduces

    def _plan(self, *kinds):
        return FaultPlan(specs=tuple(
            FaultSpec(kind=kind, at_time=float(index + 1),
                      duration_s=1.0 if kind in (
                          FaultKind.NVME_QUEUE_STALL,
                          FaultKind.NVME_COMPLETION_DELAY,
                      ) else 0.0)
            for index, kind in enumerate(kinds)
        ), seed=42)

    def test_shrinks_to_the_single_culprit(self):
        plan = self._plan(
            FaultKind.NAND_READ_CORRECTABLE,
            FaultKind.CSE_CRASH,
            FaultKind.NVME_COMPLETION_LOSS,
            FaultKind.NVME_QUEUE_STALL,
        )
        result = shrink_plan(plan, self._predicate([FaultKind.CSE_CRASH]))
        assert [spec.kind for spec in result.minimal.specs] == [FaultKind.CSE_CRASH]
        assert not result.budget_exhausted

    def test_shrunk_plan_is_one_minimal(self):
        markers = [FaultKind.CSE_CRASH, FaultKind.NVME_COMPLETION_LOSS]
        plan = self._plan(
            FaultKind.NAND_READ_CORRECTABLE,
            FaultKind.CSE_CRASH,
            FaultKind.NAND_READ_UNCORRECTABLE,
            FaultKind.NVME_COMPLETION_LOSS,
            FaultKind.NVME_COMPLETION_DELAY,
        )
        predicate = self._predicate(markers)
        result = shrink_plan(plan, predicate)
        assert sorted(spec.kind.value for spec in result.minimal.specs) == sorted(
            kind.value for kind in markers
        )
        # removing any single remaining fault stops reproduction
        specs = result.minimal.specs
        for drop in range(len(specs)):
            smaller = FaultPlan(specs=specs[:drop] + specs[drop + 1:])
            assert not predicate(smaller)

    def test_refuses_a_non_reproducing_plan(self):
        plan = self._plan(FaultKind.NAND_READ_CORRECTABLE)
        with pytest.raises(ValueError):
            shrink_plan(plan, lambda candidate: False)

    def test_probe_budget_is_respected(self):
        plan = self._plan(*([FaultKind.NAND_READ_CORRECTABLE] * 8))
        result = shrink_plan(plan, lambda candidate: len(candidate) >= 1,
                             max_probes=3)
        assert result.probes <= 3
        assert result.budget_exhausted


class TestCampaign:
    def test_small_clean_campaign_holds(self):
        config = CampaignConfig(
            runs=6, workloads=("tpch_q6", "blackscholes"), scale=SCALE,
        )
        result = run_campaign(config)
        assert result.ok
        assert result.runs == 6
        assert result.violations == 0
        assert "all invariants held" in result.render()

    def test_campaign_rotation_and_seeds(self):
        config = CampaignConfig(
            runs=4, workloads=("tpch_q6", "blackscholes"), base_seed=10,
            scale=SCALE,
        )
        result = run_campaign(config)
        assert [o.workload for o in result.outcomes] == [
            "tpch_q6", "blackscholes", "tpch_q6", "blackscholes",
        ]
        assert [o.seed for o in result.outcomes] == [10, 11, 12, 13]

    def test_planted_bug_is_caught_and_shrunk(self):
        """The acceptance demo: with CRC validation off, the campaign
        seed containing torn-write + permanent-crash produces a
        work-conservation violation, and shrinking reduces the 3-fault
        plan to the reproducing core."""
        config = CampaignConfig(
            runs=1,
            workloads=(PLANTED_WORKLOAD,),
            base_seed=PLANTED_SEED,
            scale=PLANTED_SCALE,
            system_config=BUGGED_CONFIG,
        )
        result = run_campaign(config)
        assert not result.ok
        failure = result.failures[0]
        assert any(
            v.name == "work-conservation" for v in failure.outcome.violations
        )
        kinds = {spec.kind for spec in failure.shrink.minimal.specs}
        assert FaultKind.CHECKPOINT_TORN_WRITE in kinds
        assert len(failure.shrink.minimal) < len(failure.outcome.plan)
        assert f"--seed {PLANTED_SEED}" in failure.replay_command
        assert "--no-validate" in failure.replay_command

    def test_planted_seed_is_clean_with_validation_on(self):
        harness = ChaosHarness(scale=PLANTED_SCALE, fault_count=3)
        outcome = harness.run_seed(PLANTED_WORKLOAD, PLANTED_SEED)
        assert outcome.ok
        assert outcome.degraded  # the crash still demotes the run

    def test_replay_command_round_trips_the_failure(self):
        harness = ChaosHarness(
            system_config=BUGGED_CONFIG, scale=PLANTED_SCALE, fault_count=3,
        )
        outcome = harness.run_seed(PLANTED_WORKLOAD, PLANTED_SEED)
        assert not outcome.ok
        command = replay_command(
            outcome,
            CampaignConfig(scale=PLANTED_SCALE, system_config=BUGGED_CONFIG),
        )
        assert command == (
            f"python -m repro chaos --workload {PLANTED_WORKLOAD} "
            f"--seed {PLANTED_SEED} --fault-count 3 --no-validate"
        )
