"""Discrete-event engine: clock monotonicity and event ordering."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.engine import DEFAULT_ENGINE, EventQueue, Simulator

ENGINES = ("object", "array")


@pytest.fixture(params=ENGINES)
def sim(request):
    """A fresh simulator, run once per engine."""
    return Simulator(engine=request.param)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError):
            SimClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(start=5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            SimClock(start=-1.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(7.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.pop().action()
        queue.pop().action()
        assert fired == ["a", "b"]

    def test_same_time_fifo(self):
        queue = EventQueue()
        fired = []
        queue.push(1.0, lambda: fired.append(1))
        queue.push(1.0, lambda: fired.append(2))
        queue.push(1.0, lambda: fired.append(3))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == [1, 2, 3]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        event.cancel()
        assert queue.pop() is None
        assert len(queue) == 0

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_len_tracks_push_pop_cancel(self):
        queue = EventQueue()
        events = [queue.push(float(i), lambda: None) for i in range(5)]
        assert len(queue) == 5
        events[2].cancel()
        assert len(queue) == 4
        queue.pop()
        assert len(queue) == 3
        # Double-cancel must not decrement twice.
        events[2].cancel()
        assert len(queue) == 3
        # Cancelling an already-popped event must not decrement.
        events[0].cancel()
        assert len(queue) == 3
        while queue.pop() is not None:
            pass
        assert len(queue) == 0

    def test_len_matches_live_scan_under_churn(self):
        queue = EventQueue()
        events = []
        for i in range(40):
            events.append(queue.push(float(i % 7), lambda: None))
            if i % 3 == 0:
                events[i // 2].cancel()
            if i % 5 == 0:
                queue.pop()
        live_scan = sum(1 for e in queue._heap if not e.cancelled)
        assert len(queue) == live_scan


class TestSimulator:
    def test_schedule_after_uses_now(self, sim):
        sim.clock.advance(10.0)
        fired = []
        sim.schedule_after(5.0, lambda: fired.append(sim.now))
        sim.run_until(20.0)
        assert fired == [15.0]
        assert sim.now == 20.0

    def test_schedule_in_past_rejected(self, sim):
        sim.clock.advance(10.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_fire_due_events_only_fires_due(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("early"))
        sim.schedule_at(9.0, lambda: fired.append("late"))
        sim.clock.advance(2.0)
        count = sim.fire_due_events()
        assert count == 1
        assert fired == ["early"]

    def test_fire_due_events_noop_when_nothing_due(self, sim):
        sim.schedule_at(5.0, lambda: None)
        assert sim.fire_due_events() == 0

    def test_run_until_advances_through_events(self, sim):
        timeline = []
        sim.schedule_at(1.0, lambda: timeline.append(sim.now))
        sim.schedule_at(2.0, lambda: timeline.append(sim.now))
        sim.run_until(3.0)
        assert timeline == [1.0, 2.0]
        assert sim.now == 3.0

    def test_run_until_past_deadline_rejected(self, sim):
        sim.clock.advance(2.0)
        with pytest.raises(SimulationError):
            sim.run_until(1.0)

    def test_events_can_schedule_events(self, sim):
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule_after(1.0, chain)

        sim.schedule_at(1.0, chain)
        sim.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_run_all_guards_against_loops(self, sim):
        def forever():
            sim.schedule_after(0.0, forever)

        sim.schedule_at(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_all(max_events=100)

    def test_run_all_exact_budget_is_not_a_loop(self, sim):
        """Regression: exactly max_events queued must drain cleanly.

        The old engine raised ``SimulationError`` when the queue held
        exactly ``max_events`` events — an off-by-one that punished
        legitimate workloads sized at the budget.
        """
        fired = []
        for i in range(10):
            sim.schedule_at(float(i), lambda i=i: fired.append(i))
        sim.run_all(max_events=10)
        assert fired == list(range(10))

    def test_run_all_budget_plus_one_still_raises(self, sim):
        for i in range(11):
            sim.schedule_at(float(i), lambda: None)
        with pytest.raises(SimulationError):
            sim.run_all(max_events=10)

    def test_events_fired_counter(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run_all()
        assert sim.events_fired == 2

    def test_pending_events_is_live_count(self, sim):
        handles = [sim.schedule_at(float(i), lambda: None) for i in range(4)]
        assert sim.pending_events == 4
        handles[1].cancel()
        assert sim.pending_events == 3
        sim.run_all()
        assert sim.pending_events == 0


class TestEventHandle:
    def test_handle_exposes_event_identity(self, sim):
        handle = sim.schedule_at(2.5, lambda: None, label="tick")
        assert handle.time == 2.5
        assert handle.label == "tick"
        assert not handle.cancelled
        assert "tick" in repr(handle)

    def test_seq_is_monotonic_scheduling_order(self, sim):
        first = sim.schedule_at(9.0, lambda: None)
        second = sim.schedule_at(1.0, lambda: None)
        assert second.seq > first.seq

    def test_cancel_is_idempotent(self, sim):
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        handle.cancel()
        assert handle.cancelled
        sim.run_all()
        assert fired == []
        assert sim.pending_events == 0

    def test_cancel_after_fire_is_harmless(self, sim):
        fired = []
        handle = sim.schedule_at(1.0, lambda: fired.append("x"))
        sim.run_all()
        handle.cancel()
        assert not handle.cancelled  # fired, not cancelled
        assert fired == ["x"]


class TestScheduleBatch:
    def test_batch_fires_in_time_order(self, sim):
        fired = []
        sim.schedule_batch([3.0, 1.0, 2.0], lambda: fired.append(sim.now))
        assert sim.pending_events == 3
        sim.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_batch_interleaves_with_scheduled_events(self, sim):
        fired = []
        sim.schedule_at(1.5, lambda: fired.append("single"))
        count = sim.schedule_batch(
            np.array([1.0, 2.0]), lambda: fired.append(sim.now)
        )
        assert count == 2
        sim.run_all()
        assert fired == [1.0, "single", 2.0]

    def test_empty_batch_is_noop(self, sim):
        assert sim.schedule_batch([], lambda: None) == 0
        assert sim.pending_events == 0

    def test_batch_in_past_rejected(self, sim):
        sim.clock.advance(5.0)
        with pytest.raises(SimulationError):
            sim.schedule_batch([6.0, 4.0], lambda: None)

    def test_batch_rejects_non_1d(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_batch(np.zeros((2, 2)), lambda: None)


class TestEngineSelection:
    def test_default_engine(self):
        assert Simulator().engine_name == DEFAULT_ENGINE

    @pytest.mark.parametrize("engine", ENGINES)
    def test_explicit_engine(self, engine):
        assert Simulator(engine=engine).engine_name == engine

    @pytest.mark.parametrize("engine", ENGINES)
    def test_env_var_selects_engine(self, engine, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", engine)
        assert Simulator().engine_name == engine

    def test_explicit_engine_beats_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "object")
        assert Simulator(engine="array").engine_name == "array"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "")
        assert Simulator().engine_name == DEFAULT_ENGINE

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(engine="turbo")

    def test_construction_is_keyword_only(self):
        with pytest.raises(TypeError):
            Simulator(SimClock())


class TestEngineEdgeCases:
    """Edge cases the fault injector leans on."""

    def test_cancel_after_pop_is_harmless(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        popped = queue.pop()
        assert popped is event
        event.cancel()  # already popped: must not corrupt the heap
        assert queue.pop() is None
        assert len(queue) == 0

    def test_cancel_fired_simulator_event_is_harmless(self, sim):
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append(sim.now))
        sim.run_until(2.0)
        assert fired == [1.0]
        event.cancel()  # disarming an injector after its fault fired
        sim.run_until(3.0)
        assert fired == [1.0]

    def test_same_time_order_stable_under_interleaved_cancel(self):
        queue = EventQueue()
        fired = []
        events = [queue.push(1.0, lambda i=i: fired.append(i)) for i in range(6)]
        events[1].cancel()
        events[4].cancel()
        # Re-scheduling at the same timestamp lands after survivors.
        queue.push(1.0, lambda: fired.append(6))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == [0, 2, 3, 5, 6]

    def test_schedule_then_cancel_then_reschedule_keeps_fifo(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("a"))
        doomed = sim.schedule_at(1.0, lambda: fired.append("x"))
        sim.schedule_at(1.0, lambda: fired.append("b"))
        doomed.cancel()
        sim.schedule_at(1.0, lambda: fired.append("c"))
        sim.run_all()
        assert fired == ["a", "b", "c"]

    def test_injector_events_interleave_with_availability_changes(self):
        """Fault events and experiment throttles share one queue.

        A throttle (availability change), a fault, and a recovery all
        scheduled at the same machine must fire in timestamp order with
        same-time FIFO stability, regardless of scheduling order.
        """
        from repro.config import SystemConfig
        from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
        from repro.hw.topology import build_machine

        machine = build_machine(SystemConfig())
        cse = machine.csd.cse
        trace = []

        machine.simulator.schedule_at(
            1.5, lambda: (cse.set_availability(0.3), trace.append("throttle"))
        )
        injector = FaultInjector(machine, FaultPlan((
            FaultSpec(kind=FaultKind.CSE_CRASH, at_time=1.0, duration_s=1.0),
        )))
        injector.arm()
        machine.simulator.schedule_at(
            1.0, lambda: trace.append(f"observer crashed={cse.crashed}")
        )

        machine.simulator.run_until(3.0)
        # The injector armed first at t=1.0, so the observer sees the
        # crash; the throttle lands mid-outage; the reset restores a
        # clean availability of 1.0 afterwards.
        assert trace == ["observer crashed=True", "throttle"]
        assert not cse.crashed
        assert cse.availability == 1.0
        assert [event.action for event in injector.log.events] == [
            "injected", "recovered",
        ]
