"""Program/statement model and dataset sampling."""

import numpy as np
import pytest

from repro.errors import DatasetError, ProgramError
from repro.lang.dataset import Dataset
from repro.lang.program import Program, Statement, constant, linear, per_record

from .conftest import make_toy_dataset, make_toy_program


class TestCostHelpers:
    def test_constant(self):
        fn = constant(8.0)
        assert fn(0) == 8.0
        assert fn(1e9) == 8.0

    def test_per_record(self):
        assert per_record(2.5)(100) == 250.0

    def test_linear(self):
        assert linear(2.0, 5.0)(10) == 25.0


class TestStatement:
    def test_requires_name(self):
        with pytest.raises(ProgramError):
            Statement("", lambda p: p, per_record(1), constant(1))

    def test_requires_positive_chunks(self):
        with pytest.raises(ProgramError):
            Statement("x", lambda p: p, per_record(1), constant(1), chunks=0)

    def test_reads_storage(self):
        program = make_toy_program()
        assert program[0].reads_storage()
        assert not program[1].reads_storage()


class TestProgram:
    def test_rejects_empty(self):
        with pytest.raises(ProgramError):
            Program("empty", [])

    def test_rejects_duplicate_names(self):
        stmt = Statement("dup", lambda p: p, per_record(1), constant(1))
        stmt2 = Statement("dup", lambda p: p, per_record(1), constant(1))
        with pytest.raises(ProgramError):
            Program("p", [stmt, stmt2])

    def test_index_of(self):
        program = make_toy_program()
        assert program.index_of("crunch") == 1
        with pytest.raises(ProgramError):
            program.index_of("nope")

    def test_input_bytes_chains_outputs(self):
        program = make_toy_program()
        assert program.input_bytes(0, 1000) == 0.0
        assert program.input_bytes(1, 1000) == program[0].output_bytes(1000)

    def test_run_kernels_computes(self):
        program = make_toy_program()
        dataset = make_toy_dataset(n_records=1000)
        result = program.run_kernels(dataset.payload)
        expected = float(np.sum(np.sqrt(
            (dataset.payload["x"] * 2.0).astype(np.float32).astype(np.float64)
        )))
        assert result["total"] == pytest.approx(expected, rel=1e-6)

    def test_run_kernels_rejects_non_dict(self):
        bad = Statement("bad", lambda p: 42, per_record(1), constant(1))
        program = Program("p", [bad])
        with pytest.raises(ProgramError):
            program.run_kernels({"x": np.zeros(4)})


class TestDataset:
    def test_raw_bytes(self):
        dataset = make_toy_dataset(n_records=1000, record_bytes=64.0)
        assert dataset.raw_bytes == 64_000

    def test_sample_sizes_follow_factor(self):
        dataset = make_toy_dataset(n_records=2**20)
        sample = dataset.sample(2**-10)
        assert sample.n_records == 2**10
        assert sample.is_sample
        assert sample.full_records == 2**20

    def test_sample_of_sample_uses_population(self):
        dataset = make_toy_dataset(n_records=2**20)
        sample = dataset.sample(2**-8)
        nested = sample.sample(2**-10)
        assert nested.n_records == 2**10

    def test_sample_must_shrink(self):
        dataset = make_toy_dataset(n_records=100)
        with pytest.raises(DatasetError):
            dataset.sample(0.999)

    def test_factor_bounds(self):
        dataset = make_toy_dataset()
        with pytest.raises(DatasetError):
            dataset.sample(0.0)
        with pytest.raises(DatasetError):
            dataset.sample(1.0)

    def test_payload_cached(self):
        dataset = make_toy_dataset(n_records=100)
        assert dataset.payload is dataset.payload

    def test_huge_payload_refused(self):
        dataset = Dataset(
            "huge", n_records=10**9, record_bytes=8.0,
            builder=lambda n, full: {"x": np.zeros(n)},
        )
        with pytest.raises(DatasetError):
            _ = dataset.payload

    def test_builder_must_return_dict(self):
        dataset = Dataset(
            "bad", n_records=10, record_bytes=8.0,
            builder=lambda n, full: [1, 2, 3],
        )
        with pytest.raises(DatasetError):
            _ = dataset.payload

    def test_validation(self):
        with pytest.raises(DatasetError):
            Dataset("x", n_records=0, record_bytes=8, builder=lambda n, f: {})
        with pytest.raises(DatasetError):
            Dataset("x", n_records=10, record_bytes=0, builder=lambda n, f: {})
        with pytest.raises(DatasetError):
            Dataset("x", n_records=10, record_bytes=8,
                    builder=lambda n, f: {}, full_records=5)
