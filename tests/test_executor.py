"""Plan execution: timing fidelity, transfers, migration paths."""

import pytest

from repro.errors import MigrationError, ProgramError
from repro.hw.topology import build_machine
from repro.runtime.activepy import run_plan
from repro.runtime.codegen import CodeGenerator, ExecutionMode
from repro.runtime.executor import PlanExecutor
from repro.runtime.planner import CSD, HOST, Plan, assign_csd_code, host_only_plan
from repro.baselines import ground_truth_estimates

from .conftest import make_toy_dataset, make_toy_program

N = 2_000_000


def compiled_for(machine, assignments, config, mode=ExecutionMode.C):
    program = make_toy_program()
    estimates = ground_truth_estimates(program, N, config)
    plan = Plan(
        assignments=assignments,
        t_host=sum(e.ct_host for e in estimates),
        t_csd=0.0,
        estimates=tuple(estimates),
    )
    return CodeGenerator(config).generate(machine, program, plan, mode)


class TestHostOnlyTiming:
    def test_matches_analytic_time(self, config, machine):
        compiled = compiled_for(machine, [HOST, HOST, HOST], config)
        result = PlanExecutor(machine, migration_enabled=False).execute(compiled, N)
        program = make_toy_program()
        expected = sum(
            s.instructions(N) / config.host_ips for s in program
        ) + program[0].storage_bytes(N) / config.bw_host_storage
        # Chunked storage reads add per-chunk link latency.
        slack = 70 * config.link_latency_s
        assert result.total_seconds == pytest.approx(expected, abs=slack + 1e-6)

    def test_line_timings_cover_program(self, config, machine):
        compiled = compiled_for(machine, [HOST, HOST, HOST], config)
        result = PlanExecutor(machine, migration_enabled=False).execute(compiled, N)
        assert [t.name for t in result.line_timings] == ["scan", "crunch", "reduce"]
        assert all(t.actual_location == HOST for t in result.line_timings)
        assert result.total_seconds == pytest.approx(
            sum(t.seconds for t in result.line_timings)
        )


class TestCsdExecution:
    def test_offload_beats_host_for_reducing_scan(self, config):
        host_machine = build_machine(config)
        host_result = PlanExecutor(host_machine, migration_enabled=False).execute(
            compiled_for(host_machine, [HOST, HOST, HOST], config), N
        )
        csd_machine = build_machine(config)
        csd_result = PlanExecutor(csd_machine, migration_enabled=False).execute(
            compiled_for(csd_machine, [CSD, CSD, CSD], config), N
        )
        assert csd_result.total_seconds < host_result.total_seconds

    def test_boundary_transfer_charged(self, config, machine):
        compiled = compiled_for(machine, [CSD, HOST, HOST], config)
        result = PlanExecutor(machine, migration_enabled=False).execute(compiled, N)
        # The scan's 4 B/record output crosses back to the host.
        assert result.d2h_bytes >= 4.0 * N

    def test_final_csd_value_returns_to_host(self, config, machine):
        compiled = compiled_for(machine, [CSD, CSD, CSD], config)
        result = PlanExecutor(machine, migration_enabled=False).execute(compiled, N)
        assert result.d2h_bytes >= 8.0  # the reduce scalar

    def test_status_updates_posted_per_chunk(self, config, machine):
        compiled = compiled_for(machine, [CSD, HOST, HOST], config)
        result = PlanExecutor(machine, migration_enabled=False).execute(compiled, N)
        assert result.status_updates == make_toy_program()[0].chunks

    def test_cse_counters_charged(self, config, machine):
        compiled = compiled_for(machine, [CSD, HOST, HOST], config)
        PlanExecutor(machine, migration_enabled=False).execute(compiled, N)
        assert machine.csd.cse.counters.retired_instructions == pytest.approx(
            40.0 * N, rel=1e-9
        )


class TestMigration:
    def test_degraded_cse_triggers_migration(self, config, machine):
        compiled = compiled_for(machine, [CSD, CSD, HOST], config)
        executor = PlanExecutor(machine, migration_enabled=True)
        result = executor.execute(
            compiled, N, progress_triggers=[(0.25, 0.05)]
        )
        assert result.migrated
        event = result.migrations[0]
        assert event.projected_host_seconds < event.projected_device_seconds
        # Everything after the break point ran on the host.
        migrated_line = result.line_timings[event.line_index]
        assert migrated_line.migrated_mid_line
        for timing in result.line_timings[event.line_index + 1:]:
            assert timing.actual_location == HOST

    def test_migration_beats_staying(self, config):
        stay_machine = build_machine(config)
        stay = PlanExecutor(stay_machine, migration_enabled=False).execute(
            compiled_for(stay_machine, [CSD, CSD, HOST], config),
            N, progress_triggers=[(0.25, 0.05)],
        )
        move_machine = build_machine(config)
        move = PlanExecutor(move_machine, migration_enabled=True).execute(
            compiled_for(move_machine, [CSD, CSD, HOST], config),
            N, progress_triggers=[(0.25, 0.05)],
        )
        assert move.total_seconds < stay.total_seconds

    def test_healthy_run_never_migrates(self, config, machine):
        compiled = compiled_for(machine, [CSD, CSD, HOST], config)
        result = PlanExecutor(machine, migration_enabled=True).execute(compiled, N)
        assert not result.migrated

    def test_mild_degradation_stays_on_csd(self, config, machine):
        # At 90% availability, finishing on the device is still cheaper
        # than paying compile + state + remote access.
        compiled = compiled_for(machine, [CSD, CSD, HOST], config)
        result = PlanExecutor(machine, migration_enabled=True).execute(
            compiled, N, progress_triggers=[(0.25, 0.9)]
        )
        assert not result.migrated

    def test_high_priority_request_forces_migration(self, config, machine):
        compiled = compiled_for(machine, [CSD, CSD, HOST], config)
        machine.csd.cse.schedule_high_priority_request(at_time=0.05)
        result = PlanExecutor(machine, migration_enabled=True).execute(compiled, N)
        assert result.migrated
        assert "high-priority" in result.migrations[0].reason
        assert not machine.csd.cse.high_priority_pending  # acknowledged

    def test_remote_access_charged_after_migration(self, config, machine):
        compiled = compiled_for(machine, [CSD, CSD, HOST], config)
        result = PlanExecutor(machine, migration_enabled=True).execute(
            compiled, N, progress_triggers=[(0.3, 0.05)]
        )
        assert result.migrated
        if result.migrations[0].line_index == 1:
            # crunch's device-resident input read over the BAR path.
            assert result.remote_access_bytes > 0

    def test_migration_requires_estimates(self, config, machine):
        program = make_toy_program()
        plan = Plan(assignments=[CSD, HOST, HOST], t_host=1.0, t_csd=1.0)
        compiled = CodeGenerator(config).generate(
            machine, program, plan, ExecutionMode.C
        )
        with pytest.raises(MigrationError):
            PlanExecutor(machine, migration_enabled=True).execute(compiled, N)


class TestValidation:
    def test_zero_records_rejected(self, config, machine):
        compiled = compiled_for(machine, [HOST, HOST, HOST], config)
        with pytest.raises(ProgramError):
            PlanExecutor(machine, migration_enabled=False).execute(compiled, 0)

    def test_run_plan_helper(self, config, machine):
        program = make_toy_program()
        dataset = make_toy_dataset()
        machine.csd.store_dataset(dataset.name, dataset.raw_bytes)
        estimates = ground_truth_estimates(program, dataset.n_records, config)
        result = run_plan(
            machine=machine, program=program, plan=host_only_plan(estimates),
            dataset=dataset, mode=ExecutionMode.C,
        )
        assert result.total_seconds > 0
