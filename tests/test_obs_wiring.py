"""Instrumentation wiring: every layer feeds the shared handle."""

from repro.hw.compute import ComputeUnit
from repro.hw.interconnect import Link
from repro.hw.topology import build_machine
from repro.obs import Observability
from repro.runtime.activepy import ActivePy, RunOptions
from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.storage.ftl import PageMappingFTL
from repro.storage.nand import FlashArray, FlashGeometry
from repro.workloads import get_workload

_SCALE = 2 ** -7


def _counters(obs):
    return obs.snapshot()["counters"]


class TestComponentWiring:
    def test_sim_engine_counts_events(self):
        obs = Observability()
        simulator = Simulator(obs=obs)
        simulator.schedule_after(1.0, lambda: None)
        simulator.run_all()
        counters = _counters(obs)
        assert counters["sim.events_scheduled"] == 1
        assert counters["sim.events_fired"] == 1

    def test_compute_unit_counts_work(self):
        obs = Observability()
        unit = ComputeUnit("host", ips=1e9, clock=SimClock(), obs=obs)
        unit.execute(1e6)
        counters = _counters(obs)
        assert counters["compute.host.instructions"] == 1e6
        assert counters["compute.host.busy_seconds"] > 0
        assert counters["compute.host.tasks"] == 1

    def test_link_counts_traffic(self):
        obs = Observability()
        link = Link("d2h", bandwidth=1e9, clock=SimClock(), obs=obs)
        link.transfer(4096)
        counters = _counters(obs)
        assert counters["link.d2h.bytes"] == 4096
        assert counters["link.d2h.transfers"] == 1

    def test_nand_and_ftl_count_media_ops(self):
        obs = Observability()
        array = FlashArray(FlashGeometry(), obs=obs, metric_prefix="nand")
        ftl = PageMappingFTL(array, obs=obs, metric_prefix="ftl")
        for lpn in range(4):
            ftl.write(lpn)
        ftl.read(0)
        counters = _counters(obs)
        assert counters["ftl.host_writes"] == 4
        assert counters["nand.programs"] == 4
        assert counters["nand.reads"] == 1
        assert obs.snapshot()["gauges"]["nand.free_blocks"] > 0


class TestEndToEndWiring:
    def test_full_run_populates_every_runtime_layer(self):
        obs = Observability()
        machine = build_machine(obs=obs)
        workload = get_workload("tpch_q6", scale=_SCALE)
        ActivePy().run(
            workload.program, workload.dataset,
            machine=machine, options=RunOptions(obs=obs),
        )
        snapshot = obs.snapshot()
        counters = snapshot["counters"]
        assert counters["dispatch.invocations"] > 0
        assert counters["dispatch.status_updates"] > 0
        assert counters["executor.lines"] == len(workload.program)
        assert counters["checkpoint.saves"] > 0
        assert counters["compute.csd.busy_seconds"] > 0
        assert counters["link.csd.internal.bytes"] > 0
        assert "nvme.csd.sq_depth" in snapshot["gauges"]
        assert snapshot["histograms"]["executor.chunk_seconds"]["count"] > 0

    def test_adopt_redirects_prebuilt_machine(self):
        # A machine built *without* obs starts feeding a caller-supplied
        # handle when one is passed to run().
        machine = build_machine()
        assert not machine.obs.enabled
        obs = Observability()
        workload = get_workload("tpch_q6", scale=_SCALE)
        ActivePy().run(
            workload.program, workload.dataset,
            machine=machine, options=RunOptions(obs=obs),
        )
        assert _counters(obs)["executor.lines"] == len(workload.program)
        # The machine's handle now shares the caller's registry.
        assert machine.obs.metrics is obs.metrics
