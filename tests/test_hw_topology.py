"""Machine topology wiring."""

import pytest

from repro.config import SystemConfig
from repro.hw.topology import build_machine


class TestBuildMachine:
    def test_shares_one_clock(self, machine):
        machine.host.execute(8e9)  # 1 s at default 8 GIPS
        assert machine.csd.cse.clock.now == machine.host.clock.now
        assert machine.host_storage_link.clock.now == machine.now

    def test_links_use_config_bandwidths(self, config, machine):
        assert machine.host_storage_link.bandwidth == config.bw_host_storage
        assert machine.d2h_link.bandwidth == config.bw_d2h
        assert machine.remote_access_link.bandwidth == config.bw_remote_access
        assert machine.csd.internal_link.bandwidth == config.bw_internal

    def test_unit_named(self, machine):
        assert machine.unit_named("host") is machine.host
        assert machine.unit_named("csd") is machine.csd.cse
        with pytest.raises(KeyError):
            machine.unit_named("gpu")

    def test_address_space_has_host_and_device_regions(self, machine):
        locations = {region.location for region in machine.space.regions}
        assert locations == {"host", "csd"}

    def test_bar_window_mapped_into_shared_space(self, machine):
        region = machine.space.region_named("csd.bar")
        assert region.location == "csd"
        assert region.size == int(machine.config.device_dram_bytes)

    def test_reset_counters(self, machine):
        machine.host.execute(1e9)
        machine.d2h_link.transfer(1e6)
        machine.reset_counters()
        assert machine.host.counters.retired_instructions == 0
        assert machine.d2h_link.bytes_transferred == 0

    def test_custom_config_propagates(self):
        config = SystemConfig(cse_ips=1e9)
        machine = build_machine(config)
        assert machine.csd.cse.nominal_ips == 1e9
