"""Plan explainability: predicted vs. measured, line by line."""

import math

import pytest

from repro.config import DEFAULT_CONFIG
from repro.errors import ProgramError
from repro.hw.topology import build_machine
from repro.obs import Observability
from repro.runtime.activepy import ActivePy, RunOptions
from repro.runtime.executor import ExecutionResult
from repro.runtime.explain import (
    explain_plan,
    predicted_line_seconds,
)
from repro.runtime.planner import CSD, Plan, projected_time
from repro.workloads import get_workload

from .conftest import make_toy_dataset, make_toy_program

_SCALE = 2 ** -6


def _report(name="tpch_q6", **kwargs):
    workload = get_workload(name, scale=_SCALE)
    return ActivePy().run(workload.program, workload.dataset, **kwargs)


class TestPredictedLineSeconds:
    @pytest.mark.parametrize("name", ("tpch_q6", "kmeans", "blackscholes"))
    def test_lines_plus_final_transfer_equal_projected_time(self, name):
        report = _report(name)
        plan = report.plan
        explanation = report.explanation
        total = sum(predicted_line_seconds(plan, DEFAULT_CONFIG))
        total += explanation.predicted_final_transfer_seconds
        assert total == pytest.approx(
            projected_time(plan.assignments, plan.estimates, DEFAULT_CONFIG),
            rel=1e-12,
        )

    def test_boundary_crossing_charges_the_input_transfer(self):
        report = _report()
        plan = report.plan
        predicted = predicted_line_seconds(plan, DEFAULT_CONFIG)
        for i in range(1, len(predicted)):
            crossing = plan.assignments[i - 1] != plan.assignments[i]
            where = plan.assignments[i]
            line = plan.estimates[i]
            compute = line.ct_device if where == CSD else line.ct_host
            expected = compute + (
                line.d_in / DEFAULT_CONFIG.bw_d2h if crossing else 0.0
            )
            assert predicted[i] == pytest.approx(expected, rel=1e-12)


class TestExplanationOnRealRuns:
    def test_every_run_carries_an_explanation(self):
        report = _report()
        explanation = report.explanation
        assert explanation is not None
        assert explanation.program_name == "tpch_q6"
        assert len(explanation.lines) == len(report.plan.assignments)
        assert explanation.predicted_total_seconds == report.plan.t_csd
        assert explanation.measured_total_seconds == report.result.total_seconds

    def test_unmigrated_run_holds_the_plan(self):
        explanation = _report().explanation
        assert explanation.plan_held
        assert explanation.migration_audit == []
        for line in explanation.lines:
            assert line.actual_location == line.planned_location

    def test_errors_are_finite_and_bounded(self):
        explanation = _report().explanation
        for line in explanation.lines:
            assert line.error_seconds == (
                line.measured_seconds - line.predicted_seconds
            )
        # Tiny lines at test scale mispredict by a few x, never by
        # orders of magnitude — and never divide by zero into inf.
        assert math.isfinite(explanation.max_relative_error)
        assert explanation.max_relative_error < 10.0

    def test_worst_lines_ranked_by_relative_error(self):
        explanation = _report().explanation
        worst = explanation.worst_lines(2)
        assert len(worst) <= 2
        assert all(
            a.relative_error >= b.relative_error for a, b in zip(worst, worst[1:])
        )

    def test_render_and_jsonable(self):
        explanation = _report().explanation
        text = explanation.render()
        assert "predicted" in text and "measured" in text
        payload = explanation.to_jsonable()
        assert payload["plan_held"] is True
        assert len(payload["lines"]) == len(explanation.lines)

    def test_report_jsonable_embeds_the_explanation(self):
        payload = _report().to_jsonable()
        assert payload["explanation"]["program"] == "tpch_q6"


class TestMigrationAudit:
    def _migrated_report(self):
        machine = build_machine(DEFAULT_CONFIG)
        machine.csd.cse.schedule_availability(at_time=0.15, fraction=0.05)
        return ActivePy().run(
            make_toy_program(), make_toy_dataset(), machine=machine,
        )

    def test_migration_shows_up_in_the_audit_trail(self):
        report = self._migrated_report()
        assert report.result.migrated
        explanation = report.explanation
        assert not explanation.plan_held
        assert len(explanation.migration_audit) == len(report.result.migrations)
        audit = explanation.migration_audit[0]
        event = report.result.migrations[0]
        assert audit["line_name"] == event.line_name
        assert audit["reason"] == event.reason
        assert audit["projected_device_seconds"] == event.projected_device_seconds
        assert audit["projected_host_seconds"] == event.projected_host_seconds
        # The audit makes the decision checkable: the runtime must have
        # picked the cheaper projection when it moved.
        assert audit["projected_host_seconds"] < audit["projected_device_seconds"]

    def test_migrated_line_is_marked(self):
        explanation = self._migrated_report().explanation
        migrated = [line for line in explanation.lines if line.migrated_mid_line]
        assert migrated
        assert all(not line.held for line in migrated)
        assert "migration" in explanation.render()


class TestExplanationMetrics:
    def test_prediction_metrics_emitted_when_observed(self):
        obs = Observability()
        _report(options=RunOptions(obs=obs))
        snapshot = obs.snapshot()
        gauges = snapshot["gauges"]
        assert "plan.prediction.max_relative_error" in gauges
        assert "plan.prediction.total_error_seconds" in gauges
        assert any(
            name.startswith("plan.line.") and name.endswith(".error_seconds")
            for name in gauges
        )
        histogram = snapshot["histograms"]["plan.prediction.relative_error"]
        assert histogram["count"] > 0

    def test_no_metrics_without_an_enabled_handle(self):
        report = _report()
        assert report.explanation is not None  # explanation is always built
        assert report.obs is None


class TestErrors:
    def test_plan_without_estimates_rejected(self):
        plan = Plan(assignments=["host"], t_host=1.0, t_csd=1.0, estimates=())
        result = ExecutionResult(
            program_name="x", total_seconds=1.0, line_timings=[],
        )
        with pytest.raises(ProgramError):
            explain_plan(plan, result, DEFAULT_CONFIG)
