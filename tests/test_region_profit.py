"""Equation-1 region-profit analysis."""

import pytest

from repro.baselines import ground_truth_estimates
from repro.runtime.estimator import region_profits
from repro.runtime.planner import CSD, assign_csd_code
from repro.workloads import get_workload

from .conftest import make_toy_program


class TestRegionProfits:
    def test_enumerates_all_contiguous_regions(self, config):
        program = make_toy_program()  # 3 lines -> 6 regions
        estimates = ground_truth_estimates(program, 2_000_000, config)
        profits = region_profits(estimates, config)
        assert len(profits) == 6
        spans = {(p.first_line, p.last_line) for p in profits}
        assert spans == {(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)}

    def test_full_scan_region_is_profitable(self, config):
        program = make_toy_program()
        estimates = ground_truth_estimates(program, 20_000_000, config)
        profits = {(p.first_line, p.last_line): p
                   for p in region_profits(estimates, config)}
        assert profits[(0, 0)].worthwhile  # the volume-reducing scan

    def test_names_cover_the_region(self, config):
        program = make_toy_program()
        estimates = ground_truth_estimates(program, 2_000_000, config)
        profits = {(p.first_line, p.last_line): p
                   for p in region_profits(estimates, config)}
        assert profits[(0, 2)].names == ("scan", "crunch", "reduce")

    def test_raw_bytes_include_storage_and_memory_input(self, config):
        program = make_toy_program()
        n = 2_000_000
        estimates = ground_truth_estimates(program, n, config)
        profits = {(p.first_line, p.last_line): p
                   for p in region_profits(estimates, config)}
        # Region [1..1]'s raw input is line 1's memory input.
        assert profits[(1, 1)].raw_bytes == pytest.approx(estimates[1].d_in)
        # Region [0..0]'s raw input is the storage it streams.
        assert profits[(0, 0)].raw_bytes == pytest.approx(estimates[0].d_storage)

    def test_profit_sign_agrees_with_planner_on_real_workload(self, config):
        # Where Equation 1 says a prefix region profits, Algorithm 1
        # should offload it (they are the same economics).
        workload = get_workload("tpch_q6")
        estimates = ground_truth_estimates(
            workload.program, workload.n_records, config
        )
        plan = assign_csd_code(estimates, config)
        profits = {(p.first_line, p.last_line): p
                   for p in region_profits(estimates, config)}
        k = len(estimates) - 1
        if profits[(0, k)].worthwhile:
            assert plan.assignments[0] == CSD

    def test_compute_bound_region_unprofitable(self, config):
        workload = get_workload("lightgbm")
        estimates = ground_truth_estimates(
            workload.program, workload.n_records, config
        )
        profits = {(p.first_line, p.last_line): p
                   for p in region_profits(estimates, config)}
        predict = workload.program.index_of("predict_ensemble")
        assert not profits[(predict, predict)].worthwhile
