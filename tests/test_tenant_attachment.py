"""Co-tenant background load and NVMe-oF attachment."""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError, HardwareError
from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.storage.tenant import BackgroundLoad

from .conftest import make_toy_dataset, make_toy_program


class TestBackgroundLoad:
    def test_duty_cycle_toggles_availability(self, machine):
        load = BackgroundLoad(
            machine.csd.cse, period_s=1.0, busy_fraction=0.5,
            available_during=0.1,
        ).start()
        sim = machine.simulator
        sim.run_until(0.25)
        assert machine.csd.cse.availability == 0.1
        sim.run_until(0.75)
        assert machine.csd.cse.availability == 1.0
        sim.run_until(1.25)
        assert machine.csd.cse.availability == 0.1
        assert load.bursts_started == 2

    def test_stop_finishes_current_burst(self, machine):
        load = BackgroundLoad(
            machine.csd.cse, period_s=1.0, busy_fraction=0.5,
        ).start()
        machine.simulator.run_until(0.25)
        load.stop()
        machine.simulator.run_until(5.0)
        assert machine.csd.cse.availability == 1.0
        assert load.bursts_started == 1

    def test_mean_availability(self, machine):
        load = BackgroundLoad(
            machine.csd.cse, period_s=1.0, busy_fraction=0.5,
            available_during=0.2,
        )
        assert load.mean_availability == pytest.approx(0.6)

    def test_cannot_start_twice(self, machine):
        load = BackgroundLoad(machine.csd.cse, period_s=1.0, busy_fraction=0.5)
        load.start()
        with pytest.raises(HardwareError):
            load.start()

    def test_validation(self, machine):
        cse = machine.csd.cse
        with pytest.raises(HardwareError):
            BackgroundLoad(cse, period_s=0, busy_fraction=0.5)
        with pytest.raises(HardwareError):
            BackgroundLoad(cse, period_s=1.0, busy_fraction=1.0)
        with pytest.raises(HardwareError):
            BackgroundLoad(cse, period_s=1.0, busy_fraction=0.5, available_during=0)

    def test_tenant_bursts_trigger_migration(self, config):
        # A heavy co-tenant arriving mid-run looks exactly like the
        # paper's Fig. 5 stress; the monitor must catch it via IPC.
        program = make_toy_program()
        dataset = make_toy_dataset()
        machine = build_machine(config)
        # The scan runs on the CSD from ~0.12 s (after sampling and
        # compile) to ~0.47 s; the burst lands mid-scan.
        BackgroundLoad(
            machine.csd.cse, period_s=60.0, busy_fraction=0.9,
            available_during=0.05, start_at=0.25,
        ).start()
        report = ActivePy(config).run(program, dataset, machine=machine)
        assert report.result.migrated


class TestAttachment:
    def test_default_is_pcie(self):
        assert SystemConfig().attachment == "pcie"
        assert SystemConfig().effective_link_latency_s == SystemConfig().link_latency_s

    def test_nvmeof_adds_fabric_latency(self):
        config = SystemConfig(attachment="nvmeof")
        assert config.effective_link_latency_s == pytest.approx(
            config.link_latency_s + config.nvmeof_extra_latency_s
        )

    def test_invalid_attachment_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(attachment="usb")

    def test_links_pick_up_fabric_latency(self):
        machine = build_machine(SystemConfig(attachment="nvmeof"))
        assert machine.d2h_link.latency_s > SystemConfig().link_latency_s

    def test_nvmeof_still_profits_from_isp(self):
        # RDMA-mapped memory keeps the ActivePy model intact over a
        # fabric (paper: "the CSD can leverage the RDMA hardware
        # infrastructure NVMe already uses"); bulk bandwidth dominates,
        # so the win survives the extra hop.
        from repro.baselines import run_c_baseline

        config = SystemConfig(attachment="nvmeof")
        program = make_toy_program()
        dataset = make_toy_dataset()
        baseline = run_c_baseline(program, dataset, config=config)
        report = ActivePy(config).run(program, dataset)
        assert baseline.total_seconds / report.total_seconds > 1.1

    def test_nvmeof_slower_than_pcie_but_close(self):
        program = make_toy_program()
        dataset = make_toy_dataset()
        pcie = ActivePy(SystemConfig()).run(program, dataset)
        fabric = ActivePy(SystemConfig(attachment="nvmeof")).run(
            make_toy_program(), make_toy_dataset()
        )
        assert fabric.total_seconds >= pcie.total_seconds
        assert fabric.total_seconds < 1.1 * pcie.total_seconds
