"""The metrics registry, and the zero-simulated-overhead contract."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_TIME_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    Observability,
)
from repro.runtime.activepy import ActivePy, RunOptions
from repro.workloads import get_workload

_SCALE = 2 ** -7


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(-1.0)

    def test_non_finite_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(math.nan)
        with pytest.raises(ObservabilityError):
            counter.inc(math.inf)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(1.0)
        gauge.set(-2.0)
        assert gauge.value == -2.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 100.0):
            histogram.observe(value)
        data = histogram.to_jsonable()
        assert data["counts"] == [2, 1, 1]  # <=1, <=10, overflow
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(106.2)

    def test_buckets_must_increase(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_default_time_buckets_cover_sim_scales(self):
        histogram = Histogram("h")
        assert histogram.buckets == DEFAULT_TIME_BUCKETS_S
        assert histogram.buckets[0] <= 1e-6 and histogram.buckets[-1] >= 100.0

    @settings(max_examples=200, deadline=None)
    @given(
        bucket_index=st.integers(min_value=0,
                                 max_value=len(DEFAULT_TIME_BUCKETS_S) - 1),
    )
    def test_boundary_values_bucket_inclusively(self, bucket_index):
        """The documented <= convention: a value exactly on a bucket
        boundary lands in that bucket, and the next representable float
        above it spills into the following one."""
        boundary = DEFAULT_TIME_BUCKETS_S[bucket_index]

        exact = Histogram("exact")
        exact.observe(boundary)
        assert exact.counts[bucket_index] == 1
        assert sum(exact.counts) == 1

        above = Histogram("above")
        above.observe(math.nextafter(boundary, math.inf))
        assert above.counts[bucket_index] == 0
        assert above.counts[bucket_index + 1] == 1

    @settings(max_examples=200, deadline=None)
    @given(
        bounds=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=8, unique=True,
        ),
        value=st.floats(min_value=-1e6, max_value=1e6,
                        allow_nan=False, allow_infinity=False),
    )
    def test_bucket_choice_is_the_first_inclusive_upper_bound(
        self, bounds, value
    ):
        """For arbitrary bucket vectors the chosen index is always the
        first i with value <= buckets[i] (overflow otherwise)."""
        buckets = tuple(sorted(bounds))
        histogram = Histogram("h", buckets=buckets)
        histogram.observe(value)
        expected = next(
            (i for i, bound in enumerate(buckets) if value <= bound),
            len(buckets),
        )
        assert histogram.counts[expected] == 1
        assert sum(histogram.counts) == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert len(registry) == 1

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")
        with pytest.raises(ObservabilityError):
            registry.histogram("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(0.5)
        registry.histogram("h").observe(1e-3)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"]["a"] == 2
        assert snapshot["gauges"]["g"] == 0.5
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        assert "no metrics" in registry.render()
        registry.counter("hits").inc(3)
        assert "hits" in registry.render()

    def test_as_jsonable_is_sorted_across_kinds(self):
        """One flat series list, sorted by name regardless of kind or
        registration order, so two runs' snapshots diff cleanly."""
        registry = MetricsRegistry()
        registry.histogram("zz").observe(1.0)
        registry.counter("mm").inc(4)
        registry.gauge("aa").set(0.25)
        registry.counter("nn").inc()
        series = registry.as_jsonable()
        assert [entry["name"] for entry in series] == ["aa", "mm", "nn", "zz"]
        assert [entry["kind"] for entry in series] == [
            "gauge", "counter", "counter", "histogram",
        ]
        assert series[0]["value"] == 0.25
        assert series[1]["value"] == 4
        assert series[3]["value"]["count"] == 1
        # Registration order never leaks into the emitted order.
        other = MetricsRegistry()
        other.counter("nn").inc()
        other.gauge("aa").set(0.25)
        other.counter("mm").inc(4)
        other.histogram("zz").observe(1.0)
        assert other.as_jsonable() == series


@given(st.lists(
    st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
    min_size=1, max_size=50,
))
@settings(max_examples=60, deadline=None)
def test_counter_snapshots_are_monotone(amounts):
    """Counter values never decrease across snapshots."""
    registry = MetricsRegistry()
    previous = 0.0
    for amount in amounts:
        registry.counter("events").inc(amount)
        value = registry.snapshot()["counters"]["events"]
        assert value >= previous
        previous = value


class TestZeroSimulatedOverhead:
    """Enabling observability never changes simulated results."""

    @pytest.mark.parametrize("name", ["tpch_q6", "kmeans"])
    def test_total_seconds_bit_identical(self, name):
        workload = get_workload(name, scale=_SCALE)
        plain = ActivePy().run(workload.program, workload.dataset)
        observed = ActivePy().run(
            workload.program, workload.dataset,
            options=RunOptions(obs=Observability.with_tracing()),
        )
        # Exactly equal, not approximately: no metric or span advances
        # the simulated clock.
        assert observed.total_seconds == plain.total_seconds
        assert observed.result.total_seconds == plain.result.total_seconds

    def test_disabled_machine_records_nothing(self):
        workload = get_workload("tpch_q6", scale=_SCALE)
        report = ActivePy().run(workload.program, workload.dataset)
        assert report.obs is None
