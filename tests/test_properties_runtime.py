"""Property-based tests over the whole runtime pipeline.

Hypothesis generates random-but-well-formed programs (random per-line
instruction densities, reduction ratios and storage footprints); for
every one, the full pipeline — sampling, fitting, planning, compiled
execution — must satisfy the structural invariants the figures rest on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SystemConfig
from repro.hw.topology import build_machine
from repro.lang.dataset import Dataset
from repro.lang.program import Program, Statement, constant, per_record
from repro.runtime.activepy import ActivePy
from repro.runtime.codegen import ExecutionMode
from repro.runtime.planner import HOST, host_only_plan
from repro.runtime.activepy import run_plan
from repro.baselines import ground_truth_estimates

CONFIG = SystemConfig()


def _payload(n: int, full: int) -> dict:
    return {"x": np.ones(n)}


def _make_kernel(out_per_record: float):
    def kernel(payload: dict) -> dict:
        x = payload["x"]
        width = max(1, int(out_per_record // 8))
        return {"x": np.repeat(x[: max(1, x.size // 1)], 1)[: x.size],
                "pad": np.zeros((x.size, width - 1))} if width > 1 else {"x": x}

    return kernel


@st.composite
def random_programs(draw):
    """A 1-4 line chain with a storage-reading head."""
    k = draw(st.integers(min_value=1, max_value=4))
    statements = []
    for i in range(k):
        instr = draw(st.floats(min_value=1.0, max_value=400.0))
        out_bytes = draw(st.sampled_from([8.0, 16.0, 32.0, 64.0]))
        storage = 64.0 if i == 0 else 0.0
        statements.append(Statement(
            name=f"line{i}",
            kernel=_make_kernel(out_bytes),
            instructions=per_record(instr),
            output_bytes=per_record(out_bytes) if i < k - 1 else constant(8.0),
            storage_bytes=per_record(storage),
            chunks=8,
        ))
    return Program("random", statements)


@given(random_programs(), st.integers(min_value=1, max_value=20))
@settings(max_examples=25, deadline=None)
def test_pipeline_invariants_hold_for_random_programs(program, millions):
    dataset = Dataset(
        "random.data", n_records=millions * 1_000_000, record_bytes=64.0,
        builder=_payload,
    )
    machine = build_machine(CONFIG)
    report = ActivePy(CONFIG).run(program, dataset, machine=machine)

    # 1. The plan never projects worse than host-only.
    assert report.plan.t_csd <= report.plan.t_host + 1e-9

    # 2. Execution tracks the projection when nothing degrades
    #    (mode multiplier, chunk latencies and final transfers allow a
    #    few percent of slack).
    assert report.result.total_seconds <= report.plan.t_csd * 1.10 + 0.01

    # 3. Per-line timings tile the execution exactly.
    covered = sum(t.seconds for t in report.result.line_timings)
    tail = report.result.total_seconds - covered
    assert -1e-9 <= tail <= 0.2 * report.result.total_seconds + 1e-9

    # 4. No migration without degradation.
    assert not report.result.migrated


@given(random_programs())
@settings(max_examples=15, deadline=None)
def test_mode_ladder_order_for_random_programs(program):
    dataset = Dataset(
        "random.data", n_records=5_000_000, record_bytes=64.0, builder=_payload,
    )
    times = {}
    for mode in (ExecutionMode.C, ExecutionMode.CYTHON, ExecutionMode.PYTHON):
        machine = build_machine(CONFIG)
        machine.csd.store_dataset(dataset.name, dataset.raw_bytes)
        estimates = ground_truth_estimates(program, dataset.n_records, CONFIG)
        result = run_plan(
            machine=machine, program=program, plan=host_only_plan(estimates),
            dataset=dataset, mode=mode, config=CONFIG,
        )
        times[mode] = result.total_seconds
    assert times[ExecutionMode.C] <= times[ExecutionMode.CYTHON]
    assert times[ExecutionMode.CYTHON] <= times[ExecutionMode.PYTHON]


@given(
    availability=st.floats(min_value=0.02, max_value=0.2),
    trigger_at=st.floats(min_value=0.1, max_value=0.8),
)
@settings(max_examples=15, deadline=None)
def test_migration_never_loses_to_staying(availability, trigger_at):
    """With migration enabled, heavy degradation never ends up slower
    than the no-migration ablation by more than the decision slack."""
    from .conftest import make_toy_dataset, make_toy_program

    stay_machine = build_machine(CONFIG)
    stay = ActivePy(CONFIG, migration_enabled=False).run(
        make_toy_program(), make_toy_dataset(), machine=stay_machine,
        progress_triggers=[(trigger_at, availability)],
    )
    move_machine = build_machine(CONFIG)
    move = ActivePy(CONFIG, migration_enabled=True).run(
        make_toy_program(), make_toy_dataset(), machine=move_machine,
        progress_triggers=[(trigger_at, availability)],
    )
    assert move.total_seconds <= stay.total_seconds * 1.05
