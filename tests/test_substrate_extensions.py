"""Substrate enrichments: sort/top-n operators, k-means++, importance."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.ml.gbdt import GBDTRegressor
from repro.ml.kmeans_core import inertia, init_centroids, init_centroids_pp, kmeans_fit
from repro.workloads.tpch.engine import order_by, top_n


class TestOrderBy:
    def make_table(self):
        return {
            "k": np.array([3, 1, 2, 1]),
            "v": np.array([30.0, 10.0, 20.0, 11.0]),
        }

    def test_ascending(self):
        ordered = order_by(self.make_table(), keys=("k",))
        assert ordered["k"].tolist() == [1, 1, 2, 3]

    def test_stable_within_equal_keys(self):
        ordered = order_by(self.make_table(), keys=("k",))
        assert ordered["v"].tolist()[:2] == [10.0, 11.0]

    def test_descending(self):
        ordered = order_by(self.make_table(), keys=("k",), descending=True)
        assert ordered["k"].tolist() == [3, 2, 1, 1]

    def test_two_keys(self):
        table = {
            "a": np.array([1, 1, 0]),
            "b": np.array([2, 1, 9]),
        }
        ordered = order_by(table, keys=("a", "b"))
        assert ordered["b"].tolist() == [9, 1, 2]

    def test_needs_keys(self):
        with pytest.raises(WorkloadError):
            order_by(self.make_table(), keys=())


class TestTopN:
    def test_matches_full_sort(self):
        rng = np.random.default_rng(5)
        table = {"x": rng.random(1000), "tag": np.arange(1000)}
        top = top_n(table, by="x", n=10)
        full = np.sort(table["x"])[::-1][:10]
        assert np.allclose(top["x"], full)

    def test_ascending_variant(self):
        table = {"x": np.array([5.0, 1.0, 3.0])}
        assert top_n(table, by="x", n=2, descending=False)["x"].tolist() == [1.0, 3.0]

    def test_n_larger_than_table(self):
        table = {"x": np.array([2.0, 1.0])}
        assert top_n(table, by="x", n=10)["x"].tolist() == [2.0, 1.0]

    def test_invalid_n(self):
        with pytest.raises(WorkloadError):
            top_n({"x": np.ones(3)}, by="x", n=0)


class TestKMeansPlusPlus:
    def blobs(self, n_per=150, spread=0.3):
        rng = np.random.default_rng(3)
        centers = np.array([[-20.0, 0.0], [20.0, 0.0], [0.0, 20.0], [0.0, -20.0]])
        return np.concatenate([
            c + rng.normal(0, spread, size=(n_per, 2)) for c in centers
        ]), centers

    def test_seeds_spread_across_blobs(self):
        points, centers = self.blobs()
        seeds = init_centroids_pp(points, k=4, seed=11)
        # Every true center should have a seed nearby.
        for center in centers:
            assert np.linalg.norm(seeds - center, axis=1).min() < 2.0

    def test_better_or_equal_initial_inertia_than_uniform(self):
        points, _ = self.blobs()
        pp = inertia(points, init_centroids_pp(points, k=4, seed=2))
        uniform = inertia(points, init_centroids(points, k=4, seed=2))
        assert pp <= uniform * 1.05

    def test_degenerate_identical_points(self):
        points = np.zeros((50, 3))
        seeds = init_centroids_pp(points, k=4)
        assert seeds.shape == (4, 3)

    def test_validation(self):
        points, _ = self.blobs()
        with pytest.raises(WorkloadError):
            init_centroids_pp(points, k=0)
        with pytest.raises(WorkloadError):
            init_centroids_pp(np.zeros(5), k=1)

    def test_fit_still_converges_from_pp_seeds(self):
        points, _ = self.blobs()
        state = kmeans_fit(points, k=4, iterations=30)
        assert state.shift < 1e-9


class TestFeatureImportance:
    def test_informative_features_dominate(self):
        rng = np.random.default_rng(9)
        features = rng.normal(size=(3000, 6))
        targets = 5.0 * features[:, 0] + 2.0 * features[:, 3]
        model = GBDTRegressor(n_trees=20, max_depth=3).fit(features, targets)
        importance = model.feature_importance()
        assert importance.sum() == pytest.approx(1.0)
        assert importance[0] > 0.3
        assert importance[0] + importance[3] > 0.8

    def test_stump_free_model_zero_importance(self):
        rng = np.random.default_rng(10)
        features = rng.normal(size=(100, 3))
        targets = np.zeros(100)  # nothing to learn -> leaves only
        model = GBDTRegressor(n_trees=3, max_depth=2).fit(features, targets)
        assert model.feature_importance().sum() in (0.0, pytest.approx(1.0))
