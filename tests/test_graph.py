"""Graph substrate: CSR, generators with sampling skew, PageRank."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graph.csr import CSRMatrix, csr_from_edges, csr_nbytes
from repro.graph.generators import (
    distinct_sources,
    power_law_edges,
    power_law_prefix,
    power_law_true_csr_bytes,
    vertices_for_edges,
)
from repro.graph.pagerank_core import pagerank, spmv


class TestCsrFromEdges:
    def test_round_trips_a_dense_matrix(self):
        dense = np.array([
            [0.0, 1.0, 0.0],
            [2.0, 0.0, 3.0],
            [0.0, 0.0, 0.0],
        ])
        rows, cols = np.nonzero(dense)
        matrix = csr_from_edges(rows, cols, n_rows=3, values=dense[rows, cols])
        rebuilt = np.zeros_like(dense)
        for i in range(matrix.n_rows):
            indices, values = matrix.row(i)
            rebuilt[i, indices] = values
        assert np.array_equal(rebuilt, dense)

    def test_unsorted_edges_accepted(self):
        src = np.array([2, 0, 1, 0])
        dst = np.array([0, 1, 2, 2])
        matrix = csr_from_edges(src, dst, n_rows=3)
        assert matrix.nnz == 4
        assert matrix.out_degree().tolist() == [2, 1, 1]

    def test_default_values_are_ones(self):
        matrix = csr_from_edges(np.array([0]), np.array([1]), n_rows=2)
        assert matrix.values.tolist() == [1.0]

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            csr_from_edges(np.array([5]), np.array([0]), n_rows=3)
        with pytest.raises(WorkloadError):
            csr_from_edges(np.array([0]), np.array([5]), n_rows=3)

    def test_nbytes_formula(self):
        assert csr_nbytes(10, 100) == 8 * 11 + 12 * 100

    def test_row_bounds(self):
        matrix = csr_from_edges(np.array([0]), np.array([1]), n_rows=2)
        with pytest.raises(WorkloadError):
            matrix.row(5)


class TestGenerators:
    def test_prefix_has_requested_edges(self):
        src, dst, n_vertices = power_law_prefix(10_000, 1_000_000)
        assert src.size == dst.size == 10_000
        assert n_vertices == vertices_for_edges(1_000_000)

    def test_fringe_first_prefix_is_sparse(self):
        # The core of the CSR-misprediction mechanism: a prefix sample
        # covers roughly one distinct source per edge, while the full
        # population averages `avg_degree` edges per vertex.
        src, _, _ = power_law_prefix(10_000, 10_000_000, avg_degree=8.0)
        assert distinct_sources(src) > 0.3 * src.size

    def test_full_population_is_dense(self):
        src, _, n_vertices = power_law_edges(80_000, avg_degree=8.0)
        assert distinct_sources(src) <= n_vertices
        assert src.size / distinct_sources(src) > 4.0  # near avg_degree

    def test_destinations_prefer_hubs(self):
        _, dst, n_vertices = power_law_prefix(50_000, 1_000_000)
        # Hubs live at the top of the id range; the median destination
        # must sit far above the middle.
        assert np.median(dst) > 0.8 * n_vertices

    def test_true_csr_bytes_unweighted_smaller(self):
        weighted = power_law_true_csr_bytes(1_000_000, weighted=True)
        unweighted = power_law_true_csr_bytes(1_000_000, weighted=False)
        assert unweighted == pytest.approx(weighted - 8.0 * 1_000_000)

    def test_deterministic(self):
        a = power_law_prefix(1000, 100_000, seed=3)
        b = power_law_prefix(1000, 100_000, seed=3)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_validation(self):
        with pytest.raises(WorkloadError):
            power_law_prefix(0, 100)
        with pytest.raises(WorkloadError):
            power_law_prefix(200, 100)
        with pytest.raises(WorkloadError):
            vertices_for_edges(100, avg_degree=0)


class TestSpmv:
    def test_matches_dense_multiply(self):
        rng = np.random.default_rng(8)
        dense = rng.random((20, 20)) * (rng.random((20, 20)) < 0.3)
        rows, cols = np.nonzero(dense)
        matrix = csr_from_edges(rows, cols, n_rows=20, values=dense[rows, cols])
        x = rng.random(20)
        assert spmv(matrix, x) == pytest.approx(dense @ x)

    def test_empty_rows_stay_zero(self):
        matrix = csr_from_edges(np.array([0, 2]), np.array([1, 1]), n_rows=4)
        y = spmv(matrix, np.ones(4))
        assert y.tolist() == [1.0, 0.0, 1.0, 0.0]

    def test_trailing_empty_rows(self):
        # Regression: reduceat start == nnz used to raise.
        matrix = csr_from_edges(np.array([0]), np.array([0]), n_rows=5)
        assert spmv(matrix, np.ones(5)).tolist() == [1.0, 0.0, 0.0, 0.0, 0.0]

    def test_short_vector_rejected(self):
        matrix = csr_from_edges(np.array([0]), np.array([3]), n_rows=4)
        with pytest.raises(WorkloadError):
            spmv(matrix, np.ones(2))


class TestPageRank:
    def make_graph(self):
        # 0 -> 1 -> 2 -> 0 plus a dangling node 3.
        src = np.array([0, 1, 2])
        dst = np.array([1, 2, 0])
        return csr_from_edges(src, dst, n_rows=4)

    def test_ranks_sum_to_one(self):
        ranks = pagerank(self.make_graph(), iterations=30)
        assert ranks.sum() == pytest.approx(1.0)
        assert np.all(ranks > 0)

    def test_cycle_nodes_symmetric(self):
        ranks = pagerank(self.make_graph(), iterations=60)
        assert ranks[0] == pytest.approx(ranks[1], rel=1e-3)
        assert ranks[1] == pytest.approx(ranks[2], rel=1e-3)

    def test_hub_outranks_fringe(self):
        # Everyone points at node 0.
        src = np.array([1, 2, 3, 0])
        dst = np.array([0, 0, 0, 1])
        matrix = csr_from_edges(src, dst, n_rows=4)
        ranks = pagerank(matrix, iterations=40)
        assert ranks[0] == ranks.max()

    def test_tolerance_stops_early(self):
        ranks_tol = pagerank(self.make_graph(), iterations=500, tol=1e-12)
        ranks_full = pagerank(self.make_graph(), iterations=500)
        assert ranks_tol == pytest.approx(ranks_full, rel=1e-6)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            pagerank(self.make_graph(), damping=1.5)
        with pytest.raises(WorkloadError):
            pagerank(self.make_graph(), iterations=0)
