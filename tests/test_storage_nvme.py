"""NVMe queue pairs: ring-buffer semantics and command flow."""

import pytest

from repro.errors import DispatchError
from repro.storage.nvme import Completion, CompletionQueue, QueuePair, SubmissionQueue


class TestSubmissionQueue:
    def test_submit_assigns_increasing_ids(self):
        sq = SubmissionQueue()
        assert sq.submit("exec") == 0
        assert sq.submit("exec") == 1

    def test_fetch_is_fifo(self):
        sq = SubmissionQueue()
        sq.submit("a")
        sq.submit("b")
        assert sq.fetch().opcode == "a"
        assert sq.fetch().opcode == "b"

    def test_doorbell_counts(self):
        sq = SubmissionQueue()
        sq.submit("exec")
        sq.submit("exec")
        assert sq.doorbell_rings == 2

    def test_fetch_empty_rejected(self):
        with pytest.raises(DispatchError):
            SubmissionQueue().fetch()

    def test_fills_at_depth_minus_one(self):
        sq = SubmissionQueue(depth=4)
        for _ in range(3):
            sq.submit("exec")
        assert sq.is_full
        with pytest.raises(DispatchError):
            sq.submit("exec")

    def test_wraps_around(self):
        sq = SubmissionQueue(depth=4)
        for round_ in range(5):
            sq.submit("exec")
            sq.fetch()
        assert sq.is_empty

    def test_payload_carried(self):
        sq = SubmissionQueue()
        sq.submit("exec", payload={"line": "scan"})
        assert sq.fetch().payload == {"line": "scan"}


class TestCompletionQueue:
    def test_post_and_reap(self):
        cq = CompletionQueue()
        cq.post(Completion(command_id=7))
        assert cq.reap().command_id == 7

    def test_drain(self):
        cq = CompletionQueue()
        for i in range(3):
            cq.post(Completion(command_id=i))
        assert [c.command_id for c in cq.drain()] == [0, 1, 2]
        assert cq.is_empty

    def test_reap_empty_rejected(self):
        with pytest.raises(DispatchError):
            CompletionQueue().reap()

    def test_minimum_depth(self):
        with pytest.raises(DispatchError):
            CompletionQueue(depth=1)


class TestQueuePair:
    def test_create_binds_both_rings(self):
        qp = QueuePair.create(depth=8, name="qp0")
        command_id = qp.sq.submit("exec")
        command = qp.sq.fetch()
        qp.cq.post(Completion(command_id=command.command_id))
        assert qp.cq.reap().command_id == command_id


class TestRingWraparound:
    """The head/tail arithmetic across many wrap cycles."""

    def test_many_wrap_cycles_preserve_fifo(self):
        sq = SubmissionQueue(depth=4)
        fetched = []
        for round_number in range(10):  # 10 cycles around a 4-slot ring
            ids = [sq.submit("exec", payload=round_number) for _ in range(3)]
            assert sq.is_full
            fetched.extend(sq.fetch().command_id for _ in ids)
            assert fetched[-3:] == ids
            assert sq.is_empty
        assert fetched == sorted(fetched)

    def test_usable_capacity_is_depth_minus_one(self):
        sq = SubmissionQueue(depth=8)
        for _ in range(7):
            sq.submit("exec")
        assert sq.is_full
        with pytest.raises(DispatchError):
            sq.submit("exec")

    def test_partial_drain_across_the_seam(self):
        sq = SubmissionQueue(depth=4)
        a = sq.submit("exec")
        b = sq.submit("exec")
        assert sq.fetch().command_id == a
        # head has advanced; these pushes wrap tail past the seam.
        c = sq.submit("exec")
        d = sq.submit("exec")
        assert sq.is_full
        assert [sq.fetch().command_id for _ in range(3)] == [b, c, d]
        assert sq.is_empty

    def test_len_tracks_occupancy_through_wraps(self):
        cq = CompletionQueue(depth=3)
        for i in range(9):
            cq.post(Completion(command_id=i))
            assert len(cq) == 1
            assert cq.reap().command_id == i
            assert len(cq) == 0


class TestCompletionFaultHooks:
    def test_armed_loss_swallows_exactly_count(self):
        cq = CompletionQueue()
        cq.arm_loss(2)
        for i in range(3):
            cq.post(Completion(command_id=i))
        assert cq.completions_lost == 2
        assert [c.command_id for c in cq.drain()] == [2]

    def test_armed_delay_consumed_once(self):
        cq = CompletionQueue()
        cq.arm_delay(0.25)
        assert cq.consume_delay() == 0.25
        assert cq.consume_delay() == 0.0


class TestQueuePairFaultState:
    def test_stall_takes_the_maximum(self):
        qp = QueuePair.create()
        qp.stall(2.0)
        qp.stall(1.0)  # an earlier stall never shortens the window
        assert qp.stalled_until == 2.0
        assert qp.stalled_at(1.5)
        assert not qp.stalled_at(2.0)

    def test_clear_drops_in_flight_entries_and_stall(self):
        qp = QueuePair.create(depth=8)
        qp.sq.submit("exec")
        qp.cq.post(Completion(command_id=0))
        qp.stall(5.0)
        qp.clear()
        assert qp.sq.is_empty
        assert qp.cq.is_empty
        assert not qp.stalled_at(0.0)
