"""NVMe queue pairs: ring-buffer semantics and command flow."""

import pytest

from repro.errors import DispatchError
from repro.storage.nvme import Completion, CompletionQueue, QueuePair, SubmissionQueue


class TestSubmissionQueue:
    def test_submit_assigns_increasing_ids(self):
        sq = SubmissionQueue()
        assert sq.submit("exec") == 0
        assert sq.submit("exec") == 1

    def test_fetch_is_fifo(self):
        sq = SubmissionQueue()
        sq.submit("a")
        sq.submit("b")
        assert sq.fetch().opcode == "a"
        assert sq.fetch().opcode == "b"

    def test_doorbell_counts(self):
        sq = SubmissionQueue()
        sq.submit("exec")
        sq.submit("exec")
        assert sq.doorbell_rings == 2

    def test_fetch_empty_rejected(self):
        with pytest.raises(DispatchError):
            SubmissionQueue().fetch()

    def test_fills_at_depth_minus_one(self):
        sq = SubmissionQueue(depth=4)
        for _ in range(3):
            sq.submit("exec")
        assert sq.is_full
        with pytest.raises(DispatchError):
            sq.submit("exec")

    def test_wraps_around(self):
        sq = SubmissionQueue(depth=4)
        for round_ in range(5):
            sq.submit("exec")
            sq.fetch()
        assert sq.is_empty

    def test_payload_carried(self):
        sq = SubmissionQueue()
        sq.submit("exec", payload={"line": "scan"})
        assert sq.fetch().payload == {"line": "scan"}


class TestCompletionQueue:
    def test_post_and_reap(self):
        cq = CompletionQueue()
        cq.post(Completion(command_id=7))
        assert cq.reap().command_id == 7

    def test_drain(self):
        cq = CompletionQueue()
        for i in range(3):
            cq.post(Completion(command_id=i))
        assert [c.command_id for c in cq.drain()] == [0, 1, 2]
        assert cq.is_empty

    def test_reap_empty_rejected(self):
        with pytest.raises(DispatchError):
            CompletionQueue().reap()

    def test_minimum_depth(self):
        with pytest.raises(DispatchError):
            CompletionQueue(depth=1)


class TestQueuePair:
    def test_create_binds_both_rings(self):
        qp = QueuePair.create(depth=8, name="qp0")
        command_id = qp.sq.submit("exec")
        command = qp.sq.fetch()
        qp.cq.post(Completion(command_id=command.command_id))
        assert qp.cq.reap().command_id == command_id
