"""The paper-constants module, and config consistency with it."""

import pytest

from repro import paper
from repro.config import DEFAULT_CONFIG
from repro.units import GB


class TestPaperConstants:
    def test_fig4_averages(self):
        assert paper.FIG4_STATIC_GEOMEAN == 1.33
        assert paper.FIG4_ACTIVEPY_GEOMEAN == 1.34

    def test_table1_has_nine_apps(self):
        assert len(paper.TABLE1_SIZES) == 9
        assert paper.TABLE1_SIZES["kmeans"] == pytest.approx(5.3 * GB)
        assert paper.TABLE1_SIZES["mixedgemm"] == pytest.approx(9.4 * GB)

    def test_sampling_factors_match_config(self):
        assert DEFAULT_CONFIG.sampling_factors == paper.SAMPLING_FACTORS

    def test_ladder_matches_config_decomposition(self):
        total = (
            DEFAULT_CONFIG.interp_dispatch_overhead + DEFAULT_CONFIG.copy_overhead
        )
        assert total == pytest.approx(paper.LADDER_PYTHON_OVERHEAD)
        assert DEFAULT_CONFIG.copy_overhead == pytest.approx(
            paper.LADDER_CYTHON_OVERHEAD
        )

    def test_platform_internal_bandwidth_matches_config(self):
        assert DEFAULT_CONFIG.bw_internal == pytest.approx(
            paper.PLATFORM_INTERNAL_BANDWIDTH
        )

    def test_cse_cores_match(self):
        assert DEFAULT_CONFIG.cse_cores == paper.PLATFORM_CSE_CORES

    def test_nand_capacity_matches(self):
        assert DEFAULT_CONFIG.nand_capacity_bytes == pytest.approx(
            paper.PLATFORM_NAND_CAPACITY
        )

    def test_compile_cost_matches(self):
        assert DEFAULT_CONFIG.compile_overhead_s == pytest.approx(
            paper.SAMPLING_PLUS_CODEGEN_SECONDS
        )

    def test_workload_sizes_match_table1(self):
        from repro.workloads import get_workload

        for name, size in paper.TABLE1_SIZES.items():
            assert get_workload(name, scale=2**-7).table1_bytes == pytest.approx(size)
