"""Profiler measurement noise: determinism and planning robustness.

The paper argues the estimator only needs to be "good enough" (§III-A);
these tests check that claim holds in our reproduction — a few percent
of measurement jitter must not change the plans, only the error bars.
"""

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.runtime.activepy import ActivePy
from repro.runtime.profiler import LineProfiler
from repro.runtime.sampling import SamplingPhase
from repro.workloads import get_workload

from .conftest import make_toy_dataset, make_toy_program


class TestNoiseMechanics:
    def test_zero_noise_is_exact(self):
        config = SystemConfig(profiler_noise=0.0)
        profiler = LineProfiler(config)
        program = make_toy_program()
        sample = make_toy_dataset().sample(2**-10)
        a = profiler.profile(program, sample)
        b = LineProfiler(config).profile(program, sample)
        assert [r.compute_seconds for r in a] == [r.compute_seconds for r in b]

    def test_noise_is_seed_deterministic(self):
        config = SystemConfig(profiler_noise=0.05, profiler_noise_seed=7)
        program = make_toy_program()
        sample = make_toy_dataset().sample(2**-10)
        a = LineProfiler(config).profile(program, sample)
        b = LineProfiler(config).profile(program, sample)
        assert [r.compute_seconds for r in a] == [r.compute_seconds for r in b]

    def test_different_seeds_differ(self):
        program = make_toy_program()
        sample = make_toy_dataset().sample(2**-10)
        a = LineProfiler(SystemConfig(profiler_noise=0.05, profiler_noise_seed=1)
                         ).profile(program, sample)
        b = LineProfiler(SystemConfig(profiler_noise=0.05, profiler_noise_seed=2)
                         ).profile(program, sample)
        assert a[0].compute_seconds != b[0].compute_seconds

    def test_noise_perturbs_times_not_bytes(self):
        noisy = SystemConfig(profiler_noise=0.05)
        clean = SystemConfig(profiler_noise=0.0)
        program = make_toy_program()
        sample = make_toy_dataset().sample(2**-10)
        noisy_records = LineProfiler(noisy).profile(program, sample)
        clean_records = LineProfiler(clean).profile(program, sample)
        assert noisy_records[0].compute_seconds != clean_records[0].compute_seconds
        assert noisy_records[0].output_bytes == clean_records[0].output_bytes

    def test_excessive_noise_rejected(self):
        with pytest.raises(ConfigError):
            SystemConfig(profiler_noise=0.6)


class TestPlanningRobustness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_plans_survive_3pct_noise(self, seed):
        # "Good enough" estimation: jittered measurements, same plan.
        clean = ActivePy(SystemConfig()).run(
            make_toy_program(), make_toy_dataset()
        )
        noisy = ActivePy(
            SystemConfig(profiler_noise=0.03, profiler_noise_seed=seed)
        ).run(make_toy_program(), make_toy_dataset())
        assert noisy.plan.assignments == clean.plan.assignments

    def test_workload_plan_survives_noise(self):
        workload = get_workload("tpch_q6")
        clean = ActivePy(SystemConfig()).run(workload.program, workload.dataset)
        noisy_workload = get_workload("tpch_q6")
        noisy = ActivePy(SystemConfig(profiler_noise=0.03)).run(
            noisy_workload.program, noisy_workload.dataset
        )
        assert noisy.plan.assignments == clean.plan.assignments

    def test_noise_raises_fit_residuals(self):
        program = make_toy_program()
        dataset = make_toy_dataset()
        clean = SamplingPhase(SystemConfig()).run(program, dataset)
        noisy = SamplingPhase(SystemConfig(profiler_noise=0.05)).run(
            make_toy_program(), make_toy_dataset()
        )
        clean_residual = clean.fit_for("scan").compute.relative_residual
        noisy_residual = noisy.fit_for("scan").compute.relative_residual
        assert noisy_residual > clean_residual
