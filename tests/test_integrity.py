"""End-to-end data integrity: silent faults, digests, and the guarantee.

Three layers under test:

* the **fault surface** — the silent-corruption kinds, their specs, and
  the hardware taint hooks they arm;
* the **integrity layer** (`repro.integrity`) — verify costs, detection
  bookkeeping, and the taint-ledger digest;
* the **guarantee** — with the layer on, every corrupted run either
  matches the fault-free baseline or records a detection; with it off,
  corruption demonstrably reaches the report (and the chaos invariant
  `corruption-detected-before-report` says so).
"""

import dataclasses

import pytest

from repro.chaos import ChaosHarness
from repro.chaos.invariants import check_invariants, run_signature
from repro.config import DEFAULT_CONFIG
from repro.errors import FaultError, IntegrityError
from repro.faults.spec import (
    FAULT_KIND_INFO,
    FLEET_KINDS,
    LOUD_KINDS,
    SILENT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.hw.topology import build_machine
from repro.integrity import CLEAN_DIGEST, IntegrityChecker
from repro.obs import Observability
from repro.runtime.activepy import ActivePy, RunOptions
from repro.runtime.checkpoint import CheckpointRecord, decode_record, encode_record
from repro.workloads import get_workload

SCALE = 2 ** -7

INTEGRITY_ON = dataclasses.replace(DEFAULT_CONFIG, integrity_enabled=True)
NO_VERIFY = dataclasses.replace(
    DEFAULT_CONFIG, integrity_enabled=True, integrity_verify=False
)


def _run(config, workload_name="tpch_q6", plan=None, obs=None):
    workload = get_workload(workload_name, scale=SCALE)
    machine = build_machine(config, obs=obs)
    return ActivePy(config).run(
        workload.program, workload.dataset, machine=machine,
        options=RunOptions(fault_plan=plan, obs=obs),
    )


def _silent_nand_plan(baseline, count=2, persistent=False):
    return FaultPlan(seed=1, specs=(FaultSpec(
        kind=FaultKind.NAND_SILENT_CORRUPTION,
        at_time=0.5 * baseline.total_seconds,
        count=count,
        persistent=persistent,
    ),))


# --- the fault catalogue ----------------------------------------------------

class TestFaultCatalogue:
    def test_info_covers_every_kind(self):
        assert set(FAULT_KIND_INFO) == set(FaultKind)
        for description, target in FAULT_KIND_INFO.values():
            assert description and target

    def test_kind_classes_partition_the_enum(self):
        classes = (set(LOUD_KINDS), set(SILENT_KINDS), set(FLEET_KINDS))
        union = set()
        for kinds in classes:
            assert not union & kinds
            union |= kinds
        assert union == set(FaultKind)

    def test_loud_and_silent_pools_are_frozen(self):
        """Growing the enum must never reshuffle pre-existing seeds.

        These two tuples are the historical plan pools; new kinds (the
        fleet-level ones included) must land in their own class, never
        here.  The exact contents are pinned on purpose.
        """
        assert tuple(k.value for k in LOUD_KINDS) == (
            "nand-read-correctable", "nand-read-uncorrectable",
            "nvme-completion-loss", "nvme-completion-delay",
            "nvme-queue-stall", "cse-crash", "link-degrade",
            "checkpoint-torn-write",
        )
        assert tuple(k.value for k in SILENT_KINDS) == (
            "nand-silent-corruption", "bar-transfer-corruption",
            "checkpoint-silent-bitrot",
        )

    def test_default_random_pool_excludes_silent_kinds(self):
        """Growing the enum must never reshuffle plans from old seeds."""
        for seed in range(20):
            plan = FaultPlan.random(seed=seed, horizon_s=1.0, count=4)
            assert all(spec.kind in LOUD_KINDS for spec in plan)

    def test_widened_pool_reaches_silent_kinds(self):
        kinds = set()
        for seed in range(40):
            plan = FaultPlan.random(
                seed=seed, horizon_s=1.0, count=4,
                kinds=LOUD_KINDS + SILENT_KINDS,
            )
            kinds.update(spec.kind for spec in plan)
        assert kinds >= set(SILENT_KINDS)

    def test_bar_corruption_requires_link_target(self):
        with pytest.raises(FaultError, match="BAR_TRANSFER_CORRUPTION"):
            FaultSpec(kind=FaultKind.BAR_TRANSFER_CORRUPTION, at_time=0.1,
                      target="csd")


#: One representative, valid spec per kind — every field exercised
#: somewhere across the set.
_ROUND_TRIP_SPECS = {
    FaultKind.NAND_READ_CORRECTABLE: FaultSpec(
        kind=FaultKind.NAND_READ_CORRECTABLE, at_time=0.25, retries=5),
    FaultKind.NAND_READ_UNCORRECTABLE: FaultSpec(
        kind=FaultKind.NAND_READ_UNCORRECTABLE, at_time=0.5, persistent=True),
    FaultKind.NVME_COMPLETION_LOSS: FaultSpec(
        kind=FaultKind.NVME_COMPLETION_LOSS, at_time=0.75, count=2),
    FaultKind.NVME_COMPLETION_DELAY: FaultSpec(
        kind=FaultKind.NVME_COMPLETION_DELAY, at_time=1.0, duration_s=0.02),
    FaultKind.NVME_QUEUE_STALL: FaultSpec(
        kind=FaultKind.NVME_QUEUE_STALL, at_time=1.25, duration_s=0.1),
    FaultKind.CSE_CRASH: FaultSpec(
        kind=FaultKind.CSE_CRASH, at_time=1.5, duration_s=0.3),
    FaultKind.LINK_DEGRADE: FaultSpec(
        kind=FaultKind.LINK_DEGRADE, at_time=1.75, target="remote-access",
        duration_s=0.4, factor=0.25),
    FaultKind.CHECKPOINT_TORN_WRITE: FaultSpec(
        kind=FaultKind.CHECKPOINT_TORN_WRITE, at_time=2.0, count=3),
    FaultKind.NAND_SILENT_CORRUPTION: FaultSpec(
        kind=FaultKind.NAND_SILENT_CORRUPTION, at_time=2.25, count=2,
        persistent=True),
    FaultKind.BAR_TRANSFER_CORRUPTION: FaultSpec(
        kind=FaultKind.BAR_TRANSFER_CORRUPTION, at_time=2.5, target="d2h",
        count=2),
    FaultKind.CHECKPOINT_SILENT_BITROT: FaultSpec(
        kind=FaultKind.CHECKPOINT_SILENT_BITROT, at_time=2.75, count=2),
    FaultKind.DEVICE_LOST_MID_JOB: FaultSpec(
        kind=FaultKind.DEVICE_LOST_MID_JOB, at_time=3.0, target="csd1",
        duration_s=0.5),
    FaultKind.TENANT_FAULT_INJECTION: FaultSpec(
        kind=FaultKind.TENANT_FAULT_INJECTION, at_time=3.25,
        target="tenant-a", duration_s=0.4, count=2),
}


class TestSpecRoundTrip:
    @pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
    def test_every_kind_round_trips(self, kind):
        spec = _ROUND_TRIP_SPECS[kind]
        assert FaultSpec.from_jsonable(spec.to_jsonable()) == spec

    def test_round_trip_specs_cover_the_enum(self):
        assert set(_ROUND_TRIP_SPECS) == set(FaultKind)

    def test_plan_round_trips_with_seed(self):
        plan = FaultPlan(
            seed=99, specs=tuple(_ROUND_TRIP_SPECS.values()),
        )
        clone = FaultPlan.from_jsonable(plan.to_jsonable())
        assert clone == plan
        assert clone.seed == 99

    def test_jsonable_is_json_safe(self):
        import json

        plan = FaultPlan(seed=7, specs=tuple(_ROUND_TRIP_SPECS.values()))
        assert FaultPlan.from_jsonable(
            json.loads(json.dumps(plan.to_jsonable()))
        ) == plan


# --- hardware taint hooks ---------------------------------------------------

class TestHardwareHooks:
    def test_flash_silent_corruption_counts_down(self):
        flash = build_machine().csd.flash
        flash.arm_silent_corruption(count=2)
        assert flash.consume_silent_corruption()
        assert flash.consume_silent_corruption()
        assert not flash.consume_silent_corruption()
        assert flash.silent_corrupted_reads == 2

    def test_flash_persistent_corruption_never_drains(self):
        flash = build_machine().csd.flash
        flash.arm_silent_corruption(count=1, persistent=True)
        assert all(flash.consume_silent_corruption() for _ in range(5))
        flash.clear_silent_corruption()
        assert not flash.consume_silent_corruption()

    def test_link_transfer_corruption_counts_down(self):
        link = build_machine().d2h_link
        link.arm_transfer_corruption(2)
        assert link.transfer_corruption_armed
        assert link.consume_transfer_corruption()
        assert link.consume_transfer_corruption()
        assert not link.consume_transfer_corruption()
        assert link.corrupted_transfers == 2

    def test_bitrot_defeats_crc_but_not_no_validate(self):
        area = build_machine().csd.checkpoints
        record = CheckpointRecord(
            generation=0, line_index=1, next_chunk=4,
            live_vars=("acc",), sim_time=0.5,
        )
        area.write(0, encode_record(record), None)
        area.next_generation = 1
        assert area.rot_committed(1) == 1
        blob = area.read(0)
        # CRC validation rejects the rotted record outright...
        assert decode_record(blob, validate=True) is None
        # ...while the planted no-validate bug trusts a scrambled cursor.
        trusted = decode_record(blob, validate=False)
        assert trusted is not None
        assert trusted.next_chunk != record.next_chunk

    def test_bitrot_with_no_committed_record(self):
        area = build_machine().csd.checkpoints
        assert area.rot_committed(1) == 0


# --- the IntegrityChecker ---------------------------------------------------

class TestIntegrityChecker:
    def _checker(self, config):
        machine = build_machine(config)
        return machine, IntegrityChecker(
            config=config, clock=machine.simulator.clock,
        )

    def test_disabled_charges_nothing(self):
        machine, checker = self._checker(DEFAULT_CONFIG)
        before = machine.simulator.now
        assert checker.charge_verify(10 ** 9) == 0.0
        assert machine.simulator.now == before
        assert checker.verified_bytes == 0.0

    def test_enabled_charges_bandwidth_cost(self):
        machine, checker = self._checker(INTEGRITY_ON)
        nbytes = 2.0 * INTEGRITY_ON.integrity_verify_bandwidth
        seconds = checker.charge_verify(nbytes)
        assert seconds == pytest.approx(2.0)
        assert machine.simulator.now == pytest.approx(2.0)
        assert checker.verified_bytes == nbytes

    def test_digest_ledger_is_last_writer_wins(self):
        _, checker = self._checker(INTEGRITY_ON)
        assert checker.digest() == CLEAN_DIGEST
        checker.record_unit("line0.chunk1", tainted=True)
        dirty = checker.digest()
        assert dirty != CLEAN_DIGEST
        # Another unit's taint changes the digest again...
        checker.record_unit("final.output", tainted=True)
        assert checker.digest() not in (CLEAN_DIGEST, dirty)
        # ...and healing both returns exactly to clean.
        checker.record_unit("line0.chunk1", tainted=False)
        checker.record_unit("final.output", tainted=False)
        assert checker.digest() == CLEAN_DIGEST
        assert checker.missed == 2  # taints were ground-truth misses

    def test_raise_mismatch_raises_and_logs(self):
        _, checker = self._checker(INTEGRITY_ON)
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            checker.raise_mismatch("csd", "line0.chunk0: content digest mismatch")
        assert checker.detected == 1
        events = checker.fault_log.events
        assert any(e.action == "integrity-detected" for e in events)


# --- end to end: the guarantee ---------------------------------------------

class TestEndToEnd:
    def test_unprotected_corruption_reaches_the_report_for_free(self):
        """Integrity off: the digest changes, the simulated time does not."""
        baseline = _run(DEFAULT_CONFIG)
        faulted = _run(DEFAULT_CONFIG, plan=_silent_nand_plan(baseline))
        assert baseline.result.output_digest == CLEAN_DIGEST
        assert faulted.result.output_digest != CLEAN_DIGEST
        # The defining property of a *silent* fault — and of the
        # disabled integrity layer: zero simulated overhead, exactly.
        assert faulted.total_seconds == baseline.total_seconds
        assert faulted.result.integrity_stats["missed"] == 2
        assert faulted.result.integrity_stats["detected"] == 0

    def test_protected_corruption_is_detected_and_healed(self):
        baseline = _run(INTEGRITY_ON)
        faulted = _run(INTEGRITY_ON, plan=_silent_nand_plan(baseline))
        stats = faulted.result.integrity_stats
        assert stats["detected"] == 2
        assert stats["missed"] == 0
        assert faulted.result.output_digest == CLEAN_DIGEST
        assert faulted.result.chunk_replays >= 2
        actions = [e.action for e in faulted.result.fault_events]
        assert "integrity-detected" in actions
        assert "chunk-replay" in actions

    def test_persistent_corruption_escalates_to_host_fallback(self):
        baseline = _run(INTEGRITY_ON)
        faulted = _run(
            INTEGRITY_ON,
            plan=_silent_nand_plan(baseline, count=1, persistent=True),
        )
        # Replays keep re-reading flipped bits; the host replica is clean.
        assert faulted.result.degraded
        assert faulted.result.output_digest == CLEAN_DIGEST
        actions = [e.action for e in faulted.result.fault_events]
        assert "host-fallback" in actions

    def test_link_corruption_is_reread_inline(self):
        baseline = _run(INTEGRITY_ON)
        plan = FaultPlan(seed=2, specs=(FaultSpec(
            kind=FaultKind.BAR_TRANSFER_CORRUPTION,
            at_time=0.5 * baseline.total_seconds,
            target="d2h",
        ),))
        faulted = _run(INTEGRITY_ON, plan=plan)
        assert faulted.result.output_digest == CLEAN_DIGEST
        assert faulted.result.integrity_stats["detected"] >= 1
        # The re-read costs link time: the run is strictly slower.
        assert faulted.total_seconds > baseline.total_seconds

    def test_no_verify_pays_for_digests_it_never_compares(self):
        baseline = _run(NO_VERIFY)
        faulted = _run(NO_VERIFY, plan=_silent_nand_plan(baseline))
        stats = faulted.result.integrity_stats
        assert stats["verified_bytes"] > 0          # the cost is still paid
        assert stats["detected"] == 0               # nothing is caught
        assert faulted.result.output_digest != CLEAN_DIGEST

    def test_verify_cost_lands_in_the_integrity_component(self):
        obs = Observability.with_attribution()
        report = _run(INTEGRITY_ON, obs=obs)
        attribution = obs.attribution_report()
        integrity_s = attribution.seconds_by_component.get("integrity", 0.0)
        assert integrity_s > 0.0
        expected = report.result.integrity_stats["verify_seconds"]
        assert integrity_s == pytest.approx(expected)

    def test_disabled_layer_emits_no_metrics(self):
        obs = Observability()
        _run(DEFAULT_CONFIG, obs=obs)
        counters = obs.snapshot()["counters"]
        assert not any(name.startswith("integrity.") for name in counters)


# --- the chaos invariant ----------------------------------------------------

class TestCorruptionInvariant:
    def test_signature_includes_the_output_digest(self):
        report = _run(DEFAULT_CONFIG)
        signature = run_signature(report)
        assert signature[-1] == report.result.output_digest

    def test_undetected_corruption_violates(self):
        harness = ChaosHarness(scale=SCALE, fault_count=1)
        baseline = harness.baseline("tpch_q6")
        plan = _silent_nand_plan(baseline)
        outcome = harness.run_plan("tpch_q6", plan)
        names = {violation.name for violation in outcome.violations}
        assert "corruption-detected-before-report" in names
        assert "result-equality" in names

    def test_detected_corruption_does_not_violate(self):
        harness = ChaosHarness(
            system_config=INTEGRITY_ON, scale=SCALE, fault_count=1,
        )
        baseline = harness.baseline("tpch_q6")
        plan = _silent_nand_plan(baseline)
        outcome = harness.run_plan("tpch_q6", plan)
        assert outcome.ok, "; ".join(v.render() for v in outcome.violations)

    def test_loud_faults_keep_matching_the_baseline_signature(self):
        """Recovered loud runs still match — the digest never perturbs
        result-equality for runs whose data stayed clean."""
        harness = ChaosHarness(scale=SCALE, fault_count=1)
        baseline = harness.baseline("tpch_q6")
        plan = FaultPlan(seed=3, specs=(FaultSpec(
            kind=FaultKind.CSE_CRASH,
            at_time=0.5 * baseline.total_seconds,
            duration_s=0.0,
        ),))
        outcome = harness.run_plan("tpch_q6", plan)
        assert outcome.ok, "; ".join(v.render() for v in outcome.violations)

    def test_baseline_satisfies_invariants_with_integrity_on(self):
        workload = get_workload("tpch_q6", scale=SCALE)
        harness = ChaosHarness(
            system_config=INTEGRITY_ON, scale=SCALE, fault_count=1,
        )
        baseline = harness.baseline("tpch_q6")
        assert check_invariants(baseline, baseline, workload.program) == []


# --- the CLI ----------------------------------------------------------------

class TestCli:
    def test_faults_list_prints_every_kind(self, capsys):
        from repro.cli import main

        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for kind in FaultKind:
            assert kind.value in out

    def test_chaos_replay_no_verify_fails_and_sdc_passes(self, capsys):
        from repro.cli import main

        argv = ["chaos", "--workload", "kmeans", "--seed", "5",
                "--fault-count", "3", "--scale", str(SCALE), "--sdc"]
        assert main(argv + ["--no-verify"]) == 1
        out = capsys.readouterr().out
        assert "corruption-detected-before-report" in out
        assert main(argv) == 0
        assert "all invariants held" in capsys.readouterr().out
