"""Every example must at least import and expose a main().

Full example runs take minutes of wall clock (they use paper-scale
inputs); importing them catches broken APIs without the cost.  The
examples' behaviour itself is covered by the experiment tests, which
exercise the same drivers.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert {
            "quickstart", "tpch_analytics", "graph_analytics",
            "adaptive_migration", "multi_tenant", "when_does_isp_pay",
            "plain_python",
        } <= names

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_imports_and_has_main(self, path):
        module = load_module(path)
        assert callable(getattr(module, "main", None)), (
            f"{path.name} must expose a main()"
        )

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_has_module_docstring_with_run_instructions(self, path):
        module = load_module(path)
        assert module.__doc__ and "Run::" in module.__doc__