"""The repro.api facade and the docs/api.md contract stay in sync."""

import importlib
import re
from pathlib import Path

import pytest

import repro
import repro.api

DOCS_API = Path(__file__).resolve().parents[1] / "docs" / "api.md"

#: Every public package/subpackage; each must declare an explicit
#: __all__ whose names all resolve.
PUBLIC_PACKAGES = [
    "repro",
    "repro.analysis",
    "repro.baselines",
    "repro.chaos",
    "repro.faults",
    "repro.fleet",
    "repro.frontend",
    "repro.graph",
    "repro.hw",
    "repro.lang",
    "repro.memory",
    "repro.ml",
    "repro.obs",
    "repro.perfgate",
    "repro.runtime",
    "repro.sim",
    "repro.storage",
    "repro.workloads",
    "repro.workloads.tpch",
]


def documented_symbols():
    """The symbol list inside the facade section's fenced block."""
    text = DOCS_API.read_text(encoding="utf-8")
    match = re.search(
        r"## The `repro\.api` facade.*?```text\n(.*?)```", text, re.DOTALL
    )
    assert match, "docs/api.md lost its repro.api facade section"
    return [line.strip() for line in match.group(1).splitlines() if line.strip()]


class TestFacadeDocsSync:
    def test_docs_match_facade_exactly(self):
        documented = documented_symbols()
        exported = list(repro.api.__all__)
        missing_from_docs = sorted(set(exported) - set(documented))
        missing_from_api = sorted(set(documented) - set(exported))
        assert not missing_from_docs, (
            f"exported by repro.api but undocumented in docs/api.md: "
            f"{missing_from_docs}"
        )
        assert not missing_from_api, (
            f"documented in docs/api.md but not exported by repro.api: "
            f"{missing_from_api}"
        )

    def test_every_documented_symbol_imports(self):
        for name in documented_symbols():
            assert hasattr(repro.api, name), f"repro.api.{name} does not import"

    def test_star_import_covers_all(self):
        namespace = {}
        exec("from repro.api import *", namespace)
        public = {k for k in namespace if not k.startswith("__")}
        assert public == set(repro.api.__all__) - {"__version__"}

    def test_all_is_sorted_and_unique(self):
        names = list(repro.api.__all__)
        assert names == sorted(names)
        assert len(names) == len(set(names))


class TestPackageAllDeclarations:
    @pytest.mark.parametrize("module_name", PUBLIC_PACKAGES)
    def test_package_declares_resolvable_all(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} has no __all__"
        for name in module.__all__:
            assert hasattr(module, name), (
                f"{module_name}.__all__ names {name!r} which does not resolve"
            )


class TestTopLevelExports:
    def test_run_options_and_observability_reachable_from_repro(self):
        assert repro.RunOptions is repro.api.RunOptions
        assert repro.Observability is repro.api.Observability
