"""FTL: logical mapping, out-of-place updates, garbage collection."""

import pytest

from repro.errors import StorageError
from repro.storage.ftl import PageMappingFTL
from repro.storage.nand import FlashArray, FlashGeometry


def make_ftl(blocks: int = 8, pages: int = 8, overprovision: float = 0.25):
    array = FlashArray(FlashGeometry(
        channels=1, blocks_per_channel=blocks, pages_per_block=pages,
        page_bytes=4096,
    ))
    return PageMappingFTL(array, gc_threshold_blocks=2, overprovision_fraction=overprovision)


class TestMapping:
    def test_write_then_read(self):
        ftl = make_ftl()
        ftl.write(0)
        assert ftl.is_mapped(0)
        assert ftl.read(0) == ftl.array.geometry.read_latency_s

    def test_read_unwritten_rejected(self):
        with pytest.raises(StorageError):
            make_ftl().read(0)

    def test_out_of_range_lpn(self):
        ftl = make_ftl()
        with pytest.raises(StorageError):
            ftl.write(ftl.logical_pages)

    def test_update_moves_physical_page(self):
        ftl = make_ftl()
        ftl.write(0)
        first = ftl.physical_of(0)
        ftl.write(0)
        assert ftl.physical_of(0) != first

    def test_logical_space_respects_overprovision(self):
        ftl = make_ftl(overprovision=0.25)
        assert ftl.logical_pages == int(ftl.array.geometry.total_pages * 0.75)


class TestGarbageCollection:
    def test_gc_reclaims_space_under_churn(self):
        ftl = make_ftl(blocks=4, pages=4, overprovision=0.5)
        # Rewrite a small working set far beyond raw capacity: without
        # GC the array would run out of programmable pages.
        for i in range(200):
            ftl.write(i % ftl.logical_pages)
        assert ftl.gc_runs > 0
        assert ftl.array.free_blocks >= 1

    def test_gc_preserves_all_live_mappings(self):
        ftl = make_ftl(blocks=4, pages=4, overprovision=0.5)
        for i in range(200):
            ftl.write(i % ftl.logical_pages)
        # Every logical page must still resolve and read back.
        for lpn in range(ftl.logical_pages):
            if ftl.is_mapped(lpn):
                ftl.read(lpn)

    def test_write_amplification_above_one_under_churn(self):
        ftl = make_ftl(blocks=4, pages=4, overprovision=0.5)
        for i in range(300):
            ftl.write(i % ftl.logical_pages)
        assert ftl.write_amplification() > 1.0

    def test_no_gc_when_space_is_plentiful(self):
        ftl = make_ftl(blocks=16, pages=8, overprovision=0.25)
        for lpn in range(4):
            ftl.write(lpn)
        assert ftl.gc_runs == 0
        assert ftl.write_amplification() == pytest.approx(1.0)

    def test_gc_busy_time_accumulates(self):
        ftl = make_ftl(blocks=4, pages=4, overprovision=0.5)
        for i in range(200):
            ftl.write(i % ftl.logical_pages)
        assert ftl.gc_busy_seconds > 0

    def test_gc_moves_only_valid_pages(self):
        ftl = make_ftl(blocks=4, pages=4, overprovision=0.5)
        for i in range(200):
            ftl.write(i % ftl.logical_pages)
        # Pages moved by GC never exceed total live pages per run.
        assert ftl.gc_pages_moved <= ftl.array.programs


class TestValidation:
    def test_bad_threshold(self):
        array = FlashArray(FlashGeometry(channels=1, blocks_per_channel=2))
        with pytest.raises(StorageError):
            PageMappingFTL(array, gc_threshold_blocks=0)

    def test_bad_overprovision(self):
        array = FlashArray(FlashGeometry(channels=1, blocks_per_channel=2))
        with pytest.raises(StorageError):
            PageMappingFTL(array, overprovision_fraction=1.0)

    def test_write_amplification_zero_when_idle(self):
        assert make_ftl().write_amplification() == 0.0
