"""Runtime monitor triggers and migration mechanics."""

import pytest

from repro.errors import MigrationError
from repro.runtime.dispatch import StatusUpdate
from repro.runtime.migration import migration_cost_estimate, perform_migration
from repro.runtime.monitor import RuntimeMonitor


def update(ipc: float, high_priority: bool = False, chunk: int = 1) -> StatusUpdate:
    return StatusUpdate(
        line_name="scan", chunk=chunk, ipc=ipc, progress=0.5,
        high_priority_pending=high_priority,
    )


class TestMonitorTriggers:
    def test_healthy_ipc_no_action(self, config):
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0)
        decision = monitor.observe(update(2.0))
        assert not decision.reestimate
        assert decision.inferred_availability == pytest.approx(1.0)

    def test_threshold_trigger(self, config):
        # Paper III-D case 2: IPC significantly below the estimate.
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0)
        decision = monitor.observe(update(2.0 * 0.5))
        assert decision.reestimate
        assert "below" in decision.reason
        assert decision.inferred_availability == pytest.approx(0.5)

    def test_decreasing_trend_trigger(self, config):
        # Paper III-D case 1: the rate of instruction throughput is
        # decreasing — even while above the absolute threshold.
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0, trend_window=3)
        assert not monitor.observe(update(2.0)).reestimate
        assert not monitor.observe(update(1.9)).reestimate
        decision = monitor.observe(update(1.8))
        assert decision.reestimate
        assert "decreasing" in decision.reason

    def test_flat_ipc_is_not_a_trend(self, config):
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0, trend_window=3)
        for _ in range(5):
            decision = monitor.observe(update(1.9))
        assert not decision.reestimate

    def test_high_priority_always_triggers(self, config):
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0)
        decision = monitor.observe(update(2.0, high_priority=True))
        assert decision.reestimate
        assert "high-priority" in decision.reason

    def test_reset_clears_history(self, config):
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0, trend_window=2)
        monitor.observe(update(2.0))
        monitor.reset()
        assert monitor.observations == 0
        assert monitor.last_ipc is None

    def test_invalid_construction(self, config):
        with pytest.raises(ValueError):
            RuntimeMonitor(config=config, expected_ipc=0.0)
        with pytest.raises(ValueError):
            RuntimeMonitor(config=config, expected_ipc=1.0, trend_window=1)


class TestReestimation:
    def test_remaining_time_stretches_with_lost_availability(self, config):
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0)
        healthy = monitor.reestimate_remaining_seconds(10.0, 1.0, 1.0)
        degraded = monitor.reestimate_remaining_seconds(10.0, 1.0, 0.1)
        assert healthy == pytest.approx(11.0)
        assert degraded == pytest.approx(101.0)

    def test_access_time_unaffected_by_contention(self, config):
        monitor = RuntimeMonitor(config=config, expected_ipc=2.0)
        assert monitor.reestimate_remaining_seconds(0.0, 5.0, 0.1) == pytest.approx(5.0)


class TestMigrationCost:
    def test_components_add_up(self, config):
        cost = migration_cost_estimate(
            config,
            remaining_host_compute_s=1.0,
            remaining_storage_bytes=config.bw_host_storage,  # 1 s worth
            live_input_bytes=config.bw_remote_access,        # 1 s worth
        )
        fixed = (
            config.compile_overhead_s
            + config.migration_state_cost_s
            + 64 * 1024 / config.bw_d2h
        )
        assert cost == pytest.approx(fixed + 3.0)

    def test_negative_inputs_rejected(self, config):
        with pytest.raises(MigrationError):
            migration_cost_estimate(config, -1.0, 0.0, 0.0)


class TestPerformMigration:
    def test_charges_clock_and_records_event(self, machine, config):
        start = machine.now
        event = perform_migration(
            machine=machine, line_index=1, line_name="crunch", chunk=7,
            reason="IPC collapsed",
            projected_device_seconds=20.0, projected_host_seconds=3.0,
        )
        expected_cost = (
            config.compile_overhead_s
            + config.migration_state_cost_s
            + machine.d2h_link.transfer_time(64 * 1024)
        )
        assert event.cost_seconds == pytest.approx(expected_cost)
        assert machine.now == pytest.approx(start + expected_cost)
        assert event.line_name == "crunch"
        assert event.chunk == 7
        assert event.projected_device_seconds > event.projected_host_seconds
