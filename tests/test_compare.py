"""Result-diffing utility."""

import pytest

from repro.analysis.compare import Change, diff_results, max_relative_change
from repro.errors import ReproError


class TestDiffResults:
    def test_no_change(self):
        tree = {"a": 1.0, "rows": [{"x": 2.0}]}
        assert diff_results(tree, tree) == []

    def test_detects_moved_leaf(self):
        before = {"geomean": 1.33, "rows": [{"speedup": 1.4}]}
        after = {"geomean": 1.40, "rows": [{"speedup": 1.4}]}
        changes = diff_results(before, after)
        assert len(changes) == 1
        assert changes[0].path == "geomean"
        assert changes[0].relative == pytest.approx(0.0526, rel=0.01)

    def test_threshold_filters_noise(self):
        before = {"a": 1.000, "b": 1.0}
        after = {"a": 1.001, "b": 2.0}
        changes = diff_results(before, after, threshold=0.05)
        assert [c.path for c in changes] == ["b"]

    def test_sorted_by_magnitude(self):
        before = {"a": 1.0, "b": 1.0}
        after = {"a": 1.1, "b": 3.0}
        changes = diff_results(before, after)
        assert changes[0].path == "b"

    def test_structure_mismatch_rejected(self):
        with pytest.raises(ReproError, match="differ"):
            diff_results({"a": 1.0}, {"b": 1.0})

    def test_strings_and_bools_ignored(self):
        before = {"name": "x", "flag": True, "v": 1.0}
        after = {"name": "y", "flag": False, "v": 1.0}
        assert diff_results(before, after) == []

    def test_zero_to_nonzero_is_infinite(self):
        changes = diff_results({"v": 0.0}, {"v": 1.0})
        assert changes[0].relative == float("inf")

    def test_negative_threshold_rejected(self):
        with pytest.raises(ReproError):
            diff_results({}, {}, threshold=-1)

    def test_max_relative_change(self):
        before = {"a": 2.0, "b": 10.0}
        after = {"a": 2.2, "b": 10.0}
        assert max_relative_change(before, after) == pytest.approx(0.1)
        assert max_relative_change(before, before) == 0.0

    def test_change_str(self):
        change = Change(path="geomean", before=1.33, after=1.40)
        assert "geomean" in str(change) and "%" in str(change)

    def test_round_trip_with_export(self):
        from repro.analysis import export
        from repro.analysis.experiments import Table1Row
        import json

        rows = [Table1Row("a", 1.0, 1.0, 2)]
        tree = json.loads(export.dumps(rows))
        assert diff_results(tree, tree) == []
