"""Odds and ends of the public API surface."""

import numpy as np
import pytest

from repro.runtime.executor import ExecutionResult, LineTiming
from repro.runtime.planner import CSD, HOST, Plan
from repro.workloads import get_workload
from repro.workloads.tpch.datagen import generate_lineitem
from repro.workloads.tpch.queries import q1_reference, summarize


class TestPlanAccessors:
    def make_plan(self):
        return Plan(assignments=[CSD, HOST], t_host=2.0, t_csd=1.5)

    def test_location_of(self):
        plan = self.make_plan()
        assert plan.location_of(0) == CSD
        assert plan.location_of(1) == HOST

    def test_uses_csd(self):
        assert self.make_plan().uses_csd
        assert not Plan(assignments=[HOST], t_host=1.0, t_csd=1.0).uses_csd

    def test_projected_speedup_guards_zero(self):
        plan = Plan(assignments=[HOST], t_host=1.0, t_csd=0.0)
        assert plan.projected_speedup == 1.0


class TestExecutionResultAccessors:
    def make_result(self):
        return ExecutionResult(
            program_name="p",
            total_seconds=1.0,
            line_timings=[LineTiming(0, "scan", CSD, CSD, 1.0)],
        )

    def test_seconds_for(self):
        assert self.make_result().seconds_for("scan") == 1.0

    def test_seconds_for_missing(self):
        with pytest.raises(KeyError):
            self.make_result().seconds_for("nope")

    def test_migrated_false_without_events(self):
        assert not self.make_result().migrated


class TestTpchSummarize:
    def test_renders_grouped_table(self):
        lineitem = generate_lineitem(20_000)
        text = summarize(q1_reference(lineitem))
        lines = text.splitlines()
        assert len(lines) == 7  # header + 6 groups
        assert "sum_qty" in lines[0]

    def test_handles_mixed_types(self):
        table = {
            "key": np.array([1, 2]),
            "value": np.array([1.5, 2.5]),
        }
        text = summarize(table)
        assert "1.50" in text


class TestWorkloadRepr:
    def test_repr_mentions_name_and_size(self):
        workload = get_workload("tpch_q6", scale=2**-7)
        assert "tpch_q6" in repr(workload)

    def test_statement_repr(self):
        workload = get_workload("tpch_q6", scale=2**-7)
        assert "scan_filter_q6" in repr(workload.program[0])

    def test_program_repr(self):
        workload = get_workload("tpch_q6", scale=2**-7)
        assert "lines=2" in repr(workload.program)

    def test_dataset_repr(self):
        workload = get_workload("tpch_q6", scale=2**-7)
        assert "lineitem" in repr(workload.dataset)
