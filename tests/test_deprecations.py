"""Deprecation shims warn exactly once, with actionable messages."""

import warnings

import pytest

from repro._deprecations import (
    reset_deprecation_registry,
    seen_deprecations,
    warn_once,
)
from repro.runtime.activepy import ActivePy, RunOptions
from repro.workloads import get_workload

_SCALE = 2 ** -7


class TestWarnOnce:
    def test_first_call_warns_later_calls_do_not(self):
        with pytest.warns(DeprecationWarning, match="old thing"):
            assert warn_once("test:key", "old thing is deprecated")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert not warn_once("test:key", "old thing is deprecated")

    def test_distinct_keys_warn_independently(self):
        with pytest.warns(DeprecationWarning):
            warn_once("test:a", "a is deprecated")
        with pytest.warns(DeprecationWarning):
            warn_once("test:b", "b is deprecated")
        assert {"test:a", "test:b"} <= set(seen_deprecations())

    def test_reset_rearms_the_shim(self):
        warn_once("test:key", "old thing is deprecated")
        reset_deprecation_registry()
        with pytest.warns(DeprecationWarning):
            assert warn_once("test:key", "old thing is deprecated")


class TestActivePyRunShims:
    def _run(self, **kwargs):
        workload = get_workload("tpch_q6", scale=_SCALE)
        return ActivePy().run(workload.program, workload.dataset, **kwargs)

    def test_trace_kwarg_warns_once_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            report = self._run(trace=True)
        assert report.timeline is not None
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            self._run(trace=True)  # second use: silent

    def test_progress_triggers_kwarg_warns_and_still_works(self):
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            self._run(progress_triggers=((0.5, 0.9),))

    def test_options_path_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = self._run(options=RunOptions(trace=True))
        assert report.timeline is not None


class TestSimShims:
    """`repro.sim.Event` / `EventQueue` import through a warn-once shim."""

    @pytest.mark.parametrize("name", ["Event", "EventQueue"])
    def test_deprecated_name_warns_once_and_resolves(self, name):
        import repro.sim
        import repro.sim.engine as engine

        reset_deprecation_registry()
        with pytest.warns(DeprecationWarning, match=f"repro.sim.{name} is deprecated"):
            shimmed = getattr(repro.sim, name)
        assert shimmed is getattr(engine, name)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert getattr(repro.sim, name) is shimmed  # second access: silent

    def test_legacy_event_queue_still_functional(self):
        import repro.sim

        reset_deprecation_registry()
        with pytest.warns(DeprecationWarning):
            queue = repro.sim.EventQueue()
        fired = []
        queue.push(2.0, lambda: fired.append("b"))
        queue.push(1.0, lambda: fired.append("a"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b"]

    def test_internal_import_path_stays_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.sim.engine import Event, EventQueue  # noqa: F401

    def test_unknown_attribute_still_raises(self):
        import repro.sim

        with pytest.raises(AttributeError):
            repro.sim.does_not_exist


class TestChaosOutcomeShim:
    def _outcome(self):
        from repro.chaos import ChaosHarness

        harness = ChaosHarness(scale=2 ** -7, fault_count=1)
        return harness.run_seed("tpch_q6", 7)

    def test_faults_injected_warns_once_and_aliases(self):
        outcome = self._outcome()
        with pytest.warns(DeprecationWarning, match="fault_event_count"):
            legacy = outcome.faults_injected
        assert legacy == outcome.fault_event_count
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert outcome.faults_injected == outcome.fault_event_count
