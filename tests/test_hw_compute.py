"""Compute-unit models: timing, availability, performance counters."""

import pytest

from repro.errors import HardwareError
from repro.hw.compute import ComputeUnit, PerfCounters
from repro.sim.clock import SimClock


def make_unit(ips: float = 8e9, clock_hz: float = 4e9) -> ComputeUnit:
    return ComputeUnit("host", ips=ips, clock=SimClock(), clock_hz=clock_hz)


class TestExecution:
    def test_execution_time(self):
        unit = make_unit(ips=2e9)
        assert unit.execution_time(1e9) == pytest.approx(0.5)

    def test_execute_advances_clock(self):
        unit = make_unit(ips=4e9)
        elapsed = unit.execute(2e9)
        assert elapsed == pytest.approx(0.5)
        assert unit.clock.now == pytest.approx(0.5)

    def test_zero_instructions(self):
        unit = make_unit()
        assert unit.execute(0) == 0.0

    def test_negative_instructions_rejected(self):
        with pytest.raises(HardwareError):
            make_unit().execute(-1)

    def test_invalid_construction(self):
        with pytest.raises(HardwareError):
            ComputeUnit("bad", ips=0, clock=SimClock())
        with pytest.raises(HardwareError):
            ComputeUnit("bad", ips=1e9, clock=SimClock(), clock_hz=-1)


class TestAvailability:
    def test_throttling_stretches_time(self):
        unit = make_unit(ips=4e9)
        unit.set_availability(0.5)
        assert unit.execution_time(2e9) == pytest.approx(1.0)

    def test_effective_ips(self):
        unit = make_unit(ips=4e9)
        unit.set_availability(0.25)
        assert unit.effective_ips == pytest.approx(1e9)

    def test_bounds(self):
        unit = make_unit()
        with pytest.raises(HardwareError):
            unit.set_availability(0.0)
        with pytest.raises(HardwareError):
            unit.set_availability(1.5)

    def test_full_availability_is_default(self):
        assert make_unit().availability == 1.0


class TestPerfCounters:
    def test_ipc_at_full_availability(self):
        unit = make_unit(ips=8e9, clock_hz=4e9)
        unit.execute(8e9)
        assert unit.counters.ipc() == pytest.approx(2.0)
        assert unit.counters.ipc() == pytest.approx(unit.expected_ipc())

    def test_ipc_degrades_with_availability(self):
        # Contention burns wall cycles without retiring foreground
        # instructions: the observed IPC is the congestion signal the
        # ActivePy monitor keys on (paper III-D).
        unit = make_unit(ips=8e9, clock_hz=4e9)
        unit.set_availability(0.5)
        unit.execute(8e9)
        assert unit.counters.ipc() == pytest.approx(unit.expected_ipc() * 0.5)

    def test_counters_accumulate(self):
        unit = make_unit()
        unit.execute(1e9)
        unit.execute(1e9)
        assert unit.counters.retired_instructions == pytest.approx(2e9)
        assert unit.counters.tasks_completed == 2

    def test_reset(self):
        unit = make_unit()
        unit.execute(1e9)
        unit.counters.reset()
        assert unit.counters.retired_instructions == 0
        assert unit.counters.ipc() == 0.0

    def test_fresh_counters_ipc_zero(self):
        assert PerfCounters().ipc() == 0.0
