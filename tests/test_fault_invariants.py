"""Property-style sweep: every workload survives every fault kind.

For each registered workload and each fault kind, a seeded single-fault
run must end with a result whose ``degraded`` flag is a bool — an
unhandled exception is never a legal outcome — and must honour the
chaos invariants (work conservation, clock monotonicity, legal
degradation) against its fault-free baseline.
"""

from __future__ import annotations

import pytest

import dataclasses

from repro.chaos import ChaosHarness, check_invariants
from repro.config import DEFAULT_CONFIG
from repro.faults import FaultKind, FaultPlan
from repro.faults.spec import FLEET_KINDS, SILENT_KINDS
from repro.workloads import get_workload, workload_names

#: Tiny inputs: a full (workload x kind) sweep stays in seconds.
SCALE = 2 ** -7

_HARNESS = ChaosHarness(scale=SCALE, fault_count=1)

#: Silent-corruption kinds are only survivable with the integrity layer
#: on — that pairing is the product contract (chaos --sdc enables both).
_INTEGRITY_HARNESS = ChaosHarness(
    system_config=dataclasses.replace(DEFAULT_CONFIG, integrity_enabled=True),
    scale=SCALE,
    fault_count=1,
)


def _harness_for(kind: FaultKind) -> ChaosHarness:
    return _INTEGRITY_HARNESS if kind in SILENT_KINDS else _HARNESS


def _single_fault_plan(workload_name: str, kind: FaultKind, seed: int) -> FaultPlan:
    harness = _harness_for(kind)
    baseline = harness.baseline(workload_name)
    offset = 0.8 * baseline.overhead_seconds
    return FaultPlan.random(
        seed=seed,
        horizon_s=baseline.total_seconds - offset,
        count=1,
        kinds=(kind,),
        offset_s=offset,
    )


#: Fleet-level kinds are interpreted by the repro.fleet scheduler; the
#: single-machine injector refuses to arm them (tested in test_fleet),
#: so the machine-level survival sweep excludes them.
_MACHINE_KINDS = [kind for kind in FaultKind if kind not in FLEET_KINDS]


@pytest.mark.parametrize("kind", _MACHINE_KINDS, ids=lambda kind: kind.value)
@pytest.mark.parametrize("workload_name", workload_names())
def test_single_fault_never_escapes(workload_name, kind):
    plan = _single_fault_plan(workload_name, kind, seed=1234)
    outcome = _harness_for(kind).run_plan(workload_name, plan)
    # run_plan converts an unhandled exception into a violation; any
    # violation here is a bug in the fault-tolerant runtime
    assert outcome.ok, "; ".join(v.render() for v in outcome.violations)
    assert outcome.degraded in (True, False)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_multi_fault_seeds_hold_invariants(seed):
    """A few denser plans on one representative workload."""
    harness = ChaosHarness(scale=SCALE, fault_count=4)
    outcome = harness.run_seed("tpch_q6", seed)
    assert outcome.ok, "; ".join(v.render() for v in outcome.violations)


def test_baseline_reports_satisfy_their_own_invariants():
    for name in workload_names():
        baseline = _HARNESS.baseline(name)
        program = get_workload(name, scale=SCALE).program
        assert check_invariants(baseline, baseline, program) == []
