"""The reproduction self-check against pinned expectations."""

import pytest

from repro.analysis.expected import EXPECTED_SELFCHECK
from repro.analysis.selfcheck import (
    SELFCHECK_WORKLOADS,
    measure_selfcheck,
    run_selfcheck,
)


@pytest.fixture(scope="module")
def selfcheck():
    return run_selfcheck()


class TestSelfCheck:
    def test_passes_on_the_calibrated_platform(self, selfcheck):
        assert selfcheck.ok, selfcheck.drifted

    def test_measures_every_pinned_quantity(self, selfcheck):
        assert set(selfcheck.measured) == set(EXPECTED_SELFCHECK)

    def test_break_even_near_analytic_value(self, selfcheck):
        # docs/calibration.md derives ~4.1 instr/byte by hand.
        assert selfcheck.measured["config.break_even_instr_per_byte"] == (
            pytest.approx(4.11, abs=0.01)
        )

    def test_covers_scan_csr_and_compute_workloads(self):
        assert set(SELFCHECK_WORKLOADS) == {"tpch_q6", "pagerank", "mixedgemm"}

    def test_render_mentions_status(self, selfcheck):
        text = selfcheck.render()
        assert "PASS" in text
        assert "tpch_q6.activepy_speedup" in text

    def test_detects_injected_drift(self, selfcheck, monkeypatch):
        drifted = dict(selfcheck.measured)
        drifted["tpch_q6.activepy_speedup"] *= 1.5
        monkeypatch.setattr(
            "repro.analysis.selfcheck.measure_selfcheck", lambda: drifted
        )
        result = run_selfcheck()
        assert not result.ok
        assert any("tpch_q6.activepy_speedup" in d for d in result.drifted)

    def test_measurement_is_deterministic(self, selfcheck):
        again = measure_selfcheck()
        assert again == selfcheck.measured
