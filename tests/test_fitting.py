"""Complexity-curve fitting: the paper's five-law predictor."""

import math

import numpy as np
import pytest

from repro.errors import FittingError
from repro.runtime.fitting import (
    ComplexityCurve,
    FittedCurve,
    fit_curve,
    prediction_error,
)

NS = [1024.0, 2048.0, 4096.0, 8192.0]  # the paper's 2^-10..2^-7 shape


class TestGrowthTerms:
    def test_o1(self):
        assert ComplexityCurve.O1.growth(12345) == 1.0

    def test_nlogn_at_one(self):
        assert ComplexityCurve.NLOGN.growth(1.0) == 0.0

    def test_n3(self):
        assert ComplexityCurve.N3.growth(10) == 1000

    def test_negative_rejected(self):
        with pytest.raises(FittingError):
            ComplexityCurve.N.growth(-1)


class TestExactRecovery:
    """Each generating law must be recovered and extrapolated exactly."""

    @pytest.mark.parametrize("curve,fn", [
        (ComplexityCurve.O1, lambda n: 42.0),
        (ComplexityCurve.N, lambda n: 3.0 * n + 10),
        (ComplexityCurve.NLOGN, lambda n: 0.5 * n * math.log2(n)),
        (ComplexityCurve.N2, lambda n: 2e-3 * n * n),
        (ComplexityCurve.N3, lambda n: 1e-6 * n**3),
    ])
    def test_recovers_generating_law(self, curve, fn):
        fit = fit_curve(NS, [fn(n) for n in NS])
        assert fit.curve is curve
        full = 2**20
        assert fit.predict(full) == pytest.approx(fn(full), rel=1e-6)


class TestSelectionBehaviour:
    def test_prefers_simplest_on_ties(self):
        # All-equal observations fit O(1) exactly; higher curves also
        # fit with slope 0, but the simplest law must win.
        fit = fit_curve(NS, [5.0, 5.0, 5.0, 5.0])
        assert fit.curve is ComplexityCurve.O1

    def test_all_zero_predicts_zero(self):
        fit = fit_curve(NS, [0.0, 0.0, 0.0, 0.0])
        assert fit.predict(1e9) == 0.0

    def test_never_predicts_negative(self):
        # A decreasing trend must not extrapolate below zero.
        fit = fit_curve(NS, [100.0, 90.0, 95.0, 85.0])
        assert fit.predict(1e9) >= 0.0

    def test_noisy_linear_still_linearish(self):
        rng = np.random.default_rng(3)
        ys = [2.0 * n * (1 + rng.normal(0, 0.01)) for n in NS]
        fit = fit_curve(NS, ys)
        assert fit.curve in (ComplexityCurve.N, ComplexityCurve.NLOGN)
        assert fit.predict(2**20) == pytest.approx(2.0 * 2**20, rel=0.1)


class TestValidation:
    def test_size_mismatch(self):
        with pytest.raises(FittingError):
            fit_curve([1, 2], [1.0])

    def test_too_few_points(self):
        with pytest.raises(FittingError):
            fit_curve([1024.0], [1.0])

    def test_identical_sizes(self):
        with pytest.raises(FittingError):
            fit_curve([100.0, 100.0], [1.0, 2.0])

    def test_negative_observation(self):
        with pytest.raises(FittingError):
            fit_curve(NS, [1.0, -1.0, 1.0, 1.0])

    def test_non_positive_size(self):
        with pytest.raises(FittingError):
            fit_curve([0.0, 1.0], [1.0, 2.0])


class TestPredictionError:
    def test_exact_hit(self):
        assert prediction_error(10.0, 10.0) == 0.0

    def test_overestimate(self):
        assert prediction_error(24.1, 10.0) == pytest.approx(1.41)

    def test_zero_actual_zero_predicted(self):
        assert prediction_error(0.0, 0.0) == 0.0

    def test_zero_actual_nonzero_predicted(self):
        assert prediction_error(1.0, 0.0) == math.inf


class TestFittedCurve:
    def test_predict_clamps_at_zero(self):
        fit = FittedCurve(ComplexityCurve.N, coefficient=1.0, intercept=-1e9,
                          relative_residual=0.0)
        assert fit.predict(10) == 0.0
