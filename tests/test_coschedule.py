"""Co-scheduling two programs on one CSD."""

import pytest

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.runtime.coschedule import (
    BusyWindow,
    coschedule_pair,
    csd_busy_windows,
)
from repro.runtime.activepy import ActivePy
from repro.workloads import get_workload

from .conftest import make_toy_dataset, make_toy_program


@pytest.fixture(scope="module")
def pair_result():
    q6 = get_workload("tpch_q6")
    q14 = get_workload("tpch_q14")
    return coschedule_pair(
        (q6.program, q6.dataset),
        (q14.program, q14.dataset),
    )


class TestBusyWindows:
    def test_extracted_from_traced_run(self, config):
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), trace=True
        )
        windows = csd_busy_windows(report)
        assert windows
        assert all(w.duration > 0 for w in windows)
        assert windows == sorted(windows, key=lambda w: w.start)

    def test_requires_trace(self, config):
        report = ActivePy(config).run(make_toy_program(), make_toy_dataset())
        with pytest.raises(ReproError):
            csd_busy_windows(report)

    def test_window_duration(self):
        assert BusyWindow(1.0, 3.5).duration == 2.5


class TestCoschedulePair:
    def test_colocation_costs_both_tenants_something(self, pair_result):
        assert pair_result.slowdown(0) >= 1.0
        assert pair_result.slowdown(1) >= 1.0

    def test_colocation_cost_is_bounded(self, pair_result):
        # Fair sharing at 50% cannot more than roughly double the CSD
        # portion; with migration available the end-to-end hit stays
        # well under 2x.
        assert pair_result.slowdown(0) < 2.0
        assert pair_result.slowdown(1) < 2.0

    def test_runs_complete_and_plans_offload(self, pair_result):
        for report in pair_result.shared:
            assert report.result.total_seconds > 0
            assert report.plan.uses_csd

    def test_migration_counts_exposed(self, pair_result):
        a, b = pair_result.migrations
        assert a >= 0 and b >= 0

    def test_invalid_share_rejected(self):
        workload = get_workload("tpch_q6")
        with pytest.raises(ReproError):
            coschedule_pair(
                (workload.program, workload.dataset),
                (workload.program, workload.dataset),
                shared_availability=1.0,
            )

    def test_starved_share_triggers_migration(self):
        # At a 5% share, staying on the device is hopeless: at least
        # one tenant must migrate.
        q6 = get_workload("tpch_q6")
        q1 = get_workload("tpch_q1")
        result = coschedule_pair(
            (q6.program, q6.dataset),
            (q1.program, q1.dataset),
            shared_availability=0.05,
        )
        assert sum(result.migrations) >= 1
