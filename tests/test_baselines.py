"""Baselines: the language ladder and the programmer-directed oracle."""

import pytest

from repro.errors import PlanningError
from repro.hw.topology import build_machine
from repro.runtime.planner import CSD, HOST
from repro.baselines import (
    StaticIspBaseline,
    ground_truth_estimates,
    run_c_baseline,
    run_cython_baseline,
    run_python_baseline,
)

from .conftest import make_toy_dataset, make_toy_program


class TestLanguageLadder:
    def test_python_slower_than_cython_slower_than_c(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        c = run_c_baseline(program, dataset, config=config)
        cython = run_cython_baseline(program, dataset, config=config)
        python = run_python_baseline(program, dataset, config=config)
        assert c.total_seconds < cython.total_seconds < python.total_seconds

    def test_python_overhead_near_41_percent(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        c = run_c_baseline(program, dataset, config=config)
        python = run_python_baseline(program, dataset, config=config)
        assert python.total_seconds / c.total_seconds == pytest.approx(1.41, rel=0.02)

    def test_baselines_never_touch_the_csd(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        machine = build_machine(config)
        run_c_baseline(program, dataset, config=config, machine=machine)
        assert machine.csd.cse.counters.retired_instructions == 0


class TestGroundTruthEstimates:
    def test_host_time_includes_storage_access(self, config):
        program = make_toy_program()
        estimates = ground_truth_estimates(program, 1_000_000, config)
        scan = estimates[0]
        assert scan.ct_host == pytest.approx(
            scan.compute_host + scan.d_storage / config.bw_host_storage
        )

    def test_availability_scales_device_time(self, config):
        program = make_toy_program()
        full = ground_truth_estimates(program, 1_000_000, config)
        half = ground_truth_estimates(
            program, 1_000_000, config, cse_availability=0.5
        )
        scan_full, scan_half = full[0], half[0]
        compute_full = scan_full.ct_device - scan_full.d_storage / config.bw_internal
        compute_half = scan_half.ct_device - scan_half.d_storage / config.bw_internal
        assert compute_half == pytest.approx(2 * compute_full)

    def test_validation(self, config):
        program = make_toy_program()
        with pytest.raises(PlanningError):
            ground_truth_estimates(program, 0, config)
        with pytest.raises(PlanningError):
            ground_truth_estimates(program, 100, config, cse_availability=0.0)


class TestStaticIspBaseline:
    def test_tunes_to_the_reducing_scan(self, config):
        program = make_toy_program()
        baseline = StaticIspBaseline(config)
        plan = baseline.tune(program, 2_000_000)
        assert plan.assignments[0] == CSD  # the scan always wins
        assert plan.t_csd < plan.t_host

    def test_run_executes_frozen_plan_under_degradation(self, config):
        program = make_toy_program()
        dataset = make_toy_dataset()
        baseline = StaticIspBaseline(config)
        plan = baseline.tune(program, dataset.n_records)

        healthy = baseline.run(program, dataset, plan=plan)
        degraded_machine = build_machine(config)
        degraded_machine.csd.cse.set_availability(0.1)
        degraded = baseline.run(
            program, dataset, machine=degraded_machine, plan=plan
        )
        # No migration, no re-planning: the frozen plan pays full price.
        assert degraded.total_seconds > healthy.total_seconds
        assert not degraded.migrated

    def test_plan_is_optimal_among_all_assignments(self, config):
        # Cross-check the exhaustive search against a brute-force
        # enumeration done independently here.
        import itertools

        from repro.runtime.planner import projected_time

        program = make_toy_program()
        estimates = ground_truth_estimates(program, 2_000_000, config)
        plan = StaticIspBaseline(config).tune(program, 2_000_000)
        best = min(
            projected_time(combo, estimates, config)
            for combo in itertools.product((HOST, CSD), repeat=len(estimates))
        )
        assert plan.t_csd == pytest.approx(best)
