"""Fault-tolerant dispatch: deadlines, retries, idempotence, back-pressure."""

import pytest

from repro.errors import DeadlineError, DeviceLostError, DispatchError
from repro.faults import FaultLog
from repro.runtime.dispatch import CallQueueDispatcher
from repro.storage.nvme import Completion


def make_dispatcher(machine):
    log = FaultLog()
    return CallQueueDispatcher(machine, fault_log=log), log


class TestHappyPath:
    def test_invoke_and_reap_untouched_by_fault_layer(self, machine):
        dispatcher, log = make_dispatcher(machine)
        before = machine.now
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        dispatcher.complete(command_id)
        completion = dispatcher.reap_completion(command_id)
        assert completion.status == "ok"
        # Only the doorbell write cost time — no recovery waits.
        assert machine.now == before + machine.d2h_link.latency_s
        assert log.events == []
        assert dispatcher.retries == 0


class TestDeadlineRetries:
    def test_lost_completion_recovered_by_retry(self, machine):
        dispatcher, log = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        machine.csd.queue_pair.cq.arm_loss(1)
        dispatcher.complete(command_id)  # swallowed by the armed loss
        before = machine.now
        completion = dispatcher.reap_completion(command_id)
        assert completion.status == "ok"
        # One full deadline window elapsed before the retry re-posted.
        assert machine.now >= before + machine.config.command_deadline_s
        assert dispatcher.retries == 1
        assert log.actions() == ["retry"]

    def test_repeated_loss_exhausts_retries(self, machine):
        config = machine.config
        dispatcher, log = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        # Swallow the original and every retry's repost.
        machine.csd.queue_pair.cq.arm_loss(1 + config.command_max_retries)
        dispatcher.complete(command_id)
        with pytest.raises(DeviceLostError):
            dispatcher.reap_completion(command_id)
        assert log.actions().count("retry") == config.command_max_retries
        assert log.actions()[-1] == "device-dead"

    def test_retry_does_not_repost_for_dead_device(self, machine):
        dispatcher, _ = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        machine.csd.crash_cse()  # completion never comes, no repost either
        with pytest.raises(DeviceLostError):
            dispatcher.reap_completion(command_id)
        assert machine.csd.queue_pair.cq.is_empty

    def test_backoff_waits_are_sim_time(self, machine):
        config = machine.config
        dispatcher, _ = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        machine.csd.queue_pair.cq.arm_loss(1)
        dispatcher.complete(command_id)
        before = machine.now
        dispatcher.reap_completion(command_id)
        # One deadline window of backoff steps, then the retry landed.
        assert machine.now == pytest.approx(
            before + config.command_deadline_s, abs=config.retry_backoff_base_s
        )


class TestDuplicateIdempotence:
    def test_late_completion_after_retry_is_dropped(self, machine):
        config = machine.config
        dispatcher, log = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        # The original completion is posted but arrives later than the
        # command deadline: the host retries first, then sees both.
        machine.csd.queue_pair.cq.arm_delay(config.command_deadline_s * 1.5)
        dispatcher.complete(command_id)
        completion = dispatcher.reap_completion(command_id)
        assert completion.status == "ok"
        assert dispatcher.retries >= 1
        # Whichever copy surfaced second was dropped, not double-counted.
        remaining = machine.csd.queue_pair.cq.drain()
        duplicate_ids = [c.command_id for c in remaining]
        assert duplicate_ids in ([], [command_id])
        if duplicate_ids:
            machine.csd.queue_pair.cq.post(remaining[0])
            assert dispatcher._try_reap(999) is None  # dropped as duplicate
            assert dispatcher.duplicates_dropped == 1
            assert "duplicate-dropped" in log.actions()

    def test_abandoned_command_completion_is_dropped(self, machine):
        dispatcher, log = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        dispatcher.abandon(command_id)
        dispatcher.complete(command_id)  # reset device replaying its queue
        assert dispatcher._try_reap(command_id + 1) is None
        assert dispatcher.duplicates_dropped == 1
        assert "duplicate-dropped" in log.actions()
        assert machine.csd.queue_pair.cq.is_empty

    def test_mismatched_completion_still_raises(self, machine):
        dispatcher, _ = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        machine.csd.queue_pair.cq.post(Completion(command_id=777, status="ok"))
        with pytest.raises(DispatchError):
            dispatcher.reap_completion(command_id)


class TestQueueFullBackPressure:
    def _fill_submission_queue(self, machine):
        sq = machine.csd.queue_pair.sq
        while not sq.is_full:
            sq.submit(opcode="noop")
        return sq

    def test_blocks_until_device_drains_a_slot(self, machine):
        config = machine.config
        sq = self._fill_submission_queue(machine)
        # The device wakes up and drains its backlog shortly after the
        # host starts waiting.
        free_at = machine.now + config.retry_backoff_base_s * 2

        def drain_backlog():
            while not sq.is_empty:
                sq.fetch()

        machine.simulator.schedule_at(free_at, drain_backlog, label="device-fetch")
        dispatcher, log = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        assert command_id >= 0
        assert dispatcher.backpressure_waits >= 1
        assert machine.now >= free_at
        assert "queue-space-acquired" in log.actions()

    def test_bounded_wait_then_dispatch_error(self, machine):
        config = machine.config
        self._fill_submission_queue(machine)
        dispatcher, log = make_dispatcher(machine)
        before = machine.now
        with pytest.raises(DispatchError):
            dispatcher.invoke("scan", binary_address=0x1000)
        assert machine.now == pytest.approx(
            before + config.queue_full_wait_s, rel=1e-9
        )
        assert log.actions()[-1] == "queue-full-timeout"

    def test_no_wait_when_space_exists(self, machine):
        dispatcher, log = make_dispatcher(machine)
        before = machine.now
        dispatcher.invoke("scan", binary_address=0x1000)
        assert machine.now == before + machine.d2h_link.latency_s
        assert dispatcher.backpressure_waits == 0
        assert log.events == []


class TestQueueStall:
    def test_short_stall_waited_out(self, machine):
        config = machine.config
        stall_until = machine.now + config.command_deadline_s / 2
        machine.csd.queue_pair.stall(stall_until)
        dispatcher, log = make_dispatcher(machine)
        dispatcher.invoke("scan", binary_address=0x1000)
        assert machine.now >= stall_until
        assert "stall-wait" in log.actions()

    def test_long_stall_exceeds_deadline(self, machine):
        config = machine.config
        machine.csd.queue_pair.stall(machine.now + config.command_deadline_s * 3)
        dispatcher, log = make_dispatcher(machine)
        with pytest.raises(DeadlineError):
            dispatcher.invoke("scan", binary_address=0x1000)
        assert log.actions() == ["deadline-exceeded"]

    def test_stalled_queue_hides_completions(self, machine):
        config = machine.config
        dispatcher, _ = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        dispatcher.complete(command_id)
        stall_until = machine.now + config.retry_backoff_base_s * 3
        machine.csd.queue_pair.stall(stall_until)
        assert dispatcher._try_reap(command_id) is None
        completion = dispatcher.reap_completion(command_id)
        assert completion.status == "ok"
        assert machine.now >= stall_until


class TestStatusPathUnaffected:
    def test_status_updates_flow_during_recovery_bookkeeping(self, machine):
        from repro.runtime.dispatch import StatusUpdate

        dispatcher, _ = make_dispatcher(machine)
        command_id = dispatcher.invoke("scan", binary_address=0x1000)
        dispatcher.post_status(StatusUpdate(
            line_name="scan", chunk=0, ipc=1.0, progress=0.5,
            high_priority_pending=False,
        ))
        dispatcher.complete(command_id)
        updates = dispatcher.drain_status()
        assert len(updates) == 1
        # The final completion posted before drain_status was retained.
        assert dispatcher.reap_completion(command_id).status == "ok"
