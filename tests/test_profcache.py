"""The profile/plan cache: keys, invalidation, bit-identical replay."""

import dataclasses
import json
import multiprocessing
from pathlib import Path

import pytest

from repro.config import DEFAULT_CONFIG
from repro.obs import Observability
from repro.runtime.activepy import ActivePy, RunOptions
from repro.runtime.fitting import ComplexityCurve, FittedCurve
from repro.runtime.profcache import ProfileCache, default_cache
from repro.runtime.sampling import LineFits, SampleSeries, SamplingReport
from repro.workloads import get_workload

from .conftest import make_toy_dataset, make_toy_program

#: The chaos-campaign rotation: diverse plan shapes, cheap at 2**-8.
ROTATION = ("tpch_q6", "kmeans", "blackscholes", "pagerank")
SCALE = 2 ** -8


@pytest.fixture
def cache(tmp_path) -> ProfileCache:
    return ProfileCache(tmp_path / "cache")


def _strip_profcache(snapshot):
    """Metric snapshot minus the cache's own counters.

    Cache hit/miss counts legitimately differ warm vs. cold; every
    other metric must not.
    """
    trimmed = dict(snapshot)
    trimmed["counters"] = {
        name: value
        for name, value in snapshot["counters"].items()
        if not name.startswith("profcache.")
    }
    return trimmed


class TestKeying:
    def test_same_run_same_key(self, cache):
        program, dataset = make_toy_program(), make_toy_dataset()
        key1 = cache.key_for(program, dataset, DEFAULT_CONFIG)
        key2 = cache.key_for(make_toy_program(), make_toy_dataset(),
                             DEFAULT_CONFIG)
        assert key1 is not None
        assert key1 == key2

    def test_program_edit_busts_key(self, cache):
        dataset = make_toy_dataset()
        base = cache.key_for(make_toy_program(), dataset, DEFAULT_CONFIG)
        # A changed cost annotation is a program edit: same structure,
        # different plan inputs.
        edited = cache.key_for(
            make_toy_program(scan_instr=41.0), dataset, DEFAULT_CONFIG
        )
        assert base != edited

    def test_kernel_source_edit_busts_key(self, cache):
        from repro.lang.program import Program, Statement, per_record

        def build(kernel):
            return Program("toy2", [Statement(
                "scan", kernel,
                instructions=per_record(10.0),
                output_bytes=per_record(4.0),
                storage_bytes=per_record(64.0),
            )])

        def k_v1(p):
            return {"y": p["x"] * 2.0}

        def k_v2(p):
            return {"y": p["x"] * 3.0}

        dataset = make_toy_dataset()
        assert (cache.key_for(build(k_v1), dataset, DEFAULT_CONFIG)
                != cache.key_for(build(k_v2), dataset, DEFAULT_CONFIG))

    def test_workload_config_busts_key(self, cache):
        program = make_toy_program()
        base = cache.key_for(program, make_toy_dataset(), DEFAULT_CONFIG)
        resized = cache.key_for(
            program, make_toy_dataset(n_records=10_000_001), DEFAULT_CONFIG
        )
        assert base != resized

    def test_machine_config_busts_key(self, cache):
        program, dataset = make_toy_program(), make_toy_dataset()
        base = cache.key_for(program, dataset, DEFAULT_CONFIG)
        slower = dataclasses.replace(
            DEFAULT_CONFIG, cse_ips=DEFAULT_CONFIG.cse_ips * 0.9
        )
        assert base != cache.key_for(program, dataset, slower)

    def test_unfingerprintable_program_is_uncacheable(self, cache):
        from repro.lang.program import Program, Statement, per_record

        class Opaque:
            """No stable content fingerprint on purpose."""

        def kernel(p, _opaque=Opaque()):
            return dict(p)

        program = Program("opaque", [Statement(
            "scan", kernel,
            instructions=per_record(1.0),
            output_bytes=per_record(4.0),
            storage_bytes=per_record(64.0),
        )])
        assert cache.key_for(program, make_toy_dataset(), DEFAULT_CONFIG) is None
        assert cache.stats()["uncacheable"] == 1


class TestRoundTrip:
    def test_warm_run_hits_and_matches(self, cache):
        program, dataset = make_toy_program(), make_toy_dataset()
        runtime = ActivePy(profile_cache=cache)
        cold = runtime.run(program, dataset)
        warm = runtime.run(program, dataset)
        assert not cold.sampling_cached and cold.sampling_cache_status == "miss"
        assert warm.sampling_cached and warm.sampling_cache_status == "hit"
        assert warm.total_seconds == cold.total_seconds
        assert warm.plan.assignments == cold.plan.assignments
        assert cache.stats()["hits"] == 1

    def test_cache_disabled_instance(self):
        program, dataset = make_toy_program(), make_toy_dataset()
        runtime = ActivePy(profile_cache=False)
        report = runtime.run(program, dataset)
        assert report.sampling_cache_status == "off"

    def test_noisy_profiler_bypasses_cache(self, cache):
        config = dataclasses.replace(DEFAULT_CONFIG, profiler_noise=0.05)
        runtime = ActivePy(config, profile_cache=cache)
        program, dataset = make_toy_program(), make_toy_dataset()
        report = runtime.run(program, dataset)
        assert report.sampling_cache_status == "off"
        assert cache.stats() == {
            "hits": 0, "misses": 0, "invalidations": 0, "uncacheable": 0,
            "plan_hits": 0, "plan_misses": 0,
        }

    def test_env_var_disables_default_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFCACHE", "0")
        assert default_cache() is None
        monkeypatch.setenv("REPRO_PROFCACHE", "1")
        assert default_cache() is not None


class TestCorruption:
    def _entry_path(self, cache, key):
        return cache.root / "profiles" / f"{key}.json"

    def _populate(self, cache):
        program, dataset = make_toy_program(), make_toy_dataset()
        ActivePy(profile_cache=cache).run(program, dataset)
        key = cache.key_for(program, dataset, DEFAULT_CONFIG)
        assert self._entry_path(cache, key).exists()
        return program, dataset, key

    def test_truncated_entry_warns_and_recomputes(self, cache):
        program, dataset, key = self._populate(cache)
        self._entry_path(cache, key).write_text("{ not json", encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="profile cache"):
            report = ActivePy(profile_cache=cache).run(program, dataset)
        assert report.sampling_cache_status == "miss"
        assert cache.stats()["invalidations"] == 1
        # The bad entry was dropped and rewritten: next run hits again.
        warm = ActivePy(profile_cache=cache).run(program, dataset)
        assert warm.sampling_cache_status == "hit"

    def test_checksum_mismatch_never_served(self, cache):
        program, dataset, key = self._populate(cache)
        path = self._entry_path(cache, key)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        # A stale entry in disguise: valid JSON, doctored payload.
        envelope["payload"]["sampling_seconds"] = 123.0
        path.write_text(json.dumps(envelope), encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            report = ActivePy(profile_cache=cache).run(program, dataset)
        assert report.sampling_cache_status == "miss"

    def test_schema_bump_invalidates(self, cache):
        program, dataset, key = self._populate(cache)
        path = self._entry_path(cache, key)
        envelope = json.loads(path.read_text(encoding="utf-8"))
        envelope["schema_version"] = 999
        path.write_text(json.dumps(envelope), encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            report = ActivePy(profile_cache=cache).run(program, dataset)
        assert report.sampling_cache_status == "miss"


def _variant_report(variant: int) -> SamplingReport:
    """A small valid report whose contents identify the writer."""
    marker = float(variant)
    curve = FittedCurve(
        curve=ComplexityCurve.N, coefficient=marker, intercept=0.0,
        relative_residual=0.01,
    )
    return SamplingReport(
        series=[SampleSeries(
            index=0, name="scan",
            n_values=[10, 20, 40, 80],
            compute_seconds=[marker, marker * 2, marker * 4, marker * 8],
            data_access_seconds=[0.1, 0.2, 0.4, 0.8],
            input_bytes=[640.0, 1280.0, 2560.0, 5120.0],
            output_bytes=[40.0, 80.0, 160.0, 320.0],
            storage_bytes=[640.0, 1280.0, 2560.0, 5120.0],
        )],
        fits=[LineFits(index=0, name="scan", compute=curve,
                       data_access=curve, output_bytes=curve,
                       storage_bytes=curve)],
        sampling_seconds=marker,
        factors=(2 ** -10, 2 ** -9, 2 ** -8, 2 ** -7),
    )


def _race_writer(root: str, key: str, variant: int, iterations: int) -> None:
    cache = ProfileCache(Path(root))
    report = _variant_report(variant)
    for _ in range(iterations):
        assert cache.put(key, report)


class TestConcurrentWriters:
    def test_racing_writers_never_produce_a_torn_entry(self, tmp_path):
        """Two processes hammering one key: readers see whole entries only.

        ``put`` goes through tempfile + ``os.replace``, so an entry on
        disk is always some writer's complete bytes — a reader must
        never see a blend of the two variants or a checksum rejection.
        """
        root = tmp_path / "cache"
        key = "f" * 64
        iterations = 200
        workers = [
            multiprocessing.Process(
                target=_race_writer, args=(str(root), key, variant, iterations)
            )
            for variant in (1, 2)
        ]
        for worker in workers:
            worker.start()
        reader = ProfileCache(root)
        observed = set()
        try:
            while any(worker.is_alive() for worker in workers):
                report = reader.get(key)
                if report is not None:
                    assert report.sampling_seconds in (1.0, 2.0)
                    # A torn/blended entry would decouple the marker
                    # fields that are written consistently together.
                    assert (report.fits[0].compute.coefficient
                            == report.sampling_seconds)
                    assert (report.series[0].compute_seconds[0]
                            == report.sampling_seconds)
                    observed.add(report.sampling_seconds)
        finally:
            for worker in workers:
                worker.join()
        for worker in workers:
            assert worker.exitcode == 0
        # Atomic replace means no read ever hit the invalidation path.
        assert reader.stats()["invalidations"] == 0
        final = reader.get(key)
        assert final is not None and final.sampling_seconds in (1.0, 2.0)
        assert observed, "reader never saw a committed entry mid-race"


class TestBitIdenticalRotation:
    @pytest.mark.parametrize("name", ROTATION)
    def test_warm_vs_cold_identical(self, name, cache):
        workload = get_workload(name, scale=SCALE)

        def observed_run():
            obs = Observability()
            report = ActivePy(profile_cache=cache).run(
                workload.program, workload.dataset,
                options=RunOptions(obs=obs),
            )
            return report, obs.snapshot()

        cold, cold_metrics = observed_run()
        warm, warm_metrics = observed_run()
        assert cold.sampling_cache_status == "miss"
        assert warm.sampling_cache_status == "hit"
        assert warm.total_seconds == cold.total_seconds
        assert warm.result.total_seconds == cold.result.total_seconds
        assert warm.plan.assignments == cold.plan.assignments
        assert warm.summary() == cold.summary()
        assert _strip_profcache(warm_metrics) == _strip_profcache(cold_metrics)

    def test_obs_counts_cache_traffic(self, cache):
        workload = get_workload("tpch_q6", scale=SCALE)
        obs = Observability()
        runtime = ActivePy(profile_cache=cache)
        runtime.run(workload.program, workload.dataset,
                    options=RunOptions(obs=obs))
        runtime.run(workload.program, workload.dataset,
                    options=RunOptions(obs=obs))
        counters = obs.snapshot()["counters"]
        assert counters.get("profcache.miss") == 1.0
        assert counters.get("profcache.hit") == 1.0
