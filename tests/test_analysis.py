"""Analysis metrics and report rendering."""

import math

import pytest

from repro.analysis.metrics import (
    geometric_mean,
    relative_error,
    slowdown_fraction,
    speedup,
)
from repro.analysis.report import ascii_bar_chart, format_table
from repro.errors import ReproError


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0

    def test_speedup_validates(self):
        with pytest.raises(ReproError):
            speedup(0.0, 1.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_validates(self):
        with pytest.raises(ReproError):
            geometric_mean([])
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(1.0, 0.0) == math.inf

    def test_slowdown_fraction(self):
        # Paper style: "67% performance loss" when 3x slower than base.
        assert slowdown_fraction(1.0, 3.0) == pytest.approx(2 / 3)
        assert slowdown_fraction(1.0, 1.0) == 0.0


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(
            ["name", "speedup"],
            [["tpch_q6", 1.337], ["kmeans", 1.25]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert "tpch_q6" in lines[2]
        assert "1.337" in lines[2]
        widths = {len(line) for line in lines}
        assert len(widths) <= 2  # header rule and rows line up

    def test_row_width_checked(self):
        with pytest.raises(ReproError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestAsciiBarChart:
    def test_renders_values_and_reference(self):
        chart = ascii_bar_chart(["q6", "q1"], [1.4, 0.9], reference=1.0)
        assert "1.400x" in chart and "0.900x" in chart
        assert "#" in chart

    def test_label_value_mismatch(self):
        with pytest.raises(ReproError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert ascii_bar_chart([], []) == "(no data)"
