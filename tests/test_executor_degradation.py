"""Gradual CSE degradation: the monitor's trend trigger end to end."""

import pytest

from repro.hw.topology import build_machine
from repro.runtime.activepy import ActivePy
from repro.runtime.planner import CSD

from .conftest import make_toy_dataset, make_toy_program


class TestGradualDegradation:
    def test_slow_decline_above_threshold_does_not_thrash(self, config):
        # Availability drifts 1.0 -> 0.85 in small steps, always above
        # the 70% threshold; the trend detector fires re-estimations,
        # but the economics say stay — no migration thrash.
        machine = build_machine(config)
        for step, availability in enumerate((0.97, 0.93, 0.89, 0.85)):
            machine.csd.cse.schedule_availability(
                at_time=0.2 + 0.05 * step, fraction=availability
            )
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        assert not report.result.migrated
        assert report.result.total_seconds > 0

    def test_decline_through_threshold_migrates_at_most_once(self, config):
        # A staircase decline fires the monitor repeatedly; whatever the
        # economics decide, the runtime must never thrash (migrate
        # twice) and must finish.  Whether it migrates depends on how
        # much work is left when the floor drops — both outcomes are
        # legitimate here.
        machine = build_machine(config)
        for step, availability in enumerate((0.9, 0.7, 0.45, 0.25, 0.1)):
            machine.csd.cse.schedule_availability(
                at_time=0.2 + 0.08 * step, fraction=availability
            )
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        assert len(report.result.migrations) <= 1
        assert CSD in report.plan.assignments
        assert report.result.total_seconds > 0

    def test_early_deep_drop_migrates(self, config):
        # The floor falls to 5% right as the offloaded scan begins:
        # nearly all the work is still ahead, so migration must win.
        machine = build_machine(config)
        machine.csd.cse.schedule_availability(at_time=0.15, fraction=0.05)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        assert report.result.migrated

    def test_recovery_before_the_csd_line_means_no_migration(self, config):
        # A dip that ends before the offloaded work starts is invisible.
        machine = build_machine(config)
        machine.csd.cse.schedule_availability(at_time=0.01, fraction=0.1)
        machine.csd.cse.schedule_availability(at_time=0.05, fraction=1.0)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        # Sampling+compile run until ~0.12s, so the dip is over.
        assert not report.result.migrated

    def test_migration_cost_accounted_in_totals(self, config):
        machine = build_machine(config)
        machine.csd.cse.schedule_availability(at_time=0.2, fraction=0.05)
        report = ActivePy(config).run(
            make_toy_program(), make_toy_dataset(), machine=machine
        )
        if report.result.migrated:
            event = report.result.migrations[0]
            assert event.cost_seconds >= (
                config.compile_overhead_s + config.migration_state_cost_s
            )
            assert event.sim_time <= report.result.finished_at


class TestCsrSweep:
    def test_always_overestimates_across_matrices(self, config):
        from repro.analysis.experiments import run_csr_matrix_sweep

        rows = run_csr_matrix_sweep(
            degrees=(4.0, 8.0), alphas=(1.5,), n_edges=10_000_000,
        )
        assert all(row.ratio > 1.0 for row in rows)

    def test_denser_population_widens_the_gap(self, config):
        from repro.analysis.experiments import run_csr_matrix_sweep

        rows = run_csr_matrix_sweep(
            degrees=(4.0, 16.0), alphas=(1.5,), n_edges=10_000_000,
        )
        sparse, dense = rows[0], rows[1]
        # Sample prefixes always look like degree ~1; the denser the
        # true population, the larger the over-estimate.
        assert dense.ratio > sparse.ratio
