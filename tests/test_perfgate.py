"""The perf-regression gate: snapshot, check, and the planted failure."""

import json

import pytest

from repro.perfgate import (
    GATED_METRICS,
    GatedMetric,
    PerfGateError,
    check,
    load_results,
    lookup,
    snapshot,
)


class TestLookup:
    def test_dotted_path_resolution(self):
        payload = {"a": {"b": {"c": 1.5}}}
        assert lookup(payload, "a.b.c") == 1.5

    def test_absent_path_is_none(self):
        assert lookup({"a": {}}, "a.b") is None
        assert lookup({}, "a") is None

    def test_non_numeric_leaves_rejected(self):
        assert lookup({"a": "fast"}, "a") is None
        assert lookup({"a": True}, "a") is None  # bool is not a metric
        assert lookup({"a": 3}, "a") == 3.0


class TestLimits:
    def test_max_direction_allows_improvement(self):
        lo, hi = GatedMetric("m", "max", rel_tol=0.01).limits(100.0)
        assert lo == float("-inf")
        assert hi == pytest.approx(101.0)

    def test_both_direction_pins_the_value(self):
        lo, hi = GatedMetric("m", "both").limits(0.0)
        assert (lo, hi) == (0.0, 0.0)

    def test_abs_tol_adds_slack_for_zero_baselines(self):
        lo, hi = GatedMetric("m", "both", abs_tol=1e-9).limits(0.0)
        assert (lo, hi) == (-1e-9, 1e-9)

    def test_unknown_direction_raises(self):
        with pytest.raises(PerfGateError, match="direction"):
            GatedMetric("m", "min").limits(1.0)


def _write_results(root, bench, payload):
    (root / "bench_results").mkdir(exist_ok=True)
    (root / "bench_results" / f"BENCH_{bench}.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )


def _full_results(root, value=1.0):
    """Results covering every gated metric, all set to ``value``."""
    for bench, metrics in GATED_METRICS.items():
        payload = {}
        for metric in metrics:
            node = payload
            *parents, leaf = metric.path.split(".")
            for key in parents:
                node = node.setdefault(key, {})
            node[leaf] = value
        _write_results(root, bench, payload)


class TestSnapshotCheckRoundTrip:
    def test_clean_round_trip_passes(self, tmp_path):
        _full_results(tmp_path)
        written = snapshot(tmp_path)
        assert sorted(p.stem for p in written) == sorted(GATED_METRICS)
        report = check(tmp_path)
        assert report.ok
        assert report.checked == sum(len(m) for m in GATED_METRICS.values())
        assert report.render().endswith("PASS")

    def test_planted_regression_fails_every_metric(self, tmp_path):
        _full_results(tmp_path)
        snapshot(tmp_path)
        report = check(tmp_path, planted_regression=True)
        assert not report.ok
        assert len(report.deviations) == report.checked
        assert report.render().endswith("FAIL")
        assert "REGRESSION" in report.deviations[0].render()

    def test_real_regression_beyond_tolerance_fails(self, tmp_path):
        _full_results(tmp_path, value=1.0)
        snapshot(tmp_path)
        _full_results(tmp_path, value=1.5)  # all metrics 50% worse
        report = check(tmp_path)
        assert not report.ok

    def test_improvement_passes_max_metrics(self, tmp_path):
        _write_results(tmp_path, "faults", {
            "no_fault_overhead": {"overhead_fraction": 0.0},
            "crash_recovery": {"healthy_seconds": 2.0, "slowdown": 1.3},
        })
        baselines = tmp_path / "perf_baselines"
        baselines.mkdir()
        (baselines / "faults.json").write_text(json.dumps({
            "schema_version": 1,
            "bench": "faults",
            "metrics": {
                "no_fault_overhead.overhead_fraction":
                    {"value": 0.0, "direction": "both"},
                "crash_recovery.healthy_seconds":
                    {"value": 2.0, "direction": "max", "rel_tol": 0.01},
                "crash_recovery.slowdown":
                    {"value": 1.5, "direction": "max", "rel_tol": 0.02},
            },
        }), encoding="utf-8")
        report = check(tmp_path, baselines_dir=baselines)
        # slowdown improved 1.5 -> 1.3: the gate stays silent; every
        # other bench has no committed baseline and is reported.
        assert not report.deviations
        assert sorted(report.missing_results) == sorted(
            f"{bench} (no committed baseline)"
            for bench in GATED_METRICS if bench != "faults"
        )

    def test_within_tolerance_drift_passes(self, tmp_path):
        _full_results(tmp_path, value=1.0)
        baselines = tmp_path / "perf_baselines"
        snapshot(tmp_path, baselines_dir=baselines)
        # Bump only the rel_tol'd sim-seconds metrics by half a percent.
        payload = json.loads(
            (tmp_path / "bench_results" / "BENCH_obs.json").read_text()
        )
        for row in payload["per_workload"].values():
            row["sim_seconds"] = 1.005
        _write_results(tmp_path, "obs", payload)
        assert check(tmp_path, baselines_dir=baselines).ok


class TestMissingPieces:
    def test_snapshot_refuses_missing_results(self, tmp_path):
        with pytest.raises(PerfGateError, match="run the benchmark suite"):
            snapshot(tmp_path)

    def test_snapshot_refuses_a_metric_hole(self, tmp_path):
        _full_results(tmp_path)
        payload = json.loads(
            (tmp_path / "bench_results" / "BENCH_obs.json").read_text()
        )
        del payload["disabled_sim_overhead_seconds"]
        _write_results(tmp_path, "obs", payload)
        with pytest.raises(PerfGateError, match="lack gated metric"):
            snapshot(tmp_path)

    def test_check_reports_missing_baselines_not_silent_pass(self, tmp_path):
        _full_results(tmp_path)
        report = check(tmp_path)
        assert not report.ok
        assert len(report.missing_results) == len(GATED_METRICS)

    def test_check_reports_missing_fresh_metrics(self, tmp_path):
        _full_results(tmp_path)
        snapshot(tmp_path)
        payload = json.loads(
            (tmp_path / "bench_results" / "BENCH_obs.json").read_text()
        )
        del payload["attribution"]
        _write_results(tmp_path, "obs", payload)
        report = check(tmp_path)
        assert not report.ok
        assert any("attribution" in m for m in report.missing_metrics)

    def test_unreadable_results_raise(self, tmp_path):
        (tmp_path / "bench_results").mkdir()
        (tmp_path / "bench_results" / "BENCH_obs.json").write_text("{nope")
        with pytest.raises(PerfGateError, match="unreadable"):
            load_results("obs", tmp_path)


class TestCommittedBaselines:
    def test_the_repo_ships_a_baseline_per_bench(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        for bench in GATED_METRICS:
            path = root / "perf_baselines" / f"{bench}.json"
            assert path.exists(), f"missing committed baseline {path}"
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert payload["schema_version"] == 1
            committed = set(payload["metrics"])
            gated = {metric.path for metric in GATED_METRICS[bench]}
            assert committed == gated

    def test_zero_overhead_invariants_are_pinned_at_zero(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[1]
        payload = json.loads(
            (root / "perf_baselines" / "obs.json").read_text(encoding="utf-8")
        )
        for path in ("disabled_sim_overhead_seconds",
                     "attribution.identity_residual",
                     "attribution.sim_overhead_seconds"):
            spec = payload["metrics"][path]
            assert spec["value"] == 0.0
            assert spec["direction"] == "both"
            assert spec["rel_tol"] == 0.0 and spec["abs_tol"] == 0.0


class TestGateReportShape:
    def test_jsonable(self, tmp_path):
        _full_results(tmp_path)
        snapshot(tmp_path)
        payload = check(tmp_path, planted_regression=True).to_jsonable()
        assert payload["ok"] is False
        assert payload["deviations"]
        assert {"bench", "path", "baseline", "actual"} <= set(
            payload["deviations"][0]
        )
