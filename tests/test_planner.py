"""Algorithm 1: the greedy CSD code assignment."""

import json

import pytest

from repro.config import SystemConfig
from repro.errors import PlanningError
from repro.runtime.estimator import LineEstimate
from repro.runtime.planner import (
    CSD,
    HOST,
    Plan,
    assign_csd_code,
    host_only_plan,
    projected_time,
)
from repro.baselines.static_isp import exhaustive_best_plan


def line(index, name, ct_host, ct_device, d_in, d_out, d_storage=0.0):
    return LineEstimate(
        index=index, name=name, ct_host=ct_host, ct_device=ct_device,
        d_in=d_in, d_out=d_out, d_storage=d_storage,
        compute_host=ct_host,
    )


@pytest.fixture
def cfg():
    return SystemConfig()


class TestAcceptance:
    def test_offloads_volume_reducing_scan(self, cfg):
        # 6 GB scanned down to 60 MB: the canonical ISP win.
        scan = line(0, "scan", ct_host=4.0, ct_device=1.5, d_in=0, d_out=6e7,
                    d_storage=6e9)
        plan = assign_csd_code([scan], cfg)
        assert plan.assignments == [CSD]
        assert plan.t_csd < plan.t_host

    def test_rejects_compute_bound_line(self, cfg):
        heavy = line(0, "gemm", ct_host=4.0, ct_device=8.0, d_in=0, d_out=1e6,
                     d_storage=1e9)
        plan = assign_csd_code([heavy], cfg)
        assert plan.assignments == [HOST]
        assert plan.t_csd == plan.t_host

    def test_input_transfer_penalised_when_prev_on_host(self, cfg):
        # The second line is mildly device-favourable, but its 6 GB
        # input lives on the host: shipping it costs more than the gain.
        first = line(0, "host_stage", ct_host=1.0, ct_device=9.0, d_in=0, d_out=6e9)
        second = line(1, "mild", ct_host=1.0, ct_device=0.9, d_in=6e9, d_out=1e6)
        plan = assign_csd_code([first, second], cfg)
        assert plan.assignments == [HOST, HOST]

    def test_chain_extends_when_prev_on_csd(self, cfg):
        # Same "mild" line joins happily when its producer is already
        # on the device (the -D_in/BW branch of Algorithm 1).
        scan = line(0, "scan", ct_host=4.0, ct_device=1.5, d_in=0, d_out=6e9,
                    d_storage=6.4e9)
        mild = line(1, "mild", ct_host=1.0, ct_device=1.1, d_in=6e9, d_out=1e6)
        plan = assign_csd_code([scan, mild], cfg)
        assert plan.assignments == [CSD, CSD]

    def test_greedy_is_order_sensitive(self, cfg):
        # A flat-volume line blocks the greedy even though the oracle
        # would offload through it — the locality the paper accepts in
        # exchange for a linear-time algorithm.
        flat = line(0, "flat", ct_host=1.0, ct_device=1.5, d_in=0, d_out=6e9,
                    d_storage=6e9)
        reducer = line(1, "reduce", ct_host=1.0, ct_device=1.2, d_in=6e9, d_out=8.0)
        greedy = assign_csd_code([flat, reducer], cfg)
        oracle = exhaustive_best_plan([flat, reducer], cfg)
        assert oracle.t_csd <= greedy.t_csd


class TestPlanInvariants:
    def test_never_worse_than_host_only(self, cfg):
        lines = [
            line(0, "a", 2.0, 1.0, 0, 5e9, d_storage=6e9),
            line(1, "b", 1.0, 2.0, 5e9, 1e9),
            line(2, "c", 0.5, 1.0, 1e9, 8.0),
        ]
        plan = assign_csd_code(lines, cfg)
        assert plan.t_csd <= plan.t_host

    def test_projected_speedup(self, cfg):
        scan = line(0, "scan", ct_host=4.0, ct_device=1.0, d_in=0, d_out=1e6,
                    d_storage=6e9)
        plan = assign_csd_code([scan], cfg)
        assert plan.projected_speedup == pytest.approx(plan.t_host / plan.t_csd)

    def test_csd_and_host_lines_partition(self, cfg):
        lines = [
            line(0, "a", 2.0, 1.0, 0, 1e6, d_storage=6e9),
            line(1, "b", 1.0, 2.0, 1e6, 8.0),
        ]
        plan = assign_csd_code(lines, cfg)
        assert sorted(plan.csd_lines + plan.host_lines) == [0, 1]

    def test_empty_estimates_rejected(self, cfg):
        with pytest.raises(PlanningError):
            assign_csd_code([], cfg)

    def test_non_dense_indices_rejected(self, cfg):
        bad = [line(1, "a", 1, 1, 0, 0)]
        with pytest.raises(PlanningError):
            assign_csd_code(bad, cfg)

    def test_invalid_assignment_values_rejected(self):
        with pytest.raises(PlanningError):
            Plan(assignments=["gpu"], t_host=1.0, t_csd=1.0)


class TestProjectedTime:
    def test_host_only_equals_t_host(self, cfg):
        lines = [
            line(0, "a", 2.0, 1.0, 0, 1e9, d_storage=3e9),
            line(1, "b", 1.0, 2.0, 1e9, 8.0),
        ]
        assert projected_time([HOST, HOST], lines, cfg) == pytest.approx(
            sum(l.ct_host for l in lines)
        )

    def test_boundary_crossings_charged(self, cfg):
        lines = [
            line(0, "a", 2.0, 1.0, 0, 3e9),
            line(1, "b", 1.0, 2.0, 3e9, 8.0),
        ]
        mixed = projected_time([CSD, HOST], lines, cfg)
        expected = lines[0].ct_device + 3e9 / cfg.bw_d2h + lines[1].ct_host
        assert mixed == pytest.approx(expected)

    def test_final_csd_output_returns_to_host(self, cfg):
        lines = [line(0, "a", 2.0, 1.0, 0, 3e9)]
        total = projected_time([CSD], lines, cfg)
        assert total == pytest.approx(lines[0].ct_device + 3e9 / cfg.bw_d2h)

    def test_greedy_t_csd_consistent_with_projected_time(self, cfg):
        lines = [
            line(0, "a", 4.0, 1.5, 0, 5e9, d_storage=6e9),
            line(1, "b", 1.0, 1.1, 5e9, 1e6),
            line(2, "c", 2.0, 4.0, 1e6, 8.0),
        ]
        plan = assign_csd_code(lines, cfg)
        assert plan.t_csd == pytest.approx(
            projected_time(plan.assignments, lines, cfg), rel=1e-9
        )

    def test_length_mismatch_rejected(self, cfg):
        with pytest.raises(PlanningError):
            projected_time([HOST], [], cfg)


class TestExhaustiveSearch:
    def test_exhaustive_at_least_as_good_as_greedy(self, cfg):
        lines = [
            line(0, "a", 3.0, 1.2, 0, 4e9, d_storage=6e9),
            line(1, "b", 0.5, 0.6, 4e9, 2e9),
            line(2, "c", 2.0, 4.0, 2e9, 1e6),
            line(3, "d", 0.1, 0.2, 1e6, 8.0),
        ]
        greedy = assign_csd_code(lines, cfg)
        oracle = exhaustive_best_plan(lines, cfg)
        assert oracle.t_csd <= greedy.t_csd + 1e-12

    def test_host_only_plan(self, cfg):
        lines = [line(0, "a", 2.0, 1.0, 0, 8.0)]
        plan = host_only_plan(lines)
        assert plan.assignments == [HOST]
        assert plan.t_csd == plan.t_host == pytest.approx(2.0)

    def test_too_many_lines_rejected(self, cfg):
        lines = [line(i, f"l{i}", 1, 1, 0, 0) for i in range(20)]
        with pytest.raises(PlanningError):
            exhaustive_best_plan(lines, cfg)


class TestPlanSerialisation:
    def _plan(self, cfg):
        lines = [
            line(0, "a", 4.0, 1.5, 0, 5e9, d_storage=6e9),
            line(1, "b", 1.0, 1.1, 5e9, 1e6),
            line(2, "c", 2.0, 4.0, 1e6, 8.0),
        ]
        return assign_csd_code(lines, cfg)

    def test_round_trip_is_exact(self, cfg):
        plan = self._plan(cfg)
        payload = json.loads(json.dumps(plan.to_jsonable()))
        rebuilt = Plan.from_jsonable(payload)
        assert rebuilt.assignments == plan.assignments
        assert rebuilt.origin == plan.origin
        # Bit-exact floats: JSON repr is exact for IEEE doubles.
        assert rebuilt.t_host == plan.t_host
        assert rebuilt.t_csd == plan.t_csd
        assert rebuilt.estimates == plan.estimates
        assert rebuilt.to_jsonable() == plan.to_jsonable()

    def test_origin_survives_round_trip(self, cfg):
        plan = self._plan(cfg)
        relabelled = Plan(
            assignments=plan.assignments, t_host=plan.t_host,
            t_csd=plan.t_csd, estimates=plan.estimates, origin="search",
        )
        assert Plan.from_jsonable(relabelled.to_jsonable()).origin == "search"

    def test_unknown_schema_rejected(self, cfg):
        payload = self._plan(cfg).to_jsonable()
        payload["schema"] = "repro-plan/99"
        with pytest.raises(PlanningError):
            Plan.from_jsonable(payload)

    def test_missing_key_rejected(self, cfg):
        payload = self._plan(cfg).to_jsonable()
        del payload["t_csd"]
        with pytest.raises(PlanningError):
            Plan.from_jsonable(payload)

    def test_bad_origin_rejected(self, cfg):
        payload = self._plan(cfg).to_jsonable()
        payload["origin"] = "oracle"
        with pytest.raises(PlanningError):
            Plan.from_jsonable(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(PlanningError):
            Plan.from_jsonable("not a plan")


class TestPlannerEdgeCases:
    def test_single_line_program(self, cfg):
        only = line(0, "scan", ct_host=4.0, ct_device=1.5, d_in=0,
                    d_out=1e6, d_storage=6e9)
        plan = assign_csd_code([only], cfg)
        assert len(plan.assignments) == 1
        assert plan.t_csd <= plan.t_host

    def test_csd_disabled_forces_all_host(self):
        cfg = SystemConfig(csd_enabled=False)
        lines = [
            # Wildly device-favourable, but there is no device.
            line(0, "scan", ct_host=9.0, ct_device=0.1, d_in=0, d_out=1e3,
                 d_storage=6e9),
            line(1, "crunch", ct_host=9.0, ct_device=0.1, d_in=1e3, d_out=8.0),
        ]
        plan = assign_csd_code(lines, cfg)
        assert plan.assignments == [HOST, HOST]
        assert plan.t_csd == plan.t_host == pytest.approx(18.0)

    def test_tie_breaks_deterministically_to_host(self, cfg):
        # t_candidate == t_csd exactly: acceptance requires a *strict*
        # improvement, so the line stays on the host every time.
        tie = line(0, "tie", ct_host=2.0, ct_device=2.0, d_in=0, d_out=0.0)
        plans = [assign_csd_code([tie], cfg) for _ in range(5)]
        assert all(p.assignments == [HOST] for p in plans)

    def test_repeated_runs_identical(self, cfg):
        lines = [
            line(0, "a", 3.0, 1.2, 0, 4e9, d_storage=6e9),
            line(1, "b", 0.5, 0.6, 4e9, 2e9),
            line(2, "c", 2.0, 4.0, 2e9, 1e6),
        ]
        first = assign_csd_code(lines, cfg)
        for _ in range(3):
            again = assign_csd_code(lines, cfg)
            assert again.assignments == first.assignments
            assert again.t_csd == first.t_csd
