"""Traffic generator and SLO math: seeded, stable, numpy-exact."""

import math

import numpy
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FleetError
from repro.fleet import (
    SloSnapshot,
    TenantSpec,
    TrafficGenerator,
    default_tenants,
    percentile,
)


def _tenants(*rates):
    return tuple(
        TenantSpec(name=f"tenant-{chr(ord('a') + i)}", rate_jobs_per_s=rate,
                   priority=len(rates) - i)
        for i, rate in enumerate(rates)
    )


class TestDeterminism:
    def test_same_seed_same_schedule_byte_identical(self):
        tenants = _tenants(4.0, 2.0, 1.0)
        first = TrafficGenerator(tenants, seed=42).schedule(200)
        second = TrafficGenerator(tenants, seed=42).schedule(200)
        assert first == second  # frozen dataclasses: full field equality

    def test_different_seeds_differ(self):
        tenants = _tenants(4.0, 2.0)
        assert (TrafficGenerator(tenants, seed=1).schedule(50)
                != TrafficGenerator(tenants, seed=2).schedule(50))

    def test_tenant_streams_are_independent_of_other_tenants(self):
        # Adding a tenant must not perturb the arrival times of the
        # existing ones — each stream is keyed on (seed, tenant name).
        base = TrafficGenerator(_tenants(4.0, 2.0), seed=7).schedule(300)
        extended = TrafficGenerator(
            _tenants(4.0, 2.0) + (TenantSpec(name="tenant-z",
                                             rate_jobs_per_s=3.0),),
            seed=7,
        ).schedule(300)
        base_a = [a.arrival_time for a in base if a.tenant == "tenant-a"][:40]
        ext_a = [a.arrival_time for a in extended
                 if a.tenant == "tenant-a"][:40]
        assert base_a == ext_a

    def test_job_ids_dense_and_times_sorted(self):
        schedule = TrafficGenerator(_tenants(3.0, 3.0), seed=0).schedule(100)
        assert [a.job_id for a in schedule] == list(range(100))
        times = [a.arrival_time for a in schedule]
        assert times == sorted(times)

    def test_declaration_order_does_not_matter(self):
        forward = TrafficGenerator(_tenants(4.0, 2.0), seed=3).schedule(100)
        backward = TrafficGenerator(
            tuple(reversed(_tenants(4.0, 2.0))), seed=3,
        ).schedule(100)
        assert forward == backward


class TestRates:
    def test_per_tenant_rates_within_tolerance(self):
        # Open-loop Poisson arrivals: over a long horizon each tenant's
        # empirical rate converges to its configured one.
        tenants = _tenants(5.0, 2.0)
        schedule = TrafficGenerator(tenants, seed=11).schedule(6000)
        for tenant in tenants:
            mine = [a.arrival_time for a in schedule
                    if a.tenant == tenant.name]
            assert len(mine) > 100
            empirical = len(mine) / mine[-1]
            assert empirical == pytest.approx(
                tenant.rate_jobs_per_s, rel=0.10,
            )

    def test_workloads_drawn_from_the_tenant_rotation(self):
        tenants = (TenantSpec(name="t", rate_jobs_per_s=5.0,
                              workloads=("kmeans", "pagerank")),)
        schedule = TrafficGenerator(tenants, seed=1).schedule(200)
        assert {a.workload for a in schedule} == {"kmeans", "pagerank"}


class TestValidation:
    def test_unresolved_rate_is_rejected(self):
        with pytest.raises(FleetError, match="resolved rate"):
            TrafficGenerator(default_tenants(2), seed=0)

    def test_duplicate_names_rejected(self):
        tenant = TenantSpec(name="t", rate_jobs_per_s=1.0)
        with pytest.raises(FleetError, match="unique"):
            TrafficGenerator((tenant, tenant), seed=0)

    def test_bad_tenant_specs_rejected(self):
        with pytest.raises(FleetError):
            TenantSpec(name="")
        with pytest.raises(FleetError):
            TenantSpec(name="t", rate_jobs_per_s=-1.0)
        with pytest.raises(FleetError):
            TenantSpec(name="t", queue_limit=0)
        with pytest.raises(FleetError):
            TenantSpec(name="t", workloads=())

    def test_default_tenants_priorities_descend(self):
        tenants = default_tenants(3)
        assert [t.name for t in tenants] == ["tenant-a", "tenant-b", "tenant-c"]
        assert [t.priority for t in tenants] == [3, 2, 1]


class TestPercentile:
    @settings(max_examples=200, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=120,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_percentile(self, samples, q):
        ours = percentile(samples, q)
        theirs = float(numpy.percentile(numpy.array(samples, dtype=float), q))
        assert math.isclose(ours, theirs, rel_tol=1e-9, abs_tol=1e-9)

    def test_exact_on_known_values(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50.0) == 2.5
        assert percentile([5.0], 99.0) == 5.0
        assert percentile([1.0, 2.0], 0.0) == 1.0
        assert percentile([1.0, 2.0], 100.0) == 2.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(FleetError):
            percentile([], 50.0)
        with pytest.raises(FleetError):
            percentile([1.0], 101.0)


class TestSloSnapshot:
    def test_from_samples_and_render(self):
        snapshot = SloSnapshot.from_samples(
            tenant="tenant-a", priority=3, arrived=10, admitted=9,
            completed=8, degraded=1, shed=1,
            queue_waits=[0.1, 0.2, 0.3], end_to_ends=[1.0, 2.0, 3.0],
        )
        assert snapshot.queue_wait_p50_s == pytest.approx(0.2)
        assert snapshot.end_to_end_p50_s == pytest.approx(2.0)
        assert "tenant-a" in snapshot.render()

    def test_empty_samples_report_zero(self):
        snapshot = SloSnapshot.from_samples(
            tenant="t", priority=1, arrived=0, admitted=0,
            completed=0, degraded=0, shed=0,
            queue_waits=[], end_to_ends=[],
        )
        assert snapshot.queue_wait_p99_s == 0.0
        assert snapshot.end_to_end_p99_s == 0.0

    def test_single_sample_is_every_percentile(self):
        snapshot = SloSnapshot.from_samples(
            tenant="t", priority=1, arrived=1, admitted=1,
            completed=1, degraded=0, shed=0,
            queue_waits=[0.125], end_to_ends=[1.5],
        )
        assert snapshot.queue_wait_p50_s == 0.125
        assert snapshot.queue_wait_p99_s == 0.125
        assert snapshot.end_to_end_p50_s == 1.5
        assert snapshot.end_to_end_p99_s == 1.5

    def test_window_percentile_matches_snapshot_edge_conventions(self):
        """The flight recorder's sliding window uses the same 0- and
        1-sample conventions as the whole-run SloSnapshot."""
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(sample_horizon_s=10.0)
        recorder.observe("lat", 0.0, 1.5)
        # One sample in the window: it is every percentile.
        for q in (0.0, 50.0, 99.0, 100.0):
            assert recorder.window_percentile("lat", q, 0.0) == 1.5
        # Zero samples in the horizon: 0.0, same as the empty snapshot.
        assert recorder.window_percentile("lat", 99.0, 100.0) == 0.0

    @settings(max_examples=60, deadline=None)
    @given(
        samples=st.lists(
            st.floats(min_value=0.0, max_value=1e3,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=80,
        ),
        q=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_sliding_window_agrees_with_whole_run(self, samples, q):
        """With a horizon covering every sample, a sliding-window
        percentile equals the whole-run percentile exactly — a uniform
        workload's live dashboard converges on the final SLO report."""
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(sample_horizon_s=float(len(samples) + 1))
        for i, value in enumerate(samples):
            recorder.observe("e2e", float(i), value)
        now = float(len(samples) - 1)
        assert recorder.window_percentile("e2e", q, now) == percentile(
            samples, q
        )
