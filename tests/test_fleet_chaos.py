"""Fleet chaos: the rack invariants, the planted bug, the shrinker."""

import pytest

from repro.errors import FleetError, TenantIsolationError
from repro.faults.spec import FLEET_KINDS, FaultKind, FaultPlan, FaultSpec
from repro.fleet import (
    FleetCampaignConfig,
    FleetHarness,
    check_fleet_invariants,
    fleet_replay_command,
    raise_for_violations,
    random_fleet_plan,
    run_fleet_campaign,
)
from repro.fleet.fleet import FleetReport, JobOutcome

_JOBS = 16


@pytest.fixture(scope="module")
def harness():
    return FleetHarness(FleetCampaignConfig(runs=1, job_count=_JOBS))


@pytest.fixture(scope="module")
def buggy_harness():
    return FleetHarness(FleetCampaignConfig(
        runs=1, job_count=24, no_isolation=True,
    ))


class TestRandomFleetPlan:
    def test_deterministic_and_fleet_only(self):
        first = random_fleet_plan(seed=9, horizon_s=4.0, device_count=4,
                                  tenant_names=("a", "b"), count=6)
        second = random_fleet_plan(seed=9, horizon_s=4.0, device_count=4,
                                   tenant_names=("a", "b"), count=6)
        assert first == second
        assert all(spec.kind in FLEET_KINDS for spec in first)
        assert len(first) == 6

    def test_validation(self):
        with pytest.raises(FleetError):
            random_fleet_plan(seed=0, horizon_s=0.0, device_count=1,
                              tenant_names=("a",))
        with pytest.raises(FleetError):
            random_fleet_plan(seed=0, horizon_s=1.0, device_count=1,
                              tenant_names=())


class TestInvariantsHold:
    def test_campaign_over_many_seeds_is_clean(self, harness):
        for seed in range(12):
            outcome = harness.run_seed(seed)
            assert outcome.ok, [v.render() for v in outcome.violations]

    def test_replay_is_deterministic(self, harness):
        first = harness.run_seed(4)
        second = harness.run_seed(4)
        assert first.to_jsonable() == second.to_jsonable()

    def test_profile_cache_is_shared_across_runs(self, harness):
        before = harness.profiles.runs
        harness.run_seed(1)
        harness.run_seed(1)
        after = harness.profiles.runs
        # The second replay must hit only the outer DES: any inner
        # ActivePy runs it needed were already cached by the first.
        first_cost = after - before
        harness.run_seed(1)
        assert harness.profiles.runs == after, (
            f"replay re-ran {harness.profiles.runs - after} inner run(s); "
            f"first run cost {first_cost}"
        )


class TestPlantedIsolationBug:
    def test_campaign_catches_and_shrinks_to_one_minimal(self, buggy_harness):
        result = run_fleet_campaign(FleetCampaignConfig(
            runs=3, job_count=24, base_seed=1, no_isolation=True,
        ))
        assert not result.ok
        assert result.failures
        for failure in result.failures:
            names = {v.name for v in failure.outcome.violations}
            assert "tenant-isolation" in names
            # ddmin: only the tenant-fault window is load-bearing.
            assert len(failure.shrink.minimal) == 1
            (spec,) = failure.shrink.minimal.specs
            assert spec.kind is FaultKind.TENANT_FAULT_INJECTION
            assert "--fleet" in failure.replay_command
            assert "--no-isolation" in failure.replay_command

    def test_correct_scheduler_passes_the_same_seeds(self):
        result = run_fleet_campaign(FleetCampaignConfig(
            runs=3, job_count=24, base_seed=1, no_isolation=False,
        ))
        assert result.ok, result.render()

    def test_violation_names_the_bystander_tenant(self, buggy_harness):
        outcome = buggy_harness.run_seed(1)
        assert not outcome.ok
        violation = next(v for v in outcome.violations
                         if v.name == "tenant-isolation")
        assert "was not targeted" in violation.detail


class TestInvariantChecker:
    def _report(self, outcomes):
        return FleetReport(
            device_count=1, tenant_names=("t",), seed=0,
            job_count=len(outcomes), outcomes=tuple(outcomes), slos=(),
            makespan_s=1.0, throughput_jobs_per_s=1.0,
            shed_by_reason={}, device_events=(), profile_runs=0,
        )

    def _outcome(self, **overrides):
        fields = dict(
            job_id=0, tenant="t", workload="kmeans", priority=1,
            status="completed", arrival_time=0.0, finish_time=1.0,
            admitted=True, first_dispatch_time=0.5,
            signature=("kmeans", ("a",), "00000000"),
        )
        fields.update(overrides)
        return JobOutcome(**fields)

    def test_silent_shed_is_a_termination_violation(self, harness):
        report = self._report([self._outcome(status="shed", reason=None,
                                             error=None, signature=None)])
        violations = check_fleet_invariants(
            report, FaultPlan(), harness.profiles,
        )
        assert any(v.name == "job-termination" and "silently" in v.detail
                   for v in violations)

    def test_unknown_status_is_a_termination_violation(self, harness):
        report = self._report([self._outcome(status="vanished")])
        violations = check_fleet_invariants(
            report, FaultPlan(), harness.profiles,
        )
        assert any(v.name == "job-termination" for v in violations)

    def test_bystander_signature_drift_is_an_isolation_violation(
        self, harness,
    ):
        baseline = harness.profiles.baseline("kmeans")
        bad = tuple(baseline.signature[:2]) + ("deadbeef",)
        report = self._report([self._outcome(signature=bad)])
        violations = check_fleet_invariants(
            report, FaultPlan(), harness.profiles,
        )
        assert any(v.name == "tenant-isolation" for v in violations)

    def test_targeted_tenant_is_exempt_from_isolation(self, harness):
        baseline = harness.profiles.baseline("kmeans")
        bad = tuple(baseline.signature[:2]) + ("deadbeef",)
        plan = FaultPlan(specs=(FaultSpec(
            kind=FaultKind.TENANT_FAULT_INJECTION, at_time=0.0,
            target="t", duration_s=1.0,
        ),))
        report = self._report([self._outcome(signature=bad)])
        violations = check_fleet_invariants(report, plan, harness.profiles)
        assert not any(v.name == "tenant-isolation" for v in violations)

    def test_raise_for_violations_types(self, harness):
        baseline = harness.profiles.baseline("kmeans")
        bad = tuple(baseline.signature[:2]) + ("deadbeef",)
        report = self._report([self._outcome(signature=bad)])
        violations = check_fleet_invariants(
            report, FaultPlan(), harness.profiles,
        )
        with pytest.raises(TenantIsolationError):
            raise_for_violations(violations)
        report = self._report([self._outcome(status="vanished")])
        violations = check_fleet_invariants(
            report, FaultPlan(), harness.profiles,
        )
        violations = [v for v in violations if v.name != "tenant-isolation"]
        with pytest.raises(FleetError):
            raise_for_violations(violations)
        raise_for_violations([])  # no violations, no raise


class TestReplayCommand:
    def test_command_shape(self, harness):
        outcome = harness.run_seed(2)
        command = fleet_replay_command(outcome, harness.config)
        assert command.startswith("python -m repro chaos --fleet --runs 1")
        assert "--seed 2" in command
        assert "--devices 4" in command
        assert "--jobs 16" in command
