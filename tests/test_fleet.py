"""The fleet scheduler end to end: placement, failover, degradation."""

import json

import pytest

from repro.analysis.export import dumps
from repro.config import DEFAULT_CONFIG
from repro.errors import FaultError, FleetError
from repro.faults import FaultInjector
from repro.faults.spec import FLEET_KINDS, FaultKind, FaultPlan, FaultSpec
from repro.fleet import (
    Fleet,
    FleetConfig,
    ProfileStore,
    TenantSpec,
    device_names,
)
from repro.fleet.admission import (
    SHED_NO_DEVICES,
    SHED_OVERLOAD,
    SHED_RATE_LIMITED,
    SHED_RETRY_BUDGET,
)
from repro.hw.topology import build_machine

_SCALE = 2 ** -6


@pytest.fixture(scope="module")
def store():
    """One profile store for the whole module: inner runs paid once."""
    return ProfileStore(system_config=DEFAULT_CONFIG, scale=_SCALE)


def _tenant(name="t", rate=8.0, **overrides):
    fields = dict(name=name, rate_jobs_per_s=rate, admission_rate=1000.0,
                  admission_burst=64, queue_limit=256)
    fields.update(overrides)
    return TenantSpec(**fields)


def _config(**overrides):
    fields = dict(
        device_count=2,
        tenants=(_tenant(),),
        job_count=12,
        seed=0,
        scale=_SCALE,
        overload_watermark=1000,
    )
    fields.update(overrides)
    return FleetConfig(**fields)


class TestFaultFreeFleet:
    def test_every_job_completes(self, store):
        report = Fleet(_config(), profiles=store).run()
        assert report.completed == 12
        assert report.degraded == 0
        assert report.shed == 0
        assert all(o.status == "completed" for o in report.outcomes)
        assert all(o.device in device_names(2) for o in report.outcomes)

    def test_deterministic_end_to_end(self, store):
        first = Fleet(_config(seed=5), profiles=store).run()
        second = Fleet(_config(seed=5), profiles=store).run()
        assert dumps(first) == dumps(second)

    def test_signatures_match_fault_free_baselines(self, store):
        report = Fleet(_config(), profiles=store).run()
        for outcome in report.outcomes:
            expected = store.baseline(outcome.workload).signature
            assert tuple(outcome.signature) == tuple(expected)

    def test_auto_resolved_tenants_get_weighted_rates(self, store):
        config = _config(tenants=(
            TenantSpec(name="big", weight=3.0),
            TenantSpec(name="small", weight=1.0),
        ))
        resolved = Fleet(config, profiles=store).resolve_tenants()
        by_name = {t.name: t for t in resolved}
        assert by_name["big"].rate_jobs_per_s == pytest.approx(
            3.0 * by_name["small"].rate_jobs_per_s
        )


class TestDeviceLossFailover:
    def _loss_config(self, store, max_retries=3):
        # Aim the loss at the midpoint of a job observed on a clean run,
        # so the device is guaranteed to be busy when it dies.
        clean = Fleet(_config(), profiles=store).run()
        victim = clean.outcomes[0]
        midpoint = (victim.first_dispatch_time + victim.finish_time) / 2.0
        plan = FaultPlan(specs=(FaultSpec(
            kind=FaultKind.DEVICE_LOST_MID_JOB,
            at_time=midpoint,
            target=victim.device,
        ),))
        return _config(plan=plan, max_retries=max_retries), victim

    def test_interrupted_job_fails_over_and_degrades(self, store):
        config, victim = self._loss_config(store)
        report = Fleet(config, profiles=store).run()
        outcome = next(o for o in report.outcomes
                       if o.job_id == victim.job_id)
        assert outcome.status == "degraded"
        assert outcome.retries == 1
        assert outcome.device != victim.device  # survivor, not the corpse
        # Failover preserves the result: baseline signature, always.
        assert tuple(outcome.signature) == tuple(
            store.baseline(outcome.workload).signature
        )
        assert report.shed == 0
        assert ("fleet.failovers" in json.loads(dumps(report))
                .get("metrics", {}).get("counters", {}))

    def test_resume_uses_checkpoint_boundaries(self, store):
        config, victim = self._loss_config(store)
        report = Fleet(config, profiles=store).run()
        outcome = next(o for o in report.outcomes
                       if o.job_id == victim.job_id)
        baseline = store.baseline(outcome.workload)
        # The victim had passed its first line boundary by the midpoint
        # iff a boundary <= progress exists; either way the recorded
        # resume offset must be one of the durable boundaries (or 0).
        assert outcome.resumed_from_s in (0.0, *baseline.checkpoint_boundaries)

    def test_retry_budget_exhaustion_sheds_typed(self, store):
        config, victim = self._loss_config(store, max_retries=0)
        report = Fleet(config, profiles=store).run()
        outcome = next(o for o in report.outcomes
                       if o.job_id == victim.job_id)
        assert outcome.status == "shed"
        assert outcome.reason == SHED_RETRY_BUDGET
        assert outcome.error == "FleetError"

    def test_losing_the_only_device_sheds_survivors_typed(self, store):
        clean = Fleet(_config(device_count=1), profiles=store).run()
        victim = clean.outcomes[0]
        midpoint = (victim.first_dispatch_time + victim.finish_time) / 2.0
        plan = FaultPlan(specs=(FaultSpec(
            kind=FaultKind.DEVICE_LOST_MID_JOB,
            at_time=midpoint, target="csd",
        ),))
        report = Fleet(
            _config(device_count=1, plan=plan), profiles=store,
        ).run()
        assert report.completed + report.degraded + report.shed == 12
        sheds = [o for o in report.outcomes if o.status == "shed"]
        assert sheds, "no live devices left; queued jobs must shed loudly"
        assert all(o.reason in (SHED_NO_DEVICES, SHED_RETRY_BUDGET)
                   for o in sheds)
        assert all(o.error is not None for o in sheds)

    def test_rejoin_restores_capacity(self, store):
        clean = Fleet(_config(device_count=1), profiles=store).run()
        victim = clean.outcomes[0]
        midpoint = (victim.first_dispatch_time + victim.finish_time) / 2.0
        plan = FaultPlan(specs=(FaultSpec(
            kind=FaultKind.DEVICE_LOST_MID_JOB,
            at_time=midpoint, target="csd", duration_s=0.5,
        ),))
        report = Fleet(
            _config(device_count=1, plan=plan), profiles=store,
        ).run()
        assert report.shed == 0  # everything eventually ran on the rejoin
        assert ("rejoined" in {what for _, _, what in report.device_events})


class TestGracefulDegradation:
    def test_overload_sheds_lowest_priority_first(self, store):
        config = _config(
            device_count=1,
            tenants=(
                _tenant(name="gold", rate=6.0, priority=3),
                _tenant(name="bronze", rate=6.0, priority=1),
            ),
            job_count=30,
            overload_watermark=2,
        )
        report = Fleet(config, profiles=store).run()
        overloaded = [o for o in report.outcomes
                      if o.reason == SHED_OVERLOAD]
        assert overloaded, "watermark 2 with 30 jobs on 1 device must shed"
        assert all(o.error == "AdmissionError" for o in overloaded)
        # The premium tenant is shed last: bronze absorbs the brunt of
        # the overload (gold sheds only once no bronze is queued), so
        # gold's completion rate must dominate bronze's.
        def rate(tenant, status):
            mine = [o for o in report.outcomes if o.tenant == tenant]
            hits = [o for o in mine if o.status == status]
            return len(hits) / len(mine)

        assert rate("bronze", "shed") > rate("gold", "shed")
        assert rate("gold", "completed") > rate("bronze", "completed")
        shed_tenants = [o.tenant for o in overloaded]
        assert shed_tenants.count("bronze") > shed_tenants.count("gold")

    def test_rate_limited_tenant_sheds_at_the_front_door(self, store):
        config = _config(tenants=(
            _tenant(rate=50.0, admission_rate=1.0, admission_burst=1),
        ))
        report = Fleet(config, profiles=store).run()
        limited = [o for o in report.outcomes
                   if o.reason == SHED_RATE_LIMITED]
        assert limited
        assert all(not o.admitted and o.error == "AdmissionError"
                   for o in limited)

    def test_termination_is_total_under_stress(self, store):
        config = _config(
            device_count=1,
            tenants=(_tenant(rate=40.0, queue_limit=4),),
            job_count=40,
            overload_watermark=3,
        )
        report = Fleet(config, profiles=store).run()
        assert len(report.outcomes) == 40
        statuses = {o.status for o in report.outcomes}
        assert statuses <= {"completed", "degraded", "shed"}
        for outcome in report.outcomes:
            if outcome.status == "shed":
                assert outcome.reason is not None
                assert outcome.error is not None


class TestScaleOut:
    def test_four_devices_beat_one_by_3x(self, store):
        # Same offered traffic (explicit rates), saturating arrival
        # burst: throughput scales near-linearly with devices.
        def run(devices):
            config = _config(
                device_count=devices,
                tenants=(_tenant(rate=60.0),),
                job_count=24,
            )
            return Fleet(config, profiles=store).run()

        one = run(1)
        four = run(4)
        assert one.shed == 0 and four.shed == 0
        assert (four.throughput_jobs_per_s
                >= 3.0 * one.throughput_jobs_per_s)


class TestConfigValidation:
    def test_machine_level_kinds_rejected_in_fleet_plans(self):
        plan = FaultPlan(specs=(FaultSpec(
            kind=FaultKind.CSE_CRASH, at_time=1.0,
        ),))
        with pytest.raises(FleetError, match="machine-level"):
            FleetConfig(plan=plan)

    def test_unknown_device_target_rejected(self):
        plan = FaultPlan(specs=(FaultSpec(
            kind=FaultKind.DEVICE_LOST_MID_JOB, at_time=1.0, target="csd9",
        ),))
        with pytest.raises(FleetError, match="not one of this fleet's"):
            FleetConfig(device_count=2, plan=plan)

    def test_device_names_shape(self):
        assert device_names(3) == ("csd", "csd1", "csd2")
        with pytest.raises(FleetError):
            device_names(0)


class TestFleetKindsStayOffSingleMachines:
    @pytest.mark.parametrize("kind", FLEET_KINDS)
    def test_injector_rejects_fleet_kinds(self, kind):
        machine = build_machine()
        spec = FaultSpec(
            kind=kind, at_time=1.0,
            target="csd" if kind is FaultKind.DEVICE_LOST_MID_JOB else "t",
            duration_s=1.0,
        )
        injector = FaultInjector(machine, FaultPlan(specs=(spec,)))
        with pytest.raises(FaultError, match="fleet-level fault"):
            injector.arm()
