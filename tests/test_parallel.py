"""The parallel campaign runner matches the serial one bit for bit."""

import pytest

from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.errors import ChaosError
from repro.parallel import (
    default_workers,
    merge_metric_snapshots,
    run_campaign_parallel,
)

#: Small scale so the workers-vs-serial comparison runs in seconds.
SCALE = 2 ** -8


class TestParallelMatchesSerial:
    def test_workers4_same_outcomes_as_workers1(self):
        config = CampaignConfig(
            runs=8, base_seed=0, scale=SCALE, collect_metrics=True,
        )
        serial = run_campaign_parallel(config, workers=1)
        parallel = run_campaign_parallel(config, workers=4)
        assert [o.summary() for o in serial.outcomes] == \
               [o.summary() for o in parallel.outcomes]
        assert [o.plan for o in serial.outcomes] == \
               [o.plan for o in parallel.outcomes]
        assert [o.metrics for o in serial.outcomes] == \
               [o.metrics for o in parallel.outcomes]
        assert serial.summary() == parallel.summary()
        assert serial.ok == parallel.ok

    def test_parallel_matches_plain_run_campaign(self):
        config = CampaignConfig(runs=5, base_seed=11, scale=SCALE,
                                collect_metrics=False)
        assert (run_campaign(config).summary()
                == run_campaign_parallel(config, workers=3).summary())

    def test_on_outcome_streams_in_run_order(self):
        config = CampaignConfig(runs=6, scale=SCALE, collect_metrics=False)
        seen = []
        run_campaign_parallel(config, workers=4,
                              on_outcome=lambda o: seen.append(o.seed))
        assert seen == [config.base_seed + r for r in range(6)]

    def test_shrunk_failures_match_serial(self):
        # checkpoint_validate=False is the planted bug: torn-write
        # faults produce real invariant violations to shrink.
        import dataclasses

        from repro.config import DEFAULT_CONFIG

        buggy = dataclasses.replace(DEFAULT_CONFIG, checkpoint_validate=False)
        # Seeds 156..158 on kmeans bracket the known violating seed 157.
        config = CampaignConfig(
            runs=3, workloads=("kmeans",), scale=2 ** -6, base_seed=156,
            system_config=buggy, collect_metrics=False,
        )
        serial = run_campaign(config)
        parallel = run_campaign_parallel(config, workers=4)
        assert serial.violations == parallel.violations
        assert len(serial.failures) == len(parallel.failures)
        for ours, theirs in zip(parallel.failures, serial.failures):
            assert ours.outcome.summary() == theirs.outcome.summary()
            assert ours.shrink.minimal == theirs.shrink.minimal
            assert ours.shrink.probes == theirs.shrink.probes
            assert ours.replay_command == theirs.replay_command

    def test_workers_must_be_positive(self):
        config = CampaignConfig(runs=2, scale=SCALE)
        with pytest.raises(ChaosError, match="workers"):
            run_campaign_parallel(config, workers=0)

    def test_default_workers_at_least_one(self):
        assert default_workers() >= 1


class TestMergeMetricSnapshots:
    def test_counters_sum(self):
        merged = merge_metric_snapshots([
            {"counters": {"a": 1.0, "b": 2.0}, "gauges": {}, "histograms": {}},
            {"counters": {"a": 3.0, "c": 5.0}, "gauges": {}, "histograms": {}},
        ])
        assert merged["counters"] == {"a": 4.0, "b": 2.0, "c": 5.0}

    def test_gauges_last_write_wins(self):
        merged = merge_metric_snapshots([
            {"counters": {}, "gauges": {"depth": 3.0}, "histograms": {}},
            {"counters": {}, "gauges": {"depth": 1.0}, "histograms": {}},
        ])
        assert merged["gauges"] == {"depth": 1.0}

    def test_histograms_accumulate(self):
        histogram = {"buckets": [1.0, 2.0], "counts": [1, 0, 2],
                     "sum": 5.5, "count": 3}
        merged = merge_metric_snapshots([
            {"counters": {}, "gauges": {}, "histograms": {"h": histogram}},
            {"counters": {}, "gauges": {}, "histograms": {"h": histogram}},
        ])
        assert merged["histograms"]["h"] == {
            "buckets": [1.0, 2.0], "counts": [2, 0, 4],
            "sum": 11.0, "count": 6,
        }

    def test_bucket_mismatch_rejected(self):
        with pytest.raises(ChaosError, match="bucket"):
            merge_metric_snapshots([
                {"histograms": {"h": {"buckets": [1.0], "counts": [0, 0],
                                      "sum": 0.0, "count": 0}}},
                {"histograms": {"h": {"buckets": [2.0], "counts": [0, 0],
                                      "sum": 0.0, "count": 0}}},
            ])

    def test_empty_and_none_snapshots_skipped(self):
        merged = merge_metric_snapshots([
            {}, {"counters": {"a": 1.0}},
        ])
        assert merged["counters"] == {"a": 1.0}

    def test_merged_over_real_campaign(self):
        config = CampaignConfig(runs=4, scale=SCALE, collect_metrics=True)
        result = run_campaign_parallel(config, workers=2)
        merged = merge_metric_snapshots(
            [o.metrics for o in result.outcomes if o.metrics]
        )
        total = sum(
            o.metrics["counters"].get("sim.events_fired", 0.0)
            for o in result.outcomes if o.metrics
        )
        assert merged["counters"].get("sim.events_fired", 0.0) == total
