"""The paper's reported numbers, as constants.

Single source of truth for every figure the reproduction compares
against; benchmarks and EXPERIMENTS.md reference these instead of
scattering magic numbers.  Values quote the DAC'23 text verbatim (see
the section markers).
"""

from __future__ import annotations

from .units import GB

#: §V / Fig. 4 — average speedup of programmer-directed static C ISP
#: over the no-ISP C baseline.
FIG4_STATIC_GEOMEAN = 1.33
#: §V / Fig. 4 — average speedup of automatic ActivePy.
FIG4_ACTIVEPY_GEOMEAN = 1.34
#: §V — baseline end-to-end times span this range on the authors' box.
BASELINE_SECONDS_MIN = 11.0   # TPC-H-6
BASELINE_SECONDS_MAX = 73.0   # KMeans

#: §II-B / Fig. 2 — the TPC-H trio's speedup with a dedicated CSE.
FIG2_SPEEDUP_AT_FULL_AVAILABILITY = 1.25
#: §II-B — "suffer from performance loss when the CSD has less than
#: 60% computation time available".
FIG2_LOSS_BELOW_AVAILABILITY = 0.60

#: §V / Fig. 5 — migration gain over the no-migration ablation at 10%.
FIG5_MIGRATION_GAIN_AT_10PCT = 2.82
#: §V / Fig. 5 — ActivePy's average slowdown vs the no-ISP baseline
#: after migrating (code regen + remote live-data access).
FIG5_MIGRATED_SLOWDOWN = 0.08
#: §V / Fig. 5 — loss without migration at 10% availability.
FIG5_LOSS_WITHOUT_MIGRATION_AVG = 0.67
FIG5_LOSS_WITHOUT_MIGRATION_MAX = 0.88

#: §V — language-runtime overhead ladder over the C baseline.
LADDER_PYTHON_OVERHEAD = 0.41
LADDER_CYTHON_OVERHEAD = 0.20
#: §V — compilation overhead the generated code pays once.
LADDER_COMPILE_OVERHEAD_FRACTION = 0.01

#: §V — data-volume prediction accuracy.
PREDICTION_GEOMEAN_ERROR = 0.09
PREDICTION_CSR_OVERESTIMATE_MAX = 2.41

#: §III-A — sampling scaling factors (tiny/small/medium/large).
SAMPLING_FACTORS = (2**-10, 2**-9, 2**-8, 2**-7)
#: §V — "negligible overhead, typically 0.1 sec latency, of the
#: sampling mechanisms and the code-generation phase".
SAMPLING_PLUS_CODEGEN_SECONDS = 0.1

#: §IV-A — platform parameters of the authors' prototype.
PLATFORM_INTERNAL_BANDWIDTH = 9.0 * GB
PLATFORM_NVME_BANDWIDTH = 5.0 * GB
PLATFORM_CSE_CORES = 8
PLATFORM_NAND_CAPACITY = 2000.0 * GB

#: Table I — application input sizes in bytes.
TABLE1_SIZES = {
    "blackscholes": 9.1 * GB,
    "kmeans": 5.3 * GB,
    "lightgbm": 7.1 * GB,
    "matrixmul": 6.0 * GB,
    "mixedgemm": 9.4 * GB,
    "pagerank": 7.7 * GB,
    "tpch_q1": 6.9 * GB,
    "tpch_q6": 6.9 * GB,
    "tpch_q14": 7.1 * GB,
}
