"""The chaos campaign runner.

A campaign is a loop of seeded experiments: run ``r`` picks workload
``workloads[r % len(workloads)]`` and seed ``base_seed + r``, generates
a random :class:`FaultPlan` over the workload's fault-free horizon,
runs the workload on a **fresh machine** under that plan, and checks
the :mod:`~repro.chaos.invariants`.  On a violation the plan is shrunk
(:mod:`~repro.chaos.shrink`) and the failure is reported with the exact
CLI command that replays it.

Everything is derived from ``(workload, seed, fault_count, scale,
config)``, so a reported failure replays bit-for-bit on any machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .._deprecations import warn_once
from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import ChaosError
from ..faults.spec import LOUD_KINDS, SILENT_KINDS, FaultPlan
from ..hw.topology import build_machine
from ..obs import Observability
from ..runtime.activepy import ActivePy, ActivePyReport, RunOptions
from ..workloads import get_workload
from .invariants import InvariantViolation, check_invariants
from .shrink import ShrinkResult, render_plan, shrink_plan

#: Default campaign scale: big enough that plans/migrations are real,
#: small enough that a 200-run campaign finishes in tens of seconds.
DEFAULT_SCALE = 2 ** -6

#: The default campaign rotation — diverse plan shapes (all-device,
#: mixed, migration-prone) without paying for the whole suite.
DEFAULT_WORKLOADS = ("tpch_q6", "kmeans", "blackscholes", "pagerank")


@dataclass(frozen=True)
class ChaosRunOutcome:
    """One seeded experiment, judged.

    ``fault_event_count`` counts every :class:`~repro.faults.FaultEvent`
    the run logged — injected faults *and* the runtime's recovery
    actions (the old name ``faults_injected`` undersold what it
    counted; it survives as a deprecated property).  ``metrics`` is the
    run's final observability snapshot when the campaign collects one.
    """

    workload: str
    seed: int
    plan: FaultPlan
    violations: Tuple[InvariantViolation, ...]
    degraded: Optional[bool]
    fault_event_count: int
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def faults_injected(self) -> int:
        """Deprecated alias for :attr:`fault_event_count`."""
        warn_once(
            "ChaosRunOutcome.faults_injected",
            "ChaosRunOutcome.faults_injected is deprecated and will be "
            "removed; read fault_event_count (same value, honest name: it "
            "counts recovery actions too, not just injected faults)",
            stacklevel=2,
        )
        return self.fault_event_count

    def summary(self) -> Dict[str, Any]:
        """The judged outcome, JSON-ready (metrics omitted)."""
        return {
            "workload": self.workload,
            "seed": self.seed,
            "ok": self.ok,
            "degraded": self.degraded,
            "fault_event_count": self.fault_event_count,
            "violations": [v.render() for v in self.violations],
        }

    def to_jsonable(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": "chaos-run"}
        payload.update(self.summary())
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        return payload


@dataclass(frozen=True)
class ShrunkFailure:
    """A violating run distilled to its minimal reproducing plan."""

    outcome: ChaosRunOutcome
    shrink: ShrinkResult
    replay_command: str

    def render(self) -> str:
        lines = [
            f"FAILURE: {self.outcome.workload} seed={self.outcome.seed}",
        ]
        for violation in self.outcome.violations:
            lines.append(f"  violated  {violation.render()}")
        lines.append(
            f"  shrunk    {len(self.outcome.plan)} fault(s) -> "
            f"{len(self.shrink.minimal)} ({self.shrink.probes} probe(s))"
        )
        for text in render_plan(self.shrink.minimal):
            lines.append(f"    - {text}")
        lines.append(f"  replay    {self.replay_command}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CampaignConfig:
    """What to throw at the stack, and how hard."""

    runs: int = 25
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    base_seed: int = 0
    fault_count: int = 3
    scale: float = DEFAULT_SCALE
    system_config: SystemConfig = DEFAULT_CONFIG
    shrink_failures: bool = True
    max_shrink_probes: int = 128
    #: Widen the fault-plan kind pool to include the silent-corruption
    #: kinds (:data:`~repro.faults.spec.SILENT_KINDS`).  Off by default:
    #: silent faults are only survivable with the integrity layer on, so
    #: campaigns opt in together with ``integrity_enabled``.
    silent_corruption: bool = False
    #: Attach a per-run metrics snapshot to every outcome — the numbers
    #: a violation repro needs (retries, fallbacks, torn writes) without
    #: re-running under a debugger.
    collect_metrics: bool = True

    def __post_init__(self) -> None:
        # "0 runs, all invariants held" is the kind of vacuous green a
        # CI gate must never report.
        if self.runs < 1:
            raise ChaosError(f"runs must be at least 1, got {self.runs}")
        if self.fault_count < 1:
            raise ChaosError(
                f"fault_count must be at least 1, got {self.fault_count}"
            )
        if not self.workloads:
            raise ChaosError("workloads must not be empty")


@dataclass
class CampaignResult:
    """Every outcome plus the shrunk failures, ready to render."""

    config: CampaignConfig
    outcomes: List[ChaosRunOutcome] = field(default_factory=list)
    failures: List[ShrunkFailure] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.failures and all(o.ok for o in self.outcomes)

    def render(self) -> str:
        degraded = sum(1 for o in self.outcomes if o.degraded)
        lines = [
            f"chaos campaign: {self.runs} run(s) across "
            f"{len(self.config.workloads)} workload(s), "
            f"seeds {self.config.base_seed}.."
            f"{self.config.base_seed + max(self.runs - 1, 0)}",
            f"  fault events    : "
            f"{sum(o.fault_event_count for o in self.outcomes)}",
            f"  degraded runs   : {degraded}/{self.runs}",
            f"  violations      : {self.violations}",
        ]
        for failure in self.failures:
            lines.append("")
            lines.append(failure.render())
        if self.ok:
            lines.append("  all invariants held")
        return "\n".join(lines)

    # --- the common report protocol (see analysis/export.py) ---------------

    def summary(self) -> Dict[str, Any]:
        """Campaign headline: pass/fail counts, JSON-ready."""
        return {
            "runs": self.runs,
            "ok": self.ok,
            "violations": self.violations,
            "failures": len(self.failures),
            "fault_event_count": sum(
                o.fault_event_count for o in self.outcomes
            ),
            "degraded_runs": sum(1 for o in self.outcomes if o.degraded),
            "workloads": list(self.config.workloads),
            "base_seed": self.config.base_seed,
        }

    def to_jsonable(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": "chaos-campaign"}
        payload.update(self.summary())
        payload["outcomes"] = [o.to_jsonable() for o in self.outcomes]
        payload["failures"] = [
            {
                "workload": f.outcome.workload,
                "seed": f.outcome.seed,
                "minimal_plan": list(render_plan(f.shrink.minimal)),
                "shrink_probes": f.shrink.probes,
                "replay": f.replay_command,
            }
            for f in self.failures
        ]
        return payload


class ChaosHarness:
    """Builds and judges seeded fault runs for one campaign setting.

    The fault-free baseline per workload is computed once and cached:
    it supplies both the invariant reference (result signature) and the
    time horizon random fault plans are drawn over.
    """

    def __init__(
        self,
        system_config: SystemConfig = DEFAULT_CONFIG,
        scale: float = DEFAULT_SCALE,
        fault_count: int = 3,
        collect_metrics: bool = False,
        silent_corruption: bool = False,
    ) -> None:
        self.system_config = system_config
        self.scale = scale
        self.fault_count = fault_count
        self.collect_metrics = collect_metrics
        self.silent_corruption = silent_corruption
        self._baselines: Dict[str, ActivePyReport] = {}

    # --- building blocks --------------------------------------------------

    def baseline(self, workload_name: str) -> ActivePyReport:
        """The cached fault-free run of a workload at this setting."""
        if workload_name not in self._baselines:
            workload = get_workload(workload_name, scale=self.scale)
            machine = build_machine(self.system_config)
            self._baselines[workload_name] = ActivePy(self.system_config).run(
                workload.program, workload.dataset, machine=machine,
            )
        return self._baselines[workload_name]

    def plan_for(self, workload_name: str, seed: int) -> FaultPlan:
        """The deterministic fault plan run ``(workload, seed)`` uses.

        Fault times are aimed past most of the sampling/compile prefix
        (where they would all collapse onto the first chunk boundary)
        into the window where chunks are actually in flight.
        """
        baseline = self.baseline(workload_name)
        offset = 0.8 * baseline.overhead_seconds
        # LOUD_KINDS is the historical pool; appending the silent kinds
        # (rather than replacing) keeps loud plans for a given seed
        # related to their silent-campaign counterparts.
        kinds = LOUD_KINDS + SILENT_KINDS if self.silent_corruption else None
        return FaultPlan.random(
            seed=seed,
            horizon_s=baseline.total_seconds - offset,
            count=self.fault_count,
            offset_s=offset,
            kinds=kinds,
        )

    def run_plan(self, workload_name: str, plan: FaultPlan,
                 seed: Optional[int] = None) -> ChaosRunOutcome:
        """Run one workload under one plan on a fresh machine and judge it."""
        baseline = self.baseline(workload_name)
        workload = get_workload(workload_name, scale=self.scale)
        obs = Observability() if self.collect_metrics else None
        machine = build_machine(self.system_config, obs=obs)
        try:
            report = ActivePy(self.system_config).run(
                workload.program, workload.dataset, machine=machine,
                options=RunOptions(fault_plan=plan, obs=obs),
            )
        except Exception as exc:  # noqa: BLE001 — the invariant under test
            return ChaosRunOutcome(
                workload=workload_name,
                seed=plan.seed if seed is None else seed,
                plan=plan,
                violations=(InvariantViolation(
                    "no-unhandled-exception",
                    f"{type(exc).__name__}: {exc}",
                ),),
                degraded=None,
                fault_event_count=0,
                # The snapshot matters *most* here: it shows what the
                # machine was doing when the run blew up.
                metrics=obs.snapshot() if obs is not None else None,
            )
        violations = check_invariants(report, baseline, workload.program)
        return ChaosRunOutcome(
            workload=workload_name,
            seed=plan.seed if seed is None else seed,
            plan=plan,
            violations=tuple(violations),
            degraded=report.result.degraded,
            fault_event_count=len(report.result.fault_events),
            metrics=obs.snapshot() if obs is not None else None,
        )

    def run_seed(self, workload_name: str, seed: int) -> ChaosRunOutcome:
        """One fully seeded experiment (the replay entry point)."""
        return self.run_plan(workload_name, self.plan_for(workload_name, seed),
                             seed=seed)

    def reproducer(self, workload_name: str) -> Callable[[FaultPlan], bool]:
        """Predicate for the shrinker: does this plan still violate?"""
        def reproduces(candidate: FaultPlan) -> bool:
            return not self.run_plan(workload_name, candidate).ok
        return reproduces


def replay_command(outcome: ChaosRunOutcome, config: CampaignConfig) -> str:
    parts = [
        "python -m repro chaos",
        f"--workload {outcome.workload}",
        f"--seed {outcome.seed}",
        f"--fault-count {config.fault_count}",
    ]
    if config.scale != DEFAULT_SCALE:
        parts.append(f"--scale {config.scale}")
    if not config.system_config.checkpoint_validate:
        parts.append("--no-validate")
    if config.silent_corruption:
        parts.append("--sdc")
    if (config.system_config.integrity_enabled
            and not config.system_config.integrity_verify):
        parts.append("--no-verify")
    return " ".join(parts)


def run_campaign(
    config: CampaignConfig,
    on_outcome: Optional[Callable[[ChaosRunOutcome], None]] = None,
) -> CampaignResult:
    """Run a full campaign; shrink and report every violating run."""
    harness = ChaosHarness(
        system_config=config.system_config,
        scale=config.scale,
        fault_count=config.fault_count,
        collect_metrics=config.collect_metrics,
        silent_corruption=config.silent_corruption,
    )
    result = CampaignResult(config=config)
    for run in range(config.runs):
        workload_name = config.workloads[run % len(config.workloads)]
        seed = config.base_seed + run
        outcome = harness.run_seed(workload_name, seed)
        result.outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)
        if outcome.ok:
            continue
        if config.shrink_failures and len(outcome.plan) > 0:
            shrunk = shrink_plan(
                outcome.plan,
                harness.reproducer(workload_name),
                max_probes=config.max_shrink_probes,
            )
        else:
            shrunk = ShrinkResult(
                minimal=outcome.plan, probes=0, budget_exhausted=False,
            )
        result.failures.append(ShrunkFailure(
            outcome=outcome,
            shrink=shrunk,
            replay_command=replay_command(outcome, config),
        ))
    return result
