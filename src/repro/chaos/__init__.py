"""Chaos campaigns: randomized fault composition with shrinking.

PR 1 made individual faults injectable and deterministic; this package
turns them into an adversary.  A campaign generates seeded random
:class:`~repro.faults.FaultPlan`s, runs every registered workload under
them, and checks a set of cross-run **invariants** — the contract the
fault-tolerant runtime must honour no matter what is thrown at it:

* the run completes with a result (``degraded=True`` is the only legal
  failure mode — an unhandled exception never is);
* the logical result matches the fault-free run (same program, same
  lines, in order);
* the simulated clock is monotone and every fault event falls inside
  the run;
* **work conservation**: every line executes at least its chunk count
  across device and host — a corrupt resume point that *skips* work is
  exactly what this catches.

On a violation the failing plan is **shrunk** delta-debugging-style to
a minimal reproducing plan and reported with its seed, so one CLI
command (``repro chaos --workload W --seed S``) replays the distilled
failure.
"""

from .campaign import (
    CampaignConfig,
    CampaignResult,
    ChaosHarness,
    ChaosRunOutcome,
    ShrunkFailure,
    run_campaign,
)
from .invariants import InvariantViolation, check_invariants, run_signature
from .shrink import ShrinkResult, shrink_plan

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ChaosHarness",
    "ChaosRunOutcome",
    "InvariantViolation",
    "ShrinkResult",
    "ShrunkFailure",
    "check_invariants",
    "run_campaign",
    "run_signature",
    "shrink_plan",
]
