"""Delta-debugging minimisation of a failing :class:`FaultPlan`.

A campaign failure usually involves a plan of several faults, most of
which are bystanders.  ``shrink_plan`` runs Zeller's ddmin over the
plan's specs: repeatedly re-run the workload on fresh machines with
subsets of the faults removed, keeping any smaller plan that still
reproduces the violation.  Because fault injection is deterministic,
the ``reproduces`` predicate is a pure function of the plan and the
search converges to a **1-minimal** plan — removing any single
remaining fault makes the violation disappear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from ..faults.spec import FaultPlan, FaultSpec


@dataclass(frozen=True)
class ShrinkResult:
    """The distilled plan plus the cost of finding it."""

    minimal: FaultPlan
    #: How many candidate plans were executed.
    probes: int
    #: True when the probe budget ran out before convergence (the
    #: returned plan still reproduces, it just may not be 1-minimal).
    budget_exhausted: bool


def shrink_plan(
    plan: FaultPlan,
    reproduces: Callable[[FaultPlan], bool],
    max_probes: int = 128,
) -> ShrinkResult:
    """Minimise ``plan`` while ``reproduces(candidate)`` stays true.

    ``reproduces`` must be deterministic (run the candidate on a fresh
    machine and report whether the invariant violation recurs) and must
    hold for ``plan`` itself — that is asserted up front so a flaky
    predicate fails loudly instead of "shrinking" to nonsense.
    """
    probes = 0
    exhausted = False

    def probe(candidate: FaultPlan) -> bool:
        nonlocal probes
        probes += 1
        return reproduces(candidate)

    if not probe(plan):
        raise ValueError(
            "the full plan does not reproduce the violation; refusing to shrink"
        )

    specs: List[FaultSpec] = list(plan.sorted_specs())
    granularity = 2
    while len(specs) >= 2:
        if probes >= max_probes:
            exhausted = True
            break
        chunk = max(1, len(specs) // granularity)
        reduced = False
        # Try every complement: the plan with one chunk of faults removed.
        for start in range(0, len(specs), chunk):
            complement = specs[:start] + specs[start + chunk:]
            if not complement:
                continue
            if probes >= max_probes:
                exhausted = True
                break
            if probe(FaultPlan(specs=tuple(complement), seed=plan.seed)):
                specs = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if exhausted:
            break
        if not reduced:
            if granularity >= len(specs):
                # Every single-fault removal was tried and none
                # reproduces: the plan is 1-minimal.
                break
            granularity = min(len(specs), granularity * 2)

    return ShrinkResult(
        minimal=FaultPlan(specs=tuple(specs), seed=plan.seed),
        probes=probes,
        budget_exhausted=exhausted,
    )


def render_plan(plan: FaultPlan) -> Tuple[str, ...]:
    """Human-readable one-liners for each fault in a plan."""
    lines = []
    for spec in plan.sorted_specs():
        parts = [f"{spec.kind.value} @ {spec.at_time:.6f}s on {spec.target}"]
        if spec.duration_s:
            parts.append(f"duration {spec.duration_s:.6f}s")
        if spec.count != 1:
            parts.append(f"count {spec.count}")
        if spec.factor != 1.0:
            parts.append(f"factor {spec.factor:.2f}")
        if spec.persistent:
            parts.append("persistent")
        lines.append(", ".join(parts))
    return tuple(lines)
