"""The contract a faulted run must honour, checkable after the fact.

Each invariant inspects one :class:`~repro.runtime.activepy.ActivePyReport`
against the fault-free run of the same workload.  Violations are data,
not exceptions: the campaign collects them, and the shrinker uses
"produces at least one violation" as its reproduction predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: Recovery actions that imply the run must be flagged degraded.
_DEGRADING_ACTIONS = ("host-fallback", "line-replay-host", "device-dead")


@dataclass(frozen=True)
class InvariantViolation:
    """One broken guarantee, with enough detail to read the story."""

    name: str
    detail: str

    def render(self) -> str:
        return f"{self.name}: {self.detail}"


def run_signature(report) -> Tuple[str, Tuple[str, ...], str]:
    """The logical outcome of a run: program, lines in order, content digest.

    The simulator charges costs rather than computing values, so two
    runs are "result-equal" when they executed the same program lines
    in the same order to completion — a faulted run may relocate work,
    never drop or reorder it.  The trailing ``output_digest``
    (:mod:`repro.integrity`) is the content signature of the reported
    result: silent corruption that survives into the report perturbs the
    digest even though every line still "ran", which is what makes
    undetected corruption visible to result-equality at all.
    """
    result = report.result
    digest = getattr(result, "output_digest", "")
    return (result.program_name, tuple(t.name for t in result.line_timings), digest)


def check_invariants(report, baseline, program) -> List[InvariantViolation]:
    """All invariant violations of ``report`` vs the fault-free ``baseline``."""
    violations: List[InvariantViolation] = []
    result = report.result

    # 1. Legal degradation: degraded is a bool, and any recovery that
    #    moved work off its planned unit must have set it.
    if not isinstance(result.degraded, bool):
        violations.append(InvariantViolation(
            "legal-degradation", f"degraded is {result.degraded!r}, not a bool",
        ))
    else:
        actions = {event.action for event in result.fault_events}
        demoted = actions.intersection(_DEGRADING_ACTIONS)
        if demoted and not result.degraded:
            violations.append(InvariantViolation(
                "legal-degradation",
                f"recovery action(s) {sorted(demoted)} occurred but the run "
                f"is not flagged degraded",
            ))

    # 2. Result equality: same program, same lines, same order.
    expected = run_signature(baseline)
    actual = run_signature(report)
    if actual != expected:
        violations.append(InvariantViolation(
            "result-equality", f"expected {expected}, got {actual}",
        ))

    # 2b. Corruption detected before report: a run whose signature
    #     differs from the fault-free baseline without a single
    #     ``integrity-detected`` event means corrupted data flowed into
    #     the report with nothing in the machine noticing — the exact
    #     failure mode end-to-end checksums exist to rule out.
    if actual != expected:
        detections = [
            event for event in result.fault_events
            if event.action == "integrity-detected"
        ]
        if not detections:
            violations.append(InvariantViolation(
                "corruption-detected-before-report",
                "report signature differs from the fault-free baseline "
                "but no integrity-detected event was recorded — silent "
                "corruption reached the report undetected",
            ))

    # 3. Sim-clock monotonicity: the run occupies a well-formed time
    #    span and every fault event falls inside it, in order.
    if not (0.0 <= result.started_at <= result.finished_at):
        violations.append(InvariantViolation(
            "clock-monotonic",
            f"run span [{result.started_at}, {result.finished_at}] is invalid",
        ))
    if any(t.seconds < 0 for t in result.line_timings):
        violations.append(InvariantViolation(
            "clock-monotonic", "a line reports negative duration",
        ))
    times = [event.time for event in result.fault_events]
    if any(later < earlier for earlier, later in zip(times, times[1:])):
        violations.append(InvariantViolation(
            "clock-monotonic", "fault events are not in time order",
        ))
    eps = 1e-9
    if any(t < -eps or t > result.finished_at + eps for t in times):
        violations.append(InvariantViolation(
            "clock-monotonic", "a fault event lies outside the run's time span",
        ))

    # 4. Work conservation ("byte conservation" at chunk granularity):
    #    every line must execute at least its chunk count across device
    #    and host — replays may repeat work, nothing may skip it.  A
    #    corrupt resume point trusted blindly fails exactly here.
    for index, statement in enumerate(program):
        executed = result.chunks_executed.get(index, 0)
        if executed < statement.chunks:
            violations.append(InvariantViolation(
                "work-conservation",
                f"line {index} ({statement.name}) executed {executed} of "
                f"{statement.chunks} chunks — work was skipped",
            ))
    if result.d2h_bytes < 0 or result.remote_access_bytes < 0:
        violations.append(InvariantViolation(
            "work-conservation", "negative transfer byte accounting",
        ))

    return violations


def describe_outcome(violations: List[InvariantViolation],
                     error: Optional[str]) -> str:
    if error is not None:
        return f"unhandled exception: {error}"
    if not violations:
        return "ok"
    return "; ".join(v.render() for v in violations)
