"""ActivePy reproduction: transparent Python offload for in-storage processing.

Reproduces "Rethinking Programming Frameworks for In-Storage
Processing" (Liu, Hsu, Tseng — DAC 2023) as a complete system over a
simulated computational storage device.

Quick start::

    from repro import ActivePy, get_workload, run_c_baseline

    workload = get_workload("tpch_q6")
    report = ActivePy().run(workload.program, workload.dataset)
    baseline = run_c_baseline(workload.program, workload.dataset)
    print(baseline.total_seconds / report.total_seconds)  # ~1.2-1.4x

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .config import DEFAULT_CONFIG, SystemConfig
from .errors import (
    DeadlineError,
    DeviceLostError,
    FaultError,
    ObservabilityError,
    ReproError,
    UncorrectableMediaError,
)
from .faults import FaultEvent, FaultInjector, FaultKind, FaultLog, FaultPlan, FaultSpec
from .frontend import program_from_function
from .hw.topology import Machine, build_machine
from .lang.dataset import Dataset
from .lang.program import Program, Statement
from .obs import Observability
from .runtime.activepy import ActivePy, ActivePyReport, RunOptions
from .runtime.codegen import ExecutionMode
from .runtime.estimator import net_profit
from .runtime.planner import Plan, assign_csd_code
from .baselines import (
    StaticIspBaseline,
    run_c_baseline,
    run_cython_baseline,
    run_python_baseline,
)
from .workloads import Workload, all_workloads, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "ActivePy",
    "ActivePyReport",
    "DEFAULT_CONFIG",
    "Dataset",
    "DeadlineError",
    "DeviceLostError",
    "ExecutionMode",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "Machine",
    "Observability",
    "ObservabilityError",
    "Plan",
    "Program",
    "ReproError",
    "RunOptions",
    "UncorrectableMediaError",
    "Statement",
    "StaticIspBaseline",
    "SystemConfig",
    "Workload",
    "all_workloads",
    "assign_csd_code",
    "build_machine",
    "get_workload",
    "net_profit",
    "program_from_function",
    "run_c_baseline",
    "run_cython_baseline",
    "run_python_baseline",
    "workload_names",
    "__version__",
]
