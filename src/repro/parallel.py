"""Parallel chaos-campaign execution over a process pool.

A campaign is embarrassingly parallel: every run is derived entirely
from ``(workload, seed, fault_count, scale, config)`` on a fresh
machine, so run ``r`` can execute in any process without changing its
outcome.  This module partitions the campaign's run indices across a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping the
result **bit-identical** to :func:`~repro.chaos.campaign.run_campaign`:

- the task list ``[(workloads[r % len(workloads)], base_seed + r)]`` is
  exactly the serial iteration order, and ``Executor.map`` returns
  results in submission order, so ``CampaignResult.outcomes`` is the
  same list;
- shrinking of violating plans stays in the parent process, sequential
  and in run order, so ``failures`` and their replay commands match the
  serial runner's byte for byte.

Workers are seeded with a :class:`~repro.chaos.campaign.ChaosHarness`.
On platforms with ``fork`` (the common Linux case) the parent builds
the harness — including the fault-free baselines every plan is drawn
over — *before* the pool starts, and children inherit the warm state
for free.  Where only ``spawn`` is available each worker rebuilds the
harness from the (picklable) campaign parameters in its initializer.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple

from .chaos.campaign import (
    CampaignConfig,
    CampaignResult,
    ChaosHarness,
    ChaosRunOutcome,
    ShrunkFailure,
    replay_command,
    run_campaign,
)
from .chaos.shrink import ShrinkResult, shrink_plan
from .config import SystemConfig
from .errors import ChaosError

__all__ = [
    "default_workers",
    "merge_metric_snapshots",
    "ordered_pool_map",
    "run_campaign_parallel",
]

#: Harness the pool workers run seeds on.  Under ``fork`` the parent
#: sets this (pre-warmed) before the pool starts and children inherit
#: it; under ``spawn`` the initializer builds it per worker.
_WORKER_HARNESS: Optional[ChaosHarness] = None


def default_workers() -> int:
    """A sensible worker count for this machine (at least 1)."""
    return max(1, os.cpu_count() or 1)


def _init_worker(
    system_config: SystemConfig,
    scale: float,
    fault_count: int,
    collect_metrics: bool,
    silent_corruption: bool,
) -> None:
    global _WORKER_HARNESS
    if _WORKER_HARNESS is None:
        _WORKER_HARNESS = ChaosHarness(
            system_config=system_config,
            scale=scale,
            fault_count=fault_count,
            collect_metrics=collect_metrics,
            silent_corruption=silent_corruption,
        )


def _run_task(task: Tuple[str, int]) -> ChaosRunOutcome:
    workload_name, seed = task
    harness = _WORKER_HARNESS
    if harness is None:  # pragma: no cover - initializer always ran
        raise ChaosError("campaign worker started without a harness")
    return harness.run_seed(workload_name, seed)


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer ``fork`` (inherits the warm harness); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def ordered_pool_map(
    fn: Callable[[Any], Any],
    items: List[Any],
    *,
    workers: int,
    initializer: Optional[Callable[[], None]] = None,
) -> List[Any]:
    """``[fn(x) for x in items]`` across a pool, results in input order.

    The deterministic fan-out the campaign runner uses, factored out
    for any caller whose ``fn`` is a pure function of its item (given
    worker state the parent installs before the pool forks): results
    come back in submission order via ``Executor.map``, so for a
    deterministic ``fn`` the returned list is bit-identical to the
    serial comprehension — the property the plan search's
    ``workers=N == workers=1`` guarantee rests on.

    ``fn`` (and ``initializer``, used to rebuild worker state under
    ``spawn``) must be module-level callables so they pickle.
    ``workers <= 1`` or fewer than two items short-circuits to the
    serial comprehension without touching multiprocessing at all.
    """
    if workers < 1:
        raise ChaosError(f"workers must be at least 1, got {workers}")
    if workers == 1 or len(items) < 2:
        if initializer is not None:
            initializer()
        return [fn(item) for item in items]
    context = _pool_context()
    with ProcessPoolExecutor(
        max_workers=min(workers, len(items)),
        mp_context=context,
        initializer=initializer,
    ) as pool:
        return list(pool.map(fn, items))


def run_campaign_parallel(
    config: CampaignConfig,
    workers: int,
    on_outcome: Optional[Callable[[ChaosRunOutcome], None]] = None,
) -> CampaignResult:
    """Run a campaign across ``workers`` processes.

    Produces the same :class:`CampaignResult` as the serial
    :func:`~repro.chaos.campaign.run_campaign` for the same config —
    same outcomes in the same order, same shrunk failures — it just
    gets there on more cores.  ``on_outcome`` fires in the parent, in
    run order, as results stream back.
    """
    if workers < 1:
        raise ChaosError(f"workers must be at least 1, got {workers}")
    if workers == 1 or config.runs == 1:
        return run_campaign(config, on_outcome=on_outcome)

    global _WORKER_HARNESS
    harness = ChaosHarness(
        system_config=config.system_config,
        scale=config.scale,
        fault_count=config.fault_count,
        collect_metrics=config.collect_metrics,
        silent_corruption=config.silent_corruption,
    )
    context = _pool_context()
    if context.get_start_method() == "fork":
        # Pre-warm the baselines the fault plans are drawn over so every
        # forked child inherits them instead of recomputing per worker.
        for name in config.workloads:
            harness.baseline(name)
    tasks = [
        (config.workloads[run % len(config.workloads)],
         config.base_seed + run)
        for run in range(config.runs)
    ]
    result = CampaignResult(config=config)
    _WORKER_HARNESS = harness
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, config.runs),
            mp_context=context,
            initializer=_init_worker,
            initargs=(config.system_config, config.scale,
                      config.fault_count, config.collect_metrics,
                      config.silent_corruption),
        ) as pool:
            for outcome in pool.map(_run_task, tasks):
                result.outcomes.append(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
    finally:
        _WORKER_HARNESS = None
    # Shrinking stays sequential in the parent: it is a bisection over
    # re-runs, inherently serial, and doing it here keeps failure order
    # and probe counts identical to the serial runner.
    for outcome in result.outcomes:
        if outcome.ok:
            continue
        if config.shrink_failures and len(outcome.plan) > 0:
            shrunk = shrink_plan(
                outcome.plan,
                harness.reproducer(outcome.workload),
                max_probes=config.max_shrink_probes,
            )
        else:
            shrunk = ShrinkResult(
                minimal=outcome.plan, probes=0, budget_exhausted=False,
            )
        result.failures.append(ShrunkFailure(
            outcome=outcome,
            shrink=shrunk,
            replay_command=replay_command(outcome, config),
        ))
    return result


def merge_metric_snapshots(
    snapshots: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Fold per-run observability snapshots into one campaign envelope.

    Counters and histogram tallies sum across runs; a gauge keeps the
    value from the *last* snapshot that set it (gauges are point-in-time
    readings, so "sum" would be meaningless — last-write matches what a
    single registry would hold after a serial campaign).  Histograms
    must agree on bucket bounds, which they do by construction (bounds
    are fixed at creation from shared defaults).
    """
    merged: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            merged["gauges"][name] = value
        for name, histogram in snapshot.get("histograms", {}).items():
            base = merged["histograms"].get(name)
            if base is None:
                merged["histograms"][name] = {
                    "buckets": list(histogram["buckets"]),
                    "counts": list(histogram["counts"]),
                    "sum": histogram["sum"],
                    "count": histogram["count"],
                }
                continue
            if base["buckets"] != list(histogram["buckets"]):
                raise ChaosError(
                    f"histogram {name!r} bucket bounds differ across runs"
                )
            base["counts"] = [
                a + b for a, b in zip(base["counts"], histogram["counts"])
            ]
            base["sum"] += histogram["sum"]
            base["count"] += histogram["count"]
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged
