"""Gradient-boosted decision trees, from scratch.

A histogram-based GBDT in the LightGBM style: features are quantised
into a fixed number of bins, split gains are computed from per-bin
gradient histograms, and trees grow depth-wise to a height limit.
Squared-error loss (regression) is what the evaluation workload uses:
the LightGBM application in the paper is batch *inference* over a large
stored feature table, so training happens once at model-build time and
the hot path is :meth:`GBDTModel.predict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import WorkloadError


@dataclass
class TreeNode:
    """One node of a regression tree (leaf iff ``feature`` is None)."""

    feature: Optional[int] = None
    threshold_bin: int = 0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None

    def depth(self) -> int:
        if self.is_leaf:
            return 0
        left_depth = self.left.depth() if self.left else 0
        right_depth = self.right.depth() if self.right else 0
        return 1 + max(left_depth, right_depth)

    def node_count(self) -> int:
        if self.is_leaf:
            return 1
        count = 1
        if self.left:
            count += self.left.node_count()
        if self.right:
            count += self.right.node_count()
        return count


def quantise_features(features: np.ndarray, n_bins: int = 64) -> tuple:
    """Bin features into uint8 codes; returns (codes, bin_edges).

    Edges come from per-feature quantiles so skewed features still
    spread across bins.  This is also the workload's "feature
    quantisation" offload step: 8 bytes per value in, 1 byte out.
    """
    if features.ndim != 2:
        raise WorkloadError(f"features must be 2-D, got shape {features.shape}")
    if not 2 <= n_bins <= 256:
        raise WorkloadError(f"n_bins must lie in [2, 256], got {n_bins}")
    quantiles = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    edges = np.quantile(features, quantiles, axis=0)  # (n_bins-1, d)
    codes = np.empty(features.shape, dtype=np.uint8)
    for j in range(features.shape[1]):
        codes[:, j] = np.searchsorted(edges[:, j], features[:, j]).astype(np.uint8)
    return codes, edges


def _best_split(
    codes: np.ndarray,
    gradients: np.ndarray,
    row_mask: np.ndarray,
    n_bins: int,
    min_samples: int,
    lam: float,
) -> Optional[tuple]:
    """Best (feature, bin, gain) over histogram splits, or None."""
    rows = np.flatnonzero(row_mask)
    if rows.size < 2 * min_samples:
        return None
    g = gradients[rows]
    total_g = g.sum()
    total_n = rows.size
    parent_score = total_g * total_g / (total_n + lam)
    best = None
    for feature in range(codes.shape[1]):
        col = codes[rows, feature]
        hist_g = np.bincount(col, weights=g, minlength=n_bins)
        hist_n = np.bincount(col, minlength=n_bins)
        left_g = np.cumsum(hist_g)[:-1]
        left_n = np.cumsum(hist_n)[:-1]
        right_g = total_g - left_g
        right_n = total_n - left_n
        valid = (left_n >= min_samples) & (right_n >= min_samples)
        if not np.any(valid):
            continue
        gains = np.where(
            valid,
            left_g**2 / (left_n + lam) + right_g**2 / (right_n + lam) - parent_score,
            -np.inf,
        )
        bin_idx = int(np.argmax(gains))
        gain = float(gains[bin_idx])
        if gain > 0 and (best is None or gain > best[2]):
            best = (feature, bin_idx, gain)
    return best


def _grow_tree(
    codes: np.ndarray,
    gradients: np.ndarray,
    row_mask: np.ndarray,
    depth_left: int,
    n_bins: int,
    min_samples: int,
    lam: float,
    learning_rate: float,
) -> TreeNode:
    rows = np.flatnonzero(row_mask)
    leaf_value = float(gradients[rows].sum() / (rows.size + lam)) * learning_rate
    if depth_left == 0:
        return TreeNode(value=leaf_value)
    split = _best_split(codes, gradients, row_mask, n_bins, min_samples, lam)
    if split is None:
        return TreeNode(value=leaf_value)
    feature, threshold_bin, _ = split
    goes_left = row_mask & (codes[:, feature] <= threshold_bin)
    goes_right = row_mask & ~ (codes[:, feature] <= threshold_bin)
    return TreeNode(
        feature=feature,
        threshold_bin=threshold_bin,
        left=_grow_tree(
            codes, gradients, goes_left, depth_left - 1,
            n_bins, min_samples, lam, learning_rate,
        ),
        right=_grow_tree(
            codes, gradients, goes_right, depth_left - 1,
            n_bins, min_samples, lam, learning_rate,
        ),
    )


def _predict_tree(node: TreeNode, codes: np.ndarray) -> np.ndarray:
    """Vectorised traversal of one tree over binned rows."""
    if node.is_leaf:
        return np.full(codes.shape[0], node.value)
    out = np.empty(codes.shape[0])
    goes_left = codes[:, node.feature] <= node.threshold_bin
    if node.left is not None:
        out[goes_left] = _predict_tree(node.left, codes[goes_left])
    if node.right is not None:
        out[~goes_left] = _predict_tree(node.right, codes[~goes_left])
    return out


@dataclass
class GBDTModel:
    """A trained boosted ensemble over quantised features."""

    trees: List[TreeNode]
    bin_edges: np.ndarray
    base_score: float
    n_bins: int

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    def quantise(self, features: np.ndarray) -> np.ndarray:
        """Bin raw features with the training-time edges."""
        codes = np.empty(features.shape, dtype=np.uint8)
        for j in range(features.shape[1]):
            codes[:, j] = np.searchsorted(
                self.bin_edges[:, j], features[:, j]
            ).astype(np.uint8)
        return codes

    def predict_codes(self, codes: np.ndarray) -> np.ndarray:
        """Predict from already-binned rows (the CSD-friendly hot path)."""
        out = np.full(codes.shape[0], self.base_score)
        for tree in self.trees:
            out += _predict_tree(tree, codes)
        return out

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Quantise then predict — the end-to-end inference path."""
        return self.predict_codes(self.quantise(features))

    def feature_importance(self) -> np.ndarray:
        """Split counts per feature across the ensemble (normalised).

        The standard "how often did a feature decide a split" measure;
        sums to 1 for a non-trivial ensemble.
        """
        counts = np.zeros(self.bin_edges.shape[1], dtype=np.float64)

        def visit(node: TreeNode) -> None:
            if node.is_leaf:
                return
            counts[node.feature] += 1
            if node.left is not None:
                visit(node.left)
            if node.right is not None:
                visit(node.right)

        for tree in self.trees:
            visit(tree)
        total = counts.sum()
        return counts / total if total > 0 else counts


class GBDTRegressor:
    """Trainer: squared-error gradient boosting on histogram splits."""

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 4,
        learning_rate: float = 0.3,
        n_bins: int = 64,
        min_samples_leaf: int = 8,
        reg_lambda: float = 1.0,
    ) -> None:
        if n_trees < 1:
            raise WorkloadError(f"n_trees must be >= 1, got {n_trees}")
        if max_depth < 1:
            raise WorkloadError(f"max_depth must be >= 1, got {max_depth}")
        if not 0 < learning_rate <= 1:
            raise WorkloadError(f"learning_rate must lie in (0, 1], got {learning_rate}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.n_bins = n_bins
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda

    def fit(self, features: np.ndarray, targets: np.ndarray) -> GBDTModel:
        """Train an ensemble; returns the immutable model."""
        if features.shape[0] != targets.shape[0]:
            raise WorkloadError(
                f"{features.shape[0]} rows but {targets.shape[0]} targets"
            )
        if features.shape[0] < 2 * self.min_samples_leaf:
            raise WorkloadError("not enough rows to grow any split")
        codes, edges = quantise_features(features, self.n_bins)
        base_score = float(np.mean(targets))
        predictions = np.full(features.shape[0], base_score)
        trees: List[TreeNode] = []
        all_rows = np.ones(features.shape[0], dtype=bool)
        for _ in range(self.n_trees):
            residuals = targets - predictions
            tree = _grow_tree(
                codes,
                residuals,
                all_rows,
                depth_left=self.max_depth,
                n_bins=self.n_bins,
                min_samples=self.min_samples_leaf,
                lam=self.reg_lambda,
                learning_rate=self.learning_rate,
            )
            trees.append(tree)
            predictions += _predict_tree(tree, codes)
        return GBDTModel(
            trees=trees, bin_edges=edges, base_score=base_score, n_bins=self.n_bins
        )
