"""Lloyd's algorithm primitives for the KMeans workload.

Split into the two steps the workload's program lines map to:
assignment (each point to its nearest centroid — the data-heavy,
offloadable scan) and update (recompute centroids from the labels —
cheap, host-side).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError


@dataclass
class KMeansState:
    """Centroids plus convergence bookkeeping."""

    centroids: np.ndarray  # (k, d)
    iteration: int = 0
    shift: float = np.inf

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def init_centroids(points: np.ndarray, k: int, seed: int = 7) -> np.ndarray:
    """Pick k distinct points as initial centroids (deterministic)."""
    if points.ndim != 2:
        raise WorkloadError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if k <= 0 or k > n:
        raise WorkloadError(f"need 0 < k <= {n}, got k={k}")
    rng = np.random.default_rng(seed)
    indices = rng.choice(n, size=k, replace=False)
    return points[indices].copy()


def init_centroids_pp(points: np.ndarray, k: int, seed: int = 7) -> np.ndarray:
    """k-means++ seeding: spread initial centroids D^2-proportionally.

    Converges in fewer Lloyd iterations on clustered data than uniform
    seeding, at the cost of k extra distance passes.
    """
    if points.ndim != 2:
        raise WorkloadError(f"points must be 2-D, got shape {points.shape}")
    n = points.shape[0]
    if k <= 0 or k > n:
        raise WorkloadError(f"need 0 < k <= {n}, got k={k}")
    rng = np.random.default_rng(seed)
    centroids = np.empty((k, points.shape[1]), dtype=np.float64)
    centroids[0] = points[rng.integers(n)]
    closest = np.full(n, np.inf)
    for i in range(1, k):
        deltas = points - centroids[i - 1]
        closest = np.minimum(closest, np.einsum("nd,nd->n", deltas, deltas))
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centroids; fall back to
            # uniform picks for the remainder.
            centroids[i:] = points[rng.choice(n, size=k - i, replace=False)]
            break
        centroids[i] = points[rng.choice(n, p=closest / total)]
    return centroids


def kmeans_assign(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Label each point with its nearest centroid (squared Euclidean)."""
    if points.shape[1] != centroids.shape[1]:
        raise WorkloadError(
            f"dimension mismatch: points d={points.shape[1]}, "
            f"centroids d={centroids.shape[1]}"
        )
    # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2; the ||p||^2 term is
    # constant per point and does not affect the argmin.
    cross = points @ centroids.T
    c_norms = np.einsum("kd,kd->k", centroids, centroids)
    return np.argmin(c_norms[None, :] - 2.0 * cross, axis=1)


def kmeans_update(
    points: np.ndarray, labels: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Recompute centroids; returns (centroids, cluster sizes).

    Empty clusters keep a zero centroid and report size 0 — the caller
    decides whether to reseed.
    """
    d = points.shape[1]
    if points.dtype == np.float64:
        # Weighted bincount accumulates per bin in element order —
        # the same addition sequence as an unbuffered scatter-add, so
        # results are bit-identical to np.add.at while running one
        # C loop per dimension instead of one dispatch per element.
        sums = np.empty((k, d), dtype=np.float64)
        for dim in range(d):
            sums[:, dim] = np.bincount(
                labels, weights=points[:, dim], minlength=k
            )
    else:
        # bincount always accumulates in float64; preserve the exact
        # same-dtype accumulation for non-f64 inputs.
        sums = np.zeros((k, d), dtype=points.dtype)
        np.add.at(sums, labels, points)
    counts = np.bincount(labels, minlength=k).astype(np.int64)
    centroids = np.divide(
        sums,
        np.maximum(counts, 1)[:, None],
        dtype=np.float64,
    )
    return centroids, counts


def kmeans_fit(
    points: np.ndarray,
    k: int,
    iterations: int = 10,
    seed: int = 7,
) -> KMeansState:
    """Full Lloyd loop, for functional tests and examples."""
    if iterations < 1:
        raise WorkloadError(f"iterations must be >= 1, got {iterations}")
    centroids = init_centroids(points, k, seed=seed)
    state = KMeansState(centroids=centroids)
    for _ in range(iterations):
        labels = kmeans_assign(points, state.centroids)
        new_centroids, counts = kmeans_update(points, labels, k)
        # Keep old centroids for clusters that emptied out.
        empty = counts == 0
        new_centroids[empty] = state.centroids[empty]
        state.shift = float(np.linalg.norm(new_centroids - state.centroids))
        state.centroids = new_centroids
        state.iteration += 1
        if state.shift < 1e-9:
            break
    return state


def inertia(points: np.ndarray, centroids: np.ndarray) -> float:
    """Sum of squared distances to assigned centroids (quality metric)."""
    labels = kmeans_assign(points, centroids)
    deltas = points - centroids[labels]
    return float(np.einsum("nd,nd->", deltas, deltas))
