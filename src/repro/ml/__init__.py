"""Machine-learning substrates for the evaluation workloads.

The paper's LightGBM workload serves predictions from a trained
gradient-boosted tree model, and KMeans clusters an out-of-core point
set.  Both algorithms are implemented here from scratch on NumPy — no
external ML dependency — so the workloads' kernels are real.
"""

from .gbdt import GBDTModel, GBDTRegressor, TreeNode, quantise_features
from .kmeans_core import (
    KMeansState,
    inertia,
    init_centroids,
    init_centroids_pp,
    kmeans_assign,
    kmeans_fit,
    kmeans_update,
)

__all__ = [
    "GBDTModel",
    "GBDTRegressor",
    "TreeNode",
    "quantise_features",
    "KMeansState",
    "inertia",
    "init_centroids",
    "init_centroids_pp",
    "kmeans_assign",
    "kmeans_fit",
    "kmeans_update",
]
