"""End-to-end data integrity: checksummed data paths (`repro.integrity`).

Every fault the harness injected before this module was *loud* — a
failed completion, a crash, a torn checkpoint.  The defining risk of
in-storage processing is the *silent* kind: once compute moves into the
device, the host never sees the raw bytes, so a flipped NAND bit or a
payload garbled crossing the PCIe link flows straight into reported
results.  The integrity layer closes that gap with end-to-end content
digests: computed where data is produced (NAND streams, CSE chunk
outputs, checkpoint records, transfer payloads) and verified where it
is consumed (executor result assembly, BAR readback, checkpoint
restore).

Because the simulator moves *costs* rather than payload bytes, a
corruption is modelled as armed taint state on the producing hardware
(:meth:`~repro.storage.nand.FlashArray.arm_silent_corruption`,
:meth:`~repro.hw.interconnect.Link.arm_transfer_corruption`,
:meth:`~repro.storage.bar.CheckpointArea.rot_committed`) and the
"digest check" is the consumer asking the hardware whether the bytes it
just ingested were tainted.  Three rules keep the model honest:

* **Verification costs simulated time.**  Every protected byte is
  charged ``1 / integrity_verify_bandwidth`` seconds against the
  ``integrity`` attribution component, so protection is a
  planner-visible tradeoff, not a free oracle.
* **Detection feeds the existing recovery paths.**  A mismatch raises
  :class:`~repro.errors.IntegrityError` — a ``FaultError`` — so the
  executor's chunk replay and host fallback machinery handles it, and
  an ``integrity-detected`` :class:`~repro.faults.FaultEvent` plus an
  ``integrity.detected`` metric record that the corruption was caught
  *before* the report (the chaos invariant
  ``corruption-detected-before-report`` audits exactly this).
* **Disabled means free.**  With ``integrity_enabled=False`` (the
  default) the layer charges zero simulated seconds and emits zero
  metrics; only the report's :meth:`digest` ledger — pure accounting,
  like ``chunks_executed`` — still tracks ground truth so the harness
  can prove that unprotected corruption really does reach the report.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional

from .config import SystemConfig
from .errors import IntegrityError
from .faults.log import FaultLog

__all__ = ["CLEAN_DIGEST", "IntegrityChecker", "IntegrityError"]

#: Digest of an uncorrupted run: the CRC32 of the empty taint ledger.
#: Identical for every program, which is what lets a faulted-but-
#: recovered run match its fault-free baseline bit-for-bit.
CLEAN_DIGEST = format(zlib.crc32(b""), "08x")


class IntegrityChecker:
    """Per-execution digest ledger and verifier cost model.

    One instance rides along with each
    :class:`~repro.runtime.executor.PlanExecutor`.  The executor reports
    every data ingestion (chunk inputs streamed from NAND, payloads
    crossing links, the final result readback) and the checker:

    * charges the simulated verify cost when the layer is enabled,
    * raises :class:`IntegrityError` on a detected mismatch (device
      chunks) or reports it for inline re-read (host-side transfers),
    * keeps the taint ledger from which :meth:`digest` derives the
      report's ``output_digest`` — the content signature the chaos
      harness compares against the fault-free baseline.

    The ledger is *last-writer-wins* per logical unit: a chunk replayed
    after detection overwrites its tainted entry with a clean one, so a
    fully recovered run ends with an empty ledger and
    :data:`CLEAN_DIGEST`.
    """

    def __init__(
        self,
        config: SystemConfig,
        clock,
        fault_log: Optional[FaultLog] = None,
        obs=None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.fault_log = fault_log if fault_log is not None else FaultLog()
        self.obs = obs
        self.enabled = bool(config.integrity_enabled)
        self.verify = bool(config.integrity_verify)
        self.detected = 0
        self.missed = 0
        self.verified_bytes = 0.0
        self.verify_seconds = 0.0
        #: Taint ledger: logical-unit key -> True while its last
        #: execution ingested corrupted bytes.  Clean entries are
        #: removed, so migrations and fallbacks (which change *which*
        #: transfers happen) never perturb the digest.
        self._tainted: Dict[str, bool] = {}

    # --- cost model --------------------------------------------------------

    def charge_verify(self, nbytes: float) -> float:
        """Charge the simulated cost of digest-checking ``nbytes``.

        Returns the seconds charged.  A no-op (exactly zero simulated
        and metric overhead) when the layer is disabled.
        """
        if not self.enabled or nbytes <= 0:
            return 0.0
        seconds = nbytes / self.config.integrity_verify_bandwidth
        self.clock.advance(seconds, component="integrity")
        self.verified_bytes += nbytes
        self.verify_seconds += seconds
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("integrity.verified_bytes").inc(nbytes)
        return seconds

    # --- detection bookkeeping --------------------------------------------

    def record_detected(self, target: str, detail: str) -> None:
        """A verifier caught corrupted bytes before they were consumed."""
        self.detected += 1
        self.fault_log.record(
            self.clock.now, "integrity", target, "integrity-detected", detail
        )
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("integrity.detected").inc()

    def record_missed(self, target: str, detail: str) -> None:
        """Ground-truth accounting: corruption flowed past unverified.

        The runtime cannot know this happened — only the simulator can
        — so nothing is logged to the fault log the runtime reacts to;
        the metric and counter exist for the harness and benches.
        """
        self.missed += 1
        if self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("integrity.missed").inc()

    def raise_mismatch(self, target: str, detail: str) -> None:
        """Record a detection and raise for the recovery machinery."""
        self.record_detected(target, detail)
        raise IntegrityError(f"checksum mismatch at {target}: {detail}")

    # --- taint ledger ------------------------------------------------------

    def record_unit(self, key: str, tainted: bool) -> None:
        """Record the outcome of a logical unit's latest execution."""
        if tainted:
            self._tainted[key] = True
            self.record_missed(key, "corrupted bytes reached the consumer")
        else:
            self._tainted.pop(key, None)

    @property
    def tainted_units(self) -> tuple:
        return tuple(sorted(self._tainted))

    def digest(self) -> str:
        """Content signature of the run's reported output.

        CRC32 over the sorted taint ledger: :data:`CLEAN_DIGEST` iff no
        corrupted bytes survived into the result.
        """
        payload = "\x00".join(self.tainted_units).encode("utf-8")
        return format(zlib.crc32(payload), "08x")

    def stats(self) -> Dict[str, float]:
        """Summary for reports and benches."""
        return {
            "enabled": self.enabled,
            "verify": self.verify,
            "detected": self.detected,
            "missed": self.missed,
            "verified_bytes": self.verified_bytes,
            "verify_seconds": self.verify_seconds,
            "tainted_units": len(self._tainted),
        }
