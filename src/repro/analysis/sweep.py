"""Generic configuration sweeps.

Sensitivity studies over :class:`~repro.config.SystemConfig` fields in
one call::

    from repro.analysis.sweep import sweep_config
    from repro.units import GB

    series = sweep_config(
        "bw_d2h", [1 * GB, 3 * GB, 9 * GB],
        metric=activepy_speedup_metric("tpch_q6"),
    )

Each point builds a fresh machine, so points are independent and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import ReproError

#: A metric maps a config to one number.
Metric = Callable[[SystemConfig], float]


@dataclass(frozen=True)
class SweepPoint:
    value: object
    metric: float


@dataclass
class SweepResult:
    field: str
    points: List[SweepPoint]

    @property
    def values(self) -> List[object]:
        return [p.value for p in self.points]

    @property
    def metrics(self) -> List[float]:
        return [p.metric for p in self.points]

    def is_monotone(self, increasing: bool = True) -> bool:
        pairs = zip(self.metrics, self.metrics[1:])
        if increasing:
            return all(a <= b + 1e-12 for a, b in pairs)
        return all(a >= b - 1e-12 for a, b in pairs)


def sweep_config(
    field: str,
    values: Sequence,
    metric: Metric,
    base: SystemConfig = DEFAULT_CONFIG,
) -> SweepResult:
    """Evaluate ``metric`` at each value of one config field."""
    if not values:
        raise ReproError("sweep needs at least one value")
    if not hasattr(base, field):
        raise ReproError(f"SystemConfig has no field {field!r}")
    points = []
    for value in values:
        config = base.replace(**{field: value})
        points.append(SweepPoint(value=value, metric=metric(config)))
    return SweepResult(field=field, points=points)


def activepy_speedup_metric(workload_name: str) -> Metric:
    """Metric: ActivePy speedup over the C baseline for one workload."""

    def metric(config: SystemConfig) -> float:
        from ..baselines import run_c_baseline
        from ..runtime.activepy import ActivePy
        from ..workloads import get_workload

        workload = get_workload(workload_name)
        baseline = run_c_baseline(workload.program, workload.dataset, config=config)
        report = ActivePy(config).run(workload.program, workload.dataset)
        return baseline.total_seconds / report.total_seconds

    return metric


def static_isp_speedup_metric(workload_name: str) -> Metric:
    """Metric: programmer-directed static ISP speedup over C baseline."""

    def metric(config: SystemConfig) -> float:
        from ..baselines import StaticIspBaseline, run_c_baseline
        from ..workloads import get_workload

        workload = get_workload(workload_name)
        baseline = run_c_baseline(workload.program, workload.dataset, config=config)
        static = StaticIspBaseline(config=config)
        result = static.run(workload.program, workload.dataset)
        return baseline.total_seconds / result.total_seconds

    return metric
