"""JSON-serialisable views of experiment results.

Every ``run_*`` driver's result converts to plain dicts/lists so runs
can be archived, diffed across calibrations, or plotted elsewhere.
``to_jsonable`` dispatches on the result type; ``dump`` writes a file.

Result types that speak the :class:`ReportLike` protocol — a
``summary()`` of headline numbers plus a full ``to_jsonable()`` view,
both JSON-ready — are handled first and uniformly; the per-figure
branches below cover the older experiment results that predate it.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, IO, Protocol, Union, runtime_checkable

from ..errors import ReproError
from .experiments import (
    Fig2Result,
    Fig4Result,
    Fig5Result,
    LadderResult,
    PredictionResult,
)
from .timeline import ExecutionTimeline

__all__ = ["ReportLike", "dump", "dumps", "to_jsonable"]


@runtime_checkable
class ReportLike(Protocol):
    """The common report protocol every top-level result speaks.

    ``ActivePyReport``, ``ExecutionResult``, ``CampaignResult`` and
    ``ChaosRunOutcome`` all implement it; new result types should too,
    and then :func:`to_jsonable`/:func:`dump` handle them for free.
    """

    def summary(self) -> Dict[str, Any]:
        """Headline numbers only, JSON-ready."""
        ...

    def to_jsonable(self) -> Dict[str, Any]:
        """The full result as plain dicts/lists/scalars."""
        ...


def to_jsonable(result: Any) -> Any:
    """Convert an experiment result into JSON-compatible structures."""
    # Protocol speakers first: ExecutionTimeline has summary() but not
    # to_jsonable(), so it falls through to its dedicated branch.
    if isinstance(result, ReportLike) and not isinstance(result, type):
        return result.to_jsonable()
    if isinstance(result, Fig2Result):
        return {
            "experiment": "fig2",
            "availabilities": list(result.availabilities),
            "series": {name: list(values) for name, values in result.series.items()},
            "crossovers": {
                name: result.crossover(name) for name in result.series
            },
        }
    if isinstance(result, Fig4Result):
        return {
            "experiment": "fig4",
            "rows": [dataclasses.asdict(row) for row in result.rows],
            "static_geomean": result.static_geomean,
            "activepy_geomean": result.activepy_geomean,
        }
    if isinstance(result, Fig5Result):
        return {
            "experiment": "fig5",
            "rows": [dataclasses.asdict(row) for row in result.rows],
            "mean_gain_at_10pct": result.mean_gain(0.1),
            "mean_without_at_10pct": result.mean_without(0.1),
        }
    if isinstance(result, LadderResult):
        return {
            "experiment": "overhead_ladder",
            "per_workload": result.per_workload,
            "mean_overheads": {
                mode: result.mean_overhead(mode)
                for mode in ("python", "cython", "activepy")
            },
        }
    if isinstance(result, PredictionResult):
        outliers = set(id(r) for r in result.outliers())
        return {
            "experiment": "prediction_accuracy",
            "rows": [
                {
                    "workload": row.workload,
                    "line": row.line,
                    "predicted_bytes": row.predicted_bytes,
                    "actual_bytes": row.actual_bytes,
                    "ratio": row.ratio,
                    "outlier": id(row) in outliers,
                }
                for row in result.rows
            ],
            "geomean_error_excluding_outliers":
                result.geomean_error_excluding_outliers(),
            "max_csr_overestimate": result.max_csr_overestimate(),
        }
    if isinstance(result, ExecutionTimeline):
        return {
            "experiment": "timeline",
            "spans": [dataclasses.asdict(span) for span in result.spans],
            "makespan": result.makespan,
            "busy": result.summary(),
        }
    if isinstance(result, dict):
        return {str(key): to_jsonable(value) for key, value in result.items()}
    if isinstance(result, (str, int, float, bool)) or result is None:
        return result
    if isinstance(result, (list, tuple)):
        return [to_jsonable(item) for item in result]
    if dataclasses.is_dataclass(result) and not isinstance(result, type):
        return dataclasses.asdict(result)
    raise ReproError(f"cannot export {type(result).__name__} to JSON")


def dumps(result: Any, indent: int = 2) -> str:
    """Serialise an experiment result to a JSON string."""
    return json.dumps(to_jsonable(result), indent=indent, sort_keys=True)


def dump(result: Any, fp: Union[str, IO[str]], indent: int = 2) -> None:
    """Write an experiment result to a path or an open file."""
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            handle.write(dumps(result, indent=indent))
        return
    fp.write(dumps(result, indent=indent))
