"""Summary statistics used across experiment reports."""

from __future__ import annotations

import math
from typing import Iterable

from ..errors import ReproError


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """How many times faster the candidate is than the baseline."""
    if baseline_seconds <= 0 or candidate_seconds <= 0:
        raise ReproError(
            f"speedup needs positive times, got {baseline_seconds} "
            f"and {candidate_seconds}"
        )
    return baseline_seconds / candidate_seconds


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for speedups and errors)."""
    values = list(values)
    if not values:
        raise ReproError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def relative_error(predicted: float, actual: float) -> float:
    """|predicted - actual| / actual (0 when both are zero)."""
    if actual == 0:
        return 0.0 if predicted == 0 else math.inf
    return abs(predicted - actual) / abs(actual)


def slowdown_fraction(baseline_seconds: float, candidate_seconds: float) -> float:
    """Fractional performance loss of the candidate vs the baseline.

    Positive means the candidate is slower; the paper quotes these as
    "67% performance loss".
    """
    if baseline_seconds <= 0:
        raise ReproError("baseline time must be positive")
    return 1.0 - baseline_seconds / candidate_seconds
