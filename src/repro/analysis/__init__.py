"""Experiment drivers and reporting for the paper's tables and figures.

``experiments`` is re-exported lazily: it imports the full runtime, and
the runtime itself uses :mod:`repro.analysis.timeline`, so an eager
import here would be circular.
"""

from .compare import Change, diff_results, max_relative_change
from .metrics import geometric_mean, relative_error, speedup
from .report import ascii_bar_chart, format_table
from .sweep import SweepResult, sweep_config
from .timeline import ExecutionTimeline, TimelineSpan
from .utilization import UtilizationReport, utilization_report

__all__ = [
    "geometric_mean",
    "relative_error",
    "speedup",
    "ascii_bar_chart",
    "format_table",
    "SweepResult",
    "sweep_config",
    "Change",
    "diff_results",
    "max_relative_change",
    "ExecutionTimeline",
    "TimelineSpan",
    "UtilizationReport",
    "utilization_report",
    "Fig2Result",
    "Fig4Result",
    "Fig5Result",
    "LadderResult",
    "PredictionResult",
    "run_fig2",
    "run_fig4",
    "run_fig5",
    "run_overhead_ladder",
    "run_prediction_accuracy",
    "run_table1",
]

_EXPERIMENT_EXPORTS = {
    "Fig2Result", "Fig4Result", "Fig5Result", "LadderResult",
    "PredictionResult", "run_fig2", "run_fig4", "run_fig5",
    "run_overhead_ladder", "run_prediction_accuracy", "run_table1",
}


def __getattr__(name: str):
    if name in _EXPERIMENT_EXPORTS:
        from . import experiments

        return getattr(experiments, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
