"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's tables
and figures report; these helpers keep that output aligned and
readable in a terminal or a CI log.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ReproError


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as a fixed-width table with a header rule."""
    rows = [[_cell(value) for value in row] for row in rows]
    for row in rows:
        if len(row) != len(headers):
            raise ReproError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
    widths = [
        max(len(header), *(len(row[i]) for row in rows)) if rows else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(width) for header, width in zip(headers, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    reference: float = 1.0,
    unit: str = "x",
) -> str:
    """Horizontal bars with a reference marker (the figures' 1.0 line)."""
    if len(labels) != len(values):
        raise ReproError(f"{len(labels)} labels for {len(values)} values")
    if not values:
        return "(no data)"
    peak = max(max(values), reference)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = max(1, round(value / peak * width))
        bar = "#" * filled
        marker_pos = round(reference / peak * width)
        if marker_pos < width:
            bar = bar.ljust(width)
            bar = bar[:marker_pos] + ("|" if bar[marker_pos] == " " else bar[marker_pos]) + bar[marker_pos + 1:]
        lines.append(f"{label.ljust(label_width)}  {bar.rstrip()}  {value:.3f}{unit}")
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
