"""Machine utilization summaries.

After a run, :func:`utilization_report` condenses a machine's counters
and an optional timeline into per-resource busy fractions and link
traffic — the "where did the time go" view that complements the
end-to-end speedup numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ReproError
from ..hw.topology import Machine
from ..units import format_bytes, format_seconds
from .timeline import ExecutionTimeline


@dataclass(frozen=True)
class ResourceUsage:
    name: str
    kind: str  # "compute" or "link"
    busy_seconds: float
    utilization: float
    detail: str


@dataclass
class UtilizationReport:
    total_seconds: float
    rows: List[ResourceUsage]

    def usage_of(self, name: str) -> ResourceUsage:
        for row in self.rows:
            if row.name == name:
                return row
        raise ReproError(f"no resource named {name!r}")

    def render(self) -> str:
        lines = [f"wall (simulated): {format_seconds(self.total_seconds)}"]
        width = max(len(row.name) for row in self.rows)
        for row in self.rows:
            lines.append(
                f"{row.name.ljust(width)}  {row.kind:<7} "
                f"busy {format_seconds(row.busy_seconds):>9}  "
                f"({row.utilization:6.1%})  {row.detail}"
            )
        return "\n".join(lines)


def utilization_report(
    machine: Machine,
    total_seconds: Optional[float] = None,
    timeline: Optional[ExecutionTimeline] = None,
) -> UtilizationReport:
    """Summarise how busy every unit and link was.

    ``total_seconds`` defaults to the machine's current clock (i.e.
    everything since construction); pass a run's duration to scope it.
    """
    window = total_seconds if total_seconds is not None else machine.now
    if window <= 0:
        raise ReproError(f"total window must be positive, got {window}")

    rows: List[ResourceUsage] = []

    def add_unit(unit, name: str) -> None:
        busy = unit.counters.busy_seconds
        rows.append(ResourceUsage(
            name=name,
            kind="compute",
            busy_seconds=busy,
            utilization=min(1.0, busy / window),
            detail=(
                f"{unit.counters.retired_instructions:.3g} instr, "
                f"IPC {unit.counters.ipc():.2f}"
            ),
        ))

    add_unit(machine.host, "host")
    for device in machine.csds:
        add_unit(device.cse, device.name)

    links = [
        (machine.host_storage_link, "host-storage"),
        (machine.d2h_link, "d2h"),
        (machine.remote_access_link, "remote-access"),
    ] + [(device.internal_link, f"{device.name}.internal") for device in machine.csds]
    for link, name in links:
        busy = link.bytes_transferred / link.bandwidth
        rows.append(ResourceUsage(
            name=name,
            kind="link",
            busy_seconds=busy,
            utilization=min(1.0, busy / window),
            detail=(
                f"{format_bytes(link.bytes_transferred)} "
                f"in {link.transfers} transfers"
            ),
        ))

    if timeline is not None:
        for resource, busy in timeline.summary().items():
            if not any(row.name == resource for row in rows):
                rows.append(ResourceUsage(
                    name=resource,
                    kind="span",
                    busy_seconds=busy,
                    utilization=min(1.0, busy / window),
                    detail="(timeline spans)",
                ))

    return UtilizationReport(total_seconds=window, rows=rows)
