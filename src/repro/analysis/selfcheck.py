"""Reproduction self-check: fast verification against pinned results.

``python -m repro selfcheck`` runs a quick, deterministic subset of the
evaluation and compares every number against the expectations pinned in
``expected.py``.  Use it after touching any cost model, config constant
or runtime mechanism: a clean pass means the reproduction's headline
numbers did not move (within tolerance); a failure lists exactly which
quantities drifted and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..baselines import StaticIspBaseline, run_c_baseline
from ..config import DEFAULT_CONFIG
from ..runtime.activepy import ActivePy
from ..workloads import get_workload
from .compare import diff_results
from .expected import EXPECTED_SELFCHECK

#: Relative drift allowed before a quantity counts as moved.
DEFAULT_TOLERANCE = 0.02

#: Fast but representative subset: one scan query, the CSR case, and
#: the compute-heavy mixture.
SELFCHECK_WORKLOADS = ("tpch_q6", "pagerank", "mixedgemm")


@dataclass
class SelfCheckResult:
    measured: Dict[str, float]
    drifted: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.drifted

    def render(self) -> str:
        lines = []
        for key in sorted(self.measured):
            expected = EXPECTED_SELFCHECK.get(key)
            mark = "drifted" if any(d.startswith(key) for d in self.drifted) else "ok"
            lines.append(
                f"{key:<34} measured {self.measured[key]:>9.4f}  "
                f"expected {expected if expected is not None else '?':>9}  {mark}"
            )
        status = "PASS" if self.ok else f"FAIL ({len(self.drifted)} drifted)"
        lines.append(f"\nself-check: {status}")
        return "\n".join(lines)


def measure_selfcheck() -> Dict[str, float]:
    """The quantities the self-check pins, measured fresh."""
    measured: Dict[str, float] = {}
    for name in SELFCHECK_WORKLOADS:
        workload = get_workload(name)
        baseline = run_c_baseline(workload.program, workload.dataset)
        static = StaticIspBaseline()
        static_result = static.run(workload.program, workload.dataset)
        report = ActivePy().run(workload.program, workload.dataset)
        measured[f"{name}.baseline_seconds"] = round(baseline.total_seconds, 4)
        measured[f"{name}.static_speedup"] = round(
            baseline.total_seconds / static_result.total_seconds, 4
        )
        measured[f"{name}.activepy_speedup"] = round(
            baseline.total_seconds / report.total_seconds, 4
        )
        measured[f"{name}.csd_lines"] = float(len(report.plan.csd_lines))
    measured["config.break_even_instr_per_byte"] = round(
        (1 / DEFAULT_CONFIG.bw_host_storage - 1 / DEFAULT_CONFIG.bw_internal)
        / (1 / DEFAULT_CONFIG.cse_ips - 1 / DEFAULT_CONFIG.host_ips),
        4,
    )
    return measured


def run_selfcheck(tolerance: float = DEFAULT_TOLERANCE) -> SelfCheckResult:
    """Measure and compare against the pinned expectations."""
    measured = measure_selfcheck()
    changes = diff_results(EXPECTED_SELFCHECK, measured, threshold=tolerance)
    return SelfCheckResult(
        measured=measured,
        drifted=[str(change) for change in changes],
    )
