"""Drivers that regenerate every table and figure of the paper.

Each ``run_*`` function reproduces one artifact end to end on the
simulated platform and returns a structured result; the benchmark
harness (``benchmarks/``) prints them in the paper's shape, and
``tests/test_experiments.py`` asserts the qualitative claims (who wins,
by roughly what factor, where the crossovers fall).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import DEFAULT_CONFIG, SystemConfig
from ..baselines import StaticIspBaseline, run_c_baseline
from ..baselines.static_isp import ground_truth_estimates
from ..hw.topology import build_machine
from ..runtime.activepy import ActivePy, RunOptions, run_plan
from ..runtime.codegen import ExecutionMode
from ..runtime.estimator import build_estimates
from ..runtime.planner import host_only_plan
from ..runtime.sampling import SamplingPhase
from ..units import GB
from ..workloads import Workload, get_workload, workload_names
from .metrics import geometric_mean, relative_error, speedup

#: The Table I application set (SparseMV is §V/Fig. 5 only).
TABLE1_WORKLOADS = (
    "blackscholes", "kmeans", "lightgbm", "matrixmul", "mixedgemm",
    "pagerank", "tpch_q1", "tpch_q6", "tpch_q14",
)
#: The Figure 2 / §II-B motivation set.
FIG2_WORKLOADS = ("tpch_q1", "tpch_q6", "tpch_q14")
#: Figure 5 runs the full suite including SparseMV.
FIG5_WORKLOADS = TABLE1_WORKLOADS + ("sparsemv",)


# --- Table I -----------------------------------------------------------------

@dataclass
class Table1Row:
    name: str
    data_bytes: float
    paper_bytes: float
    sese_regions: int


def run_table1(scale: float = 1.0) -> List[Table1Row]:
    """Application inventory: input sizes and SESE region counts."""
    rows = []
    for name in TABLE1_WORKLOADS:
        workload = get_workload(name, scale)
        rows.append(
            Table1Row(
                name=name,
                data_bytes=workload.raw_bytes,
                paper_bytes=workload.table1_bytes,
                sese_regions=len(workload.program),
            )
        )
    return rows


# --- Figure 2 -----------------------------------------------------------------

@dataclass
class Fig2Result:
    """Static C ISP speedups across CSE availabilities."""

    availabilities: Tuple[float, ...]
    #: workload -> speedup per availability (same order).
    series: Dict[str, List[float]]

    def mean_at(self, availability: float) -> float:
        index = self.availabilities.index(availability)
        return geometric_mean([s[index] for s in self.series.values()])

    def crossover(self, name: str) -> Optional[float]:
        """Highest swept availability at which the workload loses."""
        for availability, value in zip(self.availabilities, self.series[name]):
            if value < 1.0:
                return availability
        return None


def run_fig2(
    availabilities: Sequence[float] = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1),
    workloads: Sequence[str] = FIG2_WORKLOADS,
    config: SystemConfig = DEFAULT_CONFIG,
) -> Fig2Result:
    """The motivation experiment: a plan tuned at 100% CSE, swept down.

    The static plan is frozen at dedicated-CSD conditions (as
    Summarizer-style platforms must); each sweep point runs it under a
    throttled CSE and normalises to the no-ISP C baseline.
    """
    availabilities = tuple(sorted(availabilities, reverse=True))
    series: Dict[str, List[float]] = {}
    for name in workloads:
        workload = get_workload(name)
        baseline = run_c_baseline(workload.program, workload.dataset, config=config)
        static = StaticIspBaseline(config=config)
        plan = static.tune(workload.program, workload.n_records)
        points = []
        for availability in availabilities:
            machine = build_machine(config)
            machine.csd.cse.set_availability(availability)
            result = static.run(
                workload.program, workload.dataset, machine=machine, plan=plan
            )
            points.append(speedup(baseline.total_seconds, result.total_seconds))
        series[name] = points
    return Fig2Result(availabilities=availabilities, series=series)


# --- Figure 4 -----------------------------------------------------------------

@dataclass
class Fig4Row:
    name: str
    baseline_seconds: float
    static_speedup: float
    activepy_speedup: float
    static_plan: List[str]
    activepy_plan: List[str]

    @property
    def same_regions(self) -> bool:
        return self.static_plan == self.activepy_plan


@dataclass
class Fig4Result:
    rows: List[Fig4Row]

    @property
    def static_geomean(self) -> float:
        return geometric_mean([r.static_speedup for r in self.rows])

    @property
    def activepy_geomean(self) -> float:
        return geometric_mean([r.activepy_speedup for r in self.rows])

    def row(self, name: str) -> Fig4Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)


def run_fig4(
    workloads: Sequence[str] = TABLE1_WORKLOADS,
    config: SystemConfig = DEFAULT_CONFIG,
) -> Fig4Result:
    """ActivePy vs programmer-directed static ISP, both over C baseline."""
    rows = []
    for name in workloads:
        workload = get_workload(name)
        baseline = run_c_baseline(workload.program, workload.dataset, config=config)
        static = StaticIspBaseline(config=config)
        static_plan = static.tune(workload.program, workload.n_records)
        static_result = static.run(
            workload.program, workload.dataset, plan=static_plan
        )
        report = ActivePy(config=config).run(workload.program, workload.dataset)
        rows.append(
            Fig4Row(
                name=name,
                baseline_seconds=baseline.total_seconds,
                static_speedup=speedup(
                    baseline.total_seconds, static_result.total_seconds
                ),
                activepy_speedup=speedup(
                    baseline.total_seconds, report.total_seconds
                ),
                static_plan=list(static_plan.assignments),
                activepy_plan=list(report.plan.assignments),
            )
        )
    return Fig4Result(rows=rows)


# --- Figure 5 -----------------------------------------------------------------

@dataclass
class Fig5Row:
    name: str
    availability: float
    with_migration_speedup: float
    without_migration_speedup: float
    migrations: int

    @property
    def migration_gain(self) -> float:
        return self.with_migration_speedup / self.without_migration_speedup


@dataclass
class Fig5Result:
    rows: List[Fig5Row]

    def at(self, availability: float) -> List[Fig5Row]:
        return [r for r in self.rows if r.availability == availability]

    def mean_gain(self, availability: float) -> float:
        return geometric_mean([r.migration_gain for r in self.at(availability)])

    def mean_without(self, availability: float) -> float:
        return geometric_mean(
            [r.without_migration_speedup for r in self.at(availability)]
        )

    def mean_with(self, availability: float) -> float:
        return geometric_mean(
            [r.with_migration_speedup for r in self.at(availability)]
        )


def run_fig5(
    availabilities: Sequence[float] = (0.5, 0.1),
    workloads: Sequence[str] = FIG5_WORKLOADS,
    config: SystemConfig = DEFAULT_CONFIG,
    stress_progress: float = 0.5,
) -> Fig5Result:
    """Stress the CSE mid-run; compare ActivePy with vs without migration.

    The paper stresses the device "right after each application's ISP
    tasks make 50% of their progress"; ``stress_progress`` is that
    trigger point.
    """
    rows = []
    for name in workloads:
        workload = get_workload(name)
        baseline = run_c_baseline(workload.program, workload.dataset, config=config)
        for availability in availabilities:
            triggers = [(stress_progress, availability)]
            options = RunOptions(progress_triggers=tuple(triggers))
            with_migration = ActivePy(config=config, migration_enabled=True).run(
                workload.program, workload.dataset, options=options
            )
            without_migration = ActivePy(config=config, migration_enabled=False).run(
                workload.program, workload.dataset, options=options
            )
            rows.append(
                Fig5Row(
                    name=name,
                    availability=availability,
                    with_migration_speedup=speedup(
                        baseline.total_seconds, with_migration.total_seconds
                    ),
                    without_migration_speedup=speedup(
                        baseline.total_seconds, without_migration.total_seconds
                    ),
                    migrations=len(with_migration.result.migrations),
                )
            )
    return Fig5Result(rows=rows)


# --- §V: language-runtime overhead ladder ------------------------------------

@dataclass
class LadderResult:
    """Host-only slowdowns of each runtime mode vs hand-written C."""

    #: workload -> {mode name -> slowdown over C}.
    per_workload: Dict[str, Dict[str, float]]

    def mean_overhead(self, mode: str) -> float:
        return geometric_mean(
            [modes[mode] for modes in self.per_workload.values()]
        ) - 1.0


def run_overhead_ladder(
    workloads: Sequence[str] = TABLE1_WORKLOADS,
    config: SystemConfig = DEFAULT_CONFIG,
) -> LadderResult:
    """Python +41% -> Cython +20% -> ActivePy ~ C (§V), no ISP anywhere."""
    per_workload: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        workload = get_workload(name)
        c_seconds = None
        modes = {}
        for mode in (
            ExecutionMode.C, ExecutionMode.PYTHON,
            ExecutionMode.CYTHON, ExecutionMode.ACTIVEPY,
        ):
            machine = build_machine(config)
            machine.csd.store_dataset(workload.dataset.name, workload.raw_bytes)
            estimates = ground_truth_estimates(
                workload.program, workload.n_records, config
            )
            result = run_plan(
                machine=machine,
                program=workload.program,
                plan=host_only_plan(estimates),
                dataset=workload.dataset,
                mode=mode,
                config=config,
            )
            if mode is ExecutionMode.C:
                c_seconds = result.total_seconds
            modes[mode.value] = result.total_seconds / c_seconds
        per_workload[name] = modes
    return LadderResult(per_workload=per_workload)


# --- §V: prediction accuracy ---------------------------------------------------

@dataclass
class PredictionRow:
    workload: str
    line: str
    predicted_bytes: float
    actual_bytes: float

    @property
    def error(self) -> float:
        return relative_error(self.predicted_bytes, self.actual_bytes)

    @property
    def ratio(self) -> float:
        if self.actual_bytes == 0:
            return 1.0
        return self.predicted_bytes / self.actual_bytes


@dataclass
class PredictionResult:
    rows: List[PredictionRow]
    csr_lines: List[PredictionRow] = field(default_factory=list)

    #: A prediction off by more than this factor counts as an outlier
    #: (the paper "discounts the outliers (e.g., CSR format)").
    outlier_ratio: float = 2.0

    def outliers(self) -> List[PredictionRow]:
        """Rows whose prediction deviates by more than ``outlier_ratio``.

        In practice these are exactly the CSR-derived volumes of the
        sparse workloads — the structures whose footprint depends on
        the vertex universe the biased sample prefix cannot represent.
        """
        return [
            r for r in self.rows
            if r.ratio > self.outlier_ratio or r.ratio < 1.0 / self.outlier_ratio
        ]

    def geomean_error_excluding_outliers(self) -> float:
        """Geometric mean of (1 + error) - 1, outliers discounted.

        Matches the paper's "geometric mean of our error rate that
        discounts the outliers (e.g., CSR format) is only 9%".  Only
        lines with material volumes (>= 10 MB) enter the mean; tiny
        aggregate outputs are irrelevant to Equation 1 either way.
        """
        outliers = set(id(r) for r in self.outliers())
        material = [
            r for r in self.rows
            if id(r) not in outliers and r.actual_bytes >= GB / 100
        ]
        if not material:
            return 0.0
        return geometric_mean([1.0 + r.error for r in material]) - 1.0

    def max_csr_overestimate(self) -> float:
        if not self.csr_lines:
            return 1.0
        return max(r.ratio for r in self.csr_lines)

    def csr_always_overestimated(self) -> bool:
        """The paper: "ActivePy always over-estimates ... after CSR"."""
        return all(r.ratio > 1.0 for r in self.csr_lines)


def run_prediction_accuracy(
    workloads: Sequence[str] = FIG5_WORKLOADS,
    config: SystemConfig = DEFAULT_CONFIG,
) -> PredictionResult:
    """Per-line data-volume prediction vs population ground truth."""
    rows: List[PredictionRow] = []
    csr_lines: List[PredictionRow] = []
    sampler = SamplingPhase(config)
    for name in workloads:
        workload = get_workload(name)
        report = sampler.run(workload.program, workload.dataset)
        estimates = build_estimates(report, workload.n_records, config)
        truths = ground_truth_estimates(workload.program, workload.n_records, config)
        for estimate, truth, statement in zip(estimates, truths, workload.program):
            row = PredictionRow(
                workload=name,
                line=statement.name,
                predicted_bytes=estimate.d_out,
                actual_bytes=truth.d_out,
            )
            rows.append(row)
            if "csr" in statement.name:
                csr_lines.append(row)
    return PredictionResult(rows=rows, csr_lines=csr_lines)


# --- §V: the CSR claim across different input matrices ---------------------------

@dataclass
class CsrSweepRow:
    """Prediction ratio for one synthetic matrix family."""

    avg_degree: float
    alpha: float
    predicted_bytes: float
    actual_bytes: float

    @property
    def ratio(self) -> float:
        return self.predicted_bytes / self.actual_bytes


def run_csr_matrix_sweep(
    degrees: Sequence[float] = (4.0, 8.0, 16.0),
    alphas: Sequence[float] = (1.2, 1.5, 1.9),
    n_edges: int = 50_000_000,
    config: SystemConfig = DEFAULT_CONFIG,
) -> List[CsrSweepRow]:
    """The paper's robustness check: "Our experiments on different
    input matrices show that ActivePy always over-estimates the data
    volume after generating CSR."

    Sweeps the degree distribution of the stored edge list and repeats
    the sampling-phase measurement of the CSR conversion for each.
    """
    from ..graph.generators import power_law_prefix, power_law_true_csr_bytes
    from ..lang.dataset import Dataset
    from ..workloads.pagerank import _k_build_csr, _k_parse

    rows: List[CsrSweepRow] = []
    for avg_degree in degrees:
        for alpha in alphas:
            def builder(n, full, avg_degree=avg_degree, alpha=alpha):
                src, dst, _ = power_law_prefix(
                    prefix_edges=n, full_edges=full,
                    avg_degree=avg_degree, alpha=alpha, seed=701,
                )
                return {"src": src, "dst": dst}

            dataset = Dataset(
                name=f"csr-sweep-d{avg_degree}-a{alpha}",
                n_records=n_edges,
                record_bytes=24.0,
                builder=builder,
            )
            # Measure the CSR line exactly as the sampling phase does.
            from ..runtime.fitting import fit_curve
            from ..runtime.profiler import payload_nbytes

            ns, measured = [], []
            for factor in config.sampling_factors:
                sample = dataset.sample(factor)
                payload = _k_build_csr(_k_parse(sample.payload))
                ns.append(float(sample.n_records))
                measured.append(payload_nbytes(payload))
            predicted = fit_curve(ns, measured).predict(n_edges)
            actual = power_law_true_csr_bytes(
                n_edges, avg_degree=avg_degree, weighted=False
            )
            rows.append(CsrSweepRow(
                avg_degree=avg_degree, alpha=alpha,
                predicted_bytes=predicted, actual_bytes=actual,
            ))
    return rows


# --- convenience: one workload end to end ---------------------------------------

@dataclass
class WorkloadComparison:
    workload: Workload
    baseline_seconds: float
    activepy_seconds: float
    plan: List[str]

    @property
    def speedup(self) -> float:
        return self.baseline_seconds / self.activepy_seconds


def compare_workload(
    name: str,
    scale: float = 1.0,
    config: SystemConfig = DEFAULT_CONFIG,
) -> WorkloadComparison:
    """C baseline vs ActivePy for one workload (examples use this)."""
    workload = get_workload(name, scale)
    baseline = run_c_baseline(workload.program, workload.dataset, config=config)
    report = ActivePy(config=config).run(workload.program, workload.dataset)
    return WorkloadComparison(
        workload=workload,
        baseline_seconds=baseline.total_seconds,
        activepy_seconds=report.total_seconds,
        plan=list(report.plan.assignments),
    )
