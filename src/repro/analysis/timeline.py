"""Execution timelines: what ran where, when.

An :class:`ExecutionTimeline` collects timestamped spans (compute on a
unit, a transfer on a link, a compile, a migration) as the executor
runs, and renders them as a plain-text Gantt chart.  Used by the
examples to *show* a migration and by tests to assert structural
properties (no overlapping spans on one unit, time conservation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError
from ..units import format_seconds


@dataclass(frozen=True)
class TimelineSpan:
    """One span of activity on one resource."""

    start: float
    end: float
    resource: str  # "host", "csd", "d2h", ...
    kind: str      # "compute", "storage", "transfer", "compile", "migration", "sampling"
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTimeline:
    """Ordered record of spans across all resources."""

    def __init__(self) -> None:
        self._spans: List[TimelineSpan] = []

    def record(self, start: float, end: float, resource: str, kind: str, label: str) -> None:
        if end < start:
            raise ReproError(f"span ends before it starts: {start} > {end}")
        self._spans.append(TimelineSpan(start, end, resource, kind, label))

    @property
    def spans(self) -> List[TimelineSpan]:
        return sorted(self._spans, key=lambda s: (s.start, s.end))

    def resources(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.resource not in seen:
                seen.append(span.resource)
        return seen

    def busy_seconds(self, resource: str) -> float:
        """Total span time recorded on one resource."""
        return sum(s.duration for s in self._spans if s.resource == resource)

    def span_of(self, label: str) -> TimelineSpan:
        for span in self._spans:
            if span.label == label:
                return span
        raise ReproError(f"no span labelled {label!r}")

    @property
    def makespan(self) -> float:
        if not self._spans:
            return 0.0
        return max(s.end for s in self._spans) - min(s.start for s in self._spans)

    # --- rendering ---------------------------------------------------------

    def render(self, width: int = 64) -> str:
        """Plain-text Gantt chart, one lane per resource."""
        spans = self.spans
        if not spans:
            return "(empty timeline)"
        t0 = min(s.start for s in spans)
        t1 = max(s.end for s in spans)
        total = max(t1 - t0, 1e-12)
        label_width = max(len(r) for r in self.resources())
        lines = []
        for resource in self.resources():
            lane = [" "] * width
            for span in spans:
                if span.resource != resource:
                    continue
                lo = int((span.start - t0) / total * (width - 1))
                hi = max(lo + 1, int(round((span.end - t0) / total * (width - 1))) + 1)
                mark = _MARKS.get(span.kind, "#")
                for i in range(lo, min(hi, width)):
                    lane[i] = mark
            lines.append(f"{resource.ljust(label_width)} |{''.join(lane)}|")
        lines.append(
            f"{' ' * label_width}  0{' ' * (width - len(format_seconds(total)) - 1)}"
            f"{format_seconds(total)}"
        )
        legend = "  ".join(f"{mark}={kind}" for kind, mark in _MARKS.items())
        lines.append(f"{' ' * label_width}  {legend}")
        return "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """Busy seconds per resource (for reports)."""
        return {resource: self.busy_seconds(resource) for resource in self.resources()}


_MARKS = {
    "sampling": "s",
    "compile": "c",
    "compute": "#",
    "storage": "=",
    "transfer": ">",
    "migration": "M",
}


def merge(timelines: List[ExecutionTimeline]) -> ExecutionTimeline:
    """Combine several timelines (e.g. per-phase) into one."""
    merged = ExecutionTimeline()
    for timeline in timelines:
        for span in timeline.spans:
            merged.record(span.start, span.end, span.resource, span.kind, span.label)
    return merged
