"""Comparing archived experiment results across runs.

Calibration work produces a stream of exported JSON results
(``analysis.export``); :func:`diff_results` reports what moved between
two of them — per-key relative deltas over every numeric leaf — so a
config change's blast radius is one command away::

    old = json.load(open("fig4_before.json"))
    new = json.load(open("fig4_after.json"))
    for change in diff_results(old, new, threshold=0.02):
        print(change)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List

from ..errors import ReproError


@dataclass(frozen=True)
class Change:
    """One numeric leaf that moved between two result trees."""

    path: str
    before: float
    after: float

    @property
    def relative(self) -> float:
        if self.before == 0:
            return float("inf") if self.after != 0 else 0.0
        return (self.after - self.before) / abs(self.before)

    def __str__(self) -> str:
        return f"{self.path}: {self.before:.6g} -> {self.after:.6g} ({self.relative:+.2%})"


def _numeric_leaves(tree: Any, path: str = "") -> Iterator[tuple]:
    if isinstance(tree, bool):
        return
    if isinstance(tree, (int, float)):
        yield path, float(tree)
    elif isinstance(tree, dict):
        for key in tree:
            yield from _numeric_leaves(tree[key], f"{path}.{key}" if path else str(key))
    elif isinstance(tree, (list, tuple)):
        for index, item in enumerate(tree):
            yield from _numeric_leaves(item, f"{path}[{index}]")


def diff_results(before: Any, after: Any, threshold: float = 0.0) -> List[Change]:
    """Numeric leaves whose relative change exceeds ``threshold``.

    Structure mismatches (a leaf present on one side only) raise —
    comparing results of different experiments is a usage error.
    """
    if threshold < 0:
        raise ReproError(f"threshold must be non-negative, got {threshold}")
    left = dict(_numeric_leaves(before))
    right = dict(_numeric_leaves(after))
    missing = set(left) ^ set(right)
    if missing:
        raise ReproError(
            f"result structures differ at: {sorted(missing)[:5]}"
            + ("..." if len(missing) > 5 else "")
        )
    changes = []
    for path in sorted(left):
        change = Change(path=path, before=left[path], after=right[path])
        if abs(change.relative) > threshold:
            changes.append(change)
    changes.sort(key=lambda c: -abs(c.relative))
    return changes


def max_relative_change(before: Any, after: Any) -> float:
    """Largest relative movement between two result trees (0 if none)."""
    changes = diff_results(before, after, threshold=0.0)
    return max((abs(c.relative) for c in changes), default=0.0)
