"""System-wide configuration for the simulated platform.

Every free constant in the reproduction lives here, in one frozen
dataclass, so experiments are reproducible and calibration is auditable.
The defaults model the paper's testbed (DAC'23 §IV-A):

* an octa-core host CPU (AMD Ryzen 7 3700X class),
* a CSD with an 8-core ARM Cortex-A72 CSE, 2 TB of NAND,
  9 GB/s internal bandwidth, and a 5 GB/s NVMe host link,
* a PCIe 3.0 system interconnect shared by all peripherals.

Only *ratios* of simulated times are claimed as reproduction results;
see DESIGN.md §5 for the calibration rationale of each value.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import ConfigError
from .units import GB, GIPS, TB


@dataclass(frozen=True)
class SystemConfig:
    """Parameters of the simulated host + CSD platform.

    Instances are immutable; derive variants with :meth:`replace`.
    """

    # --- compute ------------------------------------------------------
    #: Effective host-CPU throughput in instructions/second.
    host_ips: float = 8.0 * GIPS
    #: Effective CSE throughput.  The paper's calibration constant C is
    #: ``host_ips / cse_ips`` (the CSE is slower than the host CPU).
    cse_ips: float = 4.0 * GIPS
    #: Number of CSE cores (ARM Cortex-A72 in the paper's prototype).
    cse_cores: int = 8
    #: Whether the CSD's compute engines accept offloaded work at all.
    #: ``False`` models a host with a plain (non-computational) SSD:
    #: every planner — greedy Algorithm 1 and the branch-and-bound
    #: search alike — must then keep all lines on the host.
    csd_enabled: bool = True

    # --- interconnect -------------------------------------------------
    #: How the CSD attaches to the host (paper §III-C0a): "pcie" maps
    #: device memory through BARs; "nvmeof" reaches the device over the
    #: network fabric, using RDMA for the memory mapping — same
    #: mechanics, higher message latency.
    attachment: str = "pcie"
    #: Extra one-way latency of the NVMe-oF fabric path, seconds.
    nvmeof_extra_latency_s: float = 15e-6
    #: Host-visible storage read bandwidth (shared PCIe 3.0 +
    #: filesystem path), bytes/second.
    bw_host_storage: float = 1.6 * GB
    #: CSE <-> NAND internal bandwidth (the paper measures 9 GB/s).
    bw_internal: float = 9.0 * GB
    #: Effective device <-> host transfer bandwidth for processed data
    #: over the 5 GB/s NVMe link.
    bw_d2h: float = 3.0 * GB
    #: One-way small-message latency over the host interconnect
    #: (doorbell/status update cost), seconds.
    link_latency_s: float = 5e-6

    # --- device geometry ----------------------------------------------
    #: Raw NAND capacity of the CSD.
    nand_capacity_bytes: float = 2.0 * TB
    #: Device DRAM capacity.
    device_dram_bytes: float = 16.0 * GB
    #: NAND page size in bytes.
    nand_page_bytes: int = 16384
    #: Pages per erase block.
    nand_pages_per_block: int = 256
    #: Independent NAND channels.  Sized so the array's aggregate read
    #: rate can actually sustain ``bw_internal`` (checked in
    #: validation): 16 channels x 16 KiB / 25 us ~ 10.5 GB/s.
    nand_channels: int = 16
    #: Single-page read latency, seconds.
    nand_read_latency_s: float = 25e-6
    #: Single-page program latency, seconds.
    nand_program_latency_s: float = 600e-6
    #: Block erase latency, seconds.
    nand_erase_latency_s: float = 3e-3

    # --- language runtime ---------------------------------------------
    #: Fractional overhead of CPython interpreter dispatch over the C
    #: kernel time.  Removed by Cython-style compilation.
    interp_dispatch_overhead: float = 0.21
    #: Fractional overhead of redundant cross-language memory copies.
    #: Removed by ActivePy's mutable-memory copy elimination.
    copy_overhead: float = 0.20
    #: One-time code-generation (Cython compile) cost, seconds.  The
    #: paper reports "typically 0.1 sec".
    compile_overhead_s: float = 0.1
    #: Residual overhead of generated code vs hand-written C.
    codegen_residual_overhead: float = 0.005

    # --- ActivePy runtime policy --------------------------------------
    #: Sampling scaling factors (paper §III-A: tiny/small/medium/large).
    sampling_factors: tuple = (2**-10, 2**-9, 2**-8, 2**-7)
    #: Relative standard deviation of profiler measurement noise.  Zero
    #: (the default) makes every experiment exactly reproducible; real
    #: line profilers jitter by a few percent, which is what pushes the
    #: paper's prediction error to its reported 9%.
    profiler_noise: float = 0.0
    #: Seed for the (deterministic) noise stream.
    profiler_noise_seed: int = 42
    #: Overlap stored-data streaming with compute inside each chunk
    #: (double-buffered engines pay max(io, compute) per chunk rather
    #: than the sum).  Off by default: the calibration and the paper's
    #: Equation 1 assume the sequential model; the ablation bench
    #: quantifies the difference.
    overlap_io_compute: bool = False
    #: Interval between status updates from CSD code, in executed lines.
    status_update_every_lines: int = 1
    #: IPC must fall below this fraction of the estimate before the
    #: monitor re-estimates the remaining CSD time.
    ipc_degradation_threshold: float = 0.7
    #: Cost of checkpointing/restoring task-local state on migration,
    #: seconds (saving locals into the shared address space).
    migration_state_cost_s: float = 0.05
    #: Bandwidth at which the host accesses live data still resident in
    #: CSD memory after a migration (remote load/store over the BAR
    #: mapping is slower than a streaming read).
    bw_remote_access: float = 1.2 * GB
    #: After a host-ward migration, let *later* lines planned for the
    #: CSD return to it once its status page reports recovery.  An
    #: extension beyond the paper's prototype (which only migrates
    #: host-ward); off by default.
    readmission_enabled: bool = False
    #: Device availability (from its self-reported rate) required
    #: before re-admitting offloaded lines.
    readmission_threshold: float = 0.9
    #: Quiet period after a migration before re-admission is considered
    #: again — keeps an oscillating co-tenant from ping-ponging the
    #: task between units.
    readmission_cooldown_s: float = 0.2

    # --- fault tolerance ----------------------------------------------
    #: Seed for deterministic fault-plan generation
    #: (:meth:`repro.faults.FaultPlan.random`).
    fault_seed: int = 42
    #: How long (simulated seconds) the host waits for a command
    #: completion — or for a crashed device to come back — before one
    #: retry attempt is charged.
    command_deadline_s: float = 0.05
    #: Bounded retries (re-submissions / chunk replays) before the host
    #: gives up on the device for the current command.
    command_max_retries: int = 3
    #: First retry backoff, simulated seconds; subsequent waits grow by
    #: ``retry_backoff_factor`` (exponential backoff, all in sim time).
    retry_backoff_base_s: float = 0.002
    #: Multiplier applied to the backoff between consecutive retries.
    retry_backoff_factor: float = 2.0
    #: Bounded wait (simulated seconds) for space in a full NVMe
    #: submission queue before giving up with a dispatch error.
    queue_full_wait_s: float = 0.02
    #: Chunk replays the executor attempts on the device after a fault
    #: before falling back to the host for the rest of the line.
    chunk_replay_limit: int = 2

    # --- line-boundary checkpointing ----------------------------------
    #: Write a versioned, CRC-protected resume record into BAR shared
    #: memory at every chunk (dynamic line-instance) boundary, so a
    #: crash recovery or migration resumes "at a Python-line boundary
    #: from shared memory" even when a fault tears the write itself.
    checkpoint_enabled: bool = True
    #: Alternate between two BAR slots so a torn write can only ever
    #: corrupt the newest generation, never the last committed one.
    #: Disabling this is only useful for demonstrating the failure mode
    #: the protocol exists to prevent.
    checkpoint_double_buffer: bool = True
    #: Validate the stored CRC before trusting a record on restore.
    #: ``False`` is a deliberately planted bug the chaos harness must
    #: catch (a torn record is then trusted verbatim).
    checkpoint_validate: bool = True
    #: Simulated seconds one checkpoint write costs the device.  The
    #: record rides the status-update page the device already posts, so
    #: the calibrated default charges nothing; the overhead bench
    #: sweeps nonzero values.
    checkpoint_write_cost_s: float = 0.0

    # --- end-to-end data integrity ------------------------------------
    #: Compute content digests where data is produced (NAND streams,
    #: chunk outputs, checkpoint records, transfer payloads) and verify
    #: them where it is consumed (executor result assembly, BAR
    #: readback, checkpoint restore).  Off by default with exactly zero
    #: simulated and metric overhead — the same discipline as obs and
    #: checkpointing.
    integrity_enabled: bool = False
    #: Actually *check* the digests at consumers.  ``False`` while
    #: ``integrity_enabled`` is the deliberately planted bug the chaos
    #: harness must catch: digests are computed and paid for but never
    #: compared, so silent corruption flows into the report.
    integrity_verify: bool = True
    #: Bytes/second one verifier sustains (hardware CRC32C runs near
    #: memory speed).  Every protected byte is charged ``1 / bandwidth``
    #: seconds to the ``integrity`` attribution component, which is what
    #: makes protection a planner-visible tradeoff.
    integrity_verify_bandwidth: float = 64.0 * GB

    def __post_init__(self) -> None:
        positive_fields = (
            "host_ips", "cse_ips", "bw_host_storage", "bw_internal",
            "bw_d2h", "nand_capacity_bytes", "device_dram_bytes",
            "nand_page_bytes", "nand_pages_per_block", "nand_channels",
            "nand_read_latency_s", "nand_program_latency_s",
            "nand_erase_latency_s", "bw_remote_access", "cse_cores",
            "integrity_verify_bandwidth",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive, got {getattr(self, name)}")
        non_negative_fields = (
            "link_latency_s", "interp_dispatch_overhead", "copy_overhead",
            "compile_overhead_s", "codegen_residual_overhead",
            "migration_state_cost_s",
        )
        for name in non_negative_fields:
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative, got {getattr(self, name)}")
        if not self.sampling_factors:
            raise ConfigError("sampling_factors must not be empty")
        if any(not 0 < f < 1 for f in self.sampling_factors):
            raise ConfigError("sampling factors must lie in (0, 1)")
        if list(self.sampling_factors) != sorted(self.sampling_factors):
            raise ConfigError("sampling factors must be sorted ascending")
        if not 0 < self.ipc_degradation_threshold <= 1:
            raise ConfigError("ipc_degradation_threshold must lie in (0, 1]")
        if not 0 <= self.profiler_noise < 0.5:
            raise ConfigError(
                f"profiler_noise must lie in [0, 0.5), got {self.profiler_noise}"
            )
        if not 0 < self.readmission_threshold <= 1:
            raise ConfigError(
                "readmission_threshold must lie in (0, 1], got "
                f"{self.readmission_threshold}"
            )
        if self.readmission_cooldown_s < 0:
            raise ConfigError("readmission_cooldown_s must be non-negative")
        if self.command_deadline_s <= 0:
            raise ConfigError(
                f"command_deadline_s must be positive, got {self.command_deadline_s}"
            )
        if self.command_max_retries < 0:
            raise ConfigError(
                f"command_max_retries must be non-negative, got {self.command_max_retries}"
            )
        if self.retry_backoff_base_s <= 0:
            raise ConfigError(
                f"retry_backoff_base_s must be positive, got {self.retry_backoff_base_s}"
            )
        if self.retry_backoff_factor < 1:
            raise ConfigError(
                f"retry_backoff_factor must be >= 1, got {self.retry_backoff_factor}"
            )
        if self.queue_full_wait_s < 0:
            raise ConfigError(
                f"queue_full_wait_s must be non-negative, got {self.queue_full_wait_s}"
            )
        if self.chunk_replay_limit < 0:
            raise ConfigError(
                f"chunk_replay_limit must be non-negative, got {self.chunk_replay_limit}"
            )
        if self.checkpoint_write_cost_s < 0:
            raise ConfigError(
                f"checkpoint_write_cost_s must be non-negative, "
                f"got {self.checkpoint_write_cost_s}"
            )
        if self.attachment not in ("pcie", "nvmeof"):
            raise ConfigError(
                f"attachment must be 'pcie' or 'nvmeof', got {self.attachment!r}"
            )
        if self.nvmeof_extra_latency_s < 0:
            raise ConfigError("nvmeof_extra_latency_s must be non-negative")
        if self.cse_ips > self.host_ips:
            raise ConfigError(
                "the CSE must not be faster than the host CPU "
                f"(cse_ips={self.cse_ips}, host_ips={self.host_ips})"
            )
        # The device's internal bandwidth must be physically deliverable
        # by its flash array: channels x page / read-latency.
        nand_peak = (
            self.nand_channels * self.nand_page_bytes / self.nand_read_latency_s
        )
        if nand_peak < self.bw_internal:
            raise ConfigError(
                f"bw_internal ({self.bw_internal:.3g} B/s) exceeds what the "
                f"NAND geometry can sustain ({nand_peak:.3g} B/s); add "
                f"channels or lower the read latency"
            )

    @property
    def device_speed_ratio(self) -> float:
        """The paper's calibration constant C = host speed / CSE speed."""
        return self.host_ips / self.cse_ips

    @property
    def effective_link_latency_s(self) -> float:
        """One-way message latency including any fabric hop."""
        if self.attachment == "nvmeof":
            return self.link_latency_s + self.nvmeof_extra_latency_s
        return self.link_latency_s

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


#: Default platform used by tests, examples and benchmarks.
DEFAULT_CONFIG = SystemConfig()
