"""Synthetic graph generation with a skew-aware storage order.

The population is *defined* by a closed-form degree sequence: vertex
``i`` (of ``n_vertices``, ascending by degree) has

    deg(i) = max(1, round(avg_degree * (n/(n-i))^alpha / norm))

With the default ``alpha = 1.5`` the vast majority of vertices sit at
the floor (degree 1) while a short head of hubs carries most edges —
the familiar power-law shape.  The stored edge list is **fringe
first**: a crawler draining its frontier emits the degree-1 leaves long
before it finishes the hubs, so the file begins with them.
Destinations are drawn preferentially (hubs attract most in-edges).

Consequence: a prefix sample of the stored records covers roughly one
*distinct* source vertex per edge, while the full population has
``avg_degree`` edges per vertex.  A sampling-based predictor therefore
measures a much larger per-edge CSR footprint than the population's —
reproducing, from real data, the paper's observation that ActivePy
"always over-estimates the data volume after generating CSR" (§V).

The full population (hundreds of millions of edges) is never
materialised; :func:`power_law_prefix` computes exactly the records a
prefix sample contains, and :func:`power_law_true_csr_bytes` gives the
population-scale ground truth analytically.
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .csr import csr_nbytes

#: Default skew exponents: out-degrees and preferential destinations.
DEFAULT_ALPHA = 1.5
DEFAULT_DST_S = 1.8


def _degree_normaliser(n_vertices: int, alpha: float) -> float:
    """Mean of (n/(n-i))^alpha over i, via the rank form r^-alpha."""
    ranks = np.arange(1, n_vertices + 1, dtype=np.float64)
    return float(np.mean(ranks**-alpha))


def _degrees_ascending(
    start: int, count: int, n_vertices: int, avg_degree: float,
    alpha: float, norm: float,
) -> np.ndarray:
    """Degrees of vertices [start, start+count), ascending order."""
    i = np.arange(start, start + count, dtype=np.float64)
    ranks = n_vertices - i  # vertex 0 has the worst (largest) rank
    raw = avg_degree * ranks**-alpha / norm
    return np.maximum(1, np.round(raw)).astype(np.int64)


def _preferential_destinations(
    count: int, n_vertices: int, s: float, rng: np.random.Generator
) -> np.ndarray:
    """Destinations drawn Zipf-like toward the hubs (high vertex ids)."""
    u = rng.random(count)
    ranks = np.floor(u ** (-1.0 / (s - 1.0))).astype(np.int64)
    ranks = np.clip(ranks, 1, n_vertices)
    return n_vertices - ranks  # rank 1 = the biggest hub = last id


def vertices_for_edges(n_edges: int, avg_degree: float = 8.0) -> int:
    """Population vertex count implied by an edge count."""
    if n_edges <= 0:
        raise WorkloadError(f"n_edges must be positive, got {n_edges}")
    if avg_degree <= 0:
        raise WorkloadError(f"avg_degree must be positive, got {avg_degree}")
    return max(2, int(round(n_edges / avg_degree)))


def power_law_prefix(
    prefix_edges: int,
    full_edges: int,
    avg_degree: float = 8.0,
    alpha: float = DEFAULT_ALPHA,
    dst_s: float = DEFAULT_DST_S,
    seed: int = 11,
) -> tuple:
    """First ``prefix_edges`` stored records of the full population.

    Returns ``(src, dst, n_vertices_full)``.  Only the fringe vertices
    the prefix covers are enumerated, so cost is O(prefix), never
    O(population).
    """
    if prefix_edges <= 0:
        raise WorkloadError(f"prefix_edges must be positive, got {prefix_edges}")
    if prefix_edges > full_edges:
        raise WorkloadError(
            f"prefix of {prefix_edges} edges exceeds population of {full_edges}"
        )
    n_vertices = vertices_for_edges(full_edges, avg_degree)
    norm = _degree_normaliser(min(n_vertices, 1_000_000), alpha)

    chunks = []
    covered = 0
    start = 0
    block = max(1024, prefix_edges // 4)
    while covered < prefix_edges and start < n_vertices:
        count = min(block, n_vertices - start)
        degrees = _degrees_ascending(start, count, n_vertices, avg_degree, alpha, norm)
        chunks.append(np.repeat(np.arange(start, start + count, dtype=np.int64), degrees))
        covered += int(degrees.sum())
        start += count
    src = np.concatenate(chunks)[:prefix_edges]
    if src.size < prefix_edges:
        # The entire fringe plus head did not reach the request (only
        # possible for near-population prefixes); pad with hub edges.
        pad = np.full(prefix_edges - src.size, n_vertices - 1, dtype=np.int64)
        src = np.concatenate([src, pad])
    rng = np.random.default_rng(seed)
    dst = _preferential_destinations(prefix_edges, n_vertices, dst_s, rng)
    return src, dst, n_vertices


def power_law_edges(
    n_edges: int,
    avg_degree: float = 8.0,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 11,
) -> tuple:
    """A complete small graph (prefix == population), for tests/examples."""
    return power_law_prefix(
        prefix_edges=n_edges,
        full_edges=n_edges,
        avg_degree=avg_degree,
        alpha=alpha,
        seed=seed,
    )


def power_law_true_csr_bytes(
    n_edges: int,
    avg_degree: float = 8.0,
    weighted: bool = False,
) -> float:
    """Population-scale CSR footprint (analytic ground truth).

    Unweighted drops the values array: int64 indptr + int32 indices.
    """
    n_vertices = vertices_for_edges(n_edges, avg_degree)
    full = csr_nbytes(n_vertices, n_edges)
    if weighted:
        return full
    return full - 8.0 * n_edges  # no values array


def distinct_sources(src: np.ndarray) -> int:
    """Number of distinct source vertices in an edge-list slice."""
    if src.size == 0:
        return 0
    return int(np.unique(src).size)
