"""Compressed sparse row (CSR) structures built from edge lists."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError


@dataclass
class CSRMatrix:
    """A CSR adjacency/weight matrix.

    ``indptr`` has ``n_rows + 1`` entries; row ``i`` owns the slice
    ``indices[indptr[i]:indptr[i+1]]``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.indptr.shape[0] - 1

    @property
    def nnz(self) -> int:
        return self.indices.shape[0]

    @property
    def nbytes(self) -> int:
        return int(self.indptr.nbytes + self.indices.nbytes + self.values.nbytes)

    def row(self, i: int) -> tuple:
        """(column indices, values) of row ``i``."""
        if not 0 <= i < self.n_rows:
            raise WorkloadError(f"row {i} out of range [0, {self.n_rows})")
        start, end = self.indptr[i], self.indptr[i + 1]
        return self.indices[start:end], self.values[start:end]

    def out_degree(self) -> np.ndarray:
        return np.diff(self.indptr)


def csr_from_edges(
    src: np.ndarray,
    dst: np.ndarray,
    n_rows: int,
    values: np.ndarray | None = None,
) -> CSRMatrix:
    """Build CSR from an unsorted edge list.

    ``n_rows`` also bounds the column space (square matrix); edges with
    endpoints outside it are rejected.
    """
    if src.shape != dst.shape:
        raise WorkloadError(f"src/dst shape mismatch: {src.shape} vs {dst.shape}")
    if n_rows <= 0:
        raise WorkloadError(f"n_rows must be positive, got {n_rows}")
    if src.size and (src.min() < 0 or src.max() >= n_rows):
        raise WorkloadError("source vertex out of range")
    if dst.size and (dst.min() < 0 or dst.max() >= n_rows):
        raise WorkloadError("destination vertex out of range")
    order = np.argsort(src, kind="stable")
    sorted_src = src[order]
    sorted_dst = dst[order].astype(np.int32)
    if values is None:
        sorted_values = np.ones(src.size, dtype=np.float64)
    else:
        sorted_values = values[order].astype(np.float64)
    counts = np.bincount(sorted_src, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(indptr=indptr, indices=sorted_dst, values=sorted_values)


def csr_nbytes(n_rows: int, nnz: int) -> float:
    """Analytic CSR footprint: int64 indptr, int32 indices, f64 values.

    The population-scale ground truth for the CSR-conversion lines'
    output volume.
    """
    if n_rows < 0 or nnz < 0:
        raise WorkloadError("n_rows and nnz must be non-negative")
    return 8.0 * (n_rows + 1) + 4.0 * nnz + 8.0 * nnz
