"""Graph substrate: edge lists, CSR conversion, PageRank, SpMV.

These back the PageRank, SparseMV and MixedGEMM workloads.  The edge
generator deliberately stores low-degree vertices first — sampling a
prefix of the stored edge list therefore sees a *sparser* slice than
the population, which is the real-data mechanism behind the paper's
CSR volume over-estimation (§V).
"""

from .csr import CSRMatrix, csr_from_edges, csr_nbytes
from .generators import power_law_edges, power_law_true_csr_bytes
from .pagerank_core import pagerank, spmv

__all__ = [
    "CSRMatrix",
    "csr_from_edges",
    "csr_nbytes",
    "power_law_edges",
    "power_law_true_csr_bytes",
    "pagerank",
    "spmv",
]
