"""PageRank and sparse matrix-vector primitives over CSR."""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from .csr import CSRMatrix


def spmv(matrix: CSRMatrix, x: np.ndarray) -> np.ndarray:
    """y = A x for a CSR matrix (vectorised, no scipy dependency)."""
    if x.shape[0] < (matrix.indices.max(initial=-1) + 1):
        raise WorkloadError(
            f"vector of length {x.shape[0]} too short for matrix columns"
        )
    if matrix.nnz == 0:
        return np.zeros(matrix.n_rows)
    products = matrix.values * x[matrix.indices]
    # Weighted bincount is a scatter-add per stored element: immune to
    # the empty-row pitfalls of segment reductions (np.add.reduceat
    # mis-handles rows whose start index equals the array length or
    # the next row's start), accumulates per row in element order like
    # np.add.at (bit-identical), and runs as a single C loop.
    rows = np.repeat(
        np.arange(matrix.n_rows, dtype=np.int64), np.diff(matrix.indptr)
    )
    return np.bincount(rows, weights=products, minlength=matrix.n_rows)


def pagerank(
    matrix: CSRMatrix,
    damping: float = 0.85,
    iterations: int = 20,
    tol: float = 0.0,
) -> np.ndarray:
    """Power iteration over the column-stochastic transition matrix.

    ``matrix`` holds out-edges row-wise; ranks are normalised each
    sweep so dangling mass is redistributed uniformly and the result
    sums to one.
    """
    if not 0 < damping < 1:
        raise WorkloadError(f"damping must lie in (0, 1), got {damping}")
    if iterations < 1:
        raise WorkloadError(f"iterations must be >= 1, got {iterations}")
    n = matrix.n_rows
    out_degree = matrix.out_degree().astype(np.float64)
    safe_degree = np.maximum(out_degree, 1.0)
    ranks = np.full(n, 1.0 / n)
    # The COO row vector is loop-invariant; expand it once, not per sweep.
    rows = _expand_rows(matrix)
    for _ in range(iterations):
        contrib = ranks / safe_degree
        # Push each vertex's share along its out-edges: y[d] += c[s].
        # Weighted bincount accumulates per destination in element
        # order, bit-identical to the former np.add.at scatter.
        incoming = np.bincount(
            matrix.indices, weights=contrib[rows], minlength=n
        )
        new_ranks = (1.0 - damping) / n + damping * incoming
        # Redistribute dangling-node mass uniformly.
        dangling = ranks[out_degree == 0].sum()
        new_ranks += damping * dangling / n
        delta = float(np.abs(new_ranks - ranks).sum())
        ranks = new_ranks
        if tol and delta < tol:
            break
    return ranks / ranks.sum()


def _expand_rows(matrix: CSRMatrix) -> np.ndarray:
    """Row index of every stored nonzero (the COO row vector)."""
    return np.repeat(
        np.arange(matrix.n_rows, dtype=np.int64), np.diff(matrix.indptr)
    )
