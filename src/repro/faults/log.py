"""Structured record of injections and recovery actions.

Injector handlers and the runtime's recovery paths both append
:class:`FaultEvent` entries to one shared :class:`FaultLog`, so an
execution report carries a single time-ordered story of everything that
went wrong and how the stack responded.  Events are frozen and their
``repr`` is deterministic — the determinism acceptance test compares
whole logs byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List


@dataclass(frozen=True)
class FaultEvent:
    """One injection or recovery action, stamped with simulated time."""

    time: float
    #: The :class:`~repro.faults.spec.FaultKind` value, or a runtime
    #: category such as ``"recovery"`` / ``"backpressure"``.
    kind: str
    #: Device or link the event concerns.
    target: str
    #: What happened: ``"injected"``, ``"ecc-corrected"``,
    #: ``"chunk-failed"``, ``"chunk-replay"``, ``"retry"``,
    #: ``"late-completion"``, ``"duplicate-dropped"``,
    #: ``"host-fallback"``, ``"device-dead"``, ``"recovered"``, …
    action: str
    detail: str = ""

    def render(self) -> str:
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{self.time:.6f}s] {self.kind} @ {self.target}: {self.action}{suffix}"


class FaultLog:
    """Append-only event list shared by the injector and the runtime."""

    def __init__(self) -> None:
        self.events: List[FaultEvent] = []

    def record(
        self, time: float, kind: str, target: str, action: str, detail: str = ""
    ) -> FaultEvent:
        event = FaultEvent(
            time=time, kind=kind, target=target, action=action, detail=detail
        )
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def actions(self) -> List[str]:
        """The action sequence alone (convenient for assertions)."""
        return [event.action for event in self.events]

    def render(self) -> str:
        return "\n".join(event.render() for event in self.events)
