"""Arming a fault plan on a machine's event queue.

The injector translates each :class:`~repro.faults.spec.FaultSpec` into
simulator events on the machine's shared
:class:`~repro.sim.Simulator`: at the spec's timestamp the
corresponding hardware hook flips (a NAND read fault is armed, the CSE
crashes, a link degrades), and window faults get a paired recovery
event.  All state changes go through the same hooks tests and the
runtime use, so injected faults are indistinguishable from "real" ones
to everything above the hardware layer.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import FaultError
from ..sim.handle import EventHandle
from .log import FaultLog
from .spec import FLEET_KINDS, FaultKind, FaultPlan, FaultSpec

#: Kinds not bound to the target device's firmware generation.  Link
#: faults live on the interconnect, not in device state; bitrot lives
#: in device DRAM, which survives a firmware reset (only the engine
#: restarts), so a reset must not launder a decayed record.
_GENERATION_EXEMPT = frozenset({
    FaultKind.LINK_DEGRADE,
    FaultKind.BAR_TRANSFER_CORRUPTION,
    FaultKind.CHECKPOINT_SILENT_BITROT,
})


class FaultInjector:
    """Schedules a :class:`FaultPlan` against one machine."""

    def __init__(self, machine, plan: FaultPlan, log: Optional[FaultLog] = None) -> None:
        self.machine = machine
        self.plan = plan
        self.log = log if log is not None else FaultLog()
        self.injected = 0
        self.stale_dropped = 0
        self._armed = False
        self._events: List[EventHandle] = []

    # --- arming -----------------------------------------------------------

    def arm(self) -> None:
        """Schedule every spec in the plan; idempotent per injector.

        Device-targeted specs are bound to the target's current
        firmware generation: a spec describes a flaw in the device
        state that exists *now*, so if a reset rebirths the device
        before the spec fires, the fault is stale and must be dropped
        rather than fired into the new generation.
        """
        if self._armed:
            raise FaultError("fault plan is already armed on this injector")
        for spec in self.plan:
            if spec.kind in FLEET_KINDS:
                raise FaultError(
                    f"{spec.kind.value} is a fleet-level fault; it is "
                    f"interpreted by the repro.fleet scheduler and cannot "
                    f"be armed on a single machine"
                )
        self._armed = True
        for spec in self.plan.sorted_specs():
            generation = None
            if spec.kind not in _GENERATION_EXEMPT:
                try:
                    generation = self._device(spec).generation
                except FaultError:
                    generation = None  # unknown target surfaces at fire time
            event = self.machine.simulator.schedule_at(
                spec.at_time,
                lambda spec=spec, generation=generation: self._fire(spec, generation),
                label=f"fault-{spec.kind.value}",
            )
            self._events.append(event)

    def disarm(self) -> None:
        """Cancel every not-yet-fired fault event (between experiments)."""
        for event in self._events:
            event.cancel()
        self._events.clear()
        self._armed = False

    # --- firing -----------------------------------------------------------

    def _device(self, spec: FaultSpec):
        for device in self.machine.csds:
            if device.name == spec.target:
                return device
        raise FaultError(f"fault targets unknown device {spec.target!r}")

    def _link(self, spec: FaultSpec):
        if spec.target == "d2h":
            return self.machine.d2h_link
        if spec.target == "host-storage":
            return self.machine.host_storage_link
        if spec.target == "remote-access":
            return self.machine.remote_access_link
        if spec.target == "internal":
            return self.machine.csd.internal_link
        raise FaultError(f"fault targets unknown link {spec.target!r}")

    def _fire(self, spec: FaultSpec, armed_generation: Optional[int] = None) -> None:
        now = self.machine.simulator.now
        kind = spec.kind
        if armed_generation is not None:
            device = self._device(spec)
            if device.generation != armed_generation:
                self.stale_dropped += 1
                self.log.record(
                    now, kind.value, spec.target, "stale-dropped",
                    f"armed against generation {armed_generation}, device "
                    f"is now generation {device.generation}",
                )
                return
        if kind is FaultKind.NAND_READ_CORRECTABLE:
            device = self._device(spec)
            device.flash.arm_read_fault(
                correctable=True, retries=spec.retries, count=spec.count
            )
            detail = f"{spec.count} read(s), {spec.retries} ECC re-read(s) each"
        elif kind is FaultKind.NAND_READ_UNCORRECTABLE:
            device = self._device(spec)
            device.flash.arm_read_fault(
                correctable=False, count=spec.count, persistent=spec.persistent
            )
            detail = "persistent" if spec.persistent else f"{spec.count} read(s)"
        elif kind is FaultKind.NVME_COMPLETION_LOSS:
            device = self._device(spec)
            device.queue_pair.cq.arm_loss(spec.count)
            detail = f"next {spec.count} completion(s) dropped"
        elif kind is FaultKind.NVME_COMPLETION_DELAY:
            device = self._device(spec)
            device.queue_pair.cq.arm_delay(spec.duration_s)
            detail = f"next completion late by {spec.duration_s:.6f}s"
        elif kind is FaultKind.NVME_QUEUE_STALL:
            device = self._device(spec)
            device.queue_pair.stall(now + spec.duration_s)
            detail = f"queue pair stalled until {now + spec.duration_s:.6f}s"
        elif kind is FaultKind.CSE_CRASH:
            device = self._device(spec)
            device.crash_cse()
            if spec.duration_s > 0:
                self.machine.simulator.schedule_after(
                    spec.duration_s,
                    lambda device=device, spec=spec: self._recover_cse(device, spec),
                    label="fault-cse-reset",
                )
                detail = f"reset in {spec.duration_s:.6f}s"
            else:
                detail = "no self-reset"
        elif kind is FaultKind.CHECKPOINT_TORN_WRITE:
            device = self._device(spec)
            device.checkpoints.arm_torn_write(spec.count)
            detail = f"next {spec.count} checkpoint write(s) torn"
        elif kind is FaultKind.NAND_SILENT_CORRUPTION:
            device = self._device(spec)
            device.flash.arm_silent_corruption(
                count=spec.count, persistent=spec.persistent
            )
            detail = (
                "persistent silent corruption"
                if spec.persistent
                else f"next {spec.count} read(s) silently corrupted"
            )
        elif kind is FaultKind.BAR_TRANSFER_CORRUPTION:
            link = self._link(spec)
            link.arm_transfer_corruption(spec.count)
            detail = f"next {spec.count} payload(s) garbled in flight"
        elif kind is FaultKind.CHECKPOINT_SILENT_BITROT:
            device = self._device(spec)
            rotted = device.checkpoints.rot_committed(spec.count)
            detail = (
                f"{rotted} committed record(s) decayed in BAR memory"
                if rotted
                else "no committed record to decay"
            )
        elif kind is FaultKind.LINK_DEGRADE:
            link = self._link(spec)
            link.set_degradation(spec.factor)
            self.machine.simulator.schedule_after(
                spec.duration_s,
                lambda link=link, spec=spec: self._restore_link(link, spec),
                label="fault-link-restore",
            )
            detail = f"bandwidth x{spec.factor:.2f} for {spec.duration_s:.6f}s"
        else:  # pragma: no cover - FaultKind is exhaustive
            raise FaultError(f"unhandled fault kind {kind!r}")
        self.injected += 1
        self.log.record(now, kind.value, spec.target, "injected", detail)

    def _recover_cse(self, device, spec: FaultSpec) -> None:
        device.reset_cse()
        self.log.record(
            self.machine.simulator.now, spec.kind.value, spec.target,
            "recovered", "CSE reset, queues cleared",
        )

    def _restore_link(self, link, spec: FaultSpec) -> None:
        link.set_degradation(1.0)
        self.log.record(
            self.machine.simulator.now, spec.kind.value, spec.target,
            "recovered", "link restored to full bandwidth",
        )
