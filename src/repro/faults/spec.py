"""Fault descriptions: what breaks, where, and when.

A :class:`FaultSpec` is a single timed failure; a :class:`FaultPlan` is
an ordered collection of them.  Plans are plain data — arming them on a
machine is the :class:`~repro.faults.injector.FaultInjector`'s job — so
the same plan can be replayed against fresh machines and must produce
byte-identical fault logs (the determinism guarantee the tests pin).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from ..errors import FaultError


class FaultKind(str, enum.Enum):
    """The failure modes the simulated stack can inject."""

    #: A NAND read needs ECC re-read retries (extra latency, data fine).
    NAND_READ_CORRECTABLE = "nand-read-correctable"
    #: A NAND read fails beyond the ECC budget
    #: (:class:`~repro.errors.UncorrectableMediaError`).
    NAND_READ_UNCORRECTABLE = "nand-read-uncorrectable"
    #: The device drops the next completion(s) it would post.
    NVME_COMPLETION_LOSS = "nvme-completion-loss"
    #: The next completion becomes visible to the host late.
    NVME_COMPLETION_DELAY = "nvme-completion-delay"
    #: The queue pair stops making progress for a window.
    NVME_QUEUE_STALL = "nvme-queue-stall"
    #: The CSE crashes mid-task; optionally resets after ``duration_s``.
    CSE_CRASH = "cse-crash"
    #: A link runs at ``factor`` of its bandwidth for ``duration_s``.
    LINK_DEGRADE = "link-degrade"
    #: The next ``count`` line-boundary checkpoint writes are torn
    #: mid-DMA (head lands, tail scrambled) — the power-event hazard
    #: the double-buffer/CRC protocol exists to survive.
    CHECKPOINT_TORN_WRITE = "checkpoint-torn-write"
    #: Bits flip on the next ``count`` NAND reads *without* an error
    #: completion — the data is wrong and nobody is told (the silent
    #: hazard the :mod:`repro.integrity` checksum layer exists to catch).
    NAND_SILENT_CORRUPTION = "nand-silent-corruption"
    #: The next ``count`` payloads crossing a link are garbled in
    #: flight; the transfer itself completes normally.
    BAR_TRANSFER_CORRUPTION = "bar-transfer-corruption"
    #: A committed checkpoint record decays in BAR memory *after* its
    #: CRC was written — bitrot, not a torn DMA.
    CHECKPOINT_SILENT_BITROT = "checkpoint-silent-bitrot"
    #: Fleet-level: the machine named by ``target`` drops out of the
    #: rack at ``at_time`` with jobs in flight; ``duration_s`` > 0 means
    #: it rejoins after that window, 0 means it never comes back.  Only
    #: the :mod:`repro.fleet` scheduler interprets this kind — arming it
    #: on a single machine's injector is an error.
    DEVICE_LOST_MID_JOB = "device-lost-mid-job"
    #: Fleet-level: jobs of the tenant named by ``target`` dispatched
    #: during the ``duration_s`` window run under a derived inner
    #: :class:`FaultPlan` of ``count`` loud faults each — the per-tenant
    #: blast the isolation invariant must confine to that tenant.
    TENANT_FAULT_INJECTION = "tenant-fault-injection"


#: Link-shaped targets understood by the injector (LINK_DEGRADE and
#: BAR_TRANSFER_CORRUPTION name a link, not a device).
LINK_TARGETS = ("d2h", "host-storage", "remote-access", "internal")

#: Faults that surface through the normal error machinery: a failed
#: completion, a crash, extra latency, a CRC-detectable tear.  This is
#: the default kind pool for generated plans, so pre-existing seeds
#: keep producing byte-identical plans.
LOUD_KINDS = (
    FaultKind.NAND_READ_CORRECTABLE,
    FaultKind.NAND_READ_UNCORRECTABLE,
    FaultKind.NVME_COMPLETION_LOSS,
    FaultKind.NVME_COMPLETION_DELAY,
    FaultKind.NVME_QUEUE_STALL,
    FaultKind.CSE_CRASH,
    FaultKind.LINK_DEGRADE,
    FaultKind.CHECKPOINT_TORN_WRITE,
)

#: Faults that corrupt data without any error completion.  Only the
#: end-to-end integrity layer (:mod:`repro.integrity`) can catch them;
#: campaigns opt in via ``silent_corruption`` / ``--sdc``.
SILENT_KINDS = (
    FaultKind.NAND_SILENT_CORRUPTION,
    FaultKind.BAR_TRANSFER_CORRUPTION,
    FaultKind.CHECKPOINT_SILENT_BITROT,
)

#: Faults that land on the rack, not on one machine's hardware: the
#: :mod:`repro.fleet` scheduler interprets them (device loss with
#: failover, per-tenant fault storms).  Kept out of both LOUD_KINDS and
#: SILENT_KINDS so every pre-existing campaign seed keeps producing
#: byte-identical plans.
FLEET_KINDS = (
    FaultKind.DEVICE_LOST_MID_JOB,
    FaultKind.TENANT_FAULT_INJECTION,
)

#: One-line description and default target per kind, for the
#: ``repro faults list`` CLI and the docs table.  Every member of
#: :class:`FaultKind` must have an entry (pinned by a test).
FAULT_KIND_INFO = {
    FaultKind.NAND_READ_CORRECTABLE: (
        "a NAND read needs ECC re-read retries (extra latency, data fine)",
        "csd",
    ),
    FaultKind.NAND_READ_UNCORRECTABLE: (
        "a NAND read fails beyond the ECC budget (UncorrectableMediaError)",
        "csd",
    ),
    FaultKind.NVME_COMPLETION_LOSS: (
        "the device drops the next completion(s) it would post",
        "csd",
    ),
    FaultKind.NVME_COMPLETION_DELAY: (
        "the next completion becomes visible to the host late",
        "csd",
    ),
    FaultKind.NVME_QUEUE_STALL: (
        "the queue pair stops making progress for a window",
        "csd",
    ),
    FaultKind.CSE_CRASH: (
        "the CSE crashes mid-task; optionally resets after duration_s",
        "csd",
    ),
    FaultKind.LINK_DEGRADE: (
        "a link runs at `factor` of its bandwidth for duration_s",
        "link (" + "|".join(LINK_TARGETS) + ")",
    ),
    FaultKind.CHECKPOINT_TORN_WRITE: (
        "the next count checkpoint writes are torn mid-DMA",
        "csd",
    ),
    FaultKind.NAND_SILENT_CORRUPTION: (
        "bits flip on the next count NAND reads with no error completion",
        "csd",
    ),
    FaultKind.BAR_TRANSFER_CORRUPTION: (
        "the next count payloads crossing a link are garbled in flight",
        "link (" + "|".join(LINK_TARGETS) + ")",
    ),
    FaultKind.CHECKPOINT_SILENT_BITROT: (
        "a committed checkpoint record decays after its CRC was written",
        "csd",
    ),
    FaultKind.DEVICE_LOST_MID_JOB: (
        "a fleet machine drops out mid-job; duration_s > 0 means it rejoins",
        "fleet machine (csd|csd1|...)",
    ),
    FaultKind.TENANT_FAULT_INJECTION: (
        "a tenant's jobs in the window each run under count inner faults",
        "tenant",
    ),
}


@dataclass(frozen=True)
class FaultSpec:
    """One timed fault.

    ``target`` names the device the fault lands on (``"csd"`` by
    default), except for :attr:`FaultKind.LINK_DEGRADE` and
    :attr:`FaultKind.BAR_TRANSFER_CORRUPTION` where it names a link
    (one of :data:`LINK_TARGETS`).
    """

    kind: FaultKind
    #: Absolute simulated time the fault is injected.
    at_time: float
    target: str = "csd"
    #: Crash-recovery delay / stall window / degradation window /
    #: completion delay, in simulated seconds.  For CSE_CRASH a zero
    #: duration means the engine never comes back on its own.
    duration_s: float = 0.0
    #: Completions to drop (NVME_COMPLETION_LOSS) or reads to fail
    #: (NAND faults).
    count: int = 1
    #: ECC re-read attempts charged for a correctable NAND fault.
    retries: int = 3
    #: Remaining bandwidth fraction during a LINK_DEGRADE window.
    factor: float = 1.0
    #: A NAND fault (uncorrectable or silent-corruption) that survives
    #: chunk replays — forces the executor's host fallback instead of a
    #: successful re-read.
    persistent: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            raise FaultError(f"kind must be a FaultKind, got {self.kind!r}")
        if self.at_time < 0:
            raise FaultError(f"at_time must be non-negative, got {self.at_time}")
        if self.duration_s < 0:
            raise FaultError(f"duration_s must be non-negative, got {self.duration_s}")
        if self.count < 1:
            raise FaultError(f"count must be at least 1, got {self.count}")
        if self.retries < 1:
            raise FaultError(f"retries must be at least 1, got {self.retries}")
        if not 0 < self.factor <= 1:
            raise FaultError(f"factor must lie in (0, 1], got {self.factor}")
        if self.kind is FaultKind.LINK_DEGRADE:
            if self.target not in LINK_TARGETS:
                raise FaultError(
                    f"LINK_DEGRADE target must be one of {LINK_TARGETS}, "
                    f"got {self.target!r}"
                )
            if self.duration_s <= 0:
                raise FaultError("LINK_DEGRADE needs a positive duration_s")
            if self.factor >= 1:
                raise FaultError("LINK_DEGRADE needs factor < 1 to degrade anything")
        if self.kind is FaultKind.NVME_QUEUE_STALL and self.duration_s <= 0:
            raise FaultError("NVME_QUEUE_STALL needs a positive duration_s")
        if self.kind is FaultKind.NVME_COMPLETION_DELAY and self.duration_s <= 0:
            raise FaultError("NVME_COMPLETION_DELAY needs a positive duration_s")
        if self.kind is FaultKind.TENANT_FAULT_INJECTION and self.duration_s <= 0:
            raise FaultError(
                "TENANT_FAULT_INJECTION needs a positive duration_s window"
            )
        if (
            self.kind is FaultKind.BAR_TRANSFER_CORRUPTION
            and self.target not in LINK_TARGETS
        ):
            raise FaultError(
                f"BAR_TRANSFER_CORRUPTION target must be one of {LINK_TARGETS}, "
                f"got {self.target!r}"
            )

    # --- replay serialisation ---------------------------------------------

    def to_jsonable(self) -> dict:
        """A JSON-safe dict that round-trips through :meth:`from_jsonable`."""
        return {
            "kind": self.kind.value,
            "at_time": self.at_time,
            "target": self.target,
            "duration_s": self.duration_s,
            "count": self.count,
            "retries": self.retries,
            "factor": self.factor,
            "persistent": self.persistent,
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_jsonable` output.

        Every field is restored — dropping one here is exactly the kind
        of replay-path bug that makes a shrunk repro non-reproducible.
        """
        return cls(
            kind=FaultKind(payload["kind"]),
            at_time=float(payload["at_time"]),
            target=str(payload.get("target", "csd")),
            duration_s=float(payload.get("duration_s", 0.0)),
            count=int(payload.get("count", 1)),
            retries=int(payload.get("retries", 3)),
            factor=float(payload.get("factor", 1.0)),
            persistent=bool(payload.get("persistent", False)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, replayable set of faults plus the seed that made it.

    ``seed`` is purely provenance for generated plans; hand-written
    plans may leave it at its default.
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise FaultError(f"plan entries must be FaultSpec, got {spec!r}")

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def sorted_specs(self) -> Tuple[FaultSpec, ...]:
        """Specs in injection order (stable for equal timestamps)."""
        return tuple(sorted(self.specs, key=lambda spec: spec.at_time))

    def to_jsonable(self) -> dict:
        """A JSON-safe dict that round-trips through :meth:`from_jsonable`."""
        return {
            "seed": self.seed,
            "specs": [spec.to_jsonable() for spec in self.specs],
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "FaultPlan":
        return cls(
            specs=tuple(
                FaultSpec.from_jsonable(entry) for entry in payload.get("specs", ())
            ),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def random(
        cls,
        seed: int,
        horizon_s: float,
        count: int = 4,
        kinds: Optional[Sequence[FaultKind]] = None,
        target: str = "csd",
        offset_s: float = 0.0,
    ) -> "FaultPlan":
        """Generate a deterministic plan from a seed.

        Fault times are drawn uniformly over the middle 90% of
        ``horizon_s``, shifted by ``offset_s``, so callers can aim
        faults at the window where work is actually in flight (e.g.
        past a known sampling/compile prefix).  The same (seed,
        horizon, count, kinds, offset) always yields the same plan —
        the stream is a private :class:`random.Random`.
        """
        if horizon_s <= 0:
            raise FaultError(f"horizon_s must be positive, got {horizon_s}")
        if offset_s < 0:
            raise FaultError(f"offset_s must be non-negative, got {offset_s}")
        if count < 1:
            raise FaultError(f"count must be at least 1, got {count}")
        rng = random.Random(seed)
        # Default pool = LOUD_KINDS, not tuple(FaultKind): growing the
        # enum must never reshuffle plans generated from old seeds.
        chosen_kinds = tuple(kinds) if kinds else LOUD_KINDS
        specs = []
        for _ in range(count):
            kind = rng.choice(chosen_kinds)
            at_time = offset_s + rng.uniform(0.05, 0.95) * horizon_s
            duration = rng.uniform(0.005, 0.05) * horizon_s
            if kind is FaultKind.LINK_DEGRADE:
                specs.append(FaultSpec(
                    kind=kind,
                    at_time=at_time,
                    target=rng.choice(LINK_TARGETS),
                    duration_s=duration,
                    factor=rng.uniform(0.1, 0.6),
                ))
            elif kind is FaultKind.CSE_CRASH:
                # A quarter of generated crashes never self-reset, so
                # random campaigns exercise the host-fallback/restore
                # path, not only the in-place replay path.
                permanent = rng.random() < 0.25
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target,
                    duration_s=0.0 if permanent
                    else rng.uniform(0.2, 1.5) * duration,
                ))
            elif kind in (FaultKind.NVME_QUEUE_STALL, FaultKind.NVME_COMPLETION_DELAY):
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target, duration_s=duration,
                ))
            elif kind is FaultKind.NVME_COMPLETION_LOSS:
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target,
                    count=rng.randint(1, 2),
                ))
            elif kind is FaultKind.CHECKPOINT_TORN_WRITE:
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target,
                    count=rng.randint(1, 6),
                ))
            elif kind is FaultKind.NAND_READ_CORRECTABLE:
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target,
                    retries=rng.randint(1, 8),
                ))
            elif kind is FaultKind.NAND_SILENT_CORRUPTION:
                # A quarter of generated corruptions are persistent —
                # replaying the read keeps returning flipped bits, so
                # detection must escalate to the host fallback.
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target,
                    count=rng.randint(1, 3),
                    persistent=rng.random() < 0.25,
                ))
            elif kind is FaultKind.BAR_TRANSFER_CORRUPTION:
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time,
                    target=rng.choice(LINK_TARGETS),
                    count=rng.randint(1, 2),
                ))
            elif kind is FaultKind.CHECKPOINT_SILENT_BITROT:
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target,
                    count=rng.randint(1, 2),
                ))
            else:  # NAND_READ_UNCORRECTABLE
                # A third of generated media faults are persistent (the
                # page is gone, not glitched), forcing the host-fallback
                # resume path random campaigns must keep honest.
                specs.append(FaultSpec(
                    kind=kind, at_time=at_time, target=target,
                    persistent=rng.random() < 0.3,
                ))
        return cls(specs=tuple(specs), seed=seed)
