"""Deterministic fault injection for the simulated ISP stack.

Real computational storage devices fail: NAND pages exceed the ECC
correction budget, NVMe completions get lost or arrive late, the
in-device engine crashes or is reset by firmware, and PCIe links
retrain to degraded widths.  This package lets experiments inject
exactly those failures at *deterministic* simulated times — a
:class:`FaultPlan` (optionally generated from a seed) describes what
goes wrong and when, and a :class:`FaultInjector` arms it on the shared
event queue — so the runtime's retry/timeout/fallback machinery can be
exercised reproducibly.  Every injection and every recovery action is
recorded as a :class:`FaultEvent` on a shared :class:`FaultLog`, which
execution reports expose for observability.
"""

from .injector import FaultInjector
from .log import FaultEvent, FaultLog
from .spec import (
    FAULT_KIND_INFO,
    FLEET_KINDS,
    LOUD_KINDS,
    SILENT_KINDS,
    FaultKind,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULT_KIND_INFO",
    "FLEET_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "LOUD_KINDS",
    "SILENT_KINDS",
]
