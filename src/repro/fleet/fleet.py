"""The fleet: N simulated CSD machines behind one front-end scheduler.

A :class:`Fleet` is a deterministic two-level simulation.  The inner
level is the real single-machine stack — every job's service time,
checkpoint boundaries, degradation verdict, and run signature are
measured by actually running its workload through
:class:`~repro.runtime.activepy.ActivePy` (see
:mod:`~repro.fleet.profiles`).  The outer level is a discrete-event
loop over those measured profiles: seeded open-loop arrivals
(:mod:`~repro.fleet.traffic`) flow through per-tenant admission control
(:mod:`~repro.fleet.admission`), get placed on free devices, and
terminate — **every admitted job, exactly once** — as completed,
degraded, or shed-with-a-typed-error.

Fleet-level faults (:data:`~repro.faults.spec.FLEET_KINDS`) land here,
not on any machine's injector:

* ``DEVICE_LOST_MID_JOB`` drains the victim device; its in-flight job
  fails over to a survivor, resuming from the largest line-boundary
  checkpoint it had reached (replanning from scratch when checkpointing
  is off or no boundary was reached), under a retry budget with
  seeded exponential backoff + jitter.
* ``TENANT_FAULT_INJECTION`` makes the targeted tenant's jobs
  dispatched inside the window run under a derived inner
  :class:`~repro.faults.spec.FaultPlan` — the single-machine recovery
  stack absorbs those faults, and the isolation invariant checks the
  blast radius stayed inside the targeted tenant.

``no_isolation=True`` plants a deliberate bug for the chaos campaign
to catch: the scheduler stops scrubbing per-job device state between
tenants, so a device that just served a faulted job leaks *residue*
into the next job's output digest — a cross-tenant signature
perturbation the tenant-isolation invariant must detect and the
shrinker must reduce to a 1-minimal plan.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import AdmissionError, FleetError
from ..faults.spec import FLEET_KINDS, FaultKind, FaultPlan, FaultSpec
from ..obs import AlertEvent, AlertRule, Observability, evaluate_alerts
from .admission import (
    SHED_NO_DEVICES,
    SHED_OVERLOAD,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    SHED_RETRY_BUDGET,
    AdmissionController,
    QueuedJob,
)
from .profiles import JobProfile, ProfileStore
from .slo import SloSnapshot
from .traffic import JobArrival, TenantSpec, TrafficGenerator, default_tenants

__all__ = [
    "DEFAULT_ALERT_CONSECUTIVE",
    "DEFAULT_FLEET_SCALE",
    "DEFAULT_SLO_MULTIPLE",
    "SLO_ERROR_BUDGET",
    "FleetConfig",
    "FleetReport",
    "Fleet",
    "JobOutcome",
    "device_names",
]

#: Default fleet scale — matches the single-machine chaos campaign's
#: DEFAULT_SCALE so profiles are real but a 100-seed campaign is cheap.
DEFAULT_FLEET_SCALE = 2 ** -6

#: Terminal job statuses — the termination invariant's universe.
STATUS_COMPLETED = "completed"
STATUS_DEGRADED = "degraded"
STATUS_SHED = "shed"

#: Default end-to-end SLO target, as a multiple of the tenant's slowest
#: baseline service time.  A clean, un-overloaded fleet keeps queue
#: waits well under one service time, so the sliding-window p99 stays
#: below this; sustained breaches mean real contention (a lost device,
#: a hot tenant), which is exactly what the default alert rules watch.
DEFAULT_SLO_MULTIPLE = 3.0

#: Consecutive breaching points before the default SLO alert fires.
DEFAULT_ALERT_CONSECUTIVE = 4

#: The SLO error budget the burn-rate series is normalised against: a
#: p99 target tolerates 1% of samples over it, so ``burn = fraction
#: over target / 0.01`` — burn > 1.0 means the budget is being spent
#: faster than it accrues.
SLO_ERROR_BUDGET = 0.01


def device_names(count: int) -> Tuple[str, ...]:
    """The fleet's device names: ``csd``, ``csd1``, ``csd2``, ...

    The same naming :func:`~repro.hw.topology.build_machine` uses for
    multi-CSD platforms, so fleet fault targets read like device names
    everywhere else in the stack.
    """
    if count < 1:
        raise FleetError(f"device count must be at least 1, got {count}")
    return tuple("csd" if i == 0 else f"csd{i}" for i in range(count))


@dataclass(frozen=True)
class FleetConfig:
    """Everything a fleet run is derived from.  Same config, same run."""

    device_count: int = 4
    tenants: Tuple[TenantSpec, ...] = field(default_factory=default_tenants)
    #: Jobs drawn from the traffic generator (arrivals, pre-admission).
    job_count: int = 24
    seed: int = 0
    #: Aggregate offered load as a fraction of fleet service capacity;
    #: used to resolve tenant rates left ``None``.
    target_load: float = 0.7
    #: Fleet-wide queued-job ceiling before graceful degradation sheds
    #: best-effort work.  ``None`` = ``4 * device_count``.
    overload_watermark: Optional[int] = None
    #: Failover resubmissions a job may consume before it is shed.
    max_retries: int = 3
    #: Exponential backoff base for failover retries (simulated s).
    backoff_base_s: float = 0.05
    #: Uniform jitter fraction applied on top of the backoff.
    backoff_jitter: float = 0.25
    #: Workload scale factor for the inner profiling runs.
    scale: float = DEFAULT_FLEET_SCALE
    system_config: SystemConfig = DEFAULT_CONFIG
    #: Fleet-level faults only (:data:`FLEET_KINDS`); machine-level
    #: kinds belong in an inner plan, not here.
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Inner faults per job inside a TENANT_FAULT_INJECTION window
    #: (overridden by the spec's own ``count``).
    tenant_fault_count: int = 2
    #: Plant the cross-tenant residue bug (``--no-isolation``).
    no_isolation: bool = False

    def __post_init__(self) -> None:
        if self.device_count < 1:
            raise FleetError(
                f"device_count must be at least 1, got {self.device_count}"
            )
        if self.job_count < 1:
            raise FleetError(f"job_count must be at least 1, got {self.job_count}")
        if not 0 < self.target_load:
            raise FleetError(
                f"target_load must be positive, got {self.target_load}"
            )
        if self.max_retries < 0:
            raise FleetError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff_base_s <= 0:
            raise FleetError(
                f"backoff_base_s must be positive, got {self.backoff_base_s}"
            )
        if self.backoff_jitter < 0:
            raise FleetError(
                f"backoff_jitter must be non-negative, got {self.backoff_jitter}"
            )
        if self.overload_watermark is not None and self.overload_watermark < 1:
            raise FleetError(
                f"overload_watermark must be at least 1, "
                f"got {self.overload_watermark}"
            )
        names = set(device_names(self.device_count))
        for spec in self.plan:
            if spec.kind not in FLEET_KINDS:
                raise FleetError(
                    f"{spec.kind.value} is a machine-level fault; a fleet "
                    f"plan takes fleet kinds only "
                    f"({', '.join(k.value for k in FLEET_KINDS)})"
                )
            if (
                spec.kind is FaultKind.DEVICE_LOST_MID_JOB
                and spec.target not in names
            ):
                raise FleetError(
                    f"DEVICE_LOST_MID_JOB target {spec.target!r} is not one "
                    f"of this fleet's devices {sorted(names)}"
                )

    @property
    def watermark(self) -> int:
        return (
            self.overload_watermark
            if self.overload_watermark is not None
            else 4 * self.device_count
        )


@dataclass(frozen=True)
class JobOutcome:
    """One job's terminal state — exactly one per arrival, always typed.

    ``status`` is one of ``completed`` / ``degraded`` / ``shed``.  Shed
    outcomes always carry ``reason`` and ``error`` (the typed error's
    class name); they are never silent.
    """

    job_id: int
    tenant: str
    workload: str
    priority: int
    status: str
    arrival_time: float
    finish_time: float
    admitted: bool
    reason: Optional[str] = None
    error: Optional[str] = None
    device: Optional[str] = None
    first_dispatch_time: Optional[float] = None
    retries: int = 0
    resumed_from_s: float = 0.0
    inner_faults: int = 0
    signature: Optional[Tuple] = None

    @property
    def queue_wait_s(self) -> Optional[float]:
        if self.first_dispatch_time is None:
            return None
        return self.first_dispatch_time - self.arrival_time

    @property
    def end_to_end_s(self) -> float:
        return self.finish_time - self.arrival_time

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "workload": self.workload,
            "priority": self.priority,
            "status": self.status,
            "arrival_time": self.arrival_time,
            "finish_time": self.finish_time,
            "admitted": self.admitted,
            "reason": self.reason,
            "error": self.error,
            "device": self.device,
            "first_dispatch_time": self.first_dispatch_time,
            "retries": self.retries,
            "resumed_from_s": self.resumed_from_s,
            "inner_faults": self.inner_faults,
            "signature": list(self.signature) if self.signature else None,
        }


@dataclass(frozen=True)
class FleetReport:
    """What a fleet run did, end to end.  JSON-ready and renderable."""

    device_count: int
    tenant_names: Tuple[str, ...]
    seed: int
    job_count: int
    outcomes: Tuple[JobOutcome, ...]
    slos: Tuple[SloSnapshot, ...]
    #: Simulated time from first arrival to last terminal event.
    makespan_s: float
    #: Jobs that finished (completed or degraded) per simulated second.
    throughput_jobs_per_s: float
    shed_by_reason: Dict[str, int]
    device_events: Tuple[Tuple[float, str, str], ...]
    #: Inner ActivePy runs actually executed (profile cache misses).
    profile_runs: int
    metrics: Dict[str, Any] = field(default_factory=dict, repr=False)
    #: Flight-recorder dump (``FlightRecorder.to_jsonable()``) when the
    #: run carried one; empty otherwise.
    timeline: Dict[str, Any] = field(default_factory=dict, repr=False)
    #: Alerts the default SLO rules raised over the recorded series.
    alerts: Tuple[AlertEvent, ...] = ()
    #: Per-tenant end-to-end SLO targets the alerts were judged against.
    slo_targets: Dict[str, float] = field(default_factory=dict, repr=False)
    #: Chrome-trace raw material, collected only when a recorder or
    #: tracer was attached: completed/interrupted dispatches as spans
    #: and failover/retry/shed/device-loss moments as instants.
    trace_spans: Tuple[Dict[str, Any], ...] = field(default=(), repr=False)
    trace_instants: Tuple[Dict[str, Any], ...] = field(default=(), repr=False)

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_COMPLETED)

    @property
    def degraded(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_DEGRADED)

    @property
    def shed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == STATUS_SHED)

    def slo_for(self, tenant: str) -> SloSnapshot:
        for snapshot in self.slos:
            if snapshot.tenant == tenant:
                return snapshot
        raise FleetError(f"no SLO snapshot for tenant {tenant!r}")

    def summary(self) -> Dict[str, Any]:
        """The fleet run's headline, JSON-ready."""
        return {
            "device_count": self.device_count,
            "tenants": list(self.tenant_names),
            "seed": self.seed,
            "job_count": self.job_count,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "makespan_s": self.makespan_s,
            "throughput_jobs_per_s": self.throughput_jobs_per_s,
            "shed_by_reason": dict(sorted(self.shed_by_reason.items())),
            "profile_runs": self.profile_runs,
        }

    def to_jsonable(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": "fleet-run"}
        payload.update(self.summary())
        payload["outcomes"] = [o.to_jsonable() for o in self.outcomes]
        payload["slos"] = [s.to_jsonable() for s in self.slos]
        payload["device_events"] = [list(e) for e in self.device_events]
        if self.metrics:
            payload["metrics"] = self.metrics
        if self.timeline:
            payload["timeline"] = self.timeline
        if self.alerts:
            payload["alerts"] = [a.to_jsonable() for a in self.alerts]
        if self.slo_targets:
            payload["slo_targets"] = dict(sorted(self.slo_targets.items()))
        return payload

    def render(self) -> str:
        lines = [
            f"fleet: {self.device_count} device(s), "
            f"{len(self.tenant_names)} tenant(s), seed {self.seed}",
            f"  jobs      {self.job_count} arrived  "
            f"{self.completed} completed  {self.degraded} degraded  "
            f"{self.shed} shed",
            f"  makespan  {self.makespan_s:.3f}s  "
            f"throughput {self.throughput_jobs_per_s:.3f} jobs/s",
        ]
        for reason, count in sorted(self.shed_by_reason.items()):
            lines.append(f"  shed[{reason}] {count}")
        for at_time, device, what in self.device_events:
            lines.append(f"  device    t={at_time:.3f}s {device} {what}")
        for snapshot in self.slos:
            lines.append("  " + snapshot.render())
        for alert in self.alerts:
            lines.append("  " + alert.render())
        return "\n".join(lines)


class _Device:
    """One logical CSD machine slot in the fleet scheduler."""

    __slots__ = ("name", "live", "job", "dispatch_id", "dispatched_at", "residue")

    def __init__(self, name: str) -> None:
        self.name = name
        self.live = True
        self.job: Optional[QueuedJob] = None
        #: Monotone token — a stale completion event (for a dispatch
        #: interrupted by device loss) no-ops instead of double-finishing.
        self.dispatch_id = 0
        self.dispatched_at = 0.0
        #: Tenant whose faulted job last ran here without a scrub —
        #: only ever non-None under the planted ``no_isolation`` bug.
        self.residue: Optional[str] = None

    @property
    def free(self) -> bool:
        return self.live and self.job is None


class Fleet:
    """The front-end scheduler: admission, placement, failover, SLOs."""

    def __init__(
        self,
        config: FleetConfig = FleetConfig(),
        profiles: Optional[ProfileStore] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config
        self.profiles = profiles if profiles is not None else ProfileStore(
            system_config=config.system_config, scale=config.scale,
        )
        if (
            self.profiles.system_config is not config.system_config
            or self.profiles.scale != config.scale
        ):
            raise FleetError(
                "profile store was built for a different (config, scale) "
                "than this fleet"
            )
        self.obs = obs if obs is not None else Observability()

    # --- tenant resolution --------------------------------------------------

    def resolve_tenants(self) -> Tuple[TenantSpec, ...]:
        """Tenants with concrete arrival rates.

        A tenant declared without ``rate_jobs_per_s`` gets its share
        (by ``weight``) of the fleet's derived aggregate rate::

            aggregate = target_load * device_count / mean_service_s

        i.e. the open-loop stream offers ``target_load`` of the fleet's
        measured service capacity.  Rates given explicitly pass through.
        """
        unresolved = [t for t in self.config.tenants if t.rate_jobs_per_s is None]
        if not unresolved:
            return self.config.tenants
        mean_service = self.profiles.mean_service_seconds(
            tuple(sorted({w for t in unresolved for w in t.workloads}))
        )
        aggregate = self.config.target_load * self.config.device_count / mean_service
        total_weight = sum(t.weight for t in unresolved)
        resolved = []
        for tenant in self.config.tenants:
            if tenant.rate_jobs_per_s is None:
                tenant = replace(
                    tenant,
                    rate_jobs_per_s=aggregate * tenant.weight / total_weight,
                )
            resolved.append(tenant)
        return tuple(resolved)

    # --- SLO targets and alert rules ----------------------------------------

    def slo_targets(
        self, tenants: Tuple[TenantSpec, ...]
    ) -> Dict[str, float]:
        """Each tenant's end-to-end SLO target, in simulated seconds.

        An explicit ``TenantSpec.slo_e2e_s`` wins; otherwise the target
        is :data:`DEFAULT_SLO_MULTIPLE` times the tenant's slowest
        measured baseline service time — generous enough that a healthy
        fleet never breaches it, tight enough that losing a device under
        load does.
        """
        targets: Dict[str, float] = {}
        for tenant in tenants:
            if tenant.slo_e2e_s is not None:
                targets[tenant.name] = tenant.slo_e2e_s
            else:
                slowest = max(
                    self.profiles.baseline(workload).service_seconds
                    for workload in tenant.workloads
                )
                targets[tenant.name] = DEFAULT_SLO_MULTIPLE * slowest
        return targets

    def alert_rules(
        self,
        tenants: Tuple[TenantSpec, ...],
        targets: Dict[str, float],
    ) -> Tuple[AlertRule, ...]:
        """The default rule set: one sliding-window p99 rule per tenant."""
        return tuple(
            AlertRule(
                name=f"slo-burn:{tenant.name}",
                series=f"fleet.slo_window.{tenant.name}.e2e_p99_s",
                threshold=targets[tenant.name],
                op=">",
                consecutive=DEFAULT_ALERT_CONSECUTIVE,
            )
            for tenant in tenants
        )

    # --- the event loop -----------------------------------------------------

    def run(self) -> FleetReport:
        """Run the fleet to completion and report every job's fate."""
        cfg = self.config
        tenants = self.resolve_tenants()
        arrivals = TrafficGenerator(tenants, seed=cfg.seed).schedule(cfg.job_count)
        controller = AdmissionController(tenants, overload_watermark=cfg.watermark)
        devices = {name: _Device(name) for name in device_names(cfg.device_count)}
        backoff_rng = random.Random(f"fleet-backoff:{cfg.seed}")

        # The flight recorder, when one is attached.  `rec is None` is
        # the default fast path: every instrumented site below guards on
        # it, so a recorder-less run does zero extra wall work — and no
        # site ever touches simulated time, so enabling the recorder
        # leaves the schedule bit-identical (bench_obs pins both).
        rec = self.obs.timeseries if self.obs.enabled else None
        targets = self.slo_targets(tenants) if rec is not None else {}
        collect_trace = rec is not None or self.obs.tracing
        trace_spans: List[Dict[str, Any]] = []
        trace_instants: List[Dict[str, Any]] = []

        outcomes: Dict[int, JobOutcome] = {}
        device_events: List[Tuple[float, str, str]] = []
        first_dispatch: Dict[int, float] = {}
        now = 0.0

        heap: List[Tuple[float, int, str, Any]] = []
        seq = 0

        def push(at_time: float, kind: str, payload: Any) -> None:
            nonlocal seq
            heapq.heappush(heap, (at_time, seq, kind, payload))
            seq += 1

        for arrival in arrivals:
            push(arrival.arrival_time, "arrival", arrival)
        for index, spec in enumerate(cfg.plan.sorted_specs()):
            if spec.kind is FaultKind.DEVICE_LOST_MID_JOB:
                push(spec.at_time, "device-lost", spec)
                if spec.duration_s > 0:
                    push(spec.at_time + spec.duration_s, "device-rejoin", spec)
            # TENANT_FAULT_INJECTION needs no event: windows are
            # consulted at dispatch time (below).

        tenant_windows = tuple(
            spec for spec in cfg.plan.sorted_specs()
            if spec.kind is FaultKind.TENANT_FAULT_INJECTION
        )

        def record(outcome: JobOutcome) -> None:
            if outcome.job_id in outcomes:
                raise FleetError(
                    f"job {outcome.job_id} terminated twice — "
                    f"{outcomes[outcome.job_id].status} then {outcome.status}"
                )
            outcomes[outcome.job_id] = outcome
            self.obs.count(f"fleet.jobs.{outcome.status}")
            if outcome.status == STATUS_SHED:
                self.obs.count(f"fleet.shed.{outcome.reason}")
                if rec is not None:
                    rec.count("fleet.rate.shed", now)
                if collect_trace:
                    trace_instants.append({
                        "t": now,
                        "name": f"shed job {outcome.job_id} [{outcome.reason}]",
                        "resource": "fleet",
                    })
            else:
                self.obs.observe("fleet.end_to_end_s", outcome.end_to_end_s)
                if outcome.queue_wait_s is not None:
                    self.obs.observe("fleet.queue_wait_s", outcome.queue_wait_s)
                if rec is not None:
                    tenant = outcome.tenant
                    rec.count("fleet.rate.finished", now)
                    rec.observe(f"fleet.e2e.{tenant}", now, outcome.end_to_end_s)
                    rec.gauge(
                        f"fleet.slo_window.{tenant}.e2e_p50_s", now,
                        rec.window_percentile(f"fleet.e2e.{tenant}", 50.0, now),
                    )
                    rec.gauge(
                        f"fleet.slo_window.{tenant}.e2e_p99_s", now,
                        rec.window_percentile(f"fleet.e2e.{tenant}", 99.0, now),
                    )
                    window = rec.window_values(f"fleet.e2e.{tenant}", now)
                    over = sum(1 for v in window if v > targets[tenant])
                    rec.gauge(
                        f"fleet.burn.{tenant}", now,
                        (over / len(window)) / SLO_ERROR_BUDGET,
                    )

        def shed(job: QueuedJob, reason: str, error: Exception) -> None:
            arrival = job.arrival
            record(JobOutcome(
                job_id=arrival.job_id,
                tenant=arrival.tenant,
                workload=arrival.workload,
                priority=arrival.priority,
                status=STATUS_SHED,
                arrival_time=arrival.arrival_time,
                finish_time=now,
                admitted=True,
                reason=reason,
                error=type(error).__name__,
                first_dispatch_time=first_dispatch.get(arrival.job_id),
                retries=job.retries,
            ))

        def window_for(job: QueuedJob) -> Optional[Tuple[int, FaultSpec]]:
            for index, spec in enumerate(tenant_windows):
                if (
                    spec.target == job.arrival.tenant
                    and spec.at_time <= now <= spec.at_time + spec.duration_s
                ):
                    return index, spec
            return None

        def dispatch_all() -> None:
            while True:
                free = [d for d in sorted(devices) if devices[d].free]
                if not free:
                    return
                job = controller.next_job()
                if job is None:
                    return
                device = devices[free[0]]
                arrival = job.arrival
                first_dispatch.setdefault(arrival.job_id, now)
                window = window_for(job)
                inner_plan: Optional[FaultPlan] = None
                if window is not None:
                    index, spec = window
                    # Deterministic inner seed: pure arithmetic over the
                    # fleet seed, the window index, and the job id —
                    # never hash(), which is salted per process.
                    inner_seed = (
                        cfg.seed * 1_000_003 + index * 8_191 + arrival.job_id
                    )
                    inner_plan = self.profiles.inner_plan(
                        arrival.workload, seed=inner_seed, count=spec.count,
                    )
                profile = self.profiles.profile(arrival.workload, inner_plan)
                device.job = job
                device.dispatch_id += 1
                device.dispatched_at = now
                remaining = max(
                    0.0, profile.service_seconds - job.resume_offset_s
                )
                self.obs.count("fleet.dispatches")
                if rec is not None:
                    rec.gauge(f"fleet.util.{device.name}", now, 1.0)
                push(
                    now + remaining,
                    "job-done",
                    (device.name, device.dispatch_id, profile, inner_plan),
                )

        def finish(device: _Device, profile: JobProfile,
                   inner_plan: Optional[FaultPlan]) -> None:
            job = device.job
            assert job is not None
            arrival = job.arrival
            signature = profile.signature
            tainted_by = device.residue
            if cfg.no_isolation:
                # The planted bug: the previous faulted job's state was
                # never scrubbed, and it bleeds into this job's output.
                if tainted_by is not None and tainted_by != arrival.tenant:
                    signature = (
                        signature[0],
                        signature[1],
                        f"{signature[2]}+residue:{tainted_by}",
                    )
                device.residue = (
                    arrival.tenant if inner_plan is not None else device.residue
                )
            else:
                # Correct scheduler: per-job device state is scrubbed
                # between jobs, faulted or not.
                device.residue = None
            degraded = (
                profile.degraded
                or job.retries > 0
                or (tainted_by is not None and cfg.no_isolation
                    and tainted_by != arrival.tenant)
            )
            status = STATUS_DEGRADED if degraded else STATUS_COMPLETED
            record(JobOutcome(
                job_id=arrival.job_id,
                tenant=arrival.tenant,
                workload=arrival.workload,
                priority=arrival.priority,
                status=status,
                arrival_time=arrival.arrival_time,
                finish_time=now,
                admitted=True,
                device=device.name,
                first_dispatch_time=first_dispatch.get(arrival.job_id),
                retries=job.retries,
                resumed_from_s=job.resume_offset_s,
                inner_faults=len(inner_plan) if inner_plan else 0,
                signature=signature,
            ))
            if rec is not None:
                rec.gauge(f"fleet.util.{device.name}", now, 0.0)
            if collect_trace:
                trace_spans.append({
                    "device": device.name,
                    "name": f"{arrival.workload}#{arrival.job_id}",
                    "cat": "job",
                    "start": device.dispatched_at,
                    "end": now,
                    "args": {
                        "tenant": arrival.tenant,
                        "status": status,
                        "retries": job.retries,
                        "resumed_from_s": job.resume_offset_s,
                    },
                })
            device.job = None

        def fail_over(device: _Device) -> None:
            job = device.job
            assert job is not None
            if collect_trace:
                trace_spans.append({
                    "device": device.name,
                    "name": (
                        f"{job.arrival.workload}#{job.arrival.job_id} "
                        f"(interrupted)"
                    ),
                    "cat": "job-interrupted",
                    "start": device.dispatched_at,
                    "end": now,
                    "args": {
                        "tenant": job.arrival.tenant,
                        "retry": job.retries + 1,
                    },
                })
                trace_instants.append({
                    "t": now,
                    "name": f"failover job {job.arrival.job_id}",
                    "resource": device.name,
                })
            device.job = None
            # Invalidate the in-flight completion: if this device later
            # rejoins, its pre-loss "job-done" event must stay stale.
            device.dispatch_id += 1
            job.retries += 1
            if job.retries > cfg.max_retries:
                shed(job, SHED_RETRY_BUDGET, FleetError(
                    f"job {job.arrival.job_id} exhausted its retry budget "
                    f"({cfg.max_retries}) after losing {device.name}"
                ))
                return
            # Resume from the furthest durable checkpoint the run had
            # reached; with no boundary (or checkpointing off) the
            # failover replans from scratch on the surviving device.
            # Progress made this dispatch, measured on the service axis.
            progress = job.resume_offset_s + (now - device.dispatched_at)
            baseline = self.profiles.baseline(job.arrival.workload)
            job.resume_offset_s = baseline.resume_point(progress)
            backoff = (
                cfg.backoff_base_s
                * (2 ** (job.retries - 1))
                * (1.0 + cfg.backoff_jitter * backoff_rng.random())
            )
            self.obs.count("fleet.failovers")
            self.obs.observe("fleet.failover_backoff_s", backoff)
            push(now + backoff, "retry-ready", job)

        while heap:
            now, _, kind, payload = heapq.heappop(heap)
            if kind == "arrival":
                arrival: JobArrival = payload
                self.obs.count("fleet.jobs.arrived")
                if rec is not None:
                    rec.count("fleet.rate.arrived", now)
                reason = controller.admit(arrival, now)
                if reason is not None:
                    record(JobOutcome(
                        job_id=arrival.job_id,
                        tenant=arrival.tenant,
                        workload=arrival.workload,
                        priority=arrival.priority,
                        status=STATUS_SHED,
                        arrival_time=arrival.arrival_time,
                        finish_time=now,
                        admitted=False,
                        reason=reason,
                        error=AdmissionError.__name__,
                    ))
                else:
                    self.obs.count("fleet.jobs.admitted")
                    if rec is not None:
                        rec.count("fleet.rate.admitted", now)
                    for victim in controller.shed_overload():
                        shed(victim, SHED_OVERLOAD, AdmissionError(
                            f"fleet backlog exceeded the overload watermark "
                            f"({cfg.watermark}); lowest-priority work shed"
                        ))
                    dispatch_all()
            elif kind == "job-done":
                name, dispatch_id, profile, inner_plan = payload
                device = devices[name]
                if not device.live or device.dispatch_id != dispatch_id:
                    continue  # stale completion from an interrupted dispatch
                finish(device, profile, inner_plan)
                dispatch_all()
            elif kind == "device-lost":
                spec: FaultSpec = payload
                device = devices[spec.target]
                if not device.live:
                    continue
                device.live = False
                device_events.append((now, spec.target, "lost"))
                self.obs.count("fleet.device_lost")
                if rec is not None:
                    rec.gauge(f"fleet.util.{spec.target}", now, 0.0)
                if collect_trace:
                    trace_instants.append({
                        "t": now, "name": "device lost",
                        "resource": spec.target,
                    })
                if device.job is not None:
                    fail_over(device)
            elif kind == "device-rejoin":
                spec = payload
                device = devices[spec.target]
                if device.live:
                    continue
                device.live = True
                device.residue = None  # a rejoin is a clean boot
                device_events.append((now, spec.target, "rejoined"))
                self.obs.count("fleet.device_rejoined")
                if collect_trace:
                    trace_instants.append({
                        "t": now, "name": "device rejoined",
                        "resource": spec.target,
                    })
                dispatch_all()
            elif kind == "retry-ready":
                job: QueuedJob = payload
                controller.requeue(job)
                if rec is not None:
                    rec.count("fleet.rate.retries", now)
                if collect_trace:
                    trace_instants.append({
                        "t": now,
                        "name": f"retry job {job.arrival.job_id}",
                        "resource": "fleet",
                    })
                dispatch_all()
            else:  # pragma: no cover - defensive
                raise FleetError(f"unknown fleet event kind {kind!r}")
            if rec is not None:
                rec.gauge(
                    "fleet.queue_depth", now, float(controller.total_queued)
                )

        # The heap is dry.  Anything still queued can never run (no
        # live device will ever free up or rejoin) — shed it loudly so
        # the termination invariant stays honest rather than vacuous.
        for job in controller.drain():
            shed(job, SHED_NO_DEVICES, FleetError(
                f"job {job.arrival.job_id} was admitted but no live device "
                f"remains to run it"
            ))

        alerts: Tuple[AlertEvent, ...] = ()
        if rec is not None:
            rec.finalize(now)
            alerts = evaluate_alerts(rec, self.alert_rules(tenants, targets))
            # Counters land before _build_report snapshots the registry.
            for event in alerts:
                self.obs.count("obs.alerts.fired")
                self.obs.count(f"obs.alerts.{event.rule}")

        return self._build_report(
            tenants, arrivals, outcomes, device_events, now,
            recorder=rec, alerts=alerts, targets=targets,
            trace_spans=tuple(trace_spans),
            trace_instants=tuple(trace_instants),
        )

    # --- reporting ----------------------------------------------------------

    def _build_report(
        self,
        tenants: Tuple[TenantSpec, ...],
        arrivals: Tuple[JobArrival, ...],
        outcomes: Dict[int, JobOutcome],
        device_events: List[Tuple[float, str, str]],
        end_time: float,
        recorder=None,
        alerts: Tuple[AlertEvent, ...] = (),
        targets: Optional[Dict[str, float]] = None,
        trace_spans: Tuple[Dict[str, Any], ...] = (),
        trace_instants: Tuple[Dict[str, Any], ...] = (),
    ) -> FleetReport:
        missing = [a.job_id for a in arrivals if a.job_id not in outcomes]
        if missing:
            raise FleetError(
                f"fleet run ended with job(s) {missing} unaccounted for — "
                f"the termination guarantee is broken in the scheduler itself"
            )
        ordered = tuple(outcomes[a.job_id] for a in arrivals)
        shed_by_reason: Dict[str, int] = {}
        for outcome in ordered:
            if outcome.status == STATUS_SHED:
                shed_by_reason[outcome.reason] = (
                    shed_by_reason.get(outcome.reason, 0) + 1
                )
        slos = []
        for tenant in tenants:
            mine = [o for o in ordered if o.tenant == tenant.name]
            finished = [o for o in mine if o.status != STATUS_SHED]
            snapshot = SloSnapshot.from_samples(
                tenant=tenant.name,
                priority=tenant.priority,
                arrived=len(mine),
                admitted=sum(1 for o in mine if o.admitted),
                completed=sum(1 for o in mine if o.status == STATUS_COMPLETED),
                degraded=sum(1 for o in mine if o.status == STATUS_DEGRADED),
                shed=sum(1 for o in mine if o.status == STATUS_SHED),
                queue_waits=[
                    o.queue_wait_s for o in finished
                    if o.queue_wait_s is not None
                ],
                end_to_ends=[o.end_to_end_s for o in finished],
            )
            slos.append(snapshot)
            self.obs.gauge(
                f"fleet.slo.{tenant.name}.queue_wait_p99_s",
                snapshot.queue_wait_p99_s,
            )
            self.obs.gauge(
                f"fleet.slo.{tenant.name}.end_to_end_p99_s",
                snapshot.end_to_end_p99_s,
            )
        first_arrival = arrivals[0].arrival_time
        makespan = max(end_time - first_arrival, 0.0)
        finished_jobs = sum(1 for o in ordered if o.status != STATUS_SHED)
        throughput = finished_jobs / makespan if makespan > 0 else 0.0
        self.obs.gauge("fleet.makespan_s", makespan)
        self.obs.gauge("fleet.throughput_jobs_per_s", throughput)
        return FleetReport(
            device_count=self.config.device_count,
            tenant_names=tuple(t.name for t in tenants),
            seed=self.config.seed,
            job_count=len(arrivals),
            outcomes=ordered,
            slos=tuple(slos),
            makespan_s=makespan,
            throughput_jobs_per_s=throughput,
            shed_by_reason=shed_by_reason,
            device_events=tuple(device_events),
            profile_runs=self.profiles.runs,
            metrics=self.obs.snapshot() if self.obs.enabled else {},
            timeline=recorder.to_jsonable() if recorder is not None else {},
            alerts=alerts,
            slo_targets=dict(targets) if targets else {},
            trace_spans=trace_spans,
            trace_instants=trace_instants,
        )
