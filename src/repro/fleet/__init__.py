"""Rack-scale fleet serving: many CSD machines behind one front-end.

The paper's single-machine story — ActivePy programs compiled onto one
computational-storage device — scales out here: a :class:`Fleet` of N
simulated machines takes a seeded open-loop job stream
(:class:`TrafficGenerator`) through per-tenant admission control
(token buckets + bounded queues), places jobs on free devices, fails
them over on device loss (resuming from line-boundary checkpoints),
degrades gracefully under overload, and accounts per-tenant SLOs
(queue-wait / end-to-end p50 and p99).

Chaos campaigns over the fleet (:func:`run_fleet_campaign`, or
``python -m repro chaos --fleet``) enforce the two rack-level
guarantees — every admitted job terminates exactly once, in a typed
state; tenant A's faults never perturb tenant B's run signatures —
and ddmin-shrink any violating fleet plan to a minimal repro.
"""

from .admission import (
    AdmissionController,
    QueuedJob,
    SHED_NO_DEVICES,
    SHED_OVERLOAD,
    SHED_QUEUE_FULL,
    SHED_RATE_LIMITED,
    SHED_RETRY_BUDGET,
    TokenBucket,
)
from .chaos import (
    FleetCampaignConfig,
    FleetCampaignResult,
    FleetChaosOutcome,
    FleetHarness,
    FleetShrunkFailure,
    check_fleet_invariants,
    fleet_replay_command,
    raise_for_violations,
    random_fleet_plan,
    run_fleet_campaign,
)
from .fleet import (
    DEFAULT_ALERT_CONSECUTIVE,
    DEFAULT_FLEET_SCALE,
    DEFAULT_SLO_MULTIPLE,
    Fleet,
    FleetConfig,
    FleetReport,
    JobOutcome,
    device_names,
)
from .profiles import JobProfile, ProfileStore
from .slo import SloSnapshot, percentile
from .trace import to_fleet_chrome_trace, write_fleet_chrome_trace
from .traffic import (
    DEFAULT_FLEET_WORKLOADS,
    JobArrival,
    TenantSpec,
    TrafficGenerator,
    default_tenants,
)

__all__ = [
    "AdmissionController",
    "DEFAULT_ALERT_CONSECUTIVE",
    "DEFAULT_FLEET_SCALE",
    "DEFAULT_FLEET_WORKLOADS",
    "DEFAULT_SLO_MULTIPLE",
    "Fleet",
    "FleetCampaignConfig",
    "FleetCampaignResult",
    "FleetChaosOutcome",
    "FleetConfig",
    "FleetHarness",
    "FleetReport",
    "FleetShrunkFailure",
    "JobArrival",
    "JobOutcome",
    "JobProfile",
    "ProfileStore",
    "QueuedJob",
    "SHED_NO_DEVICES",
    "SHED_OVERLOAD",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMITED",
    "SHED_RETRY_BUDGET",
    "SloSnapshot",
    "TenantSpec",
    "TokenBucket",
    "TrafficGenerator",
    "check_fleet_invariants",
    "default_tenants",
    "device_names",
    "fleet_replay_command",
    "percentile",
    "raise_for_violations",
    "random_fleet_plan",
    "run_fleet_campaign",
    "to_fleet_chrome_trace",
    "write_fleet_chrome_trace",
]
