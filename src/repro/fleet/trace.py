"""Fleet Chrome-trace export: one Perfetto track per CSD.

A fleet run that carried a flight recorder (or a tracer) collects raw
trace material on its :class:`~repro.fleet.fleet.FleetReport` — every
dispatch that reached a terminal point becomes a duration span on its
device's track (completed/degraded jobs as ``job``, dispatches cut
short by device loss as ``job-interrupted``), and the scheduling
moments that explain the gaps — failover, retry, shed, device loss and
rejoin — become instant events.  :func:`to_fleet_chrome_trace` renders
all of it in the same ``trace_event`` subset
:func:`repro.obs.export.validate_chrome_trace` checks, so the fleet
timeline loads in ``chrome://tracing``/Perfetto next to single-machine
traces.

Track order is deterministic: devices sorted by name, then the
synthetic ``fleet`` track for fleet-scoped instants (sheds, retries).
"""

from __future__ import annotations

import json
from typing import Dict, List

from ..errors import FleetError

__all__ = [
    "to_fleet_chrome_trace",
    "write_fleet_chrome_trace",
]

#: The whole fleet is one tracing process; devices are its threads.
_PID = 1

_US = 1e6  # trace_event timestamps are microseconds


def to_fleet_chrome_trace(report) -> Dict[str, object]:
    """Render a :class:`FleetReport`'s trace material as trace_event JSON.

    Raises :class:`FleetError` when the report carries no trace
    material — i.e. the run had neither a flight recorder nor a tracer
    attached, so there is nothing to export.
    """
    if not report.trace_spans and not report.trace_instants:
        raise FleetError(
            "this fleet report carries no trace material; run the fleet "
            "with Observability.with_timeseries() (or with_tracing()) "
            "to collect spans"
        )
    resources: List[str] = sorted(
        ({span["device"] for span in report.trace_spans}
         | {instant["resource"] for instant in report.trace_instants})
        - {"fleet"}
    )
    resources.append("fleet")
    tids = {resource: index + 1 for index, resource in enumerate(resources)}
    events: List[Dict[str, object]] = []
    for resource in resources:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": tids[resource],
            "args": {"name": resource},
        })
    for span in report.trace_spans:
        events.append({
            "name": str(span["name"]),
            "cat": str(span["cat"]),
            "ph": "X",
            "ts": float(span["start"]) * _US,
            "dur": (float(span["end"]) - float(span["start"])) * _US,
            "pid": _PID,
            "tid": tids[span["device"]],
            "args": dict(span["args"]),
        })
    for instant in report.trace_instants:
        events.append({
            "name": str(instant["name"]),
            "cat": "fleet-event",
            "ph": "i",
            "s": "t",
            "ts": float(instant["t"]) * _US,
            "pid": _PID,
            "tid": tids[instant["resource"]],
            "args": {},
        })
    # Chronological order within the file keeps diffs stable and makes
    # the raw JSON readable as a log; viewers re-sort anyway.
    events.sort(key=lambda event: (event.get("ts", -1.0), event["tid"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "time_unit_source": "seconds"},
    }


def write_fleet_chrome_trace(report, path: str) -> Dict[str, object]:
    """Export a fleet report's trace to ``path``; returns the object."""
    trace = to_fleet_chrome_trace(report)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(trace, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return trace
