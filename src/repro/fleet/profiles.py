"""Job profiles: what one ActivePy run costs, measured by running it.

The fleet scheduler needs, for every job it places, the job's service
time, its checkpoint resume points, and the run signature its tenant is
owed.  All three come from **actually running** the workload through
:class:`~repro.runtime.activepy.ActivePy` on a fresh single-machine
platform — the fleet never invents numbers the single-machine stack
would not produce.  Profiles are content-addressed by ``(workload,
inner fault plan)`` and cached, so a campaign (and especially the
shrinker's many probes) pays for each distinct inner run exactly once.

A job under a :data:`~repro.faults.spec.FaultKind.TENANT_FAULT_INJECTION`
window profiles against the derived inner :class:`FaultPlan`: the inner
machine's own recovery machinery (chunk replay, host fallback,
checkpoint restore) decides whether the job degrades — the fleet just
reads the verdict off the report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..chaos.invariants import run_signature
from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import FleetError
from ..faults.spec import LOUD_KINDS, FaultPlan
from ..hw.topology import build_machine
from ..runtime.activepy import ActivePy, RunOptions
from ..workloads import get_workload, workload_names

__all__ = ["JobProfile", "ProfileStore"]


@dataclass(frozen=True)
class JobProfile:
    """The fleet-visible shape of one (workload, inner-fault) run."""

    workload: str
    #: End-to-end simulated service seconds (sampling + compile + run).
    service_seconds: float
    #: Resumable offsets into the service time, one per completed line
    #: boundary (ascending, exclusive of 0 and of the total).  Empty
    #: when checkpointing is disabled — every failover then replans
    #: from scratch.
    checkpoint_boundaries: Tuple[float, ...]
    #: The single-machine run signature (program, line order, digest)
    #: the tenant's report must carry.
    signature: Tuple
    #: True when the inner run itself had to degrade (host fallback
    #: under its injected faults) — the fleet outcome inherits this.
    degraded: bool
    #: Fault events the inner run logged (injections + recoveries).
    fault_event_count: int

    def resume_point(self, progress_s: float) -> float:
        """The durable offset to resume from after losing a device.

        The largest checkpoint boundary at or below ``progress_s``;
        0.0 (replan from scratch) when no boundary was reached.
        """
        best = 0.0
        for boundary in self.checkpoint_boundaries:
            if boundary <= progress_s:
                best = boundary
            else:
                break
        return best


class ProfileStore:
    """Measured :class:`JobProfile`\\ s, cached per (workload, plan)."""

    def __init__(
        self,
        system_config: SystemConfig = DEFAULT_CONFIG,
        scale: float = 2 ** -6,
    ) -> None:
        if not 0 < scale <= 1:
            raise FleetError(f"scale must lie in (0, 1], got {scale}")
        self.system_config = system_config
        self.scale = scale
        self._profiles: Dict[Tuple[str, str], JobProfile] = {}
        self._baseline_reports: Dict[str, object] = {}
        #: Inner ActivePy runs actually executed (cache misses).
        self.runs = 0

    @staticmethod
    def _plan_key(plan: Optional[FaultPlan]) -> str:
        if plan is None or len(plan) == 0:
            return "fault-free"
        return json.dumps(plan.to_jsonable(), sort_keys=True)

    def profile(
        self, workload_name: str, plan: Optional[FaultPlan] = None
    ) -> JobProfile:
        """The measured profile of ``workload_name`` under ``plan``."""
        if workload_name not in workload_names():
            raise FleetError(f"unknown workload {workload_name!r}")
        key = (workload_name, self._plan_key(plan))
        if key not in self._profiles:
            self._profiles[key] = self._measure(workload_name, plan)
        return self._profiles[key]

    def baseline(self, workload_name: str) -> JobProfile:
        """The fault-free profile — the signature every tenant is owed."""
        return self.profile(workload_name, None)

    def mean_service_seconds(self, workload_rotation: Tuple[str, ...]) -> float:
        """Mean fault-free service time across a workload rotation."""
        if not workload_rotation:
            raise FleetError("workload rotation must not be empty")
        profiles = [self.baseline(name) for name in workload_rotation]
        return sum(p.service_seconds for p in profiles) / len(profiles)

    def inner_plan(self, workload_name: str, seed: int, count: int) -> FaultPlan:
        """A deterministic loud inner plan aimed at a workload's run window.

        Mirrors the single-machine chaos harness: faults are drawn past
        most of the sampling/compile prefix so they land where chunks
        are in flight, from the frozen :data:`LOUD_KINDS` pool.
        """
        baseline = self._baseline_report(workload_name)
        offset = 0.8 * baseline.overhead_seconds
        return FaultPlan.random(
            seed=seed,
            horizon_s=baseline.total_seconds - offset,
            count=count,
            offset_s=offset,
            kinds=LOUD_KINDS,
        )

    # --- measurement ------------------------------------------------------

    def _report(self, workload_name: str, plan: Optional[FaultPlan]):
        workload = get_workload(workload_name, scale=self.scale)
        machine = build_machine(self.system_config)
        self.runs += 1
        return ActivePy(self.system_config).run(
            workload.program, workload.dataset, machine=machine,
            options=RunOptions(fault_plan=plan),
        )

    def _baseline_report(self, workload_name: str):
        """The cached fault-free report — inner-plan horizons read it."""
        if workload_name not in self._baseline_reports:
            self._baseline_reports[workload_name] = self._report(
                workload_name, None
            )
        return self._baseline_reports[workload_name]

    def _measure(
        self, workload_name: str, plan: Optional[FaultPlan]
    ) -> JobProfile:
        if plan is None or len(plan) == 0:
            report = self._baseline_report(workload_name)
        else:
            report = self._report(workload_name, plan)
        result = report.result
        boundaries: Tuple[float, ...] = ()
        if self.system_config.checkpoint_enabled:
            # PR 2 checkpoints are line-boundary records: after each
            # line completes, its outputs are durable in BAR memory.
            # The resumable offsets are therefore the cumulative time
            # through each completed line (the sampling/compile prefix
            # included — a resume re-uses the committed plan and code).
            elapsed = report.overhead_seconds
            cumulative = []
            for timing in result.line_timings[:-1]:
                elapsed += timing.seconds
                cumulative.append(elapsed)
            boundaries = tuple(cumulative)
        return JobProfile(
            workload=workload_name,
            service_seconds=report.total_seconds,
            checkpoint_boundaries=boundaries,
            signature=run_signature(report),
            degraded=result.degraded,
            fault_event_count=len(result.fault_events),
        )
