"""SLO accounting: latency percentiles as first-class metrics.

The fleet records two latency samples per admitted job — queue wait
(arrival to first dispatch) and end-to-end (arrival to final
completion) — and summarises them per tenant as p50/p99 percentiles.
:func:`percentile` reimplements ``numpy.percentile``'s default linear
interpolation exactly (a property test pins the equivalence), so the
fleet's SLO numbers match what any downstream notebook would compute
from the raw samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Sequence, Tuple

from ..errors import FleetError

__all__ = ["SloSnapshot", "percentile"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples``, numpy-compatible.

    Linear interpolation between closest ranks — the same formula as
    ``numpy.percentile(samples, q)`` with the default method, down to
    the arithmetic order, so the two agree bit-for-bit.
    """
    if not samples:
        raise FleetError("percentile of an empty sample set is undefined")
    if not 0 <= q <= 100:
        raise FleetError(f"percentile q must lie in [0, 100], got {q}")
    ordered = sorted(float(sample) for sample in samples)
    rank = (len(ordered) - 1) * (q / 100.0)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[int(rank)]
    fraction = rank - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


@dataclass(frozen=True)
class SloSnapshot:
    """One tenant's service-level view of a fleet run.

    Latency percentiles are 0.0 when the tenant has no samples (every
    job shed, or none arrived) — the counts disambiguate.
    """

    tenant: str
    priority: int
    arrived: int
    admitted: int
    completed: int
    degraded: int
    shed: int
    queue_wait_p50_s: float
    queue_wait_p99_s: float
    end_to_end_p50_s: float
    end_to_end_p99_s: float
    #: The raw samples the percentiles were computed from, for audit.
    queue_wait_samples: Tuple[float, ...] = field(default=(), repr=False)
    end_to_end_samples: Tuple[float, ...] = field(default=(), repr=False)

    @classmethod
    def from_samples(
        cls,
        tenant: str,
        priority: int,
        arrived: int,
        admitted: int,
        completed: int,
        degraded: int,
        shed: int,
        queue_waits: Sequence[float],
        end_to_ends: Sequence[float],
    ) -> "SloSnapshot":
        def p(samples: Sequence[float], q: float) -> float:
            return percentile(samples, q) if samples else 0.0

        return cls(
            tenant=tenant,
            priority=priority,
            arrived=arrived,
            admitted=admitted,
            completed=completed,
            degraded=degraded,
            shed=shed,
            queue_wait_p50_s=p(queue_waits, 50.0),
            queue_wait_p99_s=p(queue_waits, 99.0),
            end_to_end_p50_s=p(end_to_ends, 50.0),
            end_to_end_p99_s=p(end_to_ends, 99.0),
            queue_wait_samples=tuple(queue_waits),
            end_to_end_samples=tuple(end_to_ends),
        )

    # --- the common report protocol (see analysis/export.py) ---------------

    def summary(self) -> Dict[str, Any]:
        """The tenant's SLO headline, JSON-ready."""
        return {
            "tenant": self.tenant,
            "priority": self.priority,
            "arrived": self.arrived,
            "admitted": self.admitted,
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "queue_wait_p50_s": self.queue_wait_p50_s,
            "queue_wait_p99_s": self.queue_wait_p99_s,
            "end_to_end_p50_s": self.end_to_end_p50_s,
            "end_to_end_p99_s": self.end_to_end_p99_s,
        }

    def to_jsonable(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": "fleet-tenant-slo"}
        payload.update(self.summary())
        payload["queue_wait_samples"] = list(self.queue_wait_samples)
        payload["end_to_end_samples"] = list(self.end_to_end_samples)
        return payload

    def render(self) -> str:
        return (
            f"{self.tenant:<10} prio {self.priority}  "
            f"arrived {self.arrived:>3}  admitted {self.admitted:>3}  "
            f"completed {self.completed:>3}  degraded {self.degraded:>3}  "
            f"shed {self.shed:>3}  "
            f"queue p50/p99 {self.queue_wait_p50_s:.3f}/"
            f"{self.queue_wait_p99_s:.3f}s  "
            f"e2e p50/p99 {self.end_to_end_p50_s:.3f}/"
            f"{self.end_to_end_p99_s:.3f}s"
        )
