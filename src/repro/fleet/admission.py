"""Per-tenant admission control: token buckets, bounded queues, shedding.

The front-end's first line of defence.  Every arriving job passes its
tenant's :class:`TokenBucket` (rate limiting) and bounded queue (memory
limiting); past either limit the job is **shed with a typed
:class:`~repro.errors.AdmissionError` reason**, never silently dropped
and never allowed to grow an unbounded backlog.  When the fleet-wide
backlog crosses the overload watermark, the controller degrades
gracefully: it sheds queued jobs from the *lowest-priority* tenants
first (newest first within a tenant), exactly once each, each with its
reason attached.

Everything is driven by the fleet's simulated clock — no wall time —
so admission decisions replay deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FleetError
from .traffic import JobArrival, TenantSpec

__all__ = [
    "AdmissionController",
    "QueuedJob",
    "SHED_NO_DEVICES",
    "SHED_OVERLOAD",
    "SHED_QUEUE_FULL",
    "SHED_RATE_LIMITED",
    "SHED_RETRY_BUDGET",
    "TokenBucket",
]

#: The typed shed reasons an :class:`~repro.errors.AdmissionError` or
#: :class:`~repro.errors.FleetError` outcome carries.
SHED_RATE_LIMITED = "rate-limited"
SHED_QUEUE_FULL = "queue-full"
SHED_OVERLOAD = "overload-shed"
SHED_RETRY_BUDGET = "retry-budget-exhausted"
SHED_NO_DEVICES = "no-live-devices"


class TokenBucket:
    """A deterministic token bucket over simulated time.

    Refills continuously at ``rate`` tokens/s up to ``burst``; a job is
    admitted iff a whole token is available at its arrival instant.
    """

    __slots__ = ("rate", "burst", "tokens", "last_refill")

    def __init__(self, rate: float, burst: int) -> None:
        if rate <= 0:
            raise FleetError(f"token rate must be positive, got {rate}")
        if burst < 1:
            raise FleetError(f"token burst must be at least 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_refill = 0.0

    def _refill(self, now: float) -> None:
        if now < self.last_refill:
            raise FleetError(
                f"token bucket clock moved backwards: "
                f"{self.last_refill} -> {now}"
            )
        self.tokens = min(self.burst, self.tokens + (now - self.last_refill) * self.rate)
        self.last_refill = now

    def try_take(self, now: float) -> bool:
        """Consume one token at ``now`` if available."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class QueuedJob:
    """A job sitting in (or re-entering) the dispatch queue."""

    arrival: JobArrival
    #: Monotone admission sequence — FIFO order within a priority band.
    seq: int
    #: Service seconds already made durable via checkpoints (resume
    #: offset after a device-loss failover; 0.0 = from scratch).
    resume_offset_s: float = 0.0
    #: Failover resubmissions consumed so far.
    retries: int = 0

    @property
    def priority(self) -> int:
        return self.arrival.priority


class AdmissionController:
    """Token buckets + bounded queues + overload shedding, per tenant."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec],
        overload_watermark: int,
    ) -> None:
        if overload_watermark < 1:
            raise FleetError(
                f"overload_watermark must be at least 1, got {overload_watermark}"
            )
        self.tenants: Dict[str, TenantSpec] = {t.name: t for t in tenants}
        self.overload_watermark = overload_watermark
        self._buckets: Dict[str, TokenBucket] = {}
        for tenant in tenants:
            if tenant.rate_jobs_per_s is None:
                raise FleetError(
                    f"tenant {tenant.name!r} has no resolved rate; "
                    f"resolve tenants before building the controller"
                )
            rate = (
                tenant.admission_rate
                if tenant.admission_rate is not None
                else 1.5 * tenant.rate_jobs_per_s
            )
            self._buckets[tenant.name] = TokenBucket(rate, tenant.admission_burst)
        self._queues: Dict[str, List[QueuedJob]] = {t.name: [] for t in tenants}
        self._seq = 0

    # --- admission --------------------------------------------------------

    def admit(self, arrival: JobArrival, now: float) -> Optional[str]:
        """Admit ``arrival`` into its tenant queue, or return a shed reason.

        ``None`` means admitted (queued).  A non-``None`` return is one
        of the ``SHED_*`` reasons; the caller must record the shed —
        the controller never forgets a job silently.
        """
        tenant = self.tenants.get(arrival.tenant)
        if tenant is None:
            raise FleetError(f"unknown tenant {arrival.tenant!r}")
        if not self._buckets[arrival.tenant].try_take(now):
            return SHED_RATE_LIMITED
        if len(self._queues[arrival.tenant]) >= tenant.queue_limit:
            return SHED_QUEUE_FULL
        self._queues[arrival.tenant].append(QueuedJob(arrival=arrival, seq=self._seq))
        self._seq += 1
        return None

    def requeue(self, job: QueuedJob) -> None:
        """Return a failed-over job to its tenant queue.

        Re-entry keeps the job's original admission ``seq``, so a
        retried job resumes its old place in the FIFO order instead of
        going to the back — it has already waited once.  Requeueing is
        not re-admission: no token is consumed and no queue bound is
        enforced (the job's queue slot was released when it dispatched,
        and an admitted job must never be silently un-admitted).
        """
        self._queues[job.arrival.tenant].append(job)

    # --- dispatch ---------------------------------------------------------

    @property
    def total_queued(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def next_job(self) -> Optional[QueuedJob]:
        """Pop the next job to dispatch: highest priority, then FIFO."""
        best_name: Optional[str] = None
        best_key: Optional[Tuple[int, int]] = None
        for name in sorted(self._queues):
            queue = self._queues[name]
            if not queue:
                continue
            head = min(queue, key=lambda job: job.seq)
            key = (-head.priority, head.seq)
            if best_key is None or key < best_key:
                best_key = key
                best_name = name
        if best_name is None:
            return None
        queue = self._queues[best_name]
        head = min(queue, key=lambda job: job.seq)
        queue.remove(head)
        return head

    # --- graceful degradation ---------------------------------------------

    def shed_overload(self) -> List[QueuedJob]:
        """Shed queued jobs until the backlog is back under the watermark.

        Victims come from the lowest-priority tenant with queued work,
        newest admission first — the premium tenants keep their place
        while best-effort load is the first to degrade.  Every victim
        is returned to the caller to be recorded as shed-with-error.
        """
        victims: List[QueuedJob] = []
        while self.total_queued > self.overload_watermark:
            candidates = [
                (tenant.priority, name)
                for name, tenant in sorted(self.tenants.items())
                if self._queues[name]
            ]
            if not candidates:
                break
            _, victim_tenant = min(candidates)
            queue = self._queues[victim_tenant]
            victim = max(queue, key=lambda job: job.seq)
            queue.remove(victim)
            victims.append(victim)
        return victims

    def drain(self) -> List[QueuedJob]:
        """Remove and return everything still queued (fleet shutdown)."""
        drained: List[QueuedJob] = []
        for name in sorted(self._queues):
            drained.extend(sorted(self._queues[name], key=lambda job: job.seq))
            self._queues[name] = []
        return sorted(drained, key=lambda job: job.seq)
