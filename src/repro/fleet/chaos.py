"""Fleet chaos: seeded rack-level fault campaigns and their invariants.

The single-machine chaos layer (:mod:`repro.chaos`) hardens one run on
one machine.  This module does the same one level up: a campaign of
seeded fleet runs, each under a random **fleet-level** fault plan
(device losses, per-tenant fault storms), judged against two
rack-level guarantees:

* **Termination** — every admitted job terminates in *exactly one* of
  {completed, degraded, shed-with-error}; a shed is always typed
  (reason + error class), never silent; nothing is double-counted or
  lost.
* **Tenant isolation** — faults aimed at tenant A never perturb tenant
  B's run signatures.  Every tenant that no
  ``TENANT_FAULT_INJECTION`` targeted must receive exactly the
  fault-free signature for each job that ran.

Violating plans are minimised with the same ddmin shrinker the
single-machine campaign uses (:func:`repro.chaos.shrink.shrink_plan`
is generic over plans + a reproduction predicate), and reported with
the exact CLI command that replays them.  Profiles are cached across
the whole campaign, so shrink probes re-run only the cheap outer DES.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..chaos.invariants import InvariantViolation
from ..chaos.shrink import ShrinkResult, render_plan, shrink_plan
from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import FleetError, TenantIsolationError
from ..faults.spec import FaultKind, FaultPlan, FaultSpec
from .fleet import (
    DEFAULT_FLEET_SCALE,
    Fleet,
    FleetConfig,
    FleetReport,
    device_names,
)
from .profiles import ProfileStore
from .traffic import TenantSpec, default_tenants

__all__ = [
    "FleetCampaignConfig",
    "FleetCampaignResult",
    "FleetChaosOutcome",
    "FleetHarness",
    "FleetShrunkFailure",
    "check_fleet_invariants",
    "fleet_replay_command",
    "raise_for_violations",
    "random_fleet_plan",
    "run_fleet_campaign",
]

#: The terminal statuses the termination invariant admits.
_TERMINAL_STATUSES = ("completed", "degraded", "shed")


def random_fleet_plan(
    seed: int,
    horizon_s: float,
    device_count: int,
    tenant_names: Tuple[str, ...],
    count: int = 2,
) -> FaultPlan:
    """A deterministic fleet-level fault plan from a seed.

    Draws only :data:`~repro.faults.spec.FLEET_KINDS`: device losses
    (sometimes rejoining, sometimes gone for good) and per-tenant fault
    windows wide enough to catch dispatches.  A private
    :class:`random.Random` keyed on the seed alone makes the same
    arguments always yield the same plan.
    """
    if horizon_s <= 0:
        raise FleetError(f"horizon_s must be positive, got {horizon_s}")
    if count < 1:
        raise FleetError(f"count must be at least 1, got {count}")
    if not tenant_names:
        raise FleetError("tenant_names must not be empty")
    rng = random.Random(f"fleet-plan:{seed}")
    devices = device_names(device_count)
    specs: List[FaultSpec] = []
    for _ in range(count):
        if rng.random() < 0.5:
            # Half of rack faults are device losses; half of those
            # rejoin after a window (a reboot), the rest never return.
            rejoins = rng.random() < 0.5
            specs.append(FaultSpec(
                kind=FaultKind.DEVICE_LOST_MID_JOB,
                at_time=rng.uniform(0.05, 0.8) * horizon_s,
                target=rng.choice(devices),
                duration_s=(
                    rng.uniform(0.1, 0.3) * horizon_s if rejoins else 0.0
                ),
            ))
        else:
            specs.append(FaultSpec(
                kind=FaultKind.TENANT_FAULT_INJECTION,
                at_time=rng.uniform(0.05, 0.6) * horizon_s,
                target=rng.choice(sorted(tenant_names)),
                duration_s=rng.uniform(0.2, 0.5) * horizon_s,
                count=rng.randint(1, 3),
            ))
    return FaultPlan(specs=tuple(specs), seed=seed)


def check_fleet_invariants(
    report: FleetReport,
    plan: FaultPlan,
    profiles: ProfileStore,
) -> List[InvariantViolation]:
    """All rack-level invariant violations of one fleet run."""
    violations: List[InvariantViolation] = []

    # 1. Termination: every arrival has exactly one outcome (the report
    #    builder already guarantees at-least/at-most once; re-check the
    #    universe of statuses and the typed-shed rule here, where the
    #    campaign can see it).
    seen_ids = [outcome.job_id for outcome in report.outcomes]
    if len(seen_ids) != len(set(seen_ids)):
        violations.append(InvariantViolation(
            "job-termination", "an arrival owns more than one outcome",
        ))
    if len(seen_ids) != report.job_count:
        violations.append(InvariantViolation(
            "job-termination",
            f"{report.job_count} job(s) arrived but "
            f"{len(seen_ids)} outcome(s) were recorded",
        ))
    for outcome in report.outcomes:
        if outcome.status not in _TERMINAL_STATUSES:
            violations.append(InvariantViolation(
                "job-termination",
                f"job {outcome.job_id} ended in unknown status "
                f"{outcome.status!r}",
            ))
        if outcome.status == "shed" and (
            outcome.reason is None or outcome.error is None
        ):
            violations.append(InvariantViolation(
                "job-termination",
                f"job {outcome.job_id} was shed silently "
                f"(reason={outcome.reason!r}, error={outcome.error!r})",
            ))
        if outcome.status != "shed" and outcome.signature is None:
            violations.append(InvariantViolation(
                "job-termination",
                f"job {outcome.job_id} finished without a run signature",
            ))

    # 2. Tenant isolation: tenants no fault targeted get the fault-free
    #    signature on every job that ran.  (Device losses may delay or
    #    degrade a bystander's jobs — resume/replay relocates work —
    #    but the *result* must be the baseline result.)
    targeted = {
        spec.target for spec in plan
        if spec.kind is FaultKind.TENANT_FAULT_INJECTION
    }
    for outcome in report.outcomes:
        if outcome.tenant in targeted or outcome.signature is None:
            continue
        expected = profiles.baseline(outcome.workload).signature
        if tuple(outcome.signature) != tuple(expected):
            violations.append(InvariantViolation(
                "tenant-isolation",
                f"tenant {outcome.tenant!r} was not targeted by any fault "
                f"but job {outcome.job_id} ({outcome.workload}) returned "
                f"signature {outcome.signature} instead of the fault-free "
                f"{expected}",
            ))

    # 3. Clock sanity: the outer DES must be as monotone as the inner
    #    sim — finishes after arrivals, non-negative waits.
    for outcome in report.outcomes:
        if outcome.finish_time < outcome.arrival_time:
            violations.append(InvariantViolation(
                "fleet-clock-monotonic",
                f"job {outcome.job_id} finished at {outcome.finish_time} "
                f"before arriving at {outcome.arrival_time}",
            ))
        wait = outcome.queue_wait_s
        if wait is not None and wait < 0:
            violations.append(InvariantViolation(
                "fleet-clock-monotonic",
                f"job {outcome.job_id} has negative queue wait {wait}",
            ))

    return violations


def raise_for_violations(violations: List[InvariantViolation]) -> None:
    """Raise the typed error matching the worst violation, if any.

    Isolation breaches raise :class:`~repro.errors.TenantIsolationError`;
    anything else raises :class:`~repro.errors.FleetError`.  Campaigns
    collect violations as data instead; this is for callers that want
    an exception (e.g. library users wrapping a single run).
    """
    if not violations:
        return
    rendered = "; ".join(v.render() for v in violations)
    if any(v.name == "tenant-isolation" for v in violations):
        raise TenantIsolationError(rendered)
    raise FleetError(rendered)


@dataclass(frozen=True)
class FleetChaosOutcome:
    """One seeded fleet experiment, judged."""

    seed: int
    plan: FaultPlan
    violations: Tuple[InvariantViolation, ...]
    completed: int
    degraded: int
    shed: int
    makespan_s: float

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "fleet_faults": len(self.plan),
            "completed": self.completed,
            "degraded": self.degraded,
            "shed": self.shed,
            "makespan_s": self.makespan_s,
            "violations": [v.render() for v in self.violations],
        }

    def to_jsonable(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": "fleet-chaos-run"}
        payload.update(self.summary())
        return payload


@dataclass(frozen=True)
class FleetShrunkFailure:
    """A violating fleet run distilled to its minimal fleet plan."""

    outcome: FleetChaosOutcome
    shrink: ShrinkResult
    replay_command: str

    def render(self) -> str:
        lines = [f"FLEET FAILURE: seed={self.outcome.seed}"]
        for violation in self.outcome.violations:
            lines.append(f"  violated  {violation.render()}")
        lines.append(
            f"  shrunk    {len(self.outcome.plan)} fault(s) -> "
            f"{len(self.shrink.minimal)} ({self.shrink.probes} probe(s))"
        )
        for text in render_plan(self.shrink.minimal):
            lines.append(f"    - {text}")
        lines.append(f"  replay    {self.replay_command}")
        return "\n".join(lines)


@dataclass(frozen=True)
class FleetCampaignConfig:
    """What to throw at the rack, and how hard."""

    runs: int = 100
    device_count: int = 4
    tenants: Tuple[TenantSpec, ...] = field(default_factory=default_tenants)
    job_count: int = 24
    base_seed: int = 0
    #: Fleet-level faults per run.
    fault_count: int = 2
    target_load: float = 0.7
    scale: float = DEFAULT_FLEET_SCALE
    system_config: SystemConfig = DEFAULT_CONFIG
    shrink_failures: bool = True
    max_shrink_probes: int = 128
    #: Plant the cross-tenant residue bug the campaign must catch.
    no_isolation: bool = False

    def __post_init__(self) -> None:
        # "0 runs, all invariants held" must never gate anything green.
        if self.runs < 1:
            raise FleetError(f"runs must be at least 1, got {self.runs}")
        if self.fault_count < 1:
            raise FleetError(
                f"fault_count must be at least 1, got {self.fault_count}"
            )


@dataclass
class FleetCampaignResult:
    """Every fleet outcome plus the shrunk failures, ready to render."""

    config: FleetCampaignConfig
    outcomes: List[FleetChaosOutcome] = field(default_factory=list)
    failures: List[FleetShrunkFailure] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> int:
        return sum(len(outcome.violations) for outcome in self.outcomes)

    @property
    def ok(self) -> bool:
        return not self.failures and all(o.ok for o in self.outcomes)

    def render(self) -> str:
        lines = [
            f"fleet chaos campaign: {self.runs} run(s), "
            f"{self.config.device_count} device(s), "
            f"{len(self.config.tenants)} tenant(s), "
            f"seeds {self.config.base_seed}.."
            f"{self.config.base_seed + max(self.runs - 1, 0)}",
            f"  jobs/run        : {self.config.job_count}",
            f"  completed       : "
            f"{sum(o.completed for o in self.outcomes)}",
            f"  degraded        : {sum(o.degraded for o in self.outcomes)}",
            f"  shed            : {sum(o.shed for o in self.outcomes)}",
            f"  violations      : {self.violations}",
        ]
        for failure in self.failures:
            lines.append("")
            lines.append(failure.render())
        if self.ok:
            lines.append("  all fleet invariants held")
        return "\n".join(lines)

    # --- the common report protocol (see analysis/export.py) ---------------

    def summary(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "ok": self.ok,
            "violations": self.violations,
            "failures": len(self.failures),
            "device_count": self.config.device_count,
            "tenants": [t.name for t in self.config.tenants],
            "job_count": self.config.job_count,
            "base_seed": self.config.base_seed,
            "completed": sum(o.completed for o in self.outcomes),
            "degraded": sum(o.degraded for o in self.outcomes),
            "shed": sum(o.shed for o in self.outcomes),
        }

    def to_jsonable(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"experiment": "fleet-chaos-campaign"}
        payload.update(self.summary())
        payload["outcomes"] = [o.to_jsonable() for o in self.outcomes]
        payload["failures"] = [
            {
                "seed": f.outcome.seed,
                "minimal_plan": list(render_plan(f.shrink.minimal)),
                "shrink_probes": f.shrink.probes,
                "replay": f.replay_command,
            }
            for f in self.failures
        ]
        return payload


class FleetHarness:
    """Builds and judges seeded fleet runs for one campaign setting.

    One :class:`~repro.fleet.profiles.ProfileStore` is shared across
    every run and every shrink probe, so each distinct (workload,
    inner-plan) ActivePy run is paid for once and replays hit only the
    outer discrete-event simulation.
    """

    def __init__(self, config: FleetCampaignConfig) -> None:
        self.config = config
        self.profiles = ProfileStore(
            system_config=config.system_config, scale=config.scale,
        )
        self._resolved: Optional[Tuple[TenantSpec, ...]] = None
        self._horizon: Optional[float] = None

    def fleet_config(self, seed: int, plan: FaultPlan) -> FleetConfig:
        return FleetConfig(
            device_count=self.config.device_count,
            tenants=self.config.tenants,
            job_count=self.config.job_count,
            seed=seed,
            target_load=self.config.target_load,
            scale=self.config.scale,
            system_config=self.config.system_config,
            plan=plan,
            no_isolation=self.config.no_isolation,
        )

    def _resolved_tenants(self) -> Tuple[TenantSpec, ...]:
        if self._resolved is None:
            probe = Fleet(
                self.fleet_config(seed=0, plan=FaultPlan()),
                profiles=self.profiles,
            )
            self._resolved = probe.resolve_tenants()
        return self._resolved

    def horizon_s(self) -> float:
        """The expected arrival span — where fleet faults are aimed.

        ``job_count / aggregate arrival rate``, padded 20%: losses and
        windows land while traffic is still flowing, not after the rack
        has gone quiet.
        """
        if self._horizon is None:
            tenants = self._resolved_tenants()
            aggregate = sum(t.rate_jobs_per_s for t in tenants)
            self._horizon = 1.2 * self.config.job_count / aggregate
        return self._horizon

    def plan_for(self, seed: int) -> FaultPlan:
        """The deterministic fleet plan run ``seed`` uses."""
        return random_fleet_plan(
            seed=seed,
            horizon_s=self.horizon_s(),
            device_count=self.config.device_count,
            tenant_names=tuple(t.name for t in self.config.tenants),
            count=self.config.fault_count,
        )

    def run_plan(self, plan: FaultPlan,
                 seed: Optional[int] = None) -> FleetChaosOutcome:
        """Run one fleet under one plan and judge the rack invariants."""
        used_seed = plan.seed if seed is None else seed
        fleet = Fleet(
            self.fleet_config(seed=used_seed, plan=plan),
            profiles=self.profiles,
        )
        try:
            report = fleet.run()
        except Exception as exc:  # noqa: BLE001 — the invariant under test
            return FleetChaosOutcome(
                seed=used_seed,
                plan=plan,
                violations=(InvariantViolation(
                    "no-unhandled-exception",
                    f"{type(exc).__name__}: {exc}",
                ),),
                completed=0,
                degraded=0,
                shed=0,
                makespan_s=0.0,
            )
        violations = check_fleet_invariants(report, plan, self.profiles)
        return FleetChaosOutcome(
            seed=used_seed,
            plan=plan,
            violations=tuple(violations),
            completed=report.completed,
            degraded=report.degraded,
            shed=report.shed,
            makespan_s=report.makespan_s,
        )

    def run_seed(self, seed: int) -> FleetChaosOutcome:
        """One fully seeded fleet experiment (the replay entry point)."""
        return self.run_plan(self.plan_for(seed), seed=seed)

    def reproducer(self, seed: int) -> Callable[[FaultPlan], bool]:
        """Predicate for the shrinker: does this fleet plan still violate?

        Shrink probes keep the run's own traffic seed fixed so only the
        plan varies — the predicate is a pure function of the plan.
        """
        def reproduces(candidate: FaultPlan) -> bool:
            return not self.run_plan(candidate, seed=seed).ok
        return reproduces


def fleet_replay_command(
    outcome: FleetChaosOutcome, config: FleetCampaignConfig
) -> str:
    parts = [
        "python -m repro chaos --fleet",
        "--runs 1",
        f"--seed {outcome.seed}",
        f"--devices {config.device_count}",
        f"--tenants {len(config.tenants)}",
        f"--jobs {config.job_count}",
        f"--fault-count {config.fault_count}",
    ]
    if config.scale != DEFAULT_FLEET_SCALE:
        parts.append(f"--scale {config.scale}")
    if config.no_isolation:
        parts.append("--no-isolation")
    return " ".join(parts)


def run_fleet_campaign(
    config: FleetCampaignConfig,
    on_outcome: Optional[Callable[[FleetChaosOutcome], None]] = None,
) -> FleetCampaignResult:
    """Run a full fleet campaign; shrink and report every violating run."""
    harness = FleetHarness(config)
    result = FleetCampaignResult(config=config)
    for run in range(config.runs):
        seed = config.base_seed + run
        outcome = harness.run_seed(seed)
        result.outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)
        if outcome.ok:
            continue
        if config.shrink_failures and len(outcome.plan) > 0:
            shrunk = shrink_plan(
                outcome.plan,
                harness.reproducer(seed),
                max_probes=config.max_shrink_probes,
            )
        else:
            shrunk = ShrinkResult(
                minimal=outcome.plan, probes=0, budget_exhausted=False,
            )
        result.failures.append(FleetShrunkFailure(
            outcome=outcome,
            shrink=shrunk,
            replay_command=fleet_replay_command(outcome, config),
        ))
    return result
