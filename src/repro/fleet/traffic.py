"""Deterministic open-loop traffic for the fleet front-end.

A :class:`TenantSpec` describes one tenant of the rack: how fast its
users submit ActivePy jobs, which workloads they submit, how important
the tenant is when the fleet has to shed load, and the admission policy
knobs (token-bucket rate, queue bound) the front-end enforces for it.

The :class:`TrafficGenerator` turns a tenant set plus a seed into a
merged arrival schedule — an *open-loop* stream: arrivals do not wait
for completions, exactly the "millions of users submitting kernels"
regime where overload is possible and admission control earns its keep.
Each tenant draws Poisson arrivals (exponential inter-arrival times)
from a private :class:`random.Random`, so the same ``(tenants, seed)``
always yields a byte-identical schedule regardless of how many jobs are
taken or in what order tenants were declared.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple

from ..errors import FleetError

__all__ = [
    "DEFAULT_FLEET_WORKLOADS",
    "JobArrival",
    "TenantSpec",
    "TrafficGenerator",
    "default_tenants",
]

#: The fleet's default workload rotation — the same diverse plan shapes
#: the single-machine chaos campaign exercises.
DEFAULT_FLEET_WORKLOADS = ("tpch_q6", "kmeans", "blackscholes", "pagerank")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet and its admission policy.

    ``rate_jobs_per_s`` may be left ``None``; the fleet then derives a
    concrete rate from the measured mean service time and the
    configured target load (see
    :meth:`repro.fleet.fleet.Fleet.resolve_tenants`).  The traffic
    generator itself requires resolved rates.
    """

    name: str
    #: Mean open-loop arrival rate (Poisson).  ``None`` = derive from
    #: the fleet's target load and this tenant's ``weight``.
    rate_jobs_per_s: Optional[float] = None
    #: Relative share of the fleet's derived aggregate arrival rate.
    weight: float = 1.0
    #: Higher priority is dispatched first and shed last.
    priority: int = 1
    #: Token-bucket refill rate for admission; ``None`` = 1.5x the
    #: (resolved) arrival rate, so a well-behaved tenant rarely sheds.
    admission_rate: Optional[float] = None
    #: Token-bucket capacity (burst tolerance), in jobs.
    admission_burst: int = 8
    #: Bounded queue depth; an arrival past this is shed, never queued.
    queue_limit: int = 16
    #: The workload rotation this tenant's users submit.
    workloads: Tuple[str, ...] = DEFAULT_FLEET_WORKLOADS
    #: End-to-end latency SLO target (simulated seconds) the flight
    #: recorder's sliding-window p99 is alerted against.  ``None`` =
    #: derive from the measured baseline service times (see
    #: :meth:`repro.fleet.fleet.Fleet.slo_targets`).
    slo_e2e_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise FleetError("tenant name must be non-empty")
        if self.rate_jobs_per_s is not None and self.rate_jobs_per_s <= 0:
            raise FleetError(
                f"tenant {self.name!r}: rate_jobs_per_s must be positive, "
                f"got {self.rate_jobs_per_s}"
            )
        if self.weight <= 0:
            raise FleetError(
                f"tenant {self.name!r}: weight must be positive, got {self.weight}"
            )
        if self.admission_rate is not None and self.admission_rate <= 0:
            raise FleetError(
                f"tenant {self.name!r}: admission_rate must be positive, "
                f"got {self.admission_rate}"
            )
        if self.admission_burst < 1:
            raise FleetError(
                f"tenant {self.name!r}: admission_burst must be at least 1, "
                f"got {self.admission_burst}"
            )
        if self.queue_limit < 1:
            raise FleetError(
                f"tenant {self.name!r}: queue_limit must be at least 1, "
                f"got {self.queue_limit}"
            )
        if not self.workloads:
            raise FleetError(f"tenant {self.name!r}: workloads must not be empty")
        if self.slo_e2e_s is not None and self.slo_e2e_s <= 0:
            raise FleetError(
                f"tenant {self.name!r}: slo_e2e_s must be positive, "
                f"got {self.slo_e2e_s}"
            )


def default_tenants(count: int = 3) -> Tuple[TenantSpec, ...]:
    """A standard tenant mix: descending priority, auto-derived rates.

    ``tenant-a`` is the premium tenant (shed last), ``tenant-b`` the
    standard one, ``tenant-c`` (and beyond) best-effort — the first
    to go when the fleet degrades gracefully under overload.
    """
    if count < 1:
        raise FleetError(f"tenant count must be at least 1, got {count}")
    names = [f"tenant-{chr(ord('a') + index)}" for index in range(count)]
    return tuple(
        TenantSpec(name=name, priority=count - index)
        for index, name in enumerate(names)
    )


@dataclass(frozen=True)
class JobArrival:
    """One job hitting the front-end: who, what, and when."""

    #: Global id, dense in arrival order (ties broken by tenant name).
    job_id: int
    tenant: str
    workload: str
    priority: int
    arrival_time: float


class TrafficGenerator:
    """Seeded open-loop arrival schedules over a tenant set."""

    def __init__(self, tenants: Sequence[TenantSpec], seed: int = 0) -> None:
        if not tenants:
            raise FleetError("a fleet needs at least one tenant")
        names = [tenant.name for tenant in tenants]
        if len(set(names)) != len(names):
            raise FleetError(f"tenant names must be unique, got {names}")
        for tenant in tenants:
            if tenant.rate_jobs_per_s is None:
                raise FleetError(
                    f"tenant {tenant.name!r} has no resolved rate_jobs_per_s; "
                    f"resolve tenants before generating traffic"
                )
        self.tenants = tuple(tenants)
        self.seed = int(seed)

    def _tenant_stream(self, tenant: TenantSpec) -> Iterator[Tuple[float, str]]:
        """This tenant's infinite (arrival_time, workload) stream.

        The stream is private per ``(seed, tenant.name)``: adding or
        reordering *other* tenants never perturbs it.
        """
        rng = random.Random(f"fleet-traffic:{self.seed}:{tenant.name}")
        now = 0.0
        while True:
            now += rng.expovariate(tenant.rate_jobs_per_s)
            yield now, rng.choice(tenant.workloads)

    def schedule(self, job_count: int) -> Tuple[JobArrival, ...]:
        """The first ``job_count`` arrivals across all tenants, in order.

        A lazy k-way merge over the per-tenant streams; ties in arrival
        time break by tenant name so the global order is total and
        deterministic.
        """
        if job_count < 1:
            raise FleetError(f"job_count must be at least 1, got {job_count}")
        streams = {
            tenant.name: self._tenant_stream(tenant) for tenant in self.tenants
        }
        by_name = {tenant.name: tenant for tenant in self.tenants}
        heap = []
        for name in sorted(streams):
            at_time, workload = next(streams[name])
            heapq.heappush(heap, (at_time, name, workload))
        arrivals = []
        while len(arrivals) < job_count:
            at_time, name, workload = heapq.heappop(heap)
            tenant = by_name[name]
            arrivals.append(JobArrival(
                job_id=len(arrivals),
                tenant=name,
                workload=workload,
                priority=tenant.priority,
                arrival_time=at_time,
            ))
            next_time, next_workload = next(streams[name])
            heapq.heappush(heap, (next_time, name, next_workload))
        return tuple(arrivals)
