"""LightGBM: batch GBDT inference over a stored feature table.

Table I: 7.1 GB.  The model is trained once (at workload-build time, by
our from-scratch histogram GBDT in :mod:`repro.ml.gbdt`); the program
then streams the stored feature rows, quantises them to the model's
bins (the big volume reducer: 4 B floats become 1 B codes), traverses
the ensemble, and reduces the predictions.  Quantisation offloads well;
tree traversal is compute-dense and belongs on the host.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict

import numpy as np

from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..ml.gbdt import GBDTModel, GBDTRegressor
from ..units import GB
from .base import Workload, register, scaled_records

#: Features per row; stored as f32 columns.
FEATURES = 28
RECORD_BYTES = 4.0 * FEATURES
TABLE1_BYTES = 7.1 * GB
FULL_RECORDS = int(TABLE1_BYTES / RECORD_BYTES)

#: Ensemble shape served by the workload.
N_TREES = 25
MAX_DEPTH = 4
#: Rows used to train the served model (training is one-time setup).
_TRAIN_ROWS = 4096

# Ground-truth per-record instruction counts.
_INSTR_LOAD = 30.0
_INSTR_QUANTISE = 40.0
_INSTR_PREDICT = 520.0
_INSTR_REDUCE = 4.0


def _feature_matrix(n: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, size=(n, FEATURES)).astype(np.float32)


def _target_fn(features: np.ndarray) -> np.ndarray:
    """Synthetic ground-truth signal the model learns."""
    return (
        2.0 * features[:, 0]
        - 1.5 * features[:, 1] * (features[:, 2] > 0)
        + np.sin(features[:, 3])
    ).astype(np.float64)


@lru_cache(maxsize=1)
def trained_model() -> GBDTModel:
    """The served ensemble, trained once and cached per process."""
    features = _feature_matrix(_TRAIN_ROWS, seed=311).astype(np.float64)
    targets = _target_fn(features)
    trainer = GBDTRegressor(n_trees=N_TREES, max_depth=MAX_DEPTH)
    return trainer.fit(features, targets)


def _build_payload(n: int, full: int) -> Dict[str, Any]:
    return {"rows": _feature_matrix(n, seed=313)}


def _k_load(p: Dict[str, Any]) -> Dict[str, Any]:
    return {"rows": np.ascontiguousarray(p["rows"], dtype=np.float32)}


def _k_quantise(p: Dict[str, Any]) -> Dict[str, Any]:
    model = trained_model()
    return {"codes": model.quantise(p["rows"].astype(np.float64))}


def _k_predict(p: Dict[str, Any]) -> Dict[str, Any]:
    model = trained_model()
    return {"predictions": model.predict_codes(p["codes"])}


def _k_reduce(p: Dict[str, Any]) -> Dict[str, Any]:
    predictions = p["predictions"]
    return {
        "mean_prediction": float(np.mean(predictions)),
        "p99": float(np.quantile(predictions, 0.99)),
        "count": float(predictions.size),
    }


def build_program() -> Program:
    return Program(
        "lightgbm",
        [
            Statement(
                "load_rows", _k_load,
                instructions=per_record(_INSTR_LOAD),
                output_bytes=per_record(RECORD_BYTES),
                storage_bytes=per_record(RECORD_BYTES),
                chunks=64,
            ),
            Statement(
                "quantise_features", _k_quantise,
                instructions=per_record(_INSTR_QUANTISE),
                output_bytes=per_record(float(FEATURES)),  # 1 B per code
            ),
            Statement(
                "predict_ensemble", _k_predict,
                instructions=per_record(_INSTR_PREDICT),
                output_bytes=per_record(8.0),
            ),
            Statement(
                "reduce_predictions", _k_reduce,
                instructions=per_record(_INSTR_REDUCE),
                output_bytes=constant(24.0),
            ),
        ],
    )


@register("lightgbm")
def build(scale: float = 1.0) -> Workload:
    n = scaled_records(FULL_RECORDS, scale)
    dataset = Dataset(
        name="lightgbm.rows",
        n_records=n,
        record_bytes=RECORD_BYTES,
        builder=_build_payload,
    )
    return Workload(
        name="lightgbm",
        description="Batch GBDT inference over a stored feature table",
        table1_bytes=TABLE1_BYTES,
        dataset=dataset,
        program=build_program(),
    )
