"""MixedGEMM: interleaved sparse contraction and dense multiplication.

Table I: 9.4 GB.  The stored data is a stream of block work units, each
holding a sparse coefficient block and a dense operand pair.  The
program alternates CSD-friendly lines (parse sparse blocks into
compressed form; load and pack dense blocks) with compute-dense lines
(the contraction and the block GEMM), making it the suite's clearest
showcase of Algorithm 1 splitting *within* one program.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..units import GB
from .base import Workload, register, scaled_records

#: Block geometry: sparse block is ROWS x COLS, dense pair is ROWS^2.
ROWS = 16
COLS = 32
SPARSE_DENSITY = 0.12
#: Stored bytes per record: the sparse half plus the dense pair.
SPARSE_BYTES = ROWS * COLS * 8.0
DENSE_BYTES = 2.0 * ROWS * ROWS * 8.0
RECORD_BYTES = SPARSE_BYTES + DENSE_BYTES
TABLE1_BYTES = 9.4 * GB
FULL_RECORDS = int(TABLE1_BYTES / RECORD_BYTES)

# Ground-truth per-record instruction counts.
_INSTR_SPARSE_PARSE = 1.2 * SPARSE_BYTES
_INSTR_CONTRACT = 1200.0
_INSTR_DENSE_PACK = 0.8 * DENSE_BYTES
_INSTR_GEMM = 2.0 * 2.0 * ROWS**3
_INSTR_COMBINE = 64.0

#: Compressed sparse block footprint (indices + values for the nnz).
_CSR_BLOCK_BYTES = SPARSE_DENSITY * ROWS * COLS * 12.0 + (ROWS + 1) * 8.0


def _dense_blocks(n: int, seed: int = 607) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, size=(n, 2, ROWS, ROWS))


def _build_payload(n: int, full: int) -> Dict[str, Any]:
    rng = np.random.default_rng(601)
    blocks = rng.normal(0.0, 1.0, size=(n, ROWS, COLS))
    mask = rng.random((n, ROWS, COLS)) < SPARSE_DENSITY
    return {"sparse_blocks": np.where(mask, blocks, 0.0)}


def _k_sparse_parse(p: Dict[str, Any]) -> Dict[str, Any]:
    """Compress each sparse block to its nonzero coordinates."""
    blocks = p["sparse_blocks"]
    record, row, col = np.nonzero(blocks)
    return {
        "nnz_record": record.astype(np.int32),
        "nnz_row": row.astype(np.int8),
        "nnz_col": col.astype(np.int8),
        "nnz_val": blocks[record, row, col],
        "n_blocks": int(blocks.shape[0]),
    }


def _k_contract(p: Dict[str, Any]) -> Dict[str, Any]:
    """Contract each block against a fixed coefficient vector."""
    coefficients = np.linspace(0.5, 1.5, COLS)
    n = p["n_blocks"]
    contracted = np.zeros((n, ROWS))
    weighted = p["nnz_val"] * coefficients[p["nnz_col"].astype(np.int64)]
    np.add.at(
        contracted,
        (p["nnz_record"].astype(np.int64), p["nnz_row"].astype(np.int64)),
        weighted,
    )
    return {"contracted": contracted}


def _k_dense_pack(p: Dict[str, Any]) -> Dict[str, Any]:
    """Stream the dense halves from storage and pack them to f32."""
    n = p["contracted"].shape[0]
    dense = _dense_blocks(n)
    return {
        "contracted": p["contracted"],
        "dense32": dense.astype(np.float32),
    }


def _k_gemm(p: Dict[str, Any]) -> Dict[str, Any]:
    a = p["dense32"][:, 0]
    b = p["dense32"][:, 1]
    products = np.matmul(a, b)
    scaled = products * p["contracted"][:, :, None].astype(np.float32)
    return {"mixed": scaled}


def _k_combine(p: Dict[str, Any]) -> Dict[str, Any]:
    mixed = p["mixed"]
    return {
        "frobenius": float(np.sqrt(np.sum(mixed.astype(np.float64) ** 2))),
        "blocks": float(mixed.shape[0]),
    }


def build_program() -> Program:
    return Program(
        "mixedgemm",
        [
            Statement(
                "parse_sparse_blocks", _k_sparse_parse,
                instructions=per_record(_INSTR_SPARSE_PARSE),
                output_bytes=per_record(_CSR_BLOCK_BYTES),
                storage_bytes=per_record(SPARSE_BYTES),
                chunks=64,
            ),
            Statement(
                "contract_blocks", _k_contract,
                instructions=per_record(_INSTR_CONTRACT),
                output_bytes=per_record(ROWS * 8.0),
            ),
            Statement(
                "load_pack_dense", _k_dense_pack,
                instructions=per_record(_INSTR_DENSE_PACK),
                output_bytes=per_record(ROWS * 8.0 + DENSE_BYTES / 2),
                storage_bytes=per_record(DENSE_BYTES),
                chunks=64,
            ),
            Statement(
                "block_gemm", _k_gemm,
                instructions=per_record(_INSTR_GEMM),
                output_bytes=per_record(ROWS * ROWS * 4.0),
            ),
            Statement(
                "combine_results", _k_combine,
                instructions=per_record(_INSTR_COMBINE),
                output_bytes=constant(16.0),
            ),
        ],
    )


@register("mixedgemm")
def build(scale: float = 1.0) -> Workload:
    n = scaled_records(FULL_RECORDS, scale)
    dataset = Dataset(
        name="mixedgemm.blocks",
        n_records=n,
        record_bytes=RECORD_BYTES,
        builder=_build_payload,
    )
    return Workload(
        name="mixedgemm",
        description="Interleaved sparse contraction and dense block GEMM",
        table1_bytes=TABLE1_BYTES,
        dataset=dataset,
        program=build_program(),
    )
