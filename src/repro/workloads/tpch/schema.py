"""Schema constants for the mini TPC-H tables.

Dates are stored as integer day offsets from 1992-01-01 (the start of
the TPC-H date range); helper :func:`date_index` converts a calendar
date.  Row widths model the on-disk footprint of the columns each
query touches, matching the .tbl-file scale the paper's data sizes
imply.
"""

from __future__ import annotations

import datetime

from ...errors import WorkloadError

#: TPC-H date epoch.
EPOCH = datetime.date(1992, 1, 1)
#: Last shipdate in the population (orders end 1998-08-02 + 122 days).
MAX_DATE_INDEX = (datetime.date(1998, 12, 1) - EPOCH).days

#: Stored bytes per lineitem row (the columns our queries scan:
#: partkey 8, quantity 8, extendedprice 8, discount 8, tax 8,
#: returnflag 1, linestatus 1, shipdate 4, plus record framing).
LINEITEM_ROW_BYTES = 48

#: Stored bytes per part row (partkey 8, type tag 4, framing).
PART_ROW_BYTES = 16

#: Distinct return flags / line statuses (Q1 group-by space).
RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("F", "O")


def date_index(year: int, month: int, day: int) -> int:
    """Day offset of a calendar date from the TPC-H epoch."""
    delta = (datetime.date(year, month, day) - EPOCH).days
    if delta < 0:
        raise WorkloadError(f"{year}-{month:02d}-{day:02d} precedes the TPC-H epoch")
    return delta
