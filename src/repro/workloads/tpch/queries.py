"""Reference implementations of the paper's TPC-H queries.

These compute the query answers directly (no program model, no
simulator) and serve two purposes: the workloads' kernels are checked
against them, and the examples print their results.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .engine import Table, filter_rows, group_aggregate, hash_join
from .schema import date_index


def q1_reference(lineitem: Table) -> Table:
    """Q1: pricing summary report.

    Filter ``shipdate <= 1998-12-01 - 90 days`` (~98% selectivity),
    group by (returnflag, linestatus), compute the six aggregates.
    """
    cutoff = date_index(1998, 12, 1) - 90
    kept = filter_rows(lineitem, lineitem["shipdate"] <= cutoff)
    disc_price = kept["extendedprice"] * (1.0 - kept["discount"])
    charge = disc_price * (1.0 + kept["tax"])
    table = dict(kept)
    table["disc_price"] = disc_price
    table["charge"] = charge
    return group_aggregate(
        table,
        keys=("returnflag", "linestatus"),
        aggregates={
            "sum_qty": ("quantity", np.sum),
            "sum_base_price": ("extendedprice", np.sum),
            "sum_disc_price": ("disc_price", np.sum),
            "sum_charge": ("charge", np.sum),
            "avg_qty": ("quantity", np.mean),
            "avg_price": ("extendedprice", np.mean),
            "avg_disc": ("discount", np.mean),
            "count_order": ("quantity", lambda v: np.int64(v.size)),
        },
    )


def q6_reference(lineitem: Table) -> float:
    """Q6: forecasting revenue change.

    Filter one ship year, discount in [0.05, 0.07], quantity < 24;
    return ``sum(extendedprice * discount)``.
    """
    start = date_index(1994, 1, 1)
    end = date_index(1995, 1, 1)
    mask = (
        (lineitem["shipdate"] >= start)
        & (lineitem["shipdate"] < end)
        & (lineitem["discount"] >= 0.05 - 1e-9)
        & (lineitem["discount"] <= 0.07 + 1e-9)
        & (lineitem["quantity"] < 24)
    )
    kept = filter_rows(lineitem, mask)
    return float(np.sum(kept["extendedprice"] * kept["discount"]))


def q14_reference(lineitem: Table, part: Table) -> float:
    """Q14: promotion effect.

    Filter one ship month, join ``part``, and return
    ``100 * promo revenue / total revenue`` (promo = p_type PROMO%).
    """
    start = date_index(1995, 9, 1)
    end = date_index(1995, 10, 1)
    month = filter_rows(
        lineitem,
        (lineitem["shipdate"] >= start) & (lineitem["shipdate"] < end),
    )
    joined = hash_join(
        month, part,
        left_key="partkey", right_key="p_partkey",
        right_columns=("p_is_promo",),
    )
    revenue = joined["extendedprice"] * (1.0 - joined["discount"])
    total = float(np.sum(revenue))
    if total == 0.0:
        return 0.0
    promo = float(np.sum(revenue[joined["p_is_promo"]]))
    return 100.0 * promo / total


def q6_selectivity(lineitem: Table) -> float:
    """Fraction of rows Q6's predicate keeps (for data-reduction checks)."""
    start = date_index(1994, 1, 1)
    end = date_index(1995, 1, 1)
    mask = (
        (lineitem["shipdate"] >= start)
        & (lineitem["shipdate"] < end)
        & (lineitem["discount"] >= 0.05 - 1e-9)
        & (lineitem["discount"] <= 0.07 + 1e-9)
        & (lineitem["quantity"] < 24)
    )
    return float(np.mean(mask))


def summarize(table: Dict[str, np.ndarray]) -> str:
    """Small pretty-printer for grouped results (examples use it)."""
    names = list(table)
    rows = len(next(iter(table.values())))
    lines = ["  ".join(f"{name:>14}" for name in names)]
    for i in range(rows):
        cells = []
        for name in names:
            value = table[name][i]
            if isinstance(value, (np.floating, float)):
                cells.append(f"{float(value):>14.2f}")
            else:
                cells.append(f"{value!s:>14}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
