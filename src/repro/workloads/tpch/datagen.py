"""Synthetic TPC-H table generation.

Value distributions follow the TPC-H specification closely enough that
the paper's three queries see their spec selectivities:

* ``l_shipdate`` uniform over the seven-year order window, so Q6's
  one-year filter keeps ~15% before the discount/quantity cuts and
  Q14's one-month filter keeps ~1.2%;
* ``l_discount`` uniform over {0.00 … 0.10}, so Q6's
  ``between 0.05 and 0.07`` keeps ~27%;
* ``l_quantity`` uniform over 1..50, so Q6's ``< 24`` keeps ~46%;
* ``p_type`` begins with ``PROMO`` for ~20% of parts (5 type families).

Generation is deterministic per (n_rows, seed).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ...errors import WorkloadError
from .schema import MAX_DATE_INDEX

#: Fraction of parts whose type starts with PROMO (1 of 5 families).
PROMO_FRACTION = 0.2
#: lineitem rows per part row (SF-independent TPC-H ratio is ~30:1
#: including order fan-out; we keep the part table proportionally small).
LINEITEM_PER_PART = 30


def generate_lineitem(n_rows: int, seed: int = 23) -> Dict[str, np.ndarray]:
    """Generate ``n_rows`` of the lineitem columns our queries touch."""
    if n_rows <= 0:
        raise WorkloadError(f"n_rows must be positive, got {n_rows}")
    rng = np.random.default_rng(seed)
    n_parts = max(1, n_rows // LINEITEM_PER_PART)
    return {
        "partkey": rng.integers(0, n_parts, size=n_rows, dtype=np.int64),
        "quantity": rng.integers(1, 51, size=n_rows).astype(np.float64),
        "extendedprice": np.round(rng.uniform(900.0, 105000.0, size=n_rows), 2),
        "discount": rng.integers(0, 11, size=n_rows).astype(np.float64) / 100.0,
        "tax": rng.integers(0, 9, size=n_rows).astype(np.float64) / 100.0,
        "returnflag": rng.integers(0, 3, size=n_rows, dtype=np.int8),
        "linestatus": rng.integers(0, 2, size=n_rows, dtype=np.int8),
        "shipdate": rng.integers(0, MAX_DATE_INDEX + 1, size=n_rows, dtype=np.int32),
    }


def generate_part(n_rows: int, seed: int = 29) -> Dict[str, np.ndarray]:
    """Generate ``n_rows`` of the part columns Q14 touches."""
    if n_rows <= 0:
        raise WorkloadError(f"n_rows must be positive, got {n_rows}")
    rng = np.random.default_rng(seed)
    return {
        "p_partkey": np.arange(n_rows, dtype=np.int64),
        "p_is_promo": (rng.random(n_rows) < PROMO_FRACTION),
    }


def part_rows_for(lineitem_rows: int) -> int:
    """Part-table size matched to a lineitem population."""
    return max(1, lineitem_rows // LINEITEM_PER_PART)
