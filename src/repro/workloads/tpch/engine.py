"""Mini relational operators over column dictionaries.

A table is a dict of equal-length NumPy columns.  These operators are
the substrate under the TPC-H workload kernels and the reference query
implementations: vectorised selection, sort-based group aggregation,
and a build/probe hash join.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Tuple

import numpy as np

from ...errors import WorkloadError

Table = Dict[str, np.ndarray]


def _check_table(table: Table) -> int:
    if not table:
        raise WorkloadError("table has no columns")
    lengths = {len(column) for column in table.values()}
    if len(lengths) != 1:
        raise WorkloadError(f"ragged table: column lengths {sorted(lengths)}")
    return lengths.pop()


def filter_rows(table: Table, mask: np.ndarray) -> Table:
    """Select the rows where ``mask`` is true, across all columns."""
    n = _check_table(table)
    if mask.shape != (n,):
        raise WorkloadError(f"mask shape {mask.shape} does not match {n} rows")
    return {name: column[mask] for name, column in table.items()}


def group_aggregate(
    table: Table,
    keys: Iterable[str],
    aggregates: Dict[str, Tuple[str, Callable[[np.ndarray], np.ndarray]]],
) -> Table:
    """Group by ``keys`` and reduce columns per group.

    ``aggregates`` maps output column name to (input column, reducer),
    where the reducer consumes one group's values at a time.  Groups
    come out sorted by key, so results are deterministic.
    """
    n = _check_table(table)
    key_names = list(keys)
    if not key_names:
        raise WorkloadError("group_aggregate needs at least one key")
    key_columns = [table[name] for name in key_names]
    order = np.lexsort(key_columns[::-1])
    sorted_keys = [column[order] for column in key_columns]
    if n == 0:
        out: Table = {name: column[:0] for name, column in zip(key_names, key_columns)}
        for out_name, (in_name, _) in aggregates.items():
            out[out_name] = table[in_name][:0]
        return out
    boundary = np.zeros(n, dtype=bool)
    boundary[0] = True
    for column in sorted_keys:
        boundary[1:] |= column[1:] != column[:-1]
    starts = np.flatnonzero(boundary)
    out = {
        name: column[starts] for name, column in zip(key_names, sorted_keys)
    }
    ends = np.append(starts[1:], n)
    # Q1-style aggregate lists reduce the same input column several
    # times (sum + mean); gather each distinct column once.
    gathered: Dict[str, np.ndarray] = {}
    for out_name, (in_name, reducer) in aggregates.items():
        values = gathered.get(in_name)
        if values is None:
            values = table[in_name][order]
            gathered[in_name] = values
        out[out_name] = np.array(
            [reducer(values[s:e]) for s, e in zip(starts, ends)]
        )
    return out


def order_by(
    table: Table,
    keys: Iterable[str],
    descending: bool = False,
) -> Table:
    """Sort all columns by the given keys (stable lexicographic)."""
    n = _check_table(table)
    key_names = list(keys)
    if not key_names:
        raise WorkloadError("order_by needs at least one key")
    key_columns = [table[name] for name in key_names]
    order = np.lexsort(key_columns[::-1])
    if descending:
        order = order[::-1]
    del n
    return {name: column[order] for name, column in table.items()}


def top_n(
    table: Table,
    by: str,
    n: int,
    descending: bool = True,
) -> Table:
    """The ``ORDER BY ... LIMIT n`` idiom: n extreme rows by one column.

    Uses a partial selection before the sort, so cost is O(rows) plus
    O(n log n) — the way an engine would actually execute it.
    """
    rows = _check_table(table)
    if n <= 0:
        raise WorkloadError(f"top_n needs n >= 1, got {n}")
    keys = np.asarray(table[by])
    n = min(n, rows)
    if descending:
        partition = np.argpartition(-keys, n - 1)[:n]
        order = partition[np.argsort(-keys[partition], kind="stable")]
    else:
        partition = np.argpartition(keys, n - 1)[:n]
        order = partition[np.argsort(keys[partition], kind="stable")]
    return {name: column[order] for name, column in table.items()}


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    right_columns: Iterable[str],
) -> Table:
    """Inner-join ``left`` to unique-keyed ``right``; append columns.

    The right side must have unique keys (a dimension table, e.g.
    ``part``); unmatched left rows are dropped.
    """
    _check_table(left)
    _check_table(right)
    right_keys = right[right_key]
    if np.unique(right_keys).size != right_keys.size:
        raise WorkloadError(f"right key {right_key!r} is not unique")
    order = np.argsort(right_keys)
    sorted_keys = right_keys[order]
    positions = np.searchsorted(sorted_keys, left[left_key])
    positions = np.clip(positions, 0, sorted_keys.size - 1)
    matched = sorted_keys[positions] == left[left_key]
    result = {name: column[matched] for name, column in left.items()}
    source_rows = order[positions[matched]]
    for name in right_columns:
        result[name] = right[name][source_rows]
    return result
