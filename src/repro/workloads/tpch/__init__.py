"""Mini TPC-H substrate: schema, data generation, relational engine.

The paper's TPC-H workloads (Q1, Q6, Q14) run over a synthetic
``lineitem`` (and, for Q14, ``part``) population generated to the TPC-H
specification's value distributions, so every predicate's selectivity —
and therefore every query's data-reduction ratio, the quantity that
drives ISP profit — matches the real benchmark.
"""

from .datagen import generate_lineitem, generate_part
from .engine import filter_rows, group_aggregate, hash_join, order_by, top_n
from .queries import q1_reference, q6_reference, q14_reference
from .schema import LINEITEM_ROW_BYTES, PART_ROW_BYTES, date_index

__all__ = [
    "generate_lineitem",
    "generate_part",
    "filter_rows",
    "group_aggregate",
    "hash_join",
    "order_by",
    "top_n",
    "q1_reference",
    "q6_reference",
    "q14_reference",
    "LINEITEM_ROW_BYTES",
    "PART_ROW_BYTES",
    "date_index",
]
