"""PageRank: rank a stored web-scale edge list.

Table I: 7.7 GB.  The program parses the stored edge records, converts
them to an (unweighted) CSR adjacency structure, runs power iteration,
and normalises the ranks.  The CSR-conversion line is the paper's §V
accuracy case study: the stored edge list is fringe-first, so sample
prefixes look much sparser than the population and ActivePy
over-estimates the CSR output volume (by ~2.4x here), conservatively
keeping the conversion on the host while the oracle offloads it.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..graph.csr import CSRMatrix
from ..graph.generators import (
    power_law_prefix,
    power_law_true_csr_bytes,
    vertices_for_edges,
)
from ..graph.pagerank_core import pagerank
from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..units import GB
from .base import Workload, register, scaled_records

#: Stored bytes per edge record (text-ish framing around two ids).
RECORD_BYTES = 24.0
TABLE1_BYTES = 7.7 * GB
FULL_RECORDS = int(TABLE1_BYTES / RECORD_BYTES)

AVG_DEGREE = 8.0
ITERATIONS = 20

# Ground-truth per-edge instruction counts.
_INSTR_PARSE = 26.0
_INSTR_CSR = 15.0
_INSTR_SPMV_PER_ITER = 3.2
_INSTR_NORMALISE = 0.2


def _build_payload(n: int, full: int) -> Dict[str, Any]:
    src, dst, _ = power_law_prefix(
        prefix_edges=n, full_edges=full, avg_degree=AVG_DEGREE, seed=503
    )
    return {"src": src, "dst": dst}


def _k_parse(p: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "src": np.asarray(p["src"], dtype=np.int64),
        "dst": np.asarray(p["dst"], dtype=np.int64),
    }


def _k_build_csr(p: Dict[str, Any]) -> Dict[str, Any]:
    """Relabel the observed vertices densely, then build CSR (no values).

    A program reading an edge-list file indexes exactly the vertices it
    sees — which is what makes the sample-scale footprint differ from
    the population's.
    """
    vertices, flat = np.unique(
        np.concatenate([p["src"], p["dst"]]), return_inverse=True
    )
    n_rows = vertices.size
    src = flat[: p["src"].size].astype(np.int64)
    dst = flat[p["src"].size:].astype(np.int32)
    order = np.argsort(src, kind="stable")
    counts = np.bincount(src, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return {"indptr": indptr, "indices": dst[order]}


def _k_power_iterate(p: Dict[str, Any]) -> Dict[str, Any]:
    matrix = CSRMatrix(
        indptr=p["indptr"],
        indices=p["indices"],
        values=np.ones(p["indices"].size),
    )
    ranks = pagerank(matrix, iterations=ITERATIONS)
    return {"ranks": ranks}


def _k_normalise(p: Dict[str, Any]) -> Dict[str, Any]:
    ranks = p["ranks"]
    return {
        "top_rank": float(np.max(ranks)),
        "rank_sum": float(np.sum(ranks)),
        "vertices": float(ranks.size),
    }


def _true_csr_bytes(n: float) -> float:
    return power_law_true_csr_bytes(int(n), avg_degree=AVG_DEGREE, weighted=False)


def _ranks_bytes(n: float) -> float:
    return 8.0 * vertices_for_edges(int(max(n, 1)), AVG_DEGREE)


def build_program() -> Program:
    return Program(
        "pagerank",
        [
            Statement(
                "parse_edges", _k_parse,
                instructions=per_record(_INSTR_PARSE),
                output_bytes=per_record(16.0),
                storage_bytes=per_record(RECORD_BYTES),
                chunks=64,
            ),
            Statement(
                "build_csr", _k_build_csr,
                instructions=per_record(_INSTR_CSR),
                output_bytes=_true_csr_bytes,
            ),
            Statement(
                "power_iterate", _k_power_iterate,
                instructions=per_record(_INSTR_SPMV_PER_ITER * ITERATIONS),
                output_bytes=_ranks_bytes,
                chunks=ITERATIONS,
            ),
            Statement(
                "normalise_ranks", _k_normalise,
                instructions=per_record(_INSTR_NORMALISE),
                output_bytes=constant(24.0),
            ),
        ],
    )


@register("pagerank")
def build(scale: float = 1.0) -> Workload:
    n = scaled_records(FULL_RECORDS, scale)
    dataset = Dataset(
        name="pagerank.edges",
        n_records=n,
        record_bytes=RECORD_BYTES,
        builder=_build_payload,
    )
    return Workload(
        name="pagerank",
        description="Power-iteration PageRank over a stored edge list",
        table1_bytes=TABLE1_BYTES,
        dataset=dataset,
        program=build_program(),
    )
