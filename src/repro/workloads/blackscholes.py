"""Blackscholes: European option pricing over a stored option book.

Table I: 9.1 GB.  Each stored record is one option contract (spot,
strike, expiry, rate, volatility, plus framing).  The program parses
the book, evaluates the Black-Scholes-Merton formula, and reduces the
prices to summary statistics — a classic streaming workload where the
early, cheap, volume-reducing lines are CSD-friendly.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..units import GB
from .base import Workload, register, scaled_records

#: Stored bytes per option record.
RECORD_BYTES = 48.0
#: Table I size.
TABLE1_BYTES = 9.1 * GB
#: Record population at full scale.
FULL_RECORDS = int(TABLE1_BYTES / RECORD_BYTES)

# Per-record instruction counts (ground truth for the simulator).
_INSTR_PARSE = 36.0
_INSTR_PRICE = 70.0
_INSTR_REDUCE = 6.0


def _build_payload(n: int, full: int) -> Dict[str, Any]:
    rng = np.random.default_rng(101)
    return {
        "spot": rng.uniform(20.0, 180.0, size=n),
        "strike": rng.uniform(20.0, 180.0, size=n),
        "expiry": rng.uniform(0.1, 2.0, size=n),
        "rate": np.full(n, 0.02),
        "vol": rng.uniform(0.1, 0.6, size=n),
    }


def _cnd(x: np.ndarray) -> np.ndarray:
    """Cumulative standard normal via the Abramowitz-Stegun polynomial."""
    k = 1.0 / (1.0 + 0.2316419 * np.abs(x))
    poly = k * (0.319381530 + k * (-0.356563782 + k * (
        1.781477937 + k * (-1.821255978 + k * 1.330274429))))
    approx = 1.0 - np.exp(-0.5 * x * x) / np.sqrt(2.0 * np.pi) * poly
    return np.where(x >= 0, approx, 1.0 - approx)


def _k_parse(p: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "spot": np.asarray(p["spot"], dtype=np.float64),
        "strike": np.asarray(p["strike"], dtype=np.float64),
        "expiry": np.asarray(p["expiry"], dtype=np.float64),
        "rate": np.asarray(p["rate"], dtype=np.float64),
        "vol": np.asarray(p["vol"], dtype=np.float64),
    }


def _k_price(p: Dict[str, Any]) -> Dict[str, Any]:
    """d1/d2, cumulative normals and the call price, in one line."""
    sqrt_t = np.sqrt(p["expiry"])
    vol_sqrt_t = p["vol"] * sqrt_t
    d1 = (
        np.log(p["spot"] / p["strike"])
        + (p["rate"] + 0.5 * p["vol"] ** 2) * p["expiry"]
    ) / vol_sqrt_t
    d2 = d1 - vol_sqrt_t
    discount = np.exp(-p["rate"] * p["expiry"])
    call = p["spot"] * _cnd(d1) - p["strike"] * discount * _cnd(d2)
    return {"price": call}


def _k_reduce(p: Dict[str, Any]) -> Dict[str, Any]:
    price = p["price"]
    return {
        "mean_price": float(np.mean(price)),
        "max_price": float(np.max(price)),
        "total_value": float(np.sum(price)),
    }


def build_program() -> Program:
    return Program(
        "blackscholes",
        [
            Statement(
                "parse_options", _k_parse,
                instructions=per_record(_INSTR_PARSE),
                output_bytes=per_record(40.0),
                storage_bytes=per_record(RECORD_BYTES),
                chunks=64,
            ),
            Statement(
                "price_options", _k_price,
                instructions=per_record(_INSTR_PRICE),
                output_bytes=per_record(8.0),
            ),
            Statement(
                "reduce_stats", _k_reduce,
                instructions=per_record(_INSTR_REDUCE),
                output_bytes=constant(24.0),
            ),
        ],
    )


@register("blackscholes")
def build(scale: float = 1.0) -> Workload:
    n = scaled_records(FULL_RECORDS, scale)
    dataset = Dataset(
        name="blackscholes.options",
        n_records=n,
        record_bytes=RECORD_BYTES,
        builder=_build_payload,
    )
    return Workload(
        name="blackscholes",
        description="European option pricing over a stored option book",
        table1_bytes=TABLE1_BYTES,
        dataset=dataset,
        program=build_program(),
    )
