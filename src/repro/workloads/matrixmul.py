"""MatrixMul: batched dense tile multiplication.

Table I: 6.0 GB.  The stored data is a stream of 32x32 double-precision
tile pairs; the program packs them to f32 (halving the volume — the
CSD-friendly step), multiplies each pair, and reduces the products to
per-tile norms.  The GEMM itself is compute-dense, so it stays on the
host and the workload's ISP gain is the most modest of the suite —
exactly the paper's point that CSEs lose on compute-bound code.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..units import GB
from .base import Workload, register, scaled_records

#: Tile edge; one record is a pair of tiles.
TILE = 32
RECORD_BYTES = 2.0 * TILE * TILE * 8  # two f64 tiles
TABLE1_BYTES = 6.0 * GB
FULL_RECORDS = int(TABLE1_BYTES / RECORD_BYTES)

# Ground-truth per-record instruction counts.
_INSTR_PACK = RECORD_BYTES / 4   # 0.25 per stored byte
_INSTR_GEMM = 2.0 * TILE**3      # classic dense multiply
_INSTR_REDUCE = 1024.0


def _build_payload(n: int, full: int) -> Dict[str, Any]:
    rng = np.random.default_rng(401)
    return {
        "a_tiles": rng.normal(0.0, 1.0, size=(n, TILE, TILE)),
        "b_tiles": rng.normal(0.0, 1.0, size=(n, TILE, TILE)),
    }


def _k_pack(p: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "a32": p["a_tiles"].astype(np.float32),
        "b32": p["b_tiles"].astype(np.float32),
    }


def _k_gemm(p: Dict[str, Any]) -> Dict[str, Any]:
    return {"products": np.matmul(p["a32"], p["b32"])}


def _k_reduce(p: Dict[str, Any]) -> Dict[str, Any]:
    norms = np.linalg.norm(p["products"], axis=(1, 2))
    return {
        "mean_norm": float(np.mean(norms)),
        "max_norm": float(np.max(norms)),
    }


def build_program() -> Program:
    return Program(
        "matrixmul",
        [
            Statement(
                "load_pack_tiles", _k_pack,
                instructions=per_record(_INSTR_PACK),
                output_bytes=per_record(RECORD_BYTES / 2),  # f64 -> f32
                storage_bytes=per_record(RECORD_BYTES),
                chunks=64,
            ),
            Statement(
                "tile_gemm", _k_gemm,
                instructions=per_record(_INSTR_GEMM),
                output_bytes=per_record(TILE * TILE * 4.0),
            ),
            Statement(
                "reduce_norms", _k_reduce,
                instructions=per_record(_INSTR_REDUCE),
                output_bytes=constant(16.0),
            ),
        ],
    )


@register("matrixmul")
def build(scale: float = 1.0) -> Workload:
    n = scaled_records(FULL_RECORDS, scale)
    dataset = Dataset(
        name="matrixmul.tiles",
        n_records=n,
        record_bytes=RECORD_BYTES,
        builder=_build_payload,
    )
    return Workload(
        name="matrixmul",
        description="Batched dense tile multiplication with f32 packing",
        table1_bytes=TABLE1_BYTES,
        dataset=dataset,
        program=build_program(),
    )
