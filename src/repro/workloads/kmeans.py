"""KMeans: out-of-core Lloyd clustering of a stored point set.

Table I: 5.3 GB — too large for the paper's device DRAM budget to hold
alongside co-tenants, so every Lloyd iteration re-streams the point set
from storage.  The assignment line therefore dominates both I/O and
compute (it is folded over all iterations, as the paper folds dynamic
instances into their source line), which makes it the workload's big
offload opportunity: only labels and centroids ever cross the link.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..ml.kmeans_core import init_centroids, kmeans_assign, kmeans_update
from ..units import GB
from .base import Workload, register, scaled_records

#: Point dimensionality and stored bytes per point (f64 features).
DIMENSIONS = 16
RECORD_BYTES = 8.0 * DIMENSIONS
TABLE1_BYTES = 5.3 * GB
FULL_RECORDS = int(TABLE1_BYTES / RECORD_BYTES)

#: Lloyd iterations (each re-streams the stored points).
ITERATIONS = 10
CLUSTERS = 16

# Ground-truth per-record instruction counts.
_INSTR_LOAD = 6.0
_INSTR_ASSIGN_PER_ITER = 300.0
_INSTR_UPDATE_PER_ITER = 4.0
_INSTR_INERTIA = 8.0


def _build_payload(n: int, full: int) -> Dict[str, Any]:
    rng = np.random.default_rng(211)
    # A mixture of well-separated Gaussian blobs so clustering succeeds.
    centers = rng.uniform(-40.0, 40.0, size=(CLUSTERS, DIMENSIONS))
    assignments = rng.integers(0, CLUSTERS, size=n)
    points = centers[assignments] + rng.normal(0.0, 2.0, size=(n, DIMENSIONS))
    return {"points": points}


def _k_init(p: Dict[str, Any]) -> Dict[str, Any]:
    points = p["points"]
    k = min(CLUSTERS, points.shape[0])
    return {"points": points, "centroids": init_centroids(points, k)}


def _k_assign_update(p: Dict[str, Any]) -> Dict[str, Any]:
    """All Lloyd iterations folded into the assignment line."""
    points = p["points"]
    centroids = p["centroids"]
    k = centroids.shape[0]
    labels = np.zeros(points.shape[0], dtype=np.int64)
    for _ in range(ITERATIONS):
        labels = kmeans_assign(points, centroids)
        new_centroids, counts = kmeans_update(points, labels, k)
        empty = counts == 0
        new_centroids[empty] = centroids[empty]
        centroids = new_centroids
    return {"labels": labels, "centroids": centroids, "points_ref": points}


def _k_inertia(p: Dict[str, Any]) -> Dict[str, Any]:
    points = p["points_ref"]
    deltas = points - p["centroids"][p["labels"]]
    return {
        "centroids": p["centroids"],
        "inertia": float(np.einsum("nd,nd->", deltas, deltas)),
        "cluster_sizes": np.bincount(
            p["labels"], minlength=p["centroids"].shape[0]
        ),
    }


def build_program() -> Program:
    centroid_bytes = float(CLUSTERS * DIMENSIONS * 8)
    return Program(
        "kmeans",
        [
            Statement(
                "init_centroids", _k_init,
                instructions=per_record(_INSTR_LOAD),
                # The point set flows on by reference; centroids ride along.
                output_bytes=per_record(RECORD_BYTES),
                storage_bytes=per_record(RECORD_BYTES),
            ),
            Statement(
                "assign_and_update", _k_assign_update,
                instructions=per_record(
                    (ITERATIONS - 1)
                    * (_INSTR_ASSIGN_PER_ITER + _INSTR_UPDATE_PER_ITER)
                    + _INSTR_ASSIGN_PER_ITER
                ),
                # Labels (8 B) plus the shared point reference and centroids.
                output_bytes=per_record(8.0 + RECORD_BYTES),
                # Iterations 2..N re-stream the stored points.
                storage_bytes=per_record(RECORD_BYTES * (ITERATIONS - 1)),
                chunks=ITERATIONS * 8,
            ),
            Statement(
                "compute_inertia", _k_inertia,
                instructions=per_record(_INSTR_INERTIA),
                output_bytes=constant(CLUSTERS * DIMENSIONS * 8.0 + CLUSTERS * 8.0 + 8.0),
            ),
        ],
    )


@register("kmeans")
def build(scale: float = 1.0) -> Workload:
    n = scaled_records(FULL_RECORDS, scale)
    dataset = Dataset(
        name="kmeans.points",
        n_records=n,
        record_bytes=RECORD_BYTES,
        builder=_build_payload,
    )
    return Workload(
        name="kmeans",
        description="Out-of-core Lloyd clustering of a stored point set",
        table1_bytes=TABLE1_BYTES,
        dataset=dataset,
        program=build_program(),
    )
