"""Workload abstraction and registry.

A :class:`Workload` bundles a synthetic dataset (sized to the paper's
Table I at ``scale=1.0``) with the unannotated program that processes
it.  Workload modules register a builder; experiments fetch by name.

``scale`` shrinks the record population proportionally so functional
tests can run whole programs for real; simulated experiment results are
only meaningful at ``scale=1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import WorkloadError
from ..lang.dataset import Dataset
from ..lang.program import Program


@dataclass
class Workload:
    """One evaluation application."""

    name: str
    description: str
    #: The paper's Table I input size in bytes (0 if not listed there).
    table1_bytes: float
    dataset: Dataset
    program: Program

    @property
    def raw_bytes(self) -> float:
        return self.dataset.raw_bytes

    @property
    def n_records(self) -> int:
        return self.dataset.n_records

    def __repr__(self) -> str:
        return f"Workload(name={self.name!r}, raw_bytes={self.raw_bytes:.3g})"


#: name -> builder(scale) registry, populated by workload modules.
_BUILDERS: Dict[str, Callable[[float], Workload]] = {}


def register(name: str):
    """Class-level decorator registering a workload builder."""

    def wrap(builder: Callable[[float], Workload]):
        if name in _BUILDERS:
            raise WorkloadError(f"workload {name!r} registered twice")
        _BUILDERS[name] = builder
        return builder

    return wrap


def _ensure_loaded() -> None:
    """Import every workload module so builders self-register."""
    from . import (  # noqa: F401
        blackscholes,
        kmeans,
        lightgbm,
        matrixmul,
        mixedgemm,
        pagerank,
        sparsemv,
        tpch_queries,
    )


def workload_names() -> List[str]:
    """All registered workload names, in registration order."""
    _ensure_loaded()
    return list(_BUILDERS)


def get_workload(name: str, scale: float = 1.0) -> Workload:
    """Build one workload; ``scale`` shrinks the population for tests."""
    _ensure_loaded()
    if name not in _BUILDERS:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(_BUILDERS)}"
        )
    if not 0 < scale <= 1:
        raise WorkloadError(f"scale must lie in (0, 1], got {scale}")
    return _BUILDERS[name](scale)


def all_workloads(scale: float = 1.0) -> Dict[str, Workload]:
    """Build the whole suite keyed by name."""
    return {name: get_workload(name, scale) for name in workload_names()}


def scaled_records(full_records: int, scale: float) -> int:
    """Record count at a scale.

    A handful of records is enough to run kernels functionally; note
    that the ActivePy *sampling phase* additionally needs the four
    scaling factors (down to 2^-10) to produce distinct sample sizes,
    i.e. roughly 2048+ records — the sampler enforces that itself.
    """
    n = int(round(full_records * scale))
    if n < 16:
        raise WorkloadError(
            f"scale {scale} leaves only {n} records of {full_records}; "
            f"need at least 16"
        )
    return n
