"""TPC-H Q1, Q6 and Q14 as ActivePy workloads.

Table I: 6.9 GB, 6.9 GB and 7.1 GB.  Each query is a short unannotated
program over the synthetic lineitem (and, for Q14, part) population.
The scan-and-filter lines fold predicate evaluation into the scan —
the shape every in-storage query engine (Summarizer, Biscuit, smart
SSDs) exploits — so their output volume is the predicate's selectivity
times the projected row width, and the paper's Equation 1 rewards
offloading them.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..units import GB
from .base import Workload, register, scaled_records
from .tpch.datagen import LINEITEM_PER_PART, generate_lineitem, generate_part
from .tpch.engine import group_aggregate, hash_join
from .tpch.schema import LINEITEM_ROW_BYTES, MAX_DATE_INDEX, date_index

# --- selectivities implied by the datagen distributions -----------------

#: Q1: shipdate <= 1998-12-01 - 90 days over the uniform date range.
Q1_SELECTIVITY = (date_index(1998, 12, 1) - 90) / (MAX_DATE_INDEX + 1)
#: Q6: one ship year x discount band x quantity cut.
Q6_SELECTIVITY = (365 / (MAX_DATE_INDEX + 1)) * (3 / 11) * (23 / 50)
#: Q14: one ship month.
Q14_SELECTIVITY = 30 / (MAX_DATE_INDEX + 1)

#: Projected bytes per kept row (the columns each query carries on).
_Q1_ROW_OUT = 22.0   # extendedprice f64, three f32 decimals, 2 flags
_Q6_ROW_OUT = 16.0   # extendedprice + discount
_Q14_ROW_OUT = 24.0  # partkey + extendedprice + discount

_Q1_LINEITEM_BYTES = 6.9 * GB
_Q6_LINEITEM_BYTES = 6.9 * GB
#: Q14 stores lineitem plus the part table within its 7.1 GB budget.
_Q14_TABLE_BYTES = 7.1 * GB
_PART_ROW_STORED = 16.0
_Q14_ROW_BYTES = LINEITEM_ROW_BYTES + _PART_ROW_STORED / LINEITEM_PER_PART


def _lineitem_payload(n: int, full: int) -> Dict[str, Any]:
    return dict(generate_lineitem(n))


# --- Q1 ------------------------------------------------------------------

def _k_q1_scan(p: Dict[str, Any]) -> Dict[str, Any]:
    """Scan + filter + pack: decimals narrow to f32 in the projection.

    Only the six projected columns are gathered through the mask; the
    filter column itself (shipdate) is evaluated but never copied.
    """
    cutoff = date_index(1998, 12, 1) - 90
    mask = p["shipdate"] <= cutoff
    return {
        "quantity": p["quantity"][mask].astype(np.float32),
        "extendedprice": p["extendedprice"][mask],
        "discount": p["discount"][mask].astype(np.float32),
        "tax": p["tax"][mask].astype(np.float32),
        "returnflag": p["returnflag"][mask],
        "linestatus": p["linestatus"][mask],
    }


def _k_q1_aggregate(p: Dict[str, Any]) -> Dict[str, Any]:
    disc_price = p["extendedprice"] * (1.0 - p["discount"])
    table = dict(p)
    table["disc_price"] = disc_price
    table["charge"] = disc_price * (1.0 + p["tax"])
    grouped = group_aggregate(
        table,
        keys=("returnflag", "linestatus"),
        aggregates={
            "sum_qty": ("quantity", np.sum),
            "sum_base_price": ("extendedprice", np.sum),
            "sum_disc_price": ("disc_price", np.sum),
            "sum_charge": ("charge", np.sum),
            "avg_qty": ("quantity", np.mean),
            "avg_price": ("extendedprice", np.mean),
            "avg_disc": ("discount", np.mean),
            "count_order": ("quantity", lambda v: np.float64(v.size)),
        },
    )
    return {name: np.asarray(column) for name, column in grouped.items()}


def _build_q1() -> Program:
    return Program(
        "tpch_q1",
        [
            Statement(
                "scan_filter_shipdate", _k_q1_scan,
                instructions=per_record(110.0),
                output_bytes=per_record(Q1_SELECTIVITY * _Q1_ROW_OUT),
                storage_bytes=per_record(float(LINEITEM_ROW_BYTES)),
                chunks=64,
            ),
            Statement(
                "group_aggregate", _k_q1_aggregate,
                instructions=per_record(Q1_SELECTIVITY * 18.0),
                output_bytes=constant(640.0),  # 6 groups x 10 columns
            ),
        ],
    )


# --- Q6 ------------------------------------------------------------------

def _k_q6_scan(p: Dict[str, Any]) -> Dict[str, Any]:
    start = date_index(1994, 1, 1)
    end = date_index(1995, 1, 1)
    mask = (
        (p["shipdate"] >= start)
        & (p["shipdate"] < end)
        & (p["discount"] >= 0.05 - 1e-9)
        & (p["discount"] <= 0.07 + 1e-9)
        & (p["quantity"] < 24)
    )
    return {
        "extendedprice": p["extendedprice"][mask],
        "discount": p["discount"][mask],
    }


def _k_q6_sum(p: Dict[str, Any]) -> Dict[str, Any]:
    return {"revenue": float(np.sum(p["extendedprice"] * p["discount"]))}


def _build_q6() -> Program:
    return Program(
        "tpch_q6",
        [
            Statement(
                "scan_filter_q6", _k_q6_scan,
                instructions=per_record(100.0),
                output_bytes=per_record(Q6_SELECTIVITY * _Q6_ROW_OUT),
                storage_bytes=per_record(float(LINEITEM_ROW_BYTES)),
                chunks=64,
            ),
            Statement(
                "revenue_sum", _k_q6_sum,
                instructions=per_record(Q6_SELECTIVITY * 4.0),
                output_bytes=constant(8.0),
            ),
        ],
    )


# --- Q14 ------------------------------------------------------------------

def _k_q14_scan(p: Dict[str, Any]) -> Dict[str, Any]:
    start = date_index(1995, 9, 1)
    end = date_index(1995, 10, 1)
    mask = (p["shipdate"] >= start) & (p["shipdate"] < end)
    return {
        "partkey": p["partkey"][mask],
        "extendedprice": p["extendedprice"][mask],
        "discount": p["discount"][mask],
        "rows_scanned": float(p["shipdate"].size),
    }


def _k_q14_join(p: Dict[str, Any]) -> Dict[str, Any]:
    # Reading the part table: its content is keyed off the scanned
    # population size, exactly as the datagen laid it out.
    n_parts = max(1, int(p["rows_scanned"]) // LINEITEM_PER_PART)
    part = generate_part(n_parts)
    month = {
        "partkey": p["partkey"],
        "extendedprice": p["extendedprice"],
        "discount": p["discount"],
    }
    joined = hash_join(
        month, part,
        left_key="partkey", right_key="p_partkey",
        right_columns=("p_is_promo",),
    )
    return {
        "revenue": joined["extendedprice"] * (1.0 - joined["discount"]),
        "is_promo": joined["p_is_promo"],
    }


def _k_q14_ratio(p: Dict[str, Any]) -> Dict[str, Any]:
    total = float(np.sum(p["revenue"]))
    promo = float(np.sum(p["revenue"][p["is_promo"]]))
    return {"promo_revenue_pct": 100.0 * promo / total if total else 0.0}


def _q14_payload(n: int, full: int) -> Dict[str, Any]:
    return dict(generate_lineitem(n))


def _build_q14() -> Program:
    return Program(
        "tpch_q14",
        [
            Statement(
                "scan_filter_month", _k_q14_scan,
                instructions=per_record(105.0),
                output_bytes=per_record(Q14_SELECTIVITY * _Q14_ROW_OUT),
                storage_bytes=per_record(float(LINEITEM_ROW_BYTES)),
                chunks=64,
            ),
            Statement(
                "join_part", _k_q14_join,
                instructions=per_record(1.2),
                output_bytes=per_record(Q14_SELECTIVITY * 9.0),
                storage_bytes=per_record(_PART_ROW_STORED / LINEITEM_PER_PART),
            ),
            Statement(
                "promo_ratio", _k_q14_ratio,
                instructions=per_record(Q14_SELECTIVITY * 2.0),
                output_bytes=constant(8.0),
            ),
        ],
    )


# --- registration ----------------------------------------------------------

def _make_builder(name, description, table_bytes, row_bytes, program_builder,
                  payload_builder):
    full_records = int(table_bytes / row_bytes)

    def build(scale: float = 1.0) -> Workload:
        n = scaled_records(full_records, scale)
        dataset = Dataset(
            name=f"{name}.lineitem",
            n_records=n,
            record_bytes=row_bytes,
            builder=payload_builder,
        )
        return Workload(
            name=name,
            description=description,
            table1_bytes=table_bytes,
            dataset=dataset,
            program=program_builder(),
        )

    return build


register("tpch_q1")(_make_builder(
    "tpch_q1", "TPC-H Q1 pricing summary over lineitem",
    _Q1_LINEITEM_BYTES, float(LINEITEM_ROW_BYTES), _build_q1, _lineitem_payload,
))
register("tpch_q6")(_make_builder(
    "tpch_q6", "TPC-H Q6 forecasting revenue change",
    _Q6_LINEITEM_BYTES, float(LINEITEM_ROW_BYTES), _build_q6, _lineitem_payload,
))
register("tpch_q14")(_make_builder(
    "tpch_q14", "TPC-H Q14 promotion effect (lineitem join part)",
    _Q14_TABLE_BYTES, _Q14_ROW_BYTES, _build_q14, _q14_payload,
))
