"""The paper's evaluation applications (Table I, plus SparseMV).

Each workload couples a synthetic dataset generator (sized to the
paper's reported input volume at full scale) with an unannotated
program whose kernels really compute.  ``all_workloads`` builds the
full suite; ``get_workload`` builds one by name, optionally scaled down
for functional tests.
"""

from .base import Workload, all_workloads, get_workload, workload_names

__all__ = ["Workload", "all_workloads", "get_workload", "workload_names"]
