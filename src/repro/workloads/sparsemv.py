"""SparseMV: repeated sparse matrix-vector products.

Discussed in the paper's §V and Figure 5 (it shares PageRank's CSR
story) though absent from Table I; we size it at 6.5 GB.  The stored
records are weighted coordinate triples; the program parses them,
builds a *weighted* CSR matrix, runs 50 y = Ax sweeps, and collects
the result norm.  The weighted values array dilutes the per-edge
footprint skew, so the CSR over-estimate here (~1.5x) is milder than
PageRank's (~2.4x) — giving the error distribution its "up to" shape.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from ..graph.csr import CSRMatrix
from ..graph.generators import power_law_prefix, power_law_true_csr_bytes
from ..graph.pagerank_core import spmv
from ..lang.dataset import Dataset
from ..lang.program import Program, Statement, constant, per_record
from ..units import GB
from .base import Workload, register, scaled_records

#: Stored bytes per coordinate record (row, col, value + framing).
RECORD_BYTES = 40.0
TABLE1_BYTES = 6.5 * GB
FULL_RECORDS = int(TABLE1_BYTES / RECORD_BYTES)

AVG_DEGREE = 8.0
SWEEPS = 50

# Ground-truth per-record instruction counts.
_INSTR_PARSE = 30.0
_INSTR_CSR = 12.0
_INSTR_SPMV_PER_SWEEP = 4.0
_INSTR_COLLECT = 0.2


def _build_payload(n: int, full: int) -> Dict[str, Any]:
    src, dst, _ = power_law_prefix(
        prefix_edges=n, full_edges=full, avg_degree=AVG_DEGREE, seed=521
    )
    rng = np.random.default_rng(523)
    return {"row": src, "col": dst, "val": rng.normal(0.0, 1.0, size=n)}


def _k_parse(p: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "row": np.asarray(p["row"], dtype=np.int64),
        "col": np.asarray(p["col"], dtype=np.int64),
        "val": np.asarray(p["val"], dtype=np.float64),
    }


def _k_build_csr(p: Dict[str, Any]) -> Dict[str, Any]:
    """Dense relabel + weighted CSR over the observed vertex universe."""
    vertices, flat = np.unique(
        np.concatenate([p["row"], p["col"]]), return_inverse=True
    )
    n_rows = vertices.size
    row = flat[: p["row"].size].astype(np.int64)
    col = flat[p["row"].size:].astype(np.int32)
    order = np.argsort(row, kind="stable")
    counts = np.bincount(row, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return {
        "indptr": indptr,
        "indices": col[order],
        "values": p["val"][order],
    }


def _k_sweeps(p: Dict[str, Any]) -> Dict[str, Any]:
    matrix = CSRMatrix(
        indptr=p["indptr"], indices=p["indices"], values=p["values"]
    )
    x = np.ones(matrix.n_rows)
    for _ in range(SWEEPS):
        y = spmv(matrix, x)
        norm = float(np.linalg.norm(y))
        x = y / norm if norm > 0 else np.ones(matrix.n_rows)
    return {"x": x}


def _k_collect(p: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "norm": float(np.linalg.norm(p["x"])),
        "dim": float(p["x"].size),
    }


def _true_csr_bytes(n: float) -> float:
    return power_law_true_csr_bytes(int(n), avg_degree=AVG_DEGREE, weighted=True)


def build_program() -> Program:
    return Program(
        "sparsemv",
        [
            Statement(
                "parse_triples", _k_parse,
                instructions=per_record(_INSTR_PARSE),
                output_bytes=per_record(24.0),
                storage_bytes=per_record(RECORD_BYTES),
                chunks=64,
            ),
            Statement(
                "build_csr", _k_build_csr,
                instructions=per_record(_INSTR_CSR),
                output_bytes=_true_csr_bytes,
            ),
            Statement(
                "spmv_sweeps", _k_sweeps,
                instructions=per_record(_INSTR_SPMV_PER_SWEEP * SWEEPS),
                output_bytes=lambda n: 8.0 * max(1.0, n / AVG_DEGREE),
                chunks=SWEEPS,
            ),
            Statement(
                "collect_norm", _k_collect,
                instructions=per_record(_INSTR_COLLECT),
                output_bytes=constant(16.0),
            ),
        ],
    )


@register("sparsemv")
def build(scale: float = 1.0) -> Workload:
    n = scaled_records(FULL_RECORDS, scale)
    dataset = Dataset(
        name="sparsemv.triples",
        n_records=n,
        record_bytes=RECORD_BYTES,
        builder=_build_payload,
    )
    return Workload(
        name="sparsemv",
        description="Repeated weighted SpMV over a stored sparse matrix",
        table1_bytes=0.0,  # not in Table I; §V and Fig. 5 only
        dataset=dataset,
        program=build_program(),
    )
