"""Per-line liveness analysis for straight-line function bodies.

ActivePy's planner charges a transfer for every value crossing a
host/CSD boundary, so the frontend must know *which* variables are
still needed after each line — dead locals must not inflate D_out.
For the straight-line bodies the frontend accepts (no branches or
loops at the top level), classic backward liveness is exact.
"""

from __future__ import annotations

import ast
from typing import List, Sequence, Set


def names_read(node: ast.AST) -> Set[str]:
    """Variable names loaded anywhere inside ``node``."""
    read: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            read.add(child.id)
    return read


def names_written(node: ast.AST) -> Set[str]:
    """Variable names stored (assigned) anywhere inside ``node``."""
    written: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            written.add(child.id)
        elif isinstance(child, (ast.AugAssign,)) and isinstance(child.target, ast.Name):
            written.add(child.target.id)
    return written


def live_after_each(statements: Sequence[ast.stmt]) -> List[Set[str]]:
    """Variables live *after* each statement (backward dataflow).

    A variable is live after line ``i`` if some line ``j > i`` reads it
    before rewriting it.  The final statement's live-out set is empty —
    its value leaves through ``return``, which the frontend models as
    the line's own output.
    """
    live: Set[str] = set()
    result: List[Set[str]] = [set() for _ in statements]
    for index in range(len(statements) - 1, -1, -1):
        result[index] = set(live)
        statement = statements[index]
        live -= names_written(statement)
        live |= names_read(statement)
    return result
