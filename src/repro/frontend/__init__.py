"""Plain-Python frontend: unannotated functions become programs.

The paper's headline promise is that "the programmer interacts with
ActivePy using a high-level, interpreted, general-purpose programming
language and is entirely agnostic to the presence of any CSD".  This
package delivers that interface for the simulator: hand
:func:`program_from_function` an ordinary Python function and it

* splits the body into top-level statements (the paper's one line = one
  single-entry-single-exit region),
* runs a liveness analysis so each line's output is exactly the set of
  variables later lines still need,
* wraps every line as an executable kernel over a shared namespace, and
* derives per-line cost models from the code itself (operation counts)
  plus an empirical probe run.
"""

from .liveness import live_after_each, names_read, names_written
from .tracer import FrontendError, infer_column_bytes, program_from_function

__all__ = [
    "FrontendError",
    "infer_column_bytes",
    "live_after_each",
    "names_read",
    "names_written",
    "program_from_function",
]
