"""Turning plain Python functions into ActivePy programs.

:func:`program_from_function` accepts an ordinary function whose
parameters name the dataset's payload arrays and whose body is
straight-line code (the vectorised style every workload in the paper's
evaluation uses)::

    def pipeline(prices, volumes):
        scaled = prices * 1.02
        kept = scaled[volumes > 100.0]
        return float(kept.sum())

Each top-level statement becomes one ActivePy line.  Kernels execute
the real source against a flowing namespace dict; liveness analysis
trims each line's output to the variables later lines still read, so
measured inter-line volumes are tight.  Cost models come from the code
itself: operation counts weigh instruction density, parameter reads
attribute storage streaming, and an optional probe payload measures
per-record output volumes empirically (linear scaling, the paper's
default assumption).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..errors import ReproError
from ..lang.program import Program, Statement, constant
from .liveness import live_after_each, names_read

#: Default instructions charged per AST operation per record.
_INSTR_PER_OP = 12.0
#: Fallback per-record output bytes per live variable (no probe given).
_BYTES_PER_LIVE_VAR = 8.0

_RESULT_NAME = "__result__"

#: AST node types that count as one "operation" for instruction density.
_OP_NODES = (
    ast.BinOp, ast.UnaryOp, ast.BoolOp, ast.Compare,
    ast.Call, ast.Subscript, ast.Attribute, ast.IfExp,
)

_DISALLOWED_NODES = (
    ast.While, ast.If, ast.With, ast.Try,
    ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
)


class FrontendError(ReproError):
    """The function cannot be lowered to a line program."""


def _function_def(fn: Callable) -> ast.FunctionDef:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise FrontendError(f"cannot read source of {fn!r}: {exc}") from exc
    module = ast.parse(source)
    for node in module.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise FrontendError(f"no function definition found in source of {fn!r}")


def _trip_count(statement: ast.stmt) -> Optional[int]:
    """Constant trip count of a ``for _ in range(K)`` loop, else None."""
    if not isinstance(statement, ast.For) or statement.orelse:
        return None
    call = statement.iter
    if not (
        isinstance(call, ast.Call)
        and isinstance(call.func, ast.Name)
        and call.func.id == "range"
        and len(call.args) == 1
        and isinstance(call.args[0], ast.Constant)
        and isinstance(call.args[0].value, int)
        and call.args[0].value >= 1
    ):
        return None
    return int(call.args[0].value)


def _validate_body(body: Sequence[ast.stmt], fn_name: str) -> None:
    if not body:
        raise FrontendError(f"{fn_name} has an empty body")
    for statement in body:
        if isinstance(statement, ast.For) and _trip_count(statement) is None:
            raise FrontendError(
                f"{fn_name} line {statement.lineno}: only "
                f"'for _ in range(<constant>)' loops can be folded; "
                f"vectorise other iteration (the style the paper's "
                f"workloads use)"
            )
        if isinstance(statement, _DISALLOWED_NODES):
            raise FrontendError(
                f"{fn_name} line {statement.lineno}: top-level "
                f"{type(statement).__name__} is not supported — fold loops "
                f"and branches into vectorised expressions (the style the "
                f"paper's workloads use)"
            )
        if isinstance(statement, ast.For):
            for inner in ast.walk(statement):
                if inner is not statement and isinstance(
                    inner, _DISALLOWED_NODES + (ast.For, ast.Return)
                ):
                    raise FrontendError(
                        f"{fn_name} line {statement.lineno}: folded loops "
                        f"must have straight-line bodies"
                    )
    if not isinstance(body[-1], ast.Return) or body[-1].value is None:
        raise FrontendError(f"{fn_name} must end with 'return <expression>'")
    for statement in body[:-1]:
        if isinstance(statement, ast.Return):
            raise FrontendError(
                f"{fn_name} line {statement.lineno}: early return is not "
                f"supported in a straight-line program"
            )


def _statement_name(statement: ast.stmt, index: int) -> str:
    if isinstance(statement, ast.Assign) and statement.targets:
        target = statement.targets[0]
        if isinstance(target, ast.Name):
            return f"L{index}_{target.id}"
    if isinstance(statement, ast.For):
        from .liveness import names_written

        written = sorted(names_written(statement) - _loop_indices(statement))
        suffix = written[0] if written else "loop"
        return f"L{index}_{suffix}_loop"
    if isinstance(statement, ast.Return):
        return f"L{index}_return"
    return f"L{index}_stmt"


def _loop_indices(statement: ast.For) -> Set[str]:
    indices: Set[str] = set()
    for node in ast.walk(statement.target):
        if isinstance(node, ast.Name):
            indices.add(node.id)
    return indices


def _op_count(statement: ast.stmt) -> int:
    if isinstance(statement, ast.For):
        # Count the body only: the range() iterator is loop plumbing,
        # not per-record work.
        return sum(_op_count(inner) for inner in statement.body)
    return sum(1 for node in ast.walk(statement) if isinstance(node, _OP_NODES))


def _compile_line(statement: ast.stmt, filename: str):
    """Compile one body statement; returns the code object to exec."""
    if isinstance(statement, ast.Return):
        assert statement.value is not None
        lowered: ast.stmt = ast.Assign(
            targets=[ast.Name(id=_RESULT_NAME, ctx=ast.Store())],
            value=statement.value,
        )
        ast.copy_location(lowered, statement)
    else:
        lowered = statement
    module = ast.Module(body=[lowered], type_ignores=[])
    ast.fix_missing_locations(module)
    return compile(module, filename=filename, mode="exec")


_STORED_KEY = "__stored__"


def _make_kernel(code, fn_globals: dict, keep: Set[str], unread_params: Set[str]):
    """One line's executable kernel over the flowing namespace.

    Parameters the program has not read yet are threaded through under
    ``__stored__``: they are still on flash, so the profiler must not
    count them as this line's in-memory output (their bytes are charged
    as storage streaming at their first reader instead).
    """

    def kernel(payload: Dict[str, Any]) -> Dict[str, Any]:
        namespace = dict(payload)
        stored = namespace.pop(_STORED_KEY, {})
        namespace.update(stored)
        exec(code, fn_globals, namespace)  # the actual user line
        out = {name: namespace[name] for name in keep if name in namespace}
        still_stored = {
            name: namespace[name]
            for name in unread_params if name in namespace
        }
        if still_stored:
            out[_STORED_KEY] = still_stored
        return out

    return kernel


def program_from_function(
    fn: Callable,
    record_bytes: float,
    probe_payload: Optional[Dict[str, Any]] = None,
    instr_per_op: float = _INSTR_PER_OP,
    instr_hints: Optional[Dict[str, float]] = None,
    column_bytes: Optional[Dict[str, float]] = None,
    name: Optional[str] = None,
) -> Program:
    """Lower an unannotated Python function to an ActivePy program.

    Parameters
    ----------
    fn:
        Straight-line function; its parameters name the dataset's
        payload arrays.
    record_bytes:
        Stored bytes per record, attributed to the lines that first
        read each parameter (override the per-parameter split with
        ``column_bytes``).
    probe_payload:
        Optional small real payload; when given, per-line output
        volumes are *measured* by running the kernels on it and scaled
        linearly, instead of the live-variable-count heuristic.
    instr_per_op / instr_hints:
        Instruction-density model: each AST operation costs
        ``instr_per_op`` per record, unless ``instr_hints`` pins a
        line's density by its generated name (e.g. ``"L0_scaled"``).
    """
    if record_bytes <= 0:
        raise FrontendError(f"record_bytes must be positive, got {record_bytes}")
    definition = _function_def(fn)
    fn_name = name if name is not None else definition.name
    params = [argument.arg for argument in definition.args.args]
    if not params:
        raise FrontendError(f"{fn_name} needs at least one parameter")
    body = list(definition.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]  # the docstring is not a program line
    _validate_body(body, fn_name)
    live_sets = live_after_each(body)
    hints = instr_hints or {}

    shares = _storage_shares(params, record_bytes, column_bytes)
    first_reader: Dict[str, int] = {}
    for index, statement in enumerate(body):
        for parameter in names_read(statement) & set(params):
            first_reader.setdefault(parameter, index)

    statements: List[Statement] = []
    read_so_far: Set[str] = set()
    for index, statement in enumerate(body):
        is_last = index == len(body) - 1
        read_so_far |= names_read(statement) & set(params)
        unread = set(params) - read_so_far
        keep = (
            set(live_sets[index]) - unread
        ) | ({_RESULT_NAME} if is_last else set())
        code = _compile_line(statement, filename=f"<{fn_name}:L{index}>")
        kernel = _make_kernel(code, fn.__globals__, keep, unread)
        stmt_name = _statement_name(statement, index)
        # Folded loops: the line's cost is its body's, times the trip
        # count; the trips are its dynamic instances (migration points).
        trips = _trip_count(statement) if isinstance(statement, ast.For) else None
        density = hints.get(
            stmt_name,
            instr_per_op * max(1, _op_count(statement)) * (trips or 1),
        )
        storage_per_record = sum(
            shares[parameter]
            for parameter, reader in first_reader.items()
            if reader == index
        )
        out_per_record = _BYTES_PER_LIVE_VAR * max(1, len(keep))
        if trips is not None:
            chunks = max(8, trips)
        else:
            chunks = 64 if storage_per_record > 0 else 32
        statements.append(Statement(
            name=stmt_name,
            kernel=kernel,
            instructions=lambda n, d=density: d * n,
            output_bytes=(
                constant(24.0) if is_last
                else (lambda n, o=out_per_record: o * n)
            ),
            storage_bytes=lambda n, s=storage_per_record: s * n,
            chunks=chunks,
            live_vars=tuple(sorted(live_sets[index])),
        ))

    program = Program(fn_name, statements)
    if probe_payload is not None:
        _calibrate_outputs_from_probe(program, probe_payload)
    return program


def _storage_shares(
    params: Sequence[str],
    record_bytes: float,
    column_bytes: Optional[Dict[str, float]],
) -> Dict[str, float]:
    if column_bytes is None:
        return {parameter: record_bytes / len(params) for parameter in params}
    unknown = set(column_bytes) - set(params)
    if unknown:
        raise FrontendError(f"column_bytes names unknown parameters: {sorted(unknown)}")
    total = sum(column_bytes.get(parameter, 0.0) for parameter in params)
    if abs(total - record_bytes) > 0.01 * record_bytes:
        raise FrontendError(
            f"column_bytes sum to {total}, but record_bytes is {record_bytes}"
        )
    return {parameter: column_bytes.get(parameter, 0.0) for parameter in params}


def _calibrate_outputs_from_probe(program: Program, probe: Dict[str, Any]) -> None:
    """Replace heuristic output laws with measured per-record rates."""
    from ..runtime.profiler import payload_nbytes

    n = _probe_records(probe)
    payload = dict(probe)
    for index, statement in enumerate(program.statements):
        payload = statement.kernel(payload)
        measured = payload_nbytes(payload)
        is_last = index == len(program.statements) - 1
        if is_last:
            statement.output_bytes = constant(float(measured))
        else:
            rate = measured / n
            statement.output_bytes = lambda count, r=rate: r * count


def infer_column_bytes(probe: Dict[str, Any]) -> Dict[str, float]:
    """Per-record stored width of each payload column, from its dtype.

    Convenience for :func:`program_from_function`: with a probe payload
    in hand, the stored record width is just the sum of the columns'
    element sizes — no need to hand-compute ``record_bytes`` and
    ``column_bytes``.
    """
    import numpy as np

    widths: Dict[str, float] = {}
    for name, value in probe.items():
        array = np.asarray(value)
        if array.ndim == 0:
            continue
        per_record = float(array.nbytes / array.shape[0])
        widths[name] = per_record
    if not widths:
        raise FrontendError("probe payload needs at least one array column")
    return widths


def _probe_records(probe: Dict[str, Any]) -> int:
    import numpy as np

    sizes = {
        np.asarray(value).shape[0]
        for value in probe.values()
        if np.asarray(value).ndim >= 1
    }
    if not sizes:
        raise FrontendError("probe payload needs at least one array")
    return max(sizes)
