"""Baseline implementations the paper compares against.

* :func:`run_c_baseline` — hand-written C, host only (the 1.0× anchor
  of every figure).
* :func:`run_python_baseline` / :func:`run_cython_baseline` — the §V
  language-runtime ladder.
* :class:`StaticIspBaseline` — the programmer-directed, statically
  optimised C ISP configuration (exhaustive offload search tuned at
  100% CSE availability, then frozen).
"""

from .c_baseline import run_c_baseline, run_cython_baseline, run_python_baseline
from .static_isp import StaticIspBaseline, ground_truth_estimates

__all__ = [
    "run_c_baseline",
    "run_cython_baseline",
    "run_python_baseline",
    "StaticIspBaseline",
    "ground_truth_estimates",
]
