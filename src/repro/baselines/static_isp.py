"""The programmer-directed static ISP baseline.

The paper's strongest comparator (§V): for each C application, the
authors "exhaustively tried to offload all reasonable combinations of
single-entry-single-exit code regions ... when the CSD entirely
dedicated itself to the running program" and froze the fastest
combination.  The frozen plan is then executed under whatever
conditions the experiment sets — which is exactly why it collapses when
CSE availability drops (Figures 2 and 5): a compiled-C framework has
no mechanism to move the work back.

Unlike ActivePy, the programmer knows the application's true costs, so
the search here uses ground-truth per-line estimates.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..config import DEFAULT_CONFIG, SystemConfig
from ..errors import PlanningError
from ..hw.topology import Machine, build_machine
from ..lang.dataset import Dataset
from ..lang.program import Program
from ..runtime.activepy import run_plan
from ..runtime.codegen import ExecutionMode
from ..runtime.estimator import LineEstimate
from ..runtime.executor import ExecutionResult, ProgressTrigger
from ..runtime.planner import CSD, HOST, Plan, projected_time

#: Exhaustive search is exponential in line count; the paper's
#: applications have well under this many SESE regions.
_MAX_SEARCH_LINES = 16


def ground_truth_estimates(
    program: Program,
    n_records: int,
    config: SystemConfig,
    cse_availability: float = 1.0,
) -> List[LineEstimate]:
    """Per-line estimates from the statements' true cost models.

    This is what a programmer who measured their C code exhaustively
    would know.  ``cse_availability`` scales device compute for oracle
    re-tuning studies (Figure 2's "oracle" line).
    """
    if n_records <= 0:
        raise PlanningError(f"n_records must be positive, got {n_records}")
    if not 0 < cse_availability <= 1:
        raise PlanningError(f"availability must lie in (0, 1], got {cse_availability}")
    n = float(n_records)
    c_factor = config.device_speed_ratio / cse_availability
    estimates: List[LineEstimate] = []
    previous_out = 0.0
    for index, statement in enumerate(program):
        compute = statement.instructions(n) / config.host_ips
        storage = statement.storage_bytes(n)
        d_out = statement.output_bytes(n)
        estimates.append(
            LineEstimate(
                index=index,
                name=statement.name,
                ct_host=compute + storage / config.bw_host_storage,
                ct_device=compute * c_factor + storage / config.bw_internal,
                d_in=previous_out,
                d_out=d_out,
                d_storage=storage,
                compute_host=compute,
            )
        )
        previous_out = d_out
    return estimates


def exhaustive_best_plan(
    estimates: Sequence[LineEstimate],
    config: SystemConfig,
) -> Plan:
    """Try every host/CSD assignment; keep the fastest projection."""
    k = len(estimates)
    if k == 0:
        raise PlanningError("cannot search an empty program")
    if k > _MAX_SEARCH_LINES:
        raise PlanningError(
            f"exhaustive search over {k} lines is infeasible "
            f"(limit {_MAX_SEARCH_LINES})"
        )
    t_host = sum(e.ct_host for e in estimates)
    best_assignments = [HOST] * k
    best_time = t_host
    for combo in itertools.product((HOST, CSD), repeat=k):
        time = projected_time(combo, estimates, config)
        if time < best_time:
            best_time = time
            best_assignments = list(combo)
    return Plan(
        assignments=best_assignments,
        t_host=t_host,
        t_csd=best_time,
        estimates=tuple(estimates),
    )


@dataclass
class StaticIspBaseline:
    """Programmer-directed C ISP: tuned once, then inflexible."""

    config: SystemConfig = DEFAULT_CONFIG
    #: CSE availability assumed while tuning (the paper tunes at 100%).
    tuning_availability: float = 1.0

    def tune(self, program: Program, n_records: int) -> Plan:
        """Find the optimal static offload for dedicated-CSD conditions."""
        estimates = ground_truth_estimates(
            program, n_records, self.config, cse_availability=self.tuning_availability
        )
        return exhaustive_best_plan(estimates, self.config)

    def run(
        self,
        program: Program,
        dataset: Dataset,
        machine: Optional[Machine] = None,
        plan: Optional[Plan] = None,
        progress_triggers: Sequence[ProgressTrigger] = (),
    ) -> ExecutionResult:
        """Execute the frozen plan under the machine's actual conditions.

        No monitoring, no migration: the plan chosen at tuning time is
        the plan that runs, degraded CSE or not.
        """
        if machine is None:
            machine = build_machine(self.config)
        if not machine.csd.holds_dataset(dataset.name):
            machine.csd.store_dataset(dataset.name, dataset.raw_bytes)
        if plan is None:
            plan = self.tune(program, dataset.n_records)
        return run_plan(
            machine=machine,
            program=program,
            plan=plan,
            dataset=dataset,
            mode=ExecutionMode.C,
            migration_enabled=False,
            progress_triggers=progress_triggers,
            config=self.config,
        )
