"""Host-only baselines at the three language-runtime levels.

The paper's performance anchor is the equivalent application written in
C without any ISP involvement; the Python and Cython variants quantify
the interpreter-overhead ladder of §V (C +41% → +20% → ~+1%).
"""

from __future__ import annotations

from typing import Optional

from ..config import DEFAULT_CONFIG, SystemConfig
from ..hw.topology import Machine, build_machine
from ..lang.dataset import Dataset
from ..lang.program import Program
from ..runtime.activepy import run_plan
from ..runtime.codegen import ExecutionMode
from ..runtime.executor import ExecutionResult
from .static_isp import ground_truth_estimates


def _run_host_only(
    program: Program,
    dataset: Dataset,
    mode: ExecutionMode,
    config: SystemConfig,
    machine: Optional[Machine],
) -> ExecutionResult:
    from ..runtime.planner import host_only_plan

    if machine is None:
        machine = build_machine(config)
    if not machine.csd.holds_dataset(dataset.name):
        machine.csd.store_dataset(dataset.name, dataset.raw_bytes)
    estimates = ground_truth_estimates(program, dataset.n_records, config)
    plan = host_only_plan(estimates)
    return run_plan(
        machine=machine,
        program=program,
        plan=plan,
        dataset=dataset,
        mode=mode,
        migration_enabled=False,
        config=config,
    )


def run_c_baseline(
    program: Program,
    dataset: Dataset,
    config: SystemConfig = DEFAULT_CONFIG,
    machine: Optional[Machine] = None,
) -> ExecutionResult:
    """The equivalent hand-written C application, no ISP."""
    return _run_host_only(program, dataset, ExecutionMode.C, config, machine)


def run_python_baseline(
    program: Program,
    dataset: Dataset,
    config: SystemConfig = DEFAULT_CONFIG,
    machine: Optional[Machine] = None,
) -> ExecutionResult:
    """Plain CPython: interpreter dispatch + redundant copies."""
    return _run_host_only(program, dataset, ExecutionMode.PYTHON, config, machine)


def run_cython_baseline(
    program: Program,
    dataset: Dataset,
    config: SystemConfig = DEFAULT_CONFIG,
    machine: Optional[Machine] = None,
) -> ExecutionResult:
    """Cython-compiled Python: dispatch gone, copies remain."""
    return _run_host_only(program, dataset, ExecutionMode.CYTHON, config, machine)
