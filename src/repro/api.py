"""The blessed import surface, in one flat namespace.

``repro.api`` re-exports every symbol a downstream user is expected to
touch — running ActivePy, defining programs, building machines, fault
injection and chaos campaigns, observability, and JSON export — so one
import line covers a whole experiment script::

    from repro.api import ActivePy, RunOptions, Observability, get_workload

    workload = get_workload("tpch_q6")
    obs = Observability.with_tracing()
    report = ActivePy().run(workload.program, workload.dataset,
                            options=RunOptions(obs=obs))

The symbol list is documented in ``docs/api.md`` (section "The
``repro.api`` facade"); a test fails whenever the two drift apart, in
either direction.  Anything importable elsewhere but absent here is
internal and may move without notice.
"""

from __future__ import annotations

from . import __version__
from .analysis.export import ReportLike, dump, dumps, to_jsonable
from .analysis.timeline import ExecutionTimeline, TimelineSpan
from .baselines import (
    StaticIspBaseline,
    run_c_baseline,
    run_cython_baseline,
    run_python_baseline,
)
from .chaos import (
    CampaignConfig,
    CampaignResult,
    ChaosHarness,
    ChaosRunOutcome,
    run_campaign,
)
from .config import DEFAULT_CONFIG, SystemConfig
from .errors import (
    AdmissionError,
    ChaosError,
    DeadlineError,
    DeviceLostError,
    FaultError,
    FleetError,
    IntegrityError,
    ObservabilityError,
    ReproError,
    TenantIsolationError,
    UncorrectableMediaError,
)
from .faults import (
    FAULT_KIND_INFO,
    FLEET_KINDS,
    LOUD_KINDS,
    SILENT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultLog,
    FaultPlan,
    FaultSpec,
)
from .fleet import (
    Fleet,
    FleetCampaignConfig,
    FleetCampaignResult,
    FleetConfig,
    FleetReport,
    JobArrival,
    JobOutcome,
    SloSnapshot,
    TenantSpec,
    TrafficGenerator,
    default_tenants,
    percentile,
    run_fleet_campaign,
    to_fleet_chrome_trace,
    write_fleet_chrome_trace,
)
from .frontend import program_from_function
from .hw.topology import Machine, build_machine
from .integrity import CLEAN_DIGEST, IntegrityChecker
from .lang import ProgramBuilder, array_dataset, dataset_of
from .lang.dataset import Dataset
from .lang.program import Program, Statement
from .obs import (
    AlertEvent,
    AlertRule,
    AttributionReport,
    Counter,
    CriticalPathReport,
    FlightRecorder,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
    Span,
    TimeAttributor,
    TimeSeries,
    Tracer,
    build_attribution_report,
    build_critical_path,
    evaluate_alerts,
    sparkline,
    to_chrome_trace,
    trace_span,
    validate_chrome_trace,
    write_chrome_trace,
)
from .parallel import (
    merge_metric_snapshots,
    ordered_pool_map,
    run_campaign_parallel,
)
from .perfgate import GatedMetric, GateReport, PerfGateError
from .perfgate import check as perf_check
from .perfgate import snapshot as perf_snapshot
from .runtime.activepy import (
    PLAN_MODES,
    ActivePy,
    ActivePyReport,
    RunOptions,
    run_plan,
)
from .runtime.codegen import ExecutionMode
from .runtime.executor import ExecutionResult
from .runtime.explain import LineExplanation, PlanExplanation, explain_plan
from .runtime.planner import PLAN_ORIGINS, Plan, assign_csd_code
from .runtime.plansearch import (
    SearchMetrics,
    SearchOptions,
    SearchReport,
    search_plan,
)
from .runtime.profcache import ProfileCache, default_cache
from .sim import EventHandle, SimClock, SimSnapshot, Simulator
from .workloads import Workload, all_workloads, get_workload, workload_names

__all__ = [
    "ActivePy",
    "ActivePyReport",
    "AdmissionError",
    "AlertEvent",
    "AlertRule",
    "AttributionReport",
    "CLEAN_DIGEST",
    "CampaignConfig",
    "CampaignResult",
    "ChaosError",
    "ChaosHarness",
    "ChaosRunOutcome",
    "Counter",
    "CriticalPathReport",
    "DEFAULT_CONFIG",
    "Dataset",
    "DeadlineError",
    "DeviceLostError",
    "EventHandle",
    "ExecutionMode",
    "ExecutionResult",
    "ExecutionTimeline",
    "FAULT_KIND_INFO",
    "FLEET_KINDS",
    "FaultError",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultLog",
    "FaultPlan",
    "FaultSpec",
    "Fleet",
    "FleetCampaignConfig",
    "FleetCampaignResult",
    "FleetConfig",
    "FleetError",
    "FleetReport",
    "FlightRecorder",
    "GateReport",
    "GatedMetric",
    "Gauge",
    "Histogram",
    "IntegrityChecker",
    "IntegrityError",
    "JobArrival",
    "JobOutcome",
    "LOUD_KINDS",
    "LineExplanation",
    "Machine",
    "MetricsRegistry",
    "Observability",
    "ObservabilityError",
    "PLAN_MODES",
    "PLAN_ORIGINS",
    "PerfGateError",
    "Plan",
    "PlanExplanation",
    "ProfileCache",
    "Program",
    "ProgramBuilder",
    "ReportLike",
    "ReproError",
    "RunOptions",
    "SILENT_KINDS",
    "SearchMetrics",
    "SearchOptions",
    "SearchReport",
    "SimClock",
    "SimSnapshot",
    "Simulator",
    "SloSnapshot",
    "Span",
    "Statement",
    "StaticIspBaseline",
    "SystemConfig",
    "TenantIsolationError",
    "TenantSpec",
    "TimeAttributor",
    "TimeSeries",
    "TimelineSpan",
    "Tracer",
    "TrafficGenerator",
    "UncorrectableMediaError",
    "Workload",
    "__version__",
    "all_workloads",
    "array_dataset",
    "assign_csd_code",
    "build_attribution_report",
    "build_critical_path",
    "build_machine",
    "dataset_of",
    "default_cache",
    "default_tenants",
    "dump",
    "dumps",
    "evaluate_alerts",
    "explain_plan",
    "get_workload",
    "merge_metric_snapshots",
    "ordered_pool_map",
    "percentile",
    "perf_check",
    "perf_snapshot",
    "program_from_function",
    "run_c_baseline",
    "run_campaign",
    "run_campaign_parallel",
    "run_cython_baseline",
    "run_fleet_campaign",
    "run_plan",
    "run_python_baseline",
    "search_plan",
    "sparkline",
    "to_chrome_trace",
    "to_fleet_chrome_trace",
    "to_jsonable",
    "trace_span",
    "validate_chrome_trace",
    "workload_names",
    "write_chrome_trace",
    "write_fleet_chrome_trace",
]
