"""Trace exporters: Chrome ``trace_event`` JSON (and plain JSON).

:func:`to_chrome_trace` turns a list of spans into the JSON object
format consumed by ``chrome://tracing`` and https://ui.perfetto.dev —
complete "X" (duration) events with microsecond timestamps, one tracing
*thread* per simulated resource (host, csd, d2h, ...), with "M"
metadata events naming the threads.  :func:`validate_chrome_trace`
checks an object against the subset of the spec we emit, so tests can
assert exported files actually load.

Accepts both :class:`repro.obs.tracer.Span` and the legacy
:class:`repro.analysis.timeline.TimelineSpan` (duck-typed on
``start``/``end``/``resource`` plus ``name``/``cat`` or
``label``/``kind``).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

__all__ = [
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

#: The single simulated machine shows up as one tracing process.
_PID = 1

_US = 1e6  # trace_event timestamps are microseconds


def _span_fields(span: object) -> Dict[str, object]:
    """Normalise a Span or TimelineSpan into trace-event fields."""
    name = getattr(span, "name", None)
    if name is None:
        name = getattr(span, "label")
    cat = getattr(span, "cat", None)
    if cat is None:
        cat = getattr(span, "kind")
    args = dict(getattr(span, "args", ()) or ())
    return {
        "name": name,
        "cat": cat,
        "resource": getattr(span, "resource"),
        "start": getattr(span, "start"),
        "end": getattr(span, "end"),
        "args": args,
    }


def to_chrome_trace(spans: Iterable[object]) -> Dict[str, object]:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Resources map to tracing threads in order of first appearance, so
    the Perfetto track order matches the plain-text Gantt chart.
    """
    events: List[Dict[str, object]] = []
    tids: Dict[str, int] = {}
    for span in spans:
        fields = _span_fields(span)
        resource = str(fields["resource"])
        tid = tids.get(resource)
        if tid is None:
            tid = tids[resource] = len(tids) + 1
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": resource},
            })
        events.append({
            "name": str(fields["name"]),
            "cat": str(fields["cat"]),
            "ph": "X",
            "ts": float(fields["start"]) * _US,
            "dur": (float(fields["end"]) - float(fields["start"])) * _US,
            "pid": _PID,
            "tid": tid,
            "args": fields["args"],
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated", "time_unit_source": "seconds"},
    }


def validate_chrome_trace(obj: object) -> List[str]:
    """Check an object against the trace_event subset we emit.

    Accepts "X" (duration), "M" (metadata), and "i" (instant) phases —
    the fleet trace exporter marks failover/shed/device-loss moments as
    instants.  Returns a list of problems — empty means the trace is
    well-formed and will load in ``chrome://tracing``/Perfetto.
    """
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where} must be an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M", "i"):
            problems.append(f"{where} has unsupported phase {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"{where} is missing {key!r}")
        if ph == "i":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where} ts must be a number")
            elif ts < 0:
                problems.append(f"{where} has negative ts")
            scope = event.get("s", "t")
            if scope not in ("g", "p", "t"):
                problems.append(f"{where} has invalid instant scope {scope!r}")
        if ph == "X":
            for key in ("ts", "dur", "cat"):
                if key not in event:
                    problems.append(f"{where} is missing {key!r}")
            ts = event.get("ts")
            dur = event.get("dur")
            if isinstance(ts, (int, float)) and ts < 0:
                problems.append(f"{where} has negative ts")
            if isinstance(dur, (int, float)) and dur < 0:
                problems.append(f"{where} has negative dur")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where} ts must be a number")
            if not isinstance(dur, (int, float)):
                problems.append(f"{where} dur must be a number")
    return problems


def write_chrome_trace(spans: Sequence[object], path: str) -> Dict[str, object]:
    """Export spans to ``path`` as Chrome trace JSON; returns the object."""
    trace = to_chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(trace, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return trace
