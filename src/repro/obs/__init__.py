"""Unified observability: metrics, tracing, and Chrome-trace export.

Every simulated machine carries exactly one :class:`Observability`
handle (``machine.obs``), created in
:func:`repro.hw.topology.build_machine` and shared by reference with
every component — the sim engine, compute units, links, NAND, FTL, the
dispatcher, the executor, checkpointing and migration.  Components
guard instrumentation with ``if obs.enabled:``, so a disabled handle
costs one attribute check per site and **zero simulated seconds**: no
metric or span ever advances the simulated clock, which is why runs are
bit-identical with observability on or off (enforced by tests and by
``benchmarks/bench_obs.py``).

Typical use::

    from repro import ActivePy, RunOptions
    from repro.obs import Observability

    obs = Observability.with_tracing()
    report = ActivePy().run(program, dataset, options=RunOptions(obs=obs))
    print(obs.metrics.render())

    from repro.obs import write_chrome_trace
    write_chrome_trace(obs.tracer.spans, "trace.json")  # open in Perfetto

The handle is deliberately mutable: when a caller passes its own
``Observability`` to :meth:`ActivePy.run` alongside a pre-built
machine, the machine's existing handle :meth:`~Observability.adopt`\\ s
the caller's sinks, so references components captured at build time
start feeding the caller's registry without rebuilding the machine.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from typing import Dict, Iterator, Optional

from ..errors import ObservabilityError
from .attribution import (
    AttributedSegment,
    AttributionReport,
    COMPONENTS,
    TimeAttributor,
    build_attribution_report,
)
from .critical_path import CriticalPathReport, CriticalPathStep, build_critical_path
from .export import to_chrome_trace, validate_chrome_trace, write_chrome_trace
from .metrics import (
    DEFAULT_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .timeseries import (
    AlertEvent,
    AlertRule,
    FlightRecorder,
    TimeSeries,
    evaluate_alerts,
    sparkline,
)
from .tracer import Span, Tracer

__all__ = [
    "AlertEvent",
    "AlertRule",
    "AttributedSegment",
    "AttributionReport",
    "COMPONENTS",
    "Counter",
    "CriticalPathReport",
    "CriticalPathStep",
    "DEFAULT_TIME_BUCKETS_S",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "TimeAttributor",
    "TimeSeries",
    "Tracer",
    "build_attribution_report",
    "build_critical_path",
    "evaluate_alerts",
    "sparkline",
    "to_chrome_trace",
    "trace_span",
    "validate_chrome_trace",
    "write_chrome_trace",
]


class Observability:
    """A shared handle bundling a metrics registry and optional tracer.

    Attributes are mutable on purpose — ``adopt`` redirects them — so
    components must always reach instruments *through* the handle
    (``obs.metrics.counter(...)``), never cache instrument objects
    across calls.
    """

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        attribution: Optional[TimeAttributor] = None,
        timeseries: Optional[FlightRecorder] = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.attribution = attribution
        self.timeseries = timeseries
        self.clock = None  # bound by build_machine to the sim clock

    # --- constructors ------------------------------------------------------

    @classmethod
    def disabled(cls) -> "Observability":
        """A dormant handle: one ``enabled`` check per site, nothing else."""
        return cls(enabled=False)

    @classmethod
    def with_tracing(cls) -> "Observability":
        """An enabled handle that also collects spans."""
        return cls(enabled=True, tracer=Tracer())

    @classmethod
    def with_attribution(cls, tracing: bool = True) -> "Observability":
        """An enabled handle that attributes every simulated second.

        Tracing is on by default so the critical path can label its
        steps with the enclosing runtime span.
        """
        return cls(
            enabled=True,
            tracer=Tracer() if tracing else None,
            attribution=TimeAttributor(),
        )

    @classmethod
    def with_timeseries(
        cls,
        window_s: float = 0.25,
        capacity: int = 4096,
        sample_horizon_s: Optional[float] = None,
        tracing: bool = False,
    ) -> "Observability":
        """An enabled handle carrying a flight recorder.

        ``window_s`` is the rate-bucketing / percentile granularity of
        the attached :class:`~repro.obs.timeseries.FlightRecorder`.
        """
        return cls(
            enabled=True,
            tracer=Tracer() if tracing else None,
            timeseries=FlightRecorder(
                window_s=window_s,
                capacity=capacity,
                sample_horizon_s=sample_horizon_s,
            ),
        )

    # --- state -------------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when spans should be recorded."""
        return self.enabled and self.tracer is not None

    @property
    def recording(self) -> bool:
        """True when a flight recorder is attached and live."""
        return self.enabled and self.timeseries is not None

    @property
    def attributing(self) -> bool:
        """True when clock movements are being attributed."""
        return self.enabled and self.attribution is not None

    def bind_clock(self, clock) -> None:
        """Attach the simulated clock used by :meth:`trace_span`.

        Installs the attributor (if any) on the clock so every movement
        from here on is recorded.
        """
        self.clock = clock
        if clock is not None and self.attributing:
            clock.set_attributor(self.attribution)

    def ensure_tracer(self) -> Tracer:
        """Attach (and return) a tracer if none is present."""
        if self.tracer is None:
            self.tracer = Tracer()
        return self.tracer

    def ensure_timeseries(self, window_s: float = 0.25) -> FlightRecorder:
        """Attach (and return) a flight recorder if none is present."""
        if self.timeseries is None:
            self.timeseries = FlightRecorder(window_s=window_s)
        return self.timeseries

    def adopt(self, other: "Observability") -> None:
        """Redirect this handle's sinks to another handle's.

        After adoption every component holding *this* handle records
        into ``other``'s registry and tracer.  The clock binding is
        pushed the other way so ``other`` can open spans against the
        machine's simulated clock.
        """
        if other is self:
            return
        self.enabled = other.enabled
        self.metrics = other.metrics
        self.tracer = other.tracer
        self.attribution = other.attribution
        self.timeseries = other.timeseries
        if other.clock is None:
            other.clock = self.clock
        if self.clock is not None:
            self.clock.set_attributor(
                self.attribution if self.attributing else None
            )

    # --- no-op-when-disabled recording helpers -----------------------------

    def count(self, name: str, amount: float = 1.0) -> None:
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def ts_gauge(self, name: str, t: float, value: float) -> None:
        """Record a flight-recorder gauge point; no-op with no recorder."""
        if self.enabled and self.timeseries is not None:
            self.timeseries.gauge(name, t, value)

    def ts_count(self, name: str, t: float, amount: float = 1.0) -> None:
        """Add to a flight-recorder rate window; no-op with no recorder."""
        if self.enabled and self.timeseries is not None:
            self.timeseries.count(name, t, amount)

    def ts_observe(self, name: str, t: float, value: float) -> None:
        """Record a flight-recorder sample; no-op with no recorder."""
        if self.enabled and self.timeseries is not None:
            self.timeseries.observe(name, t, value)

    def record_span(
        self,
        name: str,
        cat: str,
        resource: str,
        start: float,
        end: float,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        if self.enabled and self.tracer is not None:
            self.tracer.record(name, cat, resource, start, end, args)

    @contextmanager
    def trace_span(
        self,
        name: str,
        cat: str,
        resource: str,
        args: Optional[Dict[str, object]] = None,
    ) -> Iterator[None]:
        """Record a span covering the simulated time the body advances.

        Requires a bound clock (``build_machine`` binds one).  Reads the
        clock at entry and exit — the body is what advances it.
        """
        if not (self.enabled and self.tracer is not None and self.clock is not None):
            yield
            return
        start = self.clock.now
        try:
            yield
        finally:
            self.tracer.record(name, cat, resource, start, self.clock.now, args)

    def attr_scope(self, component: str):
        """Context manager labelling clock movement inside the body.

        A no-op (``nullcontext``) when attribution is off, so call sites
        cost one attribute check — never simulated time — either way.
        Explicit ``component=`` labels at leaf sites still win over the
        scope.
        """
        if not self.attributing:
            return nullcontext()
        return _attributor_scope(self.attribution, component)

    def attribution_report(self, since: int = 0) -> AttributionReport:
        """Build an :class:`AttributionReport` from the attached attributor."""
        if self.attribution is None:
            raise ObservabilityError(
                "this Observability handle has no attributor; "
                "construct it with Observability.with_attribution()"
            )
        return build_attribution_report(self.attribution, since=since)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic JSON-ready view of all metrics."""
        return self.metrics.snapshot()


@contextmanager
def _attributor_scope(attributor: TimeAttributor, component: str) -> Iterator[None]:
    attributor.push_scope(component)
    try:
        yield
    finally:
        attributor.pop_scope()


@contextmanager
def trace_span(
    obs: Observability,
    name: str,
    cat: str,
    resource: str,
    args: Optional[Dict[str, object]] = None,
) -> Iterator[None]:
    """Free-function form of :meth:`Observability.trace_span`."""
    with obs.trace_span(name, cat, resource, args):
        yield
