"""The flight recorder: per-series ring buffers over *simulated* time.

End-of-run aggregates (``MetricsRegistry``) answer "how much"; the
flight recorder answers "when".  A :class:`FlightRecorder` hangs off the
shared :class:`~repro.obs.Observability` handle and collects three kinds
of series, each a bounded ring buffer of ``(t, value)`` points keyed by
the *simulated* clock:

* **gauge** series hold the last value of a level at each instant it
  changed (device utilisation, queue depth).  Re-recording at the same
  simulated instant overwrites — a timestamp maps to one value.
* **rate** series bucket counter increments into fixed windows of
  ``window_s`` simulated seconds and emit one point per window, valued
  in events per second (arrival rate, shed rate).  Empty windows
  between increments emit explicit zeros so a flat-lining series reads
  as flat, not absent.
* **sample** series keep raw observations (per-job end-to-end latency)
  so sliding-window percentiles can be computed over a recent horizon
  with the exact numpy-compatible :func:`repro.fleet.slo.percentile`.

Like every other instrument in :mod:`repro.obs`, recording never
touches the simulated clock: the recorder is handed timestamps, it
never advances them.  When no recorder is attached (the default for
every existing entry point) the instrumented call sites cost one
attribute check and zero wall work, so run signatures stay bit-identical
— ``benchmarks/bench_obs.py`` pins the simulated overhead at exactly
``0.0``.

An :class:`AlertRule` turns a series into a structured signal:
"``fleet.slo_window.tenant-a.e2e_p99_s`` above its SLO for 4
consecutive points" fires an :class:`AlertEvent` via
:func:`evaluate_alerts`.  Rules re-arm when the series recovers, so one
sustained breach is one alert, not one per point.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

__all__ = [
    "AlertEvent",
    "AlertRule",
    "FlightRecorder",
    "TimeSeries",
    "evaluate_alerts",
    "sparkline",
]

#: Series kinds a recorder distinguishes; a name belongs to exactly one.
KIND_GAUGE = "gauge"
KIND_RATE = "rate"
KIND_SAMPLES = "samples"

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

#: Comparison operators an :class:`AlertRule` may use.
_ALERT_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render ``values`` as a one-line unicode sparkline.

    Keeps the most recent ``width`` values.  A constant series renders
    as a flat mid-height line; an empty one as ``(empty)``.
    """
    if width < 1:
        raise ObservabilityError(f"sparkline width must be at least 1, got {width}")
    tail = list(values)[-width:]
    if not tail:
        return "(empty)"
    lo, hi = min(tail), max(tail)
    if hi == lo:
        return _SPARK_BLOCKS[3] * len(tail)
    span = hi - lo
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(top, int((value - lo) / span * top + 0.5))]
        for value in tail
    )


class TimeSeries:
    """One named, bounded series of ``(t, value)`` points.

    The buffer is a ring: once ``capacity`` points have been recorded
    the oldest fall off, so a recorder's memory is bounded no matter how
    long the run.  Points are appended in non-decreasing ``t`` order —
    simulated time never runs backwards — and a gauge re-recorded at the
    same ``t`` overwrites the point instead of duplicating the instant.
    """

    __slots__ = ("name", "kind", "points")

    def __init__(self, name: str, kind: str, capacity: int) -> None:
        if kind not in (KIND_GAUGE, KIND_RATE, KIND_SAMPLES):
            raise ObservabilityError(
                f"series {name!r}: unknown kind {kind!r}"
            )
        self.name = name
        self.kind = kind
        self.points: Deque[Tuple[float, float]] = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        if self.points:
            last_t = self.points[-1][0]
            if t < last_t:
                raise ObservabilityError(
                    f"series {self.name!r}: point at t={t} arrived after "
                    f"t={last_t} — simulated time never runs backwards"
                )
            if t == last_t and self.kind == KIND_GAUGE:
                self.points[-1] = (t, float(value))
                return
        self.points.append((float(t), float(value)))

    def times(self) -> List[float]:
        return [t for t, _ in self.points]

    def values(self) -> List[float]:
        return [value for _, value in self.points]

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "points": [[t, value] for t, value in self.points],
        }


class _RateWindow:
    """Accumulator for one rate series' currently-open window."""

    __slots__ = ("index", "total")

    def __init__(self, index: int) -> None:
        self.index = index
        self.total = 0.0


class FlightRecorder:
    """A registry of time series plus the windowing state behind them.

    ``window_s`` is the rate-bucketing *and* percentile granularity:
    counter increments aggregate into windows of this many simulated
    seconds, and :meth:`window_percentile` looks back
    ``sample_horizon_s`` (default ``8 * window_s``) from "now".
    ``capacity`` bounds every series' ring buffer.
    """

    def __init__(
        self,
        window_s: float = 0.25,
        capacity: int = 4096,
        sample_horizon_s: Optional[float] = None,
    ) -> None:
        if window_s <= 0:
            raise ObservabilityError(
                f"recorder window_s must be positive, got {window_s}"
            )
        if capacity < 1:
            raise ObservabilityError(
                f"recorder capacity must be at least 1, got {capacity}"
            )
        if sample_horizon_s is not None and sample_horizon_s <= 0:
            raise ObservabilityError(
                f"recorder sample_horizon_s must be positive, "
                f"got {sample_horizon_s}"
            )
        self.window_s = float(window_s)
        self.capacity = int(capacity)
        self.sample_horizon_s = (
            float(sample_horizon_s)
            if sample_horizon_s is not None
            else 8.0 * self.window_s
        )
        self._series: Dict[str, TimeSeries] = {}
        self._open_windows: Dict[str, _RateWindow] = {}

    # --- series access ------------------------------------------------------

    def _get_or_create(self, name: str, kind: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name, kind, self.capacity)
        elif series.kind != kind:
            raise ObservabilityError(
                f"series {name!r} is already recorded as a {series.kind} "
                f"series, not {kind}"
            )
        return series

    def series(self, name: str) -> TimeSeries:
        try:
            return self._series[name]
        except KeyError:
            raise ObservabilityError(
                f"no series named {name!r}; recorded series: "
                f"{sorted(self._series) or '(none)'}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._series)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def __len__(self) -> int:
        return len(self._series)

    # --- recording ----------------------------------------------------------

    def gauge(self, name: str, t: float, value: float) -> None:
        """Record the level ``value`` at simulated instant ``t``."""
        self._get_or_create(name, KIND_GAUGE).append(t, value)

    def observe(self, name: str, t: float, value: float) -> None:
        """Record one raw sample (e.g. a latency) at instant ``t``."""
        self._get_or_create(name, KIND_SAMPLES).append(t, value)

    def count(self, name: str, t: float, amount: float = 1.0) -> None:
        """Add ``amount`` events at instant ``t`` to a windowed rate.

        The point for a window is emitted — valued ``total / window_s``
        at the window's *end* timestamp — when time first advances past
        it, and any fully-empty windows in between emit explicit zeros
        (at most ``capacity``, which is all the ring can hold anyway).
        """
        if amount < 0:
            raise ObservabilityError(
                f"rate series {name!r} increment must be non-negative, "
                f"got {amount}"
            )
        series = self._get_or_create(name, KIND_RATE)
        index = int(t // self.window_s)
        window = self._open_windows.get(name)
        if window is None:
            window = self._open_windows[name] = _RateWindow(index)
        elif index > window.index:
            self._flush(series, window, upto_index=index)
            window.index = index
            window.total = 0.0
        elif index < window.index:
            raise ObservabilityError(
                f"rate series {name!r}: increment at t={t} lands before "
                f"the open window — simulated time never runs backwards"
            )
        window.total += amount

    def _flush(
        self, series: TimeSeries, window: _RateWindow, upto_index: int
    ) -> None:
        """Emit the open window's point plus zeros up to ``upto_index``."""
        series.append(
            (window.index + 1) * self.window_s, window.total / self.window_s
        )
        # Zero-fill the gap so quiet stretches read as zero rate.  The
        # ring only keeps `capacity` points, so cap the fill there.
        first_zero = window.index + 1
        last_zero = upto_index - 1
        if last_zero - first_zero + 1 > self.capacity:
            first_zero = last_zero - self.capacity + 1
        for index in range(first_zero, last_zero + 1):
            series.append((index + 1) * self.window_s, 0.0)

    def finalize(self, now: float) -> None:
        """Flush every open rate window so partial windows are visible.

        Call once when the run's event loop drains; ``now`` is the final
        simulated timestamp.  Idempotent enough for reporting: a flushed
        window restarts at ``now``'s window with a zero total.
        """
        for name in sorted(self._open_windows):
            window = self._open_windows[name]
            series = self._series[name]
            self._flush(series, window, upto_index=window.index + 1)
            window.index = int(now // self.window_s) + 1
            window.total = 0.0

    # --- sliding-window statistics ------------------------------------------

    def window_values(self, name: str, now: float) -> List[float]:
        """Values of ``name`` recorded within the horizon ending at ``now``."""
        horizon_start = now - self.sample_horizon_s
        return [
            value
            for t, value in self.series(name)
            if horizon_start <= t <= now
        ]

    def window_percentile(self, name: str, q: float, now: float) -> float:
        """The ``q``-th percentile of a sample series' recent horizon.

        Reuses the numpy-compatible :func:`repro.fleet.slo.percentile`
        (imported lazily — ``repro.fleet`` imports ``repro.obs``, so a
        module-level import here would be circular).  Returns ``0.0``
        for an empty horizon, matching ``SloSnapshot``'s convention.
        """
        from ..fleet.slo import percentile

        samples = self.window_values(name, now)
        return percentile(samples, q) if samples else 0.0

    # --- reporting ----------------------------------------------------------

    def to_jsonable(self) -> Dict[str, object]:
        """Deterministic JSON-ready view: series in sorted-name order."""
        return {
            "window_s": self.window_s,
            "capacity": self.capacity,
            "sample_horizon_s": self.sample_horizon_s,
            "series": {
                name: self._series[name].to_jsonable()
                for name in sorted(self._series)
            },
        }

    def render(self, width: int = 60) -> str:
        """The ASCII dashboard: one sparkline per series, sorted by name."""
        if not self._series:
            return "(no series recorded)"
        name_width = max(len(name) for name in self._series)
        lines = []
        for name in sorted(self._series):
            series = self._series[name]
            values = series.values()
            lo = min(values) if values else 0.0
            hi = max(values) if values else 0.0
            lines.append(
                f"{name.ljust(name_width)}  {sparkline(values, width)}  "
                f"min={lo:g} max={hi:g} last={values[-1] if values else 0:g} "
                f"n={len(values)} ({series.kind})"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class AlertRule:
    """Fire when a series breaches a threshold for N consecutive points.

    ``op`` compares each point's value against ``threshold``; the rule
    fires on the ``consecutive``-th breaching point in a row and then
    re-arms only after a non-breaching point, so a sustained breach is
    one alert per episode.
    """

    name: str
    series: str
    threshold: float
    op: str = ">"
    consecutive: int = 3

    def __post_init__(self) -> None:
        if not self.name:
            raise ObservabilityError("alert rule name must be non-empty")
        if not self.series:
            raise ObservabilityError(
                f"alert rule {self.name!r}: series must be non-empty"
            )
        if self.op not in _ALERT_OPS:
            raise ObservabilityError(
                f"alert rule {self.name!r}: op must be one of "
                f"{sorted(_ALERT_OPS)}, got {self.op!r}"
            )
        if self.consecutive < 1:
            raise ObservabilityError(
                f"alert rule {self.name!r}: consecutive must be at least 1, "
                f"got {self.consecutive}"
            )

    def breaches(self, value: float) -> bool:
        return _ALERT_OPS[self.op](value, self.threshold)


@dataclass(frozen=True)
class AlertEvent:
    """One rule firing: which rule, on which series, when, at what value."""

    rule: str
    series: str
    at_time: float
    value: float
    threshold: float
    consecutive: int

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "series": self.series,
            "at_time": self.at_time,
            "value": self.value,
            "threshold": self.threshold,
            "consecutive": self.consecutive,
        }

    def render(self) -> str:
        return (
            f"ALERT {self.rule}: {self.series}={self.value:g} breached "
            f"{self.threshold:g} for {self.consecutive} consecutive points "
            f"at t={self.at_time:.3f}s"
        )


def evaluate_alerts(
    recorder: FlightRecorder, rules: Iterable[AlertRule]
) -> Tuple[AlertEvent, ...]:
    """Scan every rule over its series and collect the alerts that fire.

    A rule whose series was never recorded is quiet, not an error — a
    clean run may never create the series a failure would.  Events come
    back ordered by firing time, ties broken by rule name.
    """
    events: List[AlertEvent] = []
    for rule in rules:
        if rule.series not in recorder:
            continue
        streak = 0
        armed = True
        for t, value in recorder.series(rule.series):
            if rule.breaches(value):
                streak += 1
                if armed and streak >= rule.consecutive:
                    events.append(AlertEvent(
                        rule=rule.name,
                        series=rule.series,
                        at_time=t,
                        value=value,
                        threshold=rule.threshold,
                        consecutive=rule.consecutive,
                    ))
                    armed = False
            else:
                streak = 0
                armed = True
    events.sort(key=lambda event: (event.at_time, event.rule))
    return tuple(events)
