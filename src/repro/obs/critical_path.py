"""Critical-path reconstruction over the attributed event DAG.

The simulator serialises all activity onto one clock, so a run is a
chain of :class:`~repro.obs.attribution.AttributedSegment`\\ s — but the
chain is built as a genuine DAG walk anyway: nodes are segments, an
edge joins segments that abut in time, and the critical path is the
longest (time-weighted) path through that graph.  This keeps the
algorithm correct if the engine ever grows truly parallel tracks (the
longest chain is then the binding one), and it already handles windows
with gaps (e.g. a report window clipped mid-run): each maximal chain
competes and the longest wins.

Overlap semantics matter here: when the executor overlaps a chunk's IO
with its compute it advances the clock once by ``max(io, compute)``
and labels the movement with the *binding* resource.  That is exactly
critical-path accounting — the hidden, shorter side contributes zero
path time — so attribution and critical path agree by construction and
both satisfy the sum identity.

Steps are labelled with the innermost tracer span covering them (line,
chunk, migration, checkpoint...), so the rendered path reads as "which
program line held which component for how long".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ObservabilityError
from .attribution import (
    AttributedSegment,
    AttributionReport,
    _two_diff,
    build_attribution_report,
)

__all__ = [
    "CriticalPathReport",
    "CriticalPathStep",
    "build_critical_path",
]


@dataclass(frozen=True)
class CriticalPathStep:
    """One hop on the critical path: a component holding the clock."""

    start: float
    end: float
    component: str
    label: str

    @property
    def duration(self) -> float:
        return self.end - self.start


def _longest_path(segments: List[AttributedSegment]) -> List[AttributedSegment]:
    """Longest time-weighted path in the abutment DAG of ``segments``.

    Segments arrive time-sorted (the attributor appends in clock
    order).  DP over that topological order: ``best[i]`` is the longest
    path ending at segment ``i``, extended from any predecessor whose
    ``end`` equals ``segments[i].start``.
    """
    if not segments:
        return []
    n = len(segments)
    best = [segments[i].duration for i in range(n)]
    prev = [-1] * n
    # All segments ending at time t, for O(1) predecessor lookup.
    by_end: Dict[float, List[int]] = {}
    for i, segment in enumerate(segments):
        for j in by_end.get(segment.start, ()):
            candidate = best[j] + segment.duration
            if candidate > best[i]:
                best[i] = candidate
                prev[i] = j
        by_end.setdefault(segment.end, []).append(i)
    tail = max(range(n), key=lambda i: best[i])
    path: List[AttributedSegment] = []
    while tail != -1:
        path.append(segments[tail])
        tail = prev[tail]
    path.reverse()
    return path


def _split_at_span_boundaries(
    path: List[AttributedSegment], spans
) -> List[AttributedSegment]:
    """Cut path segments wherever a tracer span starts or ends.

    A coalesced segment can straddle phases (sampling → codegen is one
    unbroken run of host time); splitting at span edges lets each piece
    pick up the right label.
    """
    if not spans:
        return path
    cuts = sorted({t for span in spans for t in (span.start, span.end)})
    out: List[AttributedSegment] = []
    for segment in path:
        lo = segment.start
        for cut in cuts:
            if lo < cut < segment.end:
                out.append(AttributedSegment(lo, cut, segment.component))
                lo = cut
        out.append(AttributedSegment(lo, segment.end, segment.component))
    return out


def _innermost_labels(
    path: List[AttributedSegment], spans
) -> List[str]:
    """Label each path segment with its innermost enclosing span name."""
    labels: List[str] = []
    for segment in path:
        mid = 0.5 * (segment.start + segment.end)
        label = segment.component
        tightest = float("inf")
        for span in spans:
            if span.start <= mid <= span.end:
                width = span.end - span.start
                if width < tightest:
                    tightest = width
                    label = span.name
        labels.append(label)
    return labels


def _merge_steps(
    path: List[AttributedSegment], labels: List[str]
) -> List[CriticalPathStep]:
    """Coalesce consecutive path hops sharing component and label."""
    steps: List[CriticalPathStep] = []
    for segment, label in zip(path, labels):
        if (
            steps
            and steps[-1].component == segment.component
            and steps[-1].label == label
            and steps[-1].end == segment.start
        ):
            last = steps[-1]
            steps[-1] = CriticalPathStep(last.start, segment.end, last.component, label)
        else:
            steps.append(
                CriticalPathStep(segment.start, segment.end, segment.component, label)
            )
    return steps


@dataclass
class CriticalPathReport:
    """The critical path plus the exact attribution behind it."""

    steps: List[CriticalPathStep]
    attribution: AttributionReport

    @property
    def start(self) -> float:
        return self.attribution.start

    @property
    def end(self) -> float:
        return self.attribution.end

    @property
    def total_seconds(self) -> float:
        """Length of the critical path (== window when one chain spans it).

        Computed with compensated summation over the steps' endpoint
        pairs, so a contiguous chain telescopes *exactly* to
        ``end - start`` — the same identity the attribution satisfies.
        """
        parts: List[float] = []
        for step in self.steps:
            hi, err = _two_diff(step.end, step.start)
            parts.append(hi)
            parts.append(err)
        return math.fsum(parts)

    def seconds_by_component(self) -> Dict[str, float]:
        """Path time per component (path-only, unlike the attribution)."""
        out: Dict[str, float] = {}
        for step in self.steps:
            out[step.component] = out.get(step.component, 0.0) + step.duration
        return dict(sorted(out.items()))

    def what_if(self, component: str) -> float:
        """Projected total if ``component`` were free (zero-time)."""
        return self.attribution.what_if(component)

    def rank_bottlenecks(self) -> List[Tuple[str, float]]:
        """Components ranked by what removing them would save."""
        return self.attribution.rank_bottlenecks()

    def render(self, max_steps: int = 40) -> str:
        lines = [
            f"critical path: {len(self.steps)} steps, "
            f"{self.total_seconds:.6f} s over "
            f"[{self.start:.6f}, {self.end:.6f}]"
        ]
        shown = self.steps[:max_steps]
        for step in shown:
            lines.append(
                f"  {step.start:>10.6f} -> {step.end:>10.6f}  "
                f"{step.component:<11} {step.duration:>12.6f} s  {step.label}"
            )
        if len(self.steps) > len(shown):
            lines.append(f"  ... {len(self.steps) - len(shown)} more steps")
        lines.append("bottleneck ranking (time saved if component were free):")
        for name, seconds in self.rank_bottlenecks():
            lines.append(
                f"  {name:<11} -{seconds:.6f} s "
                f"-> {self.what_if(name):.6f} s total"
            )
        return "\n".join(lines)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "total_seconds": self.total_seconds,
            "steps": [
                {
                    "start": step.start,
                    "end": step.end,
                    "component": step.component,
                    "label": step.label,
                    "seconds": step.duration,
                }
                for step in self.steps
            ],
            "seconds_by_component": self.seconds_by_component(),
            "attribution": self.attribution.to_jsonable(),
        }


def build_critical_path(obs, since: int = 0) -> CriticalPathReport:
    """Reconstruct the critical path of a run from an obs handle.

    ``obs`` must carry a :class:`TimeAttributor` (use
    ``Observability.with_attribution()``); a tracer is optional but
    gives the steps their line/chunk labels.  ``since`` is a record
    mark (``obs.attribution.mark()``) restricting the report window.
    """
    if obs.attribution is None:
        raise ObservabilityError(
            "critical path needs attribution; "
            "construct the handle with Observability.with_attribution()"
        )
    attribution = build_attribution_report(obs.attribution, since=since)
    segments = [s for s in attribution.segments]
    path = _longest_path(segments)
    spans = tuple(obs.tracer.spans) if obs.tracer is not None else ()
    path = _split_at_span_boundaries(path, spans)
    labels = _innermost_labels(path, spans)
    steps = _merge_steps(path, labels)
    return CriticalPathReport(steps=steps, attribution=attribution)
