"""Metrics primitives: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat, named collection of instruments,
Prometheus-style: **counters** only ever go up (their successive
snapshots are monotone — a property the test suite enforces),
**gauges** hold the latest value of some level (queue depth, free
blocks, availability), and **histograms** bucket observations against a
fixed upper-bound vector chosen at creation time.

None of these instruments ever touches the simulated clock: recording a
metric is free in simulated time *by construction*, which is what lets
the observability layer promise bit-identical ``total_seconds`` whether
it is enabled or not.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram buckets for durations in seconds: decades from a
#: microsecond to a hundred seconds, which brackets everything from a
#: doorbell message to a full paper-scale run.
DEFAULT_TIME_BUCKETS_S: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
)


class Counter:
    """A monotonically non-decreasing accumulator."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative and finite)."""
        if amount < 0 or not math.isfinite(amount):
            raise ObservabilityError(
                f"counter {self.name!r} increment must be finite and "
                f"non-negative, got {amount}"
            )
        self.value += amount


class Gauge:
    """The latest value of some instantaneous level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise ObservabilityError(
                f"gauge {self.name!r} value must be finite, got {value}"
            )
        self.value = float(value)


class Histogram:
    """Observations bucketed against fixed upper bounds.

    ``counts[i]`` tallies observations ``<= buckets[i]``; a final
    overflow bucket catches everything beyond the last bound.  The
    bucket vector is fixed at creation — no dynamic resizing, so a
    snapshot is always comparable to an earlier one.
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS_S) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs at least one bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise ObservabilityError(f"histogram {name!r} buckets must be finite")
        if list(bounds) != sorted(set(bounds)):
            raise ObservabilityError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.name = name
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Tally ``value`` into its bucket.

        The boundary convention is **inclusive upper bounds** (``<=``),
        Prometheus-style: a value exactly equal to ``buckets[i]`` lands
        in bucket ``i``, and only values strictly greater spill into
        bucket ``i + 1``.  ``bisect_left`` implements exactly this —
        for ``value == buckets[i]`` it returns ``i`` — and a hypothesis
        test over boundary values pins the convention so it cannot
        silently flip to ``<``.
        """
        if not math.isfinite(value):
            raise ObservabilityError(
                f"histogram {self.name!r} observation must be finite, got {value}"
            )
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """A flat namespace of counters, gauges, and histograms.

    Instruments are created on first use (``counter(name)`` is
    get-or-create) and a name belongs to exactly one instrument kind for
    the registry's lifetime — reusing ``"x"`` as both a counter and a
    gauge is an error, not a silent aliasing.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # --- instrument access -------------------------------------------------

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ObservabilityError(
                    f"metric {name!r} is already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, "counter")
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, "gauge")
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, "histogram")
            instrument = self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_TIME_BUCKETS_S
            )
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # --- snapshots ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A deterministic, JSON-ready view of every instrument.

        Counter values in successive snapshots are monotone
        non-decreasing (counters cannot be decremented or removed).
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].to_jsonable()
                for name in sorted(self._histograms)
            },
        }

    def as_jsonable(self) -> List[Dict[str, object]]:
        """Every instrument as one flat, sorted-by-name series list.

        Unlike :meth:`snapshot` (three kind-keyed maps), this is the
        diff-friendly form: one entry per instrument, ``name``/``kind``
        /``value`` (histograms carry their full bucket state under
        ``value``), emitted in sorted-name order across *all* kinds so
        two runs' snapshots line up row-for-row under ``diff``.
        """
        series: List[Dict[str, object]] = []
        for name, counter in self._counters.items():
            series.append({"name": name, "kind": "counter", "value": counter.value})
        for name, gauge in self._gauges.items():
            series.append({"name": name, "kind": "gauge", "value": gauge.value})
        for name, histogram in self._histograms.items():
            series.append({
                "name": name, "kind": "histogram", "value": histogram.to_jsonable(),
            })
        series.sort(key=lambda entry: entry["name"])
        return series

    def render(self) -> str:
        """Plain-text dump, one instrument per line, sorted by name."""
        lines: List[str] = []
        snap = self.snapshot()
        width = max(
            (len(name) for section in snap.values() for name in section),
            default=0,
        )
        for name, value in snap["counters"].items():
            lines.append(f"{name.ljust(width)}  {value:g}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name.ljust(width)}  {value:g} (gauge)")
        for name, data in snap["histograms"].items():
            lines.append(
                f"{name.ljust(width)}  count={data['count']} sum={data['sum']:g}"
            )
        return "\n".join(lines) if lines else "(no metrics recorded)"
