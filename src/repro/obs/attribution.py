"""Exact attribution of simulated time to hardware components.

Every simulated nanosecond flows through :class:`~repro.sim.clock.SimClock`
— ``advance`` for synchronous costs, ``advance_to`` for event
synchronisation.  A :class:`TimeAttributor` installed on the clock sees
each movement as an ``(old, new)`` timestamp pair tagged with the
component that consumed the time:

``host``
    Host-side compute, sampling, codegen and any unlabelled time.
``cse``
    The in-device computational storage engine, including crash
    recovery backoff while the host waits for a device reset.
``pcie``
    Host↔device link transfers (host-storage, d2h and remote-access
    links) plus command/doorbell messages.
``nvme``
    Time the dispatcher spends parked in queue-pair polling loops
    waiting for completions (queueing delay).
``nand``
    In-device media transfers over the internal link and ECC retry
    latency on correctable read faults.
``ftl``
    Flash translation layer work.  GC contention is modelled as CSE
    availability dips rather than direct clock charges, so this bucket
    is usually empty — it exists so the identity covers the component
    taxonomy, not because the simulator charges it today.
``checkpoint`` / ``migration``
    Checkpoint write costs and migration compile/state-transfer costs.
``integrity``
    End-to-end checksum verification (:mod:`repro.integrity`): the
    per-byte digest-check cost paid at every protected consumption
    point when ``integrity_enabled`` is on.  Empty by default — the
    integrity layer charges nothing when disabled.

**The sum identity is exact, not approximate.**  Each movement is kept
as the pair ``(old, new)`` and re-expressed at report time as a
compensated difference ``hi + err`` (two-diff: ``hi = new - old`` with
``err`` the exact rounding error, recoverable in floating point because
``hi`` is within a factor of two of the true difference).  Summing
every ``hi`` and ``err`` with :func:`math.fsum` therefore yields the
*correctly rounded* value of the telescoping sum ``end - start`` — the
same real number the clock itself computed — so
:attr:`AttributionReport.residual` is ``0.0`` exactly, asserted by
tests on every workload in the rotation.

Attribution is an observability feature: recording happens after the
clock has already moved and never feeds back into simulated time, so
runs stay bit-identical with attribution on or off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from .metrics import Histogram

__all__ = [
    "AttributedSegment",
    "AttributionReport",
    "COMPONENTS",
    "DEFAULT_COMPONENT",
    "TimeAttributor",
    "build_attribution_report",
]

#: The closed component taxonomy.  Labels outside this set are rejected
#: at the recording site so typos cannot silently open a new bucket.
COMPONENTS = (
    "host",
    "cse",
    "pcie",
    "nvme",
    "nand",
    "ftl",
    "checkpoint",
    "migration",
    "integrity",
)

#: Unlabelled clock movement lands here: the host runtime owns the
#: interpreter loop, so time nobody claims is host time by definition.
DEFAULT_COMPONENT = "host"

_COMPONENT_SET = frozenset(COMPONENTS)

#: Buckets for queueing-delay histograms (seconds, decade-ish spacing).
_DELAY_BUCKETS_S = (
    1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _two_diff(new: float, old: float) -> Tuple[float, float]:
    """Split ``new - old`` into ``(hi, err)`` with ``hi + err`` exact.

    Standard two-diff (Knuth/Møller): ``hi`` is the rounded difference
    and ``err`` the exactly-representable rounding error, so the pair
    carries the *real-number* difference with no information loss.
    """
    hi = new - old
    bb = new - hi
    err = (new - (hi + bb)) + (bb - old)
    return hi, err


@dataclass(frozen=True)
class AttributedSegment:
    """A maximal run of consecutive clock movements by one component."""

    start: float
    end: float
    component: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class TimeAttributor:
    """Records every clock movement tagged with the consuming component.

    Installed on a :class:`~repro.sim.clock.SimClock` via
    ``clock.set_attributor``.  Sites either pass an explicit
    ``component=`` to ``clock.advance`` (leaf hardware: compute units,
    links, media) or push a scope with :meth:`scope` around code whose
    inner advances should inherit a label (dispatcher completion polling
    → ``nvme``, crash-recovery waits → ``cse``).  Explicit labels win
    over scopes; with neither, time goes to :data:`DEFAULT_COMPONENT`.
    """

    def __init__(self) -> None:
        # One (component, old, new) triple per clock movement, in order.
        self._records: List[Tuple[str, float, float]] = []
        # Coalesced maximal same-component runs, kept incrementally.
        self._segments: List[AttributedSegment] = []
        self._stack: List[str] = []

    # --- labelling ---------------------------------------------------------

    def push_scope(self, component: str) -> None:
        if component not in _COMPONENT_SET:
            raise ObservabilityError(
                f"unknown attribution component {component!r}; "
                f"expected one of {', '.join(COMPONENTS)}"
            )
        self._stack.append(component)

    def pop_scope(self) -> None:
        if not self._stack:
            raise ObservabilityError("attribution scope stack is empty")
        self._stack.pop()

    @property
    def current_component(self) -> str:
        return self._stack[-1] if self._stack else DEFAULT_COMPONENT

    # --- recording (called by SimClock after it has moved) -----------------

    def record(self, old: float, new: float, component: Optional[str]) -> None:
        if component is None:
            component = self.current_component
        elif component not in _COMPONENT_SET:
            raise ObservabilityError(
                f"unknown attribution component {component!r}; "
                f"expected one of {', '.join(COMPONENTS)}"
            )
        self._records.append((component, old, new))
        if new == old:
            return  # zero-duration bookkeeping; keep the record, skip segments
        last = self._segments[-1] if self._segments else None
        if last is not None and last.component == component and last.end == old:
            self._segments[-1] = AttributedSegment(last.start, new, component)
        else:
            self._segments.append(AttributedSegment(old, new, component))

    # --- queries -----------------------------------------------------------

    def mark(self) -> int:
        """A position in the record stream, for windowed reports."""
        return len(self._records)

    @property
    def record_count(self) -> int:
        return len(self._records)

    def records(self, since: int = 0) -> Sequence[Tuple[str, float, float]]:
        return tuple(self._records[since:])

    def segments(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> List[AttributedSegment]:
        """Coalesced segments, optionally clipped to a time window."""
        out = self._segments
        if start is not None:
            out = [s for s in out if s.end > start]
        if end is not None:
            out = [s for s in out if s.start < end]
        return list(out)

    def reset(self) -> None:
        self._records.clear()
        self._segments.clear()
        self._stack.clear()


@dataclass
class AttributionReport:
    """Per-component breakdown of a window of simulated time.

    ``seconds_by_component`` are each computed with :func:`math.fsum`
    over that component's compensated pairs; ``total_attributed`` is the
    fsum over *all* pairs, which telescopes exactly to ``end - start``.
    """

    start: float
    end: float
    seconds_by_component: Dict[str, float]
    total_attributed: float
    segments: List[AttributedSegment] = field(default_factory=list)

    @property
    def total_window(self) -> float:
        return self.end - self.start

    @property
    def residual(self) -> float:
        """Attributed minus window time — exactly ``0.0`` by construction."""
        return self.total_attributed - (self.end - self.start)

    def utilization(self) -> Dict[str, float]:
        """Fraction of the window each component held the clock."""
        window = self.end - self.start
        if window <= 0:
            return {name: 0.0 for name in self.seconds_by_component}
        return {
            name: seconds / window
            for name, seconds in self.seconds_by_component.items()
        }

    def queueing_delay_histograms(self) -> Dict[str, Histogram]:
        """Per-component histograms of contiguous-occupancy durations.

        For ``nvme`` this is literally the queueing-delay distribution
        (each segment is one uninterrupted completion wait); for other
        components it shows how bursty their clock occupancy is.
        """
        out: Dict[str, Histogram] = {}
        for segment in self.segments:
            hist = out.get(segment.component)
            if hist is None:
                hist = Histogram(
                    f"attribution.{segment.component}.segment_seconds",
                    buckets=_DELAY_BUCKETS_S,
                )
                out[segment.component] = hist
            hist.observe(segment.duration)
        return out

    def what_if(self, component: str) -> float:
        """Projected total if ``component`` took zero time.

        The simulator serialises component occupancy on one clock, so
        deleting a component's time shortens the run by exactly its
        attributed seconds — an upper bound on what a real overlap-
        capable machine could save (e.g. "total if PCIe bandwidth were
        infinite").
        """
        if component not in _COMPONENT_SET:
            raise ObservabilityError(
                f"unknown attribution component {component!r}; "
                f"expected one of {', '.join(COMPONENTS)}"
            )
        return self.total_attributed - self.seconds_by_component.get(component, 0.0)

    def rank_bottlenecks(self) -> List[Tuple[str, float]]:
        """Components ranked by time saved if each were free, descending."""
        ranked = sorted(
            self.seconds_by_component.items(),
            key=lambda item: (-item[1], item[0]),
        )
        return [(name, seconds) for name, seconds in ranked if seconds > 0.0]

    def render(self) -> str:
        lines = [
            f"attribution over [{self.start:.6f}, {self.end:.6f}] s "
            f"(total {self.total_attributed:.6f} s, residual {self.residual:.1e})"
        ]
        util = self.utilization()
        for name, seconds in self.rank_bottlenecks():
            lines.append(
                f"  {name:<11} {seconds:>12.6f} s  {util[name] * 100:6.2f}%"
            )
        return "\n".join(lines)

    def to_jsonable(self) -> Dict[str, object]:
        return {
            "start": self.start,
            "end": self.end,
            "total_attributed": self.total_attributed,
            "residual": self.residual,
            "seconds_by_component": dict(self.seconds_by_component),
            "utilization": self.utilization(),
            "bottlenecks": [
                {"component": name, "seconds": seconds, "what_if": self.what_if(name)}
                for name, seconds in self.rank_bottlenecks()
            ],
            "segment_count": len(self.segments),
        }


def build_attribution_report(
    attributor: TimeAttributor, since: int = 0
) -> AttributionReport:
    """Summarise the attributor's records from position ``since`` on.

    ``since`` is a value previously returned by
    :meth:`TimeAttributor.mark`; the report then covers exactly the
    clock movements recorded after that mark, and the identity holds
    over that window.
    """
    records = attributor.records(since)
    if not records:
        return AttributionReport(
            start=0.0,
            end=0.0,
            seconds_by_component={},
            total_attributed=0.0,
            segments=[],
        )
    start = records[0][1]
    end = records[-1][2]
    parts_by_component: Dict[str, List[float]] = {}
    all_parts: List[float] = []
    for component, old, new in records:
        hi, err = _two_diff(new, old)
        parts = parts_by_component.setdefault(component, [])
        parts.append(hi)
        parts.append(err)
        all_parts.append(hi)
        all_parts.append(err)
    seconds = {
        name: math.fsum(parts) for name, parts in sorted(parts_by_component.items())
    }
    total = math.fsum(all_parts)
    return AttributionReport(
        start=start,
        end=end,
        seconds_by_component=seconds,
        total_attributed=total,
        segments=attributor.segments(start=start, end=end),
    )
