"""The structured span tracer.

A :class:`Tracer` accumulates immutable :class:`Span` records — named,
categorised intervals of simulated time on a named resource.  It is the
single source of truth behind both the legacy plain-text
:class:`~repro.analysis.timeline.ExecutionTimeline` (via
:meth:`Tracer.to_timeline`) and the Chrome ``trace_event`` export
(:mod:`repro.obs.export`), so a traced run renders as a Gantt chart and
opens in Perfetto from the same data.

Spans carry **simulated** timestamps; recording one never advances the
simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover — avoid an import cycle at runtime
    from ..analysis.timeline import ExecutionTimeline

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True, slots=True)
class Span:
    """One named interval of simulated time on one resource.

    ``cat`` is the span's category ("compute", "transfer", "compile",
    "sampling", "storage", "migration", ...) — it maps to the timeline's
    ``kind`` and to the Chrome trace event category.
    """

    name: str
    cat: str
    resource: str
    start: float
    end: float
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """An append-only log of :class:`Span` records."""

    def __init__(self) -> None:
        self._spans: List[Span] = []

    def record(
        self,
        name: str,
        cat: str,
        resource: str,
        start: float,
        end: float,
        args: Optional[Dict[str, object]] = None,
    ) -> Span:
        """Append one finished span (simulated timestamps, seconds)."""
        if end < start:
            raise ObservabilityError(
                f"span {name!r} ends before it starts: {start} > {end}"
            )
        span = Span(
            name=name,
            cat=cat,
            resource=resource,
            start=start,
            end=end,
            args=tuple(sorted(args.items())) if args else (),
        )
        self._spans.append(span)
        return span

    @property
    def count(self) -> int:
        """Number of spans recorded so far (use to mark a position)."""
        return len(self._spans)

    @property
    def spans(self) -> List[Span]:
        return list(self._spans)

    def spans_since(self, mark: int) -> List[Span]:
        """Spans recorded after a prior :attr:`count` mark."""
        return list(self._spans[mark:])

    def to_timeline(self, since: int = 0) -> "ExecutionTimeline":
        """Materialise the legacy plain-text timeline from the span log."""
        from ..analysis.timeline import ExecutionTimeline

        timeline = ExecutionTimeline()
        for span in self._spans[since:]:
            timeline.record(span.start, span.end, span.resource, span.cat, span.name)
        return timeline
